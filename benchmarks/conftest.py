"""Shared benchmark fixtures and table-printing helpers.

Every benchmark module regenerates one table/figure of the evaluation (see
DESIGN.md's per-experiment index) and *prints* the regenerated rows so the
bench output doubles as the experiment record in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--bench-scale",
        action="store",
        default="small",
        choices=("small", "full"),
        help="workload scale for value/runtime benchmarks",
    )
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help=(
            "CI smoke mode: force the small workload scale (combine with "
            "--benchmark-disable to skip timing calibration; correctness "
            "assertions — equivalence, nesting, speedup gates — still run)"
        ),
    )


@pytest.fixture(scope="session")
def bench_scale(request):
    if request.config.getoption("--quick"):
        return "small"
    return request.config.getoption("--bench-scale")


@pytest.fixture(scope="session")
def emit():
    """Print a block with a separating newline (keeps bench logs readable)."""

    def _emit(text: str) -> None:
        print("\n" + text)

    return _emit
