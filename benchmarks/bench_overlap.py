"""tab6 — overlap-type statistics and sparsified-overlap MIS (Section 4.5).

For each workload: how many occurrence pairs overlap under simple /
harmful / structural semantics, and what MIS becomes on each overlap
graph.  Expected shape: HO-pairs <= simple-pairs and SO-pairs <=
simple-pairs everywhere (containment theorems), and MIS grows as the
overlap graph sparsifies (simple <= harmful/structural variants).
"""

from __future__ import annotations


from repro.analysis.report import format_table
from repro.datasets.paper_figures import load_figure
from repro.datasets.synthetic import planted_pattern_graph
from repro.graph.builders import path_pattern, star_pattern
from repro.hypergraph.overlap import occurrence_overlap_graph, overlap_statistics
from repro.isomorphism.matcher import find_occurrences
from repro.measures.mis import mis_support_of

WORKLOADS = [
    ("fig9", lambda: load_figure("fig9"), None),
    ("fig10", lambda: load_figure("fig10"), None),
    (
        "welded-path",
        lambda: None,
        (path_pattern(["A", "B", "B"]), 0.5, 10),
    ),
    (
        "welded-star",
        lambda: None,
        (star_pattern("A", ["B", "B"]), 0.6, 8),
    ),
]


def _load(name, fig_builder, synth_spec):
    if synth_spec is None:
        figure = fig_builder()
        return figure.pattern, figure.data_graph
    pattern, overlap, copies = synth_spec
    graph = planted_pattern_graph(
        pattern, num_copies=copies, overlap_fraction=overlap, seed=37
    )
    return pattern, graph


def test_tab6_overlap_statistics(benchmark, emit):
    rows = []
    for name, fig_builder, synth_spec in WORKLOADS:
        pattern, graph = _load(name, fig_builder, synth_spec)
        occurrences = find_occurrences(pattern, graph)
        stats = overlap_statistics(pattern, occurrences)
        # Containment theorems.
        assert stats.harmful_pairs <= stats.simple_pairs
        assert stats.structural_pairs <= stats.simple_pairs
        rows.append(
            [
                name,
                stats.num_occurrences,
                stats.total_pairs,
                stats.simple_pairs,
                stats.harmful_pairs,
                stats.structural_pairs,
            ]
        )
    emit(
        format_table(
            ["workload", "occ", "pairs", "simple", "harmful", "structural"],
            rows,
            title="tab6: overlapping occurrence pairs per semantics",
        )
    )

    pattern, graph = _load("fig9", lambda: load_figure("fig9"), None)
    occurrences = find_occurrences(pattern, graph)
    benchmark(lambda: overlap_statistics(pattern, occurrences))


def test_tab6_sparsified_mis(benchmark, emit):
    rows = []
    for name, fig_builder, synth_spec in WORKLOADS:
        pattern, graph = _load(name, fig_builder, synth_spec)
        occurrences = find_occurrences(pattern, graph)
        values = {}
        for kind in ("simple", "harmful", "structural"):
            overlap_graph = occurrence_overlap_graph(pattern, occurrences, kind=kind)
            values[kind] = mis_support_of(overlap_graph)
        # Sparser conflicts can only admit larger independent sets.
        assert values["harmful"] >= values["simple"]
        assert values["structural"] >= values["simple"]
        rows.append([name, values["simple"], values["harmful"], values["structural"]])
    emit(
        format_table(
            ["workload", "MIS simple", "MIS harmful", "MIS structural"],
            rows,
            title="tab6b: MIS under sparsified overlap semantics",
        )
    )

    pattern, graph = _load("fig10", lambda: load_figure("fig10"), None)
    occurrences = find_occurrences(pattern, graph)
    graph_simple = occurrence_overlap_graph(pattern, occurrences, kind="simple")
    benchmark(lambda: mis_support_of(graph_simple))


def test_tab6_benchmark_statistics(benchmark):
    pattern, graph = _load(
        "welded-path", None, (path_pattern(["A", "B", "B"]), 0.5, 10)
    )
    occurrences = find_occurrences(pattern, graph)
    benchmark(lambda: overlap_statistics(pattern, occurrences))


def test_tab6_benchmark_structural_graph(benchmark):
    pattern, graph = _load(
        "welded-path", None, (path_pattern(["A", "B", "B"]), 0.5, 10)
    )
    occurrences = find_occurrences(pattern, graph)
    benchmark(lambda: occurrence_overlap_graph(pattern, occurrences, kind="structural"))
