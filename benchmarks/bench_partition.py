"""tab10 — partitioned (sharded) mining vs the flat single-graph miner.

Seven experiments share this module:

* **tab10a** — partitioner quality: per-method shard balance, boundary
  vertex count, and replication factor on the clustered medium dataset
  (the greedy ``edgecut`` minimizer must beat ``hash`` on replication);
* **tab10b** — exactness: sharded mining (k = 4, every partitioner) is
  byte-identical to the flat miner on the same dataset — the acceptance
  property the randomized suite (``tests/test_partition_equivalence.py``)
  pins on small graphs, re-asserted here at medium scale;
* **tab10c** — the speedup gate: ``shards=4, workers=4`` must beat the
  single-shard single-worker miner by **>= 1.5x** on the medium dataset.
  Footprint-affine ``label`` partitioning makes nearly every candidate a
  single-relevant-shard ("solo") pool task whose worker returns just
  ``(support, num_occurrences)``, so enumeration *and* measure
  computation parallelize with near-zero IPC.  Skipped below 4 CPUs,
  where the 4-worker fan-out has nowhere to run;
* **tab10d** — the dynamic-partition gate: over a deletion-heavy mixed
  update stream (shared with tab9c via ``stream_workloads``), the
  delta-maintained sharded miner — one partition kept current in
  O(delta) per update, per-shard state patched, untouched expansions
  cached — must beat re-partitioning + re-mining per batch by
  **>= 1.3x**, with byte-identical per-batch results;
* **tab10e** — the worker-lifecycle gate: over the same shared stream,
  the shard-resident pool (one long-lived worker per shard, slices
  shipped once and re-shipped only when deltas dirtied them) must beat
  the per-task shipping reference (``resident_workers=False``: workers
  respawned and the whole graph + partition re-shipped every refresh)
  by **>= 1.3x**.  Valid on a single CPU: both sides run the same
  evaluation, the gate measures pure pool-lifecycle overhead;
* **tab10f** — the out-of-core gate: mining a large-diameter corridor
  graph with ``max_resident=1`` must be byte-identical to the
  all-resident run while its deterministic peak resident view weight
  (``ShardPager.peak_resident_weight``, the projected index footprint
  in bytes of every non-alias resident view) stays strictly below the
  all-resident peak;
* **tab10g** — the compact-footprint gate: the same paged corridor run
  under the compact (CSR) index backend must peak at **<= 0.7x** the
  dict backend's resident weight, with byte-identical results — the
  memory half of the compact core's bargain (tab4d is the speed half).

Results must be identical in every configuration; wall time is the
experiment.
"""

from __future__ import annotations

import os
import time

import pytest
from stream_workloads import (
    STREAM_PARAMS,
    apply_batch,
    batches,
    churn_stream,
    two_region_base,
)

from repro.analysis.report import format_table
from repro.datasets.synthetic import (
    planted_pattern_graph,
    preferential_attachment_graph,
)
from repro.graph.builders import path_pattern, star_pattern
from repro.mining.dynamic import DynamicMiner
from repro.mining.miner import mine_frequent_patterns
from repro.partition import PARTITION_METHODS, ShardedIndex

# The ablations time the legacy-kwarg entry points on purpose; the
# deprecation they trigger is expected, not noise.
pytestmark = pytest.mark.filterwarnings(
    "ignore:legacy mining kwargs:DeprecationWarning"
)

#: Equivalence-scale search (tab10a/b — fast enough for the CI smoke).
MINE_PARAMS = dict(
    measure="mni", min_support=4, max_pattern_nodes=4, max_pattern_edges=4
)
#: Gate-scale search (tab10c — deep enough to amortize pool startup).
GATE_PARAMS = dict(
    measure="mni", min_support=4, max_pattern_nodes=5, max_pattern_edges=5
)


@pytest.fixture(scope="module")
def partition_workload():
    """The clustered *medium* dataset for the sharding experiments.

    Four label-disjoint regions stitched by single edges: three welded
    planted-pattern communities (heavy occurrence overlap — expensive
    enumeration) plus a preferential-attachment region (hubs).  Distinct
    regional alphabets give the label-pair directory real pruning power:
    nearly every candidate's footprint lives in one region, so its
    relevant shards (under ``label`` / ``edgecut`` partitioning) stay
    few and its halo-expanded views stay region-sized.
    """
    regions = [
        planted_pattern_graph(
            star_pattern("A", ["B", "C"]),
            num_copies=70,
            overlap_fraction=0.55,
            background_vertices=50,
            background_edge_probability=0.05,
            seed=11,
            name="partition-medium",
        ),
        planted_pattern_graph(
            path_pattern(["D", "E", "D", "F"]),
            num_copies=56,
            overlap_fraction=0.45,
            seed=23,
        ),
        planted_pattern_graph(
            star_pattern("G", ["H", "H"]),
            num_copies=59,
            overlap_fraction=0.6,
            background_vertices=30,
            background_edge_probability=0.05,
            seed=37,
        ),
        preferential_attachment_graph(
            119, 2, alphabet=("J", "K", "L"), seed=53, label_skew=0.25
        ),
    ]
    graph = regions[0]
    anchors = [0]
    offset = 0
    for region in regions[1:]:
        offset = graph.num_vertices + offset + 1000
        for vertex in region.vertices():
            graph.add_vertex(vertex + offset, region.label_of(vertex))
        for u, v in region.edges():
            graph.add_edge(u + offset, v + offset)
        anchors.append(offset)
    for first, second in zip(anchors, anchors[1:]):
        graph.add_edge(first, second)  # sparse stitches between regions
    return graph


def _best_of_interleaved(first, second, repeats=3):
    """Min wall-clock of each callable over alternating runs (tab4c style)."""
    best_first = best_second = float("inf")
    result_first = result_second = None
    for _ in range(repeats):
        start = time.perf_counter()
        result_first = first()
        best_first = min(best_first, time.perf_counter() - start)
        start = time.perf_counter()
        result_second = second()
        best_second = min(best_second, time.perf_counter() - start)
    return best_first, result_first, best_second, result_second


def test_tab10a_partitioner_quality(partition_workload, emit):
    rows = []
    replication = {}
    for method in PARTITION_METHODS:
        sharded = ShardedIndex.build(partition_workload, 4, method)
        sizes = sharded.partition.shard_sizes()
        replication[method] = sharded.replication_factor()
        rows.append(
            [
                method,
                f"{min(sizes)}..{max(sizes)}",
                len(sharded.boundary_vertices()),
                f"{replication[method]:.3f}",
            ]
        )
        assert sum(sizes) == partition_workload.num_edges
    emit(
        format_table(
            ["method", "core edges/shard", "boundary", "replication"],
            rows,
            title="tab10a: partitioner quality on the medium dataset (k = 4)",
        )
    )
    # The greedy replication minimizer must actually minimize replication.
    assert replication["edgecut"] < replication["hash"]


def test_tab10b_sharded_mining_identical(partition_workload, emit):
    flat = mine_frequent_patterns(partition_workload, **MINE_PARAMS)
    for method in PARTITION_METHODS:
        sharded = mine_frequent_patterns(
            partition_workload, shards=4, partition_method=method, **MINE_PARAMS
        )
        assert sharded.certificates() == flat.certificates()
        assert [fp.support for fp in sharded.frequent] == [
            fp.support for fp in flat.frequent
        ]
        assert sharded.stats.as_dict() == flat.stats.as_dict()
    emit(
        f"tab10b: sharded(k=4, {', '.join(PARTITION_METHODS)}) == flat on "
        f"{flat.num_frequent} frequent patterns"
    )


def test_tab10c_sharded_parallel_speedup(partition_workload, benchmark, emit):
    """Acceptance gate: shards=4 + workers=4 >= 1.5x over flat serial.

    Timed as interleaved min-of-3 pairs (tab4c discipline) so shared-
    runner contention degrades both pipelines instead of flipping the
    ratio.  Requires real cores: with fewer than 4 CPUs the 4-worker
    fan-out has nowhere to run in parallel, so the gate is skipped
    rather than measuring scheduler noise (single-CPU calibration: the
    whole sharded+pooled pipeline costs only ~1.4x flat wall-clock, so
    4 cores leave ~2x headroom over the gate).
    """
    if (os.cpu_count() or 1) < 4:
        pytest.skip("parallel speedup gate needs >= 4 CPUs")

    def flat_run():
        return mine_frequent_patterns(partition_workload, **GATE_PARAMS)

    def sharded_run():
        return mine_frequent_patterns(
            partition_workload,
            shards=4,
            workers=4,
            partition_method="label",
            **GATE_PARAMS,
        )

    flat_run()  # warm the cached GraphIndex before timing
    t_flat, flat_result, t_sharded, sharded_result = _best_of_interleaved(
        flat_run, sharded_run
    )

    assert sharded_result.certificates() == flat_result.certificates()
    assert sharded_result.stats.as_dict() == flat_result.stats.as_dict()
    speedup = t_flat / max(t_sharded, 1e-9)
    emit(
        format_table(
            ["pipeline", "time ms", "frequent"],
            [
                [
                    "flat (1 shard, 1 worker)",
                    f"{t_flat*1e3:.1f}",
                    flat_result.num_frequent,
                ],
                [
                    "sharded (4 shards, 4 workers)",
                    f"{t_sharded*1e3:.1f}",
                    sharded_result.num_frequent,
                ],
                ["speedup", f"{speedup:.2f}x", ""],
            ],
            title="tab10c: sharded parallel mining vs flat serial (medium dataset)",
        )
    )
    assert speedup >= 1.5, f"sharded mining only {speedup:.2f}x over flat serial"

    benchmark(sharded_run)


def test_tab10_benchmark_flat_mining(partition_workload, benchmark):
    benchmark(lambda: mine_frequent_patterns(partition_workload, **MINE_PARAMS))


# ----------------------------------------------------------------------
# tab10d — delta-maintained sharded streaming vs re-partition per batch
# (search parameters: stream_workloads.STREAM_PARAMS, shared with tab9b/c)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def sharded_stream_workload():
    """The shared deletion-heavy mixed stream over the two-region graph."""
    return churn_stream(two_region_base())


def test_tab10d_sharded_delta_stream_vs_repartition_per_batch(
    sharded_stream_workload, benchmark, emit
):
    """Acceptance gate: dynamic partitions beat re-partition-per-batch >= 1.3x.

    The delta pipeline maintains **one** partition across the whole
    stream: every update is routed to its owning shard(s) in O(delta),
    halos are patched in place, and only the footprint-affected
    candidates re-evaluate (over expansions whose caches survive in the
    untouched shards).  The reference pipeline re-partitions the graph
    and re-mines every batch — the pre-dynamic-partitions behavior.
    Same interleaved min-of-3 discipline as tab9b/tab9c; per-batch
    results must be identical.
    """
    base, updates = sharded_stream_workload
    update_batches = batches(updates, 6)
    sharding = dict(shards=2, partition_method="label")

    def delta_run():
        graph = base.copy()
        miner = DynamicMiner(graph, **sharding, **STREAM_PARAMS)
        try:
            keys = [miner.refresh().certificates()]
            for batch in update_batches:
                apply_batch(graph, batch)
                keys.append(miner.refresh().certificates())
        finally:
            miner.detach()
        return keys

    def repartition_run():
        graph = base.copy()
        mined = mine_frequent_patterns(graph, **sharding, **STREAM_PARAMS)
        keys = [mined.certificates()]
        for batch in update_batches:
            apply_batch(graph, batch)
            mined = mine_frequent_patterns(graph, **sharding, **STREAM_PARAMS)
            keys.append(mined.certificates())
        return keys

    best_delta = best_repartition = float("inf")
    delta_keys = repartition_keys = None
    for _ in range(3):
        start = time.perf_counter()
        repartition_keys = repartition_run()
        best_repartition = min(best_repartition, time.perf_counter() - start)
        start = time.perf_counter()
        delta_keys = delta_run()
        best_delta = min(best_delta, time.perf_counter() - start)

    assert delta_keys == repartition_keys  # identical after every batch
    speedup = best_repartition / max(best_delta, 1e-9)
    deletions = sum(1 for update in updates if update[0] in ("de", "dv"))
    emit(
        format_table(
            ["pipeline", "time ms", "batches", "deletions", "final frequent"],
            [
                [
                    "re-partition per batch",
                    f"{best_repartition * 1e3:.1f}",
                    len(update_batches),
                    deletions,
                    len(repartition_keys[-1]),
                ],
                [
                    "delta-maintained shards",
                    f"{best_delta * 1e3:.1f}",
                    len(update_batches),
                    deletions,
                    len(delta_keys[-1]),
                ],
                ["speedup", f"{speedup:.2f}x", "", "", ""],
            ],
            title=(
                "tab10d: delta-maintained sharded streaming vs "
                "re-partition-per-batch"
            ),
        )
    )
    assert speedup >= 1.3, (
        f"dynamic partitions only {speedup:.2f}x over re-partition-per-batch"
    )

    benchmark(delta_run)


# ----------------------------------------------------------------------
# tab10e — shard-resident workers vs per-task shipping over the stream
# ----------------------------------------------------------------------


def test_tab10e_resident_workers_vs_per_task_shipping(
    sharded_stream_workload, benchmark, emit
):
    """Acceptance gate: resident workers beat per-task shipping >= 1.3x.

    Both pipelines run the *same* delta-maintained sharded stream with
    ``workers=2, shards=2`` — the only difference is worker lifecycle.
    The resident pipeline keeps one worker per shard alive across every
    refresh; each worker owns its shard's slice and the parent re-ships
    only slices that deltas dirtied.  The reference pipeline
    (``resident_workers=False``) is the pre-resident design: a fresh
    executor per refresh, every worker re-initialized with the whole
    graph and partition, every shard index rebuilt worker-side.  The
    evaluation work is identical, so the measured ratio is pure
    spawn-and-ship overhead — which is why the gate is valid on one CPU.
    """
    base, updates = sharded_stream_workload
    update_batches = batches(updates, 6)
    config = dict(shards=2, partition_method="label", workers=2, **STREAM_PARAMS)

    def stream_run(resident_workers):
        graph = base.copy()
        miner = DynamicMiner(graph, resident_workers=resident_workers, **config)
        try:
            keys = [miner.refresh().certificates()]
            for batch in update_batches:
                apply_batch(graph, batch)
                keys.append(miner.refresh().certificates())
        finally:
            miner.detach()
        return keys

    best_resident = best_shipping = float("inf")
    resident_keys = shipping_keys = None
    for _ in range(2):
        start = time.perf_counter()
        shipping_keys = stream_run(resident_workers=False)
        best_shipping = min(best_shipping, time.perf_counter() - start)
        start = time.perf_counter()
        resident_keys = stream_run(resident_workers=True)
        best_resident = min(best_resident, time.perf_counter() - start)

    assert resident_keys == shipping_keys  # identical after every batch
    speedup = best_shipping / max(best_resident, 1e-9)
    emit(
        format_table(
            ["pipeline", "time ms", "batches", "final frequent"],
            [
                [
                    "per-task shipping (respawn per refresh)",
                    f"{best_shipping * 1e3:.1f}",
                    len(update_batches),
                    len(shipping_keys[-1]),
                ],
                [
                    "shard-resident workers (persistent pool)",
                    f"{best_resident * 1e3:.1f}",
                    len(update_batches),
                    len(resident_keys[-1]),
                ],
                ["speedup", f"{speedup:.2f}x", "", ""],
            ],
            title=(
                "tab10e: shard-resident workers vs per-task shipping "
                "(shared stream, workers=2, shards=2)"
            ),
        )
    )
    assert speedup >= 1.3, (
        f"resident workers only {speedup:.2f}x over per-task shipping"
    )

    benchmark(lambda: stream_run(resident_workers=True))


# ----------------------------------------------------------------------
# tab10f — out-of-core shard paging bounds resident memory
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def corridor_workload():
    """A large-diameter corridor: welded communities strung on a path.

    ``edgecut`` partitioning keeps each shard a contiguous stretch of
    the corridor, so its radius-2 halo ball stays a fraction of the
    graph — the regime where paging shard views out actually frees
    memory (small-diameter graphs collapse every ball to a whole-graph
    alias view, which is never spilled by design).
    """
    from repro.graph.labeled_graph import LabeledGraph

    graph = LabeledGraph(name="corridor")
    n = 240
    for i in range(n):
        graph.add_vertex(i, "ABC"[i % 3])
    for i in range(n - 1):
        graph.add_edge(i, i + 1)
    for i in range(0, n - 8, 8):
        graph.add_edge(i, i + 5)  # short chords: local density, long diameter
    return graph


def test_tab10f_out_of_core_memory(corridor_workload, emit):
    """Acceptance gate: max_resident=1 pages, matches, and uses less memory."""
    from repro.mining.miner import FrequentSubgraphMiner

    params = dict(partition_method="edgecut", **MINE_PARAMS)
    runs = {}
    for max_resident in (1, 4):
        miner = FrequentSubgraphMiner(
            corridor_workload, shards=4, max_resident=max_resident, **params
        )
        result = miner.mine()
        runs[max_resident] = (result, miner._pager)

    flat = mine_frequent_patterns(corridor_workload, **MINE_PARAMS)
    for max_resident, (result, _) in runs.items():
        assert result.certificates() == flat.certificates(), max_resident
        assert result.stats.as_dict() == flat.stats.as_dict(), max_resident

    bounded, all_resident = runs[1][1], runs[4][1]
    emit(
        format_table(
            ["run", "peak resident weight", "evictions", "rehydrations"],
            [
                [
                    "all-resident (max_resident=4)",
                    all_resident.peak_resident_weight,
                    all_resident.evictions,
                    all_resident.rehydrations,
                ],
                [
                    "out-of-core (max_resident=1)",
                    bounded.peak_resident_weight,
                    bounded.evictions,
                    bounded.rehydrations,
                ],
            ],
            title="tab10f: out-of-core shard paging (corridor graph, k=4)",
        )
    )
    assert bounded.evictions > 0
    assert bounded.peak_resident_weight < all_resident.peak_resident_weight, (
        f"paged peak {bounded.peak_resident_weight} not below "
        f"all-resident peak {all_resident.peak_resident_weight}"
    )


def test_tab10g_compact_footprint_gate(corridor_workload, emit):
    """Acceptance gate: compact views weigh <= 0.7x dict under the pager.

    The pager prices every non-alias resident view with the analytic
    per-backend footprint model (``projected_index_nbytes``), so the
    peak resident weight of the same paged run directly compares what
    each backend would pin in memory.  Both runs must stay byte-
    identical to each other — the compact core saves bytes, never
    answers.
    """
    from repro.index import index_backend, set_index_backend
    from repro.mining.miner import FrequentSubgraphMiner

    params = dict(partition_method="edgecut", **MINE_PARAMS)
    peaks = {}
    results = {}
    previous = index_backend()
    try:
        for backend in ("dict", "compact"):
            set_index_backend(backend)
            miner = FrequentSubgraphMiner(
                corridor_workload, shards=4, max_resident=2, **params
            )
            results[backend] = miner.mine()
            peaks[backend] = miner._pager.peak_resident_weight
    finally:
        set_index_backend(previous)

    assert results["compact"].certificates() == results["dict"].certificates()
    assert [fp.support for fp in results["compact"].frequent] == [
        fp.support for fp in results["dict"].frequent
    ]
    ratio = peaks["compact"] / max(peaks["dict"], 1e-9)
    emit(
        format_table(
            ["backend", "peak resident weight (bytes)", "ratio"],
            [
                ["dict index", peaks["dict"], ""],
                ["compact (CSR) index", peaks["compact"], f"{ratio:.2f}x"],
            ],
            title="tab10g: compact vs dict paged footprint (corridor graph, k=4)",
        )
    )
    assert peaks["compact"] > 0  # non-alias views were actually priced
    assert ratio <= 0.7, (
        f"compact resident weight {ratio:.2f}x of dict (gate: <= 0.7x)"
    )


def test_tab10d_benchmark_repartition_per_batch(sharded_stream_workload, benchmark):
    base, updates = sharded_stream_workload
    update_batches = batches(updates, 6)

    def repartition_run():
        graph = base.copy()
        results = [
            mine_frequent_patterns(
                graph, shards=2, partition_method="label", **STREAM_PARAMS
            )
        ]
        for batch in update_batches:
            apply_batch(graph, batch)
            results.append(
                mine_frequent_patterns(
                    graph, shards=2, partition_method="label", **STREAM_PARAMS
                )
            )
        return results

    benchmark(repartition_run)
