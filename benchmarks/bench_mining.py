"""tab4 — mining throughput and result size per measure, threshold sweep.

Regenerates the mining experiment: for each support measure, the number of
frequent patterns and search effort at several thresholds.  Expected
shape: pointwise measure ordering (MIS <= MVC <= MI <= MNI) makes the
frequent sets *nested* at any fixed threshold, and higher thresholds
shrink every set.
"""

from __future__ import annotations

import time
from collections import deque

import pytest

from repro.analysis.report import format_table
from repro.datasets.synthetic import (
    planted_pattern_graph,
    preferential_attachment_graph,
)
from repro.graph.builders import path_pattern, star_pattern
from repro.mining.miner import mine_frequent_patterns

# The ablations time the legacy-kwarg entry points on purpose; the
# deprecation they trigger is expected, not noise.
pytestmark = pytest.mark.filterwarnings(
    "ignore:legacy mining kwargs:DeprecationWarning"
)

MEASURES = ("mis", "mvc", "mi", "mni")


@pytest.fixture(scope="module")
def mining_graph():
    # Heavy welding makes the measures genuinely diverge: many occurrences
    # share vertices, so MIS/MVC prune much harder than MI/MNI.
    pattern = star_pattern("A", ["B", "B"])
    graph = planted_pattern_graph(
        pattern,
        num_copies=14,
        overlap_fraction=0.75,
        background_vertices=6,
        background_edge_probability=0.2,
        seed=13,
        name="mining-workload",
    )
    chain = path_pattern(["A", "B", "C"])
    welded = planted_pattern_graph(chain, num_copies=8, overlap_fraction=0.5, seed=29)
    offset = graph.num_vertices + 100
    for vertex in welded.vertices():
        graph.add_vertex(vertex + offset, welded.label_of(vertex))
    for u, v in welded.edges():
        graph.add_edge(u + offset, v + offset)
    return graph


@pytest.fixture(scope="module")
def medium_mining_graph():
    """The synthetic *medium* dataset for the index-layer speedup check.

    Three stitched communities: welded planted stars (heavy occurrence
    overlap), welded planted 4-chains, and a preferential-attachment
    region with five extra labels (hubs + label diversity — the regime
    the GraphIndex targets).
    """
    star = star_pattern("A", ["B", "C"])
    graph = planted_pattern_graph(
        star,
        num_copies=90,
        overlap_fraction=0.55,
        background_vertices=80,
        background_edge_probability=0.05,
        seed=41,
        name="medium-mining",
    )
    chain = path_pattern(["A", "B", "A", "C"])
    welded = planted_pattern_graph(chain, num_copies=60, overlap_fraction=0.45, seed=57)
    offset = graph.num_vertices + 1000
    for vertex in welded.vertices():
        graph.add_vertex(vertex + offset, welded.label_of(vertex))
    for u, v in welded.edges():
        graph.add_edge(u + offset, v + offset)
    hubs = preferential_attachment_graph(
        160, 2, alphabet=tuple("DEFGH"), seed=73, label_skew=0.25
    )
    offset2 = offset + 10000
    for vertex in hubs.vertices():
        graph.add_vertex(vertex + offset2, hubs.label_of(vertex))
    for u, v in hubs.edges():
        graph.add_edge(u + offset2, v + offset2)
    graph.add_edge(0, offset2)
    graph.add_edge(offset, offset2 + 1)
    return graph


def _seed_baseline_mine(graph, min_support, max_nodes, max_edges):
    """Re-enactment of the seed miner's per-candidate evaluation pipeline.

    The seed evaluated every candidate by (1) enumerating occurrences with
    the generator engine and no index, (2) wrapping each mapping in an
    Occurrence (per-occurrence sort), (3) grouping instances and building
    *both* hypergraphs eagerly, then (4) reading MNI off the occurrence
    list.  Reproducing that pipeline here gives the speedup comparison a
    live baseline instead of a hard-coded historical timing.
    """
    from repro.graph.canonical import canonical_certificate
    from repro.hypergraph.construction import (
        instance_hypergraph_from,
        occurrence_hypergraph_from,
    )
    from repro.isomorphism.matcher import Occurrence, group_into_instances
    from repro.isomorphism.vf2 import find_subgraph_isomorphisms
    from repro.measures.mni import mni_support_from_occurrences
    from repro.mining.extension import (
        adjacent_label_pairs,
        all_extensions,
        single_edge_patterns,
    )

    label_pairs = adjacent_label_pairs(graph)

    def support_of(pattern):
        occurrences = [
            Occurrence.from_mapping(mapping, index=i)
            for i, mapping in enumerate(
                find_subgraph_isomorphisms(pattern, graph, index=False)
            )
        ]
        instances = group_into_instances(pattern, occurrences)
        occurrence_hypergraph_from(occurrences)
        instance_hypergraph_from(instances)
        return float(mni_support_from_occurrences(pattern, occurrences))

    seen = set()
    queue = deque()
    frequent = []
    for seed in single_edge_patterns(graph):
        certificate = canonical_certificate(seed.graph)
        if certificate in seen:
            continue
        seen.add(certificate)
        if support_of(seed) >= min_support:
            frequent.append(certificate)
            queue.append(seed)
    while queue:
        pattern = queue.popleft()
        for extension in all_extensions(
            pattern, label_pairs, max_nodes=max_nodes, max_edges=max_edges
        ):
            certificate = canonical_certificate(extension.graph)
            if certificate in seen:
                continue
            seen.add(certificate)
            if support_of(extension) >= min_support:
                frequent.append(certificate)
                queue.append(extension)
    return sorted(frequent)


def _best_of_interleaved(first, second, repeats=3):
    """Min wall-clock of each callable over alternating runs.

    The two pipelines are timed back-to-back within each round, so a
    transient slowdown on a shared CI runner (throttling, noisy neighbor)
    degrades both measurements instead of flipping their ratio.
    """
    best_first = best_second = float("inf")
    result_first = result_second = None
    for _ in range(repeats):
        start = time.perf_counter()
        result_first = first()
        best_first = min(best_first, time.perf_counter() - start)
        start = time.perf_counter()
        result_second = second()
        best_second = min(best_second, time.perf_counter() - start)
    return best_first, result_first, best_second, result_second


def test_tab4_medium_indexed_speedup(medium_mining_graph, benchmark, emit):
    """Acceptance gate: indexed mining >= 2x over the seed-style baseline.

    Timed as interleaved min-of-3 pairs so CI-runner contention cannot
    slow one phase in isolation (observed headroom ~2.9x).
    """
    params = dict(min_support=4, max_nodes=4, max_edges=4)

    def baseline_run():
        return _seed_baseline_mine(
            medium_mining_graph,
            params["min_support"],
            params["max_nodes"],
            params["max_edges"],
        )

    def indexed_run():
        return mine_frequent_patterns(
            medium_mining_graph,
            measure="mni",
            min_support=params["min_support"],
            max_pattern_nodes=params["max_nodes"],
            max_pattern_edges=params["max_edges"],
        )

    indexed_run()  # warm the cached GraphIndex before timing
    t_baseline, baseline_certificates, t_indexed, indexed_result = (
        _best_of_interleaved(baseline_run, indexed_run)
    )

    brute_result = mine_frequent_patterns(
        medium_mining_graph,
        measure="mni",
        min_support=params["min_support"],
        max_pattern_nodes=params["max_nodes"],
        max_pattern_edges=params["max_edges"],
        use_index=False,
    )

    speedup = t_baseline / max(t_indexed, 1e-9)
    emit(
        format_table(
            ["pipeline", "time ms", "frequent"],
            [
                [
                    "seed-style baseline",
                    f"{t_baseline*1e3:.1f}",
                    len(baseline_certificates),
                ],
                [
                    "indexed (1 process)",
                    f"{t_indexed*1e3:.1f}",
                    indexed_result.num_frequent,
                ],
                ["speedup", f"{speedup:.2f}x", ""],
            ],
            title="tab4c: indexed mining vs seed-style baseline (medium dataset)",
        )
    )
    # Identical results across baseline, indexed, and brute-force paths.
    assert indexed_result.certificates() == baseline_certificates
    assert brute_result.certificates() == indexed_result.certificates()
    assert [fp.support for fp in brute_result.frequent] == [
        fp.support for fp in indexed_result.frequent
    ]
    assert speedup >= 2.0, f"indexed mining only {speedup:.2f}x over seed baseline"

    benchmark(indexed_run)


def test_tab4_compact_gate(medium_mining_graph, benchmark, emit):
    """Acceptance gate: compact (CSR) backend >= 1.2x over dict on lazy mining.

    Lazy MNI evaluation is anchored-probe bound — exactly the regime the
    interned-int fast paths target — so the compact core's win shows up
    here rather than in the collector-dominated eager pipeline (observed
    headroom ~1.45x).  Each timed run switches the process backend, which
    invalidates the cached index, so both pipelines pay one index build
    per round: the comparison covers build + mine, the way a cold mining
    session actually runs.  Interleaved min-of-3 pairs, tab4c discipline.
    """
    from repro.index import index_backend, set_index_backend

    params = dict(
        measure="mni",
        min_support=4,
        max_pattern_nodes=4,
        max_pattern_edges=4,
        lazy=True,
    )

    def run_with(backend):
        def run():
            set_index_backend(backend)
            return mine_frequent_patterns(medium_mining_graph, **params)

        return run

    previous = index_backend()
    try:
        dict_run = run_with("dict")
        compact_run = run_with("compact")
        t_dict, dict_result, t_compact, compact_result = _best_of_interleaved(
            dict_run, compact_run
        )
        # Identical results — content, order, and search-effort stats.
        assert compact_result.certificates() == dict_result.certificates()
        assert [fp.support for fp in compact_result.frequent] == [
            fp.support for fp in dict_result.frequent
        ]
        assert compact_result.stats.as_dict() == dict_result.stats.as_dict()
        speedup = t_dict / max(t_compact, 1e-9)
        emit(
            format_table(
                ["backend", "time ms", "frequent"],
                [
                    ["dict index", f"{t_dict*1e3:.1f}", dict_result.num_frequent],
                    [
                        "compact (CSR) index",
                        f"{t_compact*1e3:.1f}",
                        compact_result.num_frequent,
                    ],
                    ["speedup", f"{speedup:.2f}x", ""],
                ],
                title="tab4d: compact vs dict index backend (lazy MNI, medium dataset)",
            )
        )
        assert speedup >= 1.2, f"compact backend only {speedup:.2f}x over dict"

        benchmark(compact_run)
    finally:
        set_index_backend(previous)


def test_tab4_medium_parallel_matches_serial(medium_mining_graph, emit):
    """Parallel support evaluation returns byte-identical mining results."""
    kwargs = dict(
        measure="mni", min_support=4, max_pattern_nodes=4, max_pattern_edges=4
    )
    serial = mine_frequent_patterns(medium_mining_graph, **kwargs)
    parallel = mine_frequent_patterns(medium_mining_graph, workers=4, **kwargs)
    assert parallel.certificates() == serial.certificates()
    assert [fp.support for fp in parallel.frequent] == [
        fp.support for fp in serial.frequent
    ]
    assert parallel.stats.as_dict() == serial.stats.as_dict()
    emit(f"parallel(4) == serial on {serial.num_frequent} frequent patterns")


def test_tab4_measure_sweep(mining_graph, benchmark, emit):
    rows = []
    results = {}
    for measure in MEASURES:
        start = time.perf_counter()
        result = mine_frequent_patterns(
            mining_graph,
            measure=measure,
            min_support=5,
            max_pattern_nodes=4,
            max_pattern_edges=4,
        )
        elapsed = time.perf_counter() - start
        results[measure] = result
        rows.append(
            [
                measure,
                result.num_frequent,
                result.stats.patterns_evaluated,
                result.stats.patterns_pruned,
                f"{elapsed*1e3:.1f}",
            ]
        )
    emit(
        format_table(
            ["measure", "frequent", "evaluated", "pruned", "time ms"],
            rows,
            title="tab4: mining with each measure (min_support = 5)",
        )
    )
    # Nesting: smaller measures admit fewer frequent patterns.
    mis_set = set(results["mis"].certificates())
    mvc_set = set(results["mvc"].certificates())
    mi_set = set(results["mi"].certificates())
    mni_set = set(results["mni"].certificates())
    assert mis_set <= mvc_set <= mi_set <= mni_set

    benchmark(
        lambda: mine_frequent_patterns(
            mining_graph, measure="mi", min_support=3,
            max_pattern_nodes=4, max_pattern_edges=4,
        )
    )


def test_tab4_threshold_sweep(mining_graph, benchmark, emit):
    rows = []
    previous = None
    for threshold in (2, 3, 5, 8):
        result = mine_frequent_patterns(
            mining_graph,
            measure="mni",
            min_support=threshold,
            max_pattern_nodes=4,
            max_pattern_edges=4,
        )
        rows.append([threshold, result.num_frequent, result.max_pattern_edges()])
        if previous is not None:
            assert set(result.certificates()) <= previous
        previous = set(result.certificates())
    emit(
        format_table(
            ["min_support", "frequent patterns", "max pattern edges"],
            rows,
            title="tab4b: threshold sweep under MNI",
        )
    )

    benchmark(
        lambda: mine_frequent_patterns(
            mining_graph, measure="mni", min_support=8,
            max_pattern_nodes=4, max_pattern_edges=4,
        )
    )


def test_tab4_benchmark_mni_mining(mining_graph, benchmark):
    benchmark(
        lambda: mine_frequent_patterns(
            mining_graph,
            measure="mni",
            min_support=3,
            max_pattern_nodes=4,
            max_pattern_edges=4,
        )
    )


def test_tab4_benchmark_mis_mining(mining_graph, benchmark):
    benchmark(
        lambda: mine_frequent_patterns(
            mining_graph,
            measure="mis",
            min_support=3,
            max_pattern_nodes=4,
            max_pattern_edges=4,
        )
    )
