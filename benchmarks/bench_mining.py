"""tab4 — mining throughput and result size per measure, threshold sweep.

Regenerates the mining experiment: for each support measure, the number of
frequent patterns and search effort at several thresholds.  Expected
shape: pointwise measure ordering (MIS <= MVC <= MI <= MNI) makes the
frequent sets *nested* at any fixed threshold, and higher thresholds
shrink every set.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis.report import format_table
from repro.datasets.synthetic import planted_pattern_graph
from repro.graph.builders import path_pattern, star_pattern
from repro.mining.miner import mine_frequent_patterns

MEASURES = ("mis", "mvc", "mi", "mni")


@pytest.fixture(scope="module")
def mining_graph():
    # Heavy welding makes the measures genuinely diverge: many occurrences
    # share vertices, so MIS/MVC prune much harder than MI/MNI.
    pattern = star_pattern("A", ["B", "B"])
    graph = planted_pattern_graph(
        pattern,
        num_copies=14,
        overlap_fraction=0.75,
        background_vertices=6,
        background_edge_probability=0.2,
        seed=13,
        name="mining-workload",
    )
    chain = path_pattern(["A", "B", "C"])
    welded = planted_pattern_graph(chain, num_copies=8, overlap_fraction=0.5, seed=29)
    offset = graph.num_vertices + 100
    for vertex in welded.vertices():
        graph.add_vertex(vertex + offset, welded.label_of(vertex))
    for u, v in welded.edges():
        graph.add_edge(u + offset, v + offset)
    return graph


def test_tab4_measure_sweep(mining_graph, benchmark, emit):
    rows = []
    results = {}
    for measure in MEASURES:
        start = time.perf_counter()
        result = mine_frequent_patterns(
            mining_graph,
            measure=measure,
            min_support=5,
            max_pattern_nodes=4,
            max_pattern_edges=4,
        )
        elapsed = time.perf_counter() - start
        results[measure] = result
        rows.append(
            [
                measure,
                result.num_frequent,
                result.stats.patterns_evaluated,
                result.stats.patterns_pruned,
                f"{elapsed*1e3:.1f}",
            ]
        )
    emit(
        format_table(
            ["measure", "frequent", "evaluated", "pruned", "time ms"],
            rows,
            title="tab4: mining with each measure (min_support = 5)",
        )
    )
    # Nesting: smaller measures admit fewer frequent patterns.
    mis_set = set(results["mis"].certificates())
    mvc_set = set(results["mvc"].certificates())
    mi_set = set(results["mi"].certificates())
    mni_set = set(results["mni"].certificates())
    assert mis_set <= mvc_set <= mi_set <= mni_set

    benchmark(
        lambda: mine_frequent_patterns(
            mining_graph, measure="mi", min_support=3,
            max_pattern_nodes=4, max_pattern_edges=4,
        )
    )


def test_tab4_threshold_sweep(mining_graph, benchmark, emit):
    rows = []
    previous = None
    for threshold in (2, 3, 5, 8):
        result = mine_frequent_patterns(
            mining_graph,
            measure="mni",
            min_support=threshold,
            max_pattern_nodes=4,
            max_pattern_edges=4,
        )
        rows.append([threshold, result.num_frequent, result.max_pattern_edges()])
        if previous is not None:
            assert set(result.certificates()) <= previous
        previous = set(result.certificates())
    emit(
        format_table(
            ["min_support", "frequent patterns", "max pattern edges"],
            rows,
            title="tab4b: threshold sweep under MNI",
        )
    )

    benchmark(
        lambda: mine_frequent_patterns(
            mining_graph, measure="mni", min_support=8,
            max_pattern_nodes=4, max_pattern_edges=4,
        )
    )


def test_tab4_benchmark_mni_mining(mining_graph, benchmark):
    benchmark(
        lambda: mine_frequent_patterns(
            mining_graph,
            measure="mni",
            min_support=3,
            max_pattern_nodes=4,
            max_pattern_edges=4,
        )
    )


def test_tab4_benchmark_mis_mining(mining_graph, benchmark):
    benchmark(
        lambda: mine_frequent_patterns(
            mining_graph,
            measure="mis",
            min_support=3,
            max_pattern_nodes=4,
            max_pattern_edges=4,
        )
    )
