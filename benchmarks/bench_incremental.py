"""tab9 (ablation) — incremental machinery vs recomputing from scratch.

Three ablations share this module:

* **tab9** — embedding propagation (:mod:`repro.mining.incremental`) vs
  the recomputing miner: extending the parent's embedding list avoids
  re-running subgraph isomorphism for every candidate;
* **tab9b** — delta-maintained dynamic mining
  (:mod:`repro.mining.dynamic`) vs full re-mining per batch over an
  insertion stream: patching the `GraphIndex` in O(delta) and re-evaluating
  only footprint-affected patterns avoids paying the whole search again
  for every batch.  The speedup gate here is an acceptance criterion —
  the delta path must beat rebuild-per-batch on the medium stream;
* **tab9c** — the same discipline over a **deletion-heavy mixed stream**:
  removals patch the index (splice-out) and shrink supports, so the
  delta path must keep beating rebuild-per-batch when most updates are
  deletions — the gate that pins the O(delta) deletion support;
* **tab9d** — standing-query change notification
  (:mod:`repro.service.subscriptions`) vs re-mining and diffing per
  batch: a threshold subscription's footprint-routed dispatch must emit
  the *identical* event stream a remine+diff client would compute, while
  beating it on wall time — the acceptance gate for the subscription
  subsystem.

Results must be identical in all ablations; wall time and enumeration /
evaluation counts are the ablation.
"""

from __future__ import annotations

import time

import pytest
from stream_workloads import (
    STREAM_PARAMS,
    apply_batch,
    batches,
    churn_stream,
    insertion_stream,
    two_region_base,
)

from repro.analysis.report import format_table
from repro.datasets.synthetic import planted_pattern_graph
from repro.graph.builders import path_pattern, star_pattern
from repro.mining.dynamic import DynamicMiner
from repro.mining.incremental import mine_frequent_patterns_incremental
from repro.mining.miner import mine_frequent_patterns
from repro.mining.standing import StandingSpec, answer_from_result, diff_answer
from repro.service import ResultCache
from repro.service.subscriptions import SubscriptionRegistry

# The ablations time the legacy-kwarg entry points on purpose; the
# deprecation they trigger is expected, not noise.
pytestmark = pytest.mark.filterwarnings(
    "ignore:legacy mining kwargs:DeprecationWarning"
)


@pytest.fixture(scope="module")
def workload():
    pattern = star_pattern("A", ["B", "B"])
    graph = planted_pattern_graph(pattern, num_copies=12, overlap_fraction=0.5, seed=19)
    chain = path_pattern(["B", "A", "B", "A"])
    welded = planted_pattern_graph(chain, num_copies=6, overlap_fraction=0.4, seed=7)
    offset = graph.num_vertices + 50
    for vertex in welded.vertices():
        graph.add_vertex(vertex + offset, welded.label_of(vertex))
    for u, v in welded.edges():
        graph.add_edge(u + offset, v + offset)
    return graph


def test_tab9_incremental_vs_recompute(workload, benchmark, emit):
    rows = []
    for max_nodes in (3, 4):
        start = time.perf_counter()
        baseline = mine_frequent_patterns(
            workload, measure="mni", min_support=3, max_pattern_nodes=max_nodes
        )
        t_base = time.perf_counter() - start

        start = time.perf_counter()
        incremental = mine_frequent_patterns_incremental(
            workload, measure="mni", min_support=3, max_pattern_nodes=max_nodes
        )
        t_inc = time.perf_counter() - start

        assert baseline.certificates() == incremental.certificates()
        rows.append(
            [
                max_nodes,
                baseline.num_frequent,
                baseline.stats.occurrence_enumerations,
                incremental.stats.occurrence_enumerations,
                f"{t_base*1e3:.1f}",
                f"{t_inc*1e3:.1f}",
            ]
        )
    emit(
        format_table(
            [
                "max nodes",
                "frequent",
                "enumerations (recompute)",
                "enumerations (incremental)",
                "recompute ms",
                "incremental ms",
            ],
            rows,
            title="tab9: embedding propagation vs recomputing miner (identical results)",
        )
    )

    benchmark(
        lambda: mine_frequent_patterns_incremental(
            workload, measure="mni", min_support=3, max_pattern_nodes=3
        )
    )


def test_tab9_benchmark_recompute(workload, benchmark):
    benchmark(
        lambda: mine_frequent_patterns(
            workload, measure="mni", min_support=3, max_pattern_nodes=3
        )
    )


# ----------------------------------------------------------------------
# tab9b — delta-maintained dynamic mining vs full re-mine per batch
# (search parameters: stream_workloads.STREAM_PARAMS, shared with tab10d)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def stream_workload():
    """A medium insertion stream over the shared two-region graph.

    The stream only ever touches the sparse D/E region growing as a
    tree, so the delta path re-evaluates a small, cheap
    footprint-affected slice per batch while rebuild-per-batch
    re-enumerates the whole welded bulk every time (generators shared
    with ``bench_partition.py`` via ``stream_workloads``).
    """
    base = two_region_base()
    return base, insertion_stream(base)


def test_tab9b_delta_stream_vs_rebuild_per_batch(stream_workload, benchmark, emit):
    """Acceptance gate: the delta path beats rebuild-per-batch on a medium stream.

    Timed as interleaved min-of-3 pairs (same discipline as the tab4c
    speedup gate) so shared-runner contention degrades both pipelines
    instead of flipping their ratio.  Per-batch results must be identical.
    """
    base, updates = stream_workload
    update_batches = batches(updates, 6)

    def delta_run():
        graph = base.copy()
        miner = DynamicMiner(graph, **STREAM_PARAMS)
        keys = [miner.refresh().certificates()]
        for batch in update_batches:
            apply_batch(graph, batch)
            keys.append(miner.refresh().certificates())
        return keys

    def rebuild_run():
        graph = base.copy()
        keys = [mine_frequent_patterns(graph, **STREAM_PARAMS).certificates()]
        for batch in update_batches:
            apply_batch(graph, batch)
            keys.append(mine_frequent_patterns(graph, **STREAM_PARAMS).certificates())
        return keys

    best_delta = best_rebuild = float("inf")
    delta_keys = rebuild_keys = None
    for _ in range(3):
        start = time.perf_counter()
        rebuild_keys = rebuild_run()
        best_rebuild = min(best_rebuild, time.perf_counter() - start)
        start = time.perf_counter()
        delta_keys = delta_run()
        best_delta = min(best_delta, time.perf_counter() - start)

    assert delta_keys == rebuild_keys  # identical after every batch
    speedup = best_rebuild / max(best_delta, 1e-9)
    emit(
        format_table(
            ["pipeline", "time ms", "batches", "final frequent"],
            [
                [
                    "rebuild per batch",
                    f"{best_rebuild*1e3:.1f}",
                    len(update_batches),
                    len(rebuild_keys[-1]),
                ],
                [
                    "delta-maintained",
                    f"{best_delta*1e3:.1f}",
                    len(update_batches),
                    len(delta_keys[-1]),
                ],
                ["speedup", f"{speedup:.2f}x", "", ""],
            ],
            title="tab9b: delta-maintained dynamic mining vs rebuild-per-batch",
        )
    )
    assert speedup >= 1.3, f"delta path only {speedup:.2f}x over rebuild-per-batch"

    benchmark(delta_run)


def test_tab9d_standing_query_vs_remine_and_diff(stream_workload, benchmark, emit):
    """Acceptance gate: standing-query notification beats remine+diff.

    A client that wants answer *changes* per batch can either hold a
    threshold subscription (footprint-routed dispatch, incremental
    re-evaluation) or re-mine after every batch and diff consecutive
    answers itself.  Both must produce the identical typed event stream
    — same certificates, types, versions, and sequence numbers — and the
    subscription path must win on wall time.  Interleaved min-of-3, as
    in the other gates.
    """
    base, updates = stream_workload
    update_batches = batches(updates, 6)
    spec = StandingSpec.from_kwargs(kind="threshold", **STREAM_PARAMS)

    def standing_run():
        graph = base.copy()
        registry = SubscriptionRegistry(graph, ResultCache())
        try:
            sub = registry.register(spec, version=0)
            stream = []
            for version, batch in enumerate(update_batches, start=1):
                apply_batch(graph, batch)
                registry.dispatch(version)
                stream.extend(sub.poll())
            return stream
        finally:
            registry.close()

    def remine_run():
        graph = base.copy()
        answer = answer_from_result(mine_frequent_patterns(graph, **STREAM_PARAMS))
        stream = []
        seq = 0
        for version, batch in enumerate(update_batches, start=1):
            apply_batch(graph, batch)
            new = answer_from_result(mine_frequent_patterns(graph, **STREAM_PARAMS))
            events, seq = diff_answer(answer, new, version=version, seq_start=seq)
            stream.extend(events)
            answer = new
        return stream

    best_standing = best_remine = float("inf")
    standing_stream = remine_stream = None
    for _ in range(3):
        start = time.perf_counter()
        remine_stream = remine_run()
        best_remine = min(best_remine, time.perf_counter() - start)
        start = time.perf_counter()
        standing_stream = standing_run()
        best_standing = min(best_standing, time.perf_counter() - start)

    assert standing_stream == remine_stream  # identical typed event streams
    speedup = best_remine / max(best_standing, 1e-9)
    emit(
        format_table(
            ["pipeline", "time ms", "batches", "events"],
            [
                [
                    "remine + diff per batch",
                    f"{best_remine * 1e3:.1f}",
                    len(update_batches),
                    len(remine_stream),
                ],
                [
                    "standing subscription",
                    f"{best_standing * 1e3:.1f}",
                    len(update_batches),
                    len(standing_stream),
                ],
                ["speedup", f"{speedup:.2f}x", "", ""],
            ],
            title="tab9d: standing-query notification vs remine+diff per batch",
        )
    )
    assert speedup >= 1.3, f"standing path only {speedup:.2f}x over remine+diff"

    benchmark(standing_run)


def test_tab9b_benchmark_rebuild_per_batch(stream_workload, benchmark):
    base, updates = stream_workload
    update_batches = batches(updates, 6)

    def rebuild_run():
        graph = base.copy()
        results = [mine_frequent_patterns(graph, **STREAM_PARAMS)]
        for batch in update_batches:
            apply_batch(graph, batch)
            results.append(mine_frequent_patterns(graph, **STREAM_PARAMS))
        return results

    benchmark(rebuild_run)


# ----------------------------------------------------------------------
# tab9c — deletion-heavy mixed stream: delta maintenance vs rebuild
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def churn_workload(stream_workload):
    """A deletion-heavy mixed stream over the tab9b two-region graph.

    Reuses the stream workload's base (expensive welded A/B/C bulk plus a
    sparse D/E growth region) but the updates now churn: growth then
    twice as many deletions, all confined to the sparse region — see
    ``stream_workloads.churn_stream`` (shared with the tab10d gate).
    """
    base, _ = stream_workload
    return churn_stream(base)


def test_tab9c_deletion_stream_vs_rebuild_per_batch(churn_workload, benchmark, emit):
    """Acceptance gate: O(delta) deletions beat rebuild-per-batch.

    Same interleaved min-of-3 discipline as tab9b; per-batch results must
    be identical between the delta-maintained miner and a full re-mine.
    """
    base, updates = churn_workload
    update_batches = batches(updates, 6)

    def delta_run():
        graph = base.copy()
        miner = DynamicMiner(graph, **STREAM_PARAMS)
        keys = [miner.refresh().certificates()]
        for batch in update_batches:
            apply_batch(graph, batch)
            keys.append(miner.refresh().certificates())
        return keys

    def rebuild_run():
        graph = base.copy()
        keys = [mine_frequent_patterns(graph, **STREAM_PARAMS).certificates()]
        for batch in update_batches:
            apply_batch(graph, batch)
            keys.append(mine_frequent_patterns(graph, **STREAM_PARAMS).certificates())
        return keys

    best_delta = best_rebuild = float("inf")
    delta_keys = rebuild_keys = None
    for _ in range(3):
        start = time.perf_counter()
        rebuild_keys = rebuild_run()
        best_rebuild = min(best_rebuild, time.perf_counter() - start)
        start = time.perf_counter()
        delta_keys = delta_run()
        best_delta = min(best_delta, time.perf_counter() - start)

    assert delta_keys == rebuild_keys  # identical after every batch
    speedup = best_rebuild / max(best_delta, 1e-9)
    deletions = sum(1 for update in updates if update[0] in ("de", "dv"))
    emit(
        format_table(
            ["pipeline", "time ms", "batches", "deletions", "final frequent"],
            [
                [
                    "rebuild per batch",
                    f"{best_rebuild * 1e3:.1f}",
                    len(update_batches),
                    deletions,
                    len(rebuild_keys[-1]),
                ],
                [
                    "delta-maintained",
                    f"{best_delta * 1e3:.1f}",
                    len(update_batches),
                    deletions,
                    len(delta_keys[-1]),
                ],
                ["speedup", f"{speedup:.2f}x", "", "", ""],
            ],
            title="tab9c: delta maintenance vs rebuild on a deletion-heavy stream",
        )
    )
    assert speedup >= 1.3, f"delta path only {speedup:.2f}x over rebuild-per-batch"

    benchmark(delta_run)
