"""tab9 (ablation) — incremental machinery vs recomputing from scratch.

Three ablations share this module:

* **tab9** — embedding propagation (:mod:`repro.mining.incremental`) vs
  the recomputing miner: extending the parent's embedding list avoids
  re-running subgraph isomorphism for every candidate;
* **tab9b** — delta-maintained dynamic mining
  (:mod:`repro.mining.dynamic`) vs full re-mining per batch over an
  insertion stream: patching the `GraphIndex` in O(delta) and re-evaluating
  only footprint-affected patterns avoids paying the whole search again
  for every batch.  The speedup gate here is an acceptance criterion —
  the delta path must beat rebuild-per-batch on the medium stream;
* **tab9c** — the same discipline over a **deletion-heavy mixed stream**:
  removals patch the index (splice-out) and shrink supports, so the
  delta path must keep beating rebuild-per-batch when most updates are
  deletions — the gate that pins the O(delta) deletion support.

Results must be identical in all ablations; wall time and enumeration /
evaluation counts are the ablation.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis.report import format_table
from repro.datasets.synthetic import planted_pattern_graph, random_labeled_graph
from repro.graph.builders import path_pattern, star_pattern
from repro.mining.dynamic import DynamicMiner, apply_update
from repro.mining.incremental import mine_frequent_patterns_incremental
from repro.mining.miner import mine_frequent_patterns


@pytest.fixture(scope="module")
def workload():
    pattern = star_pattern("A", ["B", "B"])
    graph = planted_pattern_graph(pattern, num_copies=12, overlap_fraction=0.5, seed=19)
    chain = path_pattern(["B", "A", "B", "A"])
    welded = planted_pattern_graph(chain, num_copies=6, overlap_fraction=0.4, seed=7)
    offset = graph.num_vertices + 50
    for vertex in welded.vertices():
        graph.add_vertex(vertex + offset, welded.label_of(vertex))
    for u, v in welded.edges():
        graph.add_edge(u + offset, v + offset)
    return graph


def test_tab9_incremental_vs_recompute(workload, benchmark, emit):
    rows = []
    for max_nodes in (3, 4):
        start = time.perf_counter()
        baseline = mine_frequent_patterns(
            workload, measure="mni", min_support=3, max_pattern_nodes=max_nodes
        )
        t_base = time.perf_counter() - start

        start = time.perf_counter()
        incremental = mine_frequent_patterns_incremental(
            workload, measure="mni", min_support=3, max_pattern_nodes=max_nodes
        )
        t_inc = time.perf_counter() - start

        assert baseline.certificates() == incremental.certificates()
        rows.append(
            [
                max_nodes,
                baseline.num_frequent,
                baseline.stats.occurrence_enumerations,
                incremental.stats.occurrence_enumerations,
                f"{t_base*1e3:.1f}",
                f"{t_inc*1e3:.1f}",
            ]
        )
    emit(
        format_table(
            [
                "max nodes",
                "frequent",
                "enumerations (recompute)",
                "enumerations (incremental)",
                "recompute ms",
                "incremental ms",
            ],
            rows,
            title="tab9: embedding propagation vs recomputing miner (identical results)",
        )
    )

    benchmark(
        lambda: mine_frequent_patterns_incremental(
            workload, measure="mni", min_support=3, max_pattern_nodes=3
        )
    )


def test_tab9_benchmark_recompute(workload, benchmark):
    benchmark(
        lambda: mine_frequent_patterns(
            workload, measure="mni", min_support=3, max_pattern_nodes=3
        )
    )


# ----------------------------------------------------------------------
# tab9b — delta-maintained dynamic mining vs full re-mine per batch
# ----------------------------------------------------------------------

STREAM_PARAMS = dict(
    measure="mni", min_support=3, max_pattern_nodes=4, max_pattern_edges=4
)


@pytest.fixture(scope="module")
def stream_workload():
    """A medium insertion stream over a two-region graph.

    The stable region (heavily welded planted A-(B,C) stars plus welded
    A-B-A-C chains) carries the expensive bulk of the frequent patterns;
    the stream only ever touches a sparse D/E region growing as a tree,
    so the delta path re-evaluates a small, cheap footprint-affected
    slice per batch while rebuild-per-batch re-enumerates the whole
    welded bulk every time.
    """
    import random

    base = planted_pattern_graph(
        star_pattern("A", ["B", "C"]),
        num_copies=60,
        overlap_fraction=0.55,
        background_vertices=40,
        background_edge_probability=0.05,
        seed=61,
        name="stream-base",
    )
    chain = path_pattern(["A", "B", "A", "C"])
    welded = planted_pattern_graph(chain, num_copies=40, overlap_fraction=0.45, seed=57)
    offset = base.num_vertices + 1000
    for vertex in welded.vertices():
        base.add_vertex(vertex + offset, welded.label_of(vertex))
    for u, v in welded.edges():
        base.add_edge(u + offset, v + offset)
    growth = random_labeled_graph(8, 0.25, alphabet=("D", "E"), seed=67)
    offset2 = offset + 10000
    for vertex in growth.vertices():
        base.add_vertex(vertex + offset2, growth.label_of(vertex))
    for u, v in growth.edges():
        base.add_edge(u + offset2, v + offset2)
    base.add_edge(0, offset2)  # stitch the regions

    rng = random.Random(71)
    growth_vertices = [vertex + offset2 for vertex in growth.vertices()]
    updates = []
    serial = 0
    while len(updates) < 48:
        # Tree-shaped growth: every new D/E vertex hangs off an existing
        # one, keeping the affected region sparse (cheap to re-evaluate).
        vertex = f"g{serial}"
        serial += 1
        updates.append(("v", vertex, rng.choice("DE")))
        updates.append(("e", rng.choice(growth_vertices), vertex))
        growth_vertices.append(vertex)
    return base, updates


def _batches(updates, size):
    return [updates[start : start + size] for start in range(0, len(updates), size)]


def _apply_batch(graph, batch):
    for update in batch:
        apply_update(graph, update)


def test_tab9b_delta_stream_vs_rebuild_per_batch(stream_workload, benchmark, emit):
    """Acceptance gate: the delta path beats rebuild-per-batch on a medium stream.

    Timed as interleaved min-of-3 pairs (same discipline as the tab4c
    speedup gate) so shared-runner contention degrades both pipelines
    instead of flipping their ratio.  Per-batch results must be identical.
    """
    base, updates = stream_workload
    batches = _batches(updates, 6)

    def delta_run():
        graph = base.copy()
        miner = DynamicMiner(graph, **STREAM_PARAMS)
        keys = [miner.refresh().certificates()]
        for batch in batches:
            _apply_batch(graph, batch)
            keys.append(miner.refresh().certificates())
        return keys

    def rebuild_run():
        graph = base.copy()
        keys = [mine_frequent_patterns(graph, **STREAM_PARAMS).certificates()]
        for batch in batches:
            _apply_batch(graph, batch)
            keys.append(mine_frequent_patterns(graph, **STREAM_PARAMS).certificates())
        return keys

    best_delta = best_rebuild = float("inf")
    delta_keys = rebuild_keys = None
    for _ in range(3):
        start = time.perf_counter()
        rebuild_keys = rebuild_run()
        best_rebuild = min(best_rebuild, time.perf_counter() - start)
        start = time.perf_counter()
        delta_keys = delta_run()
        best_delta = min(best_delta, time.perf_counter() - start)

    assert delta_keys == rebuild_keys  # identical after every batch
    speedup = best_rebuild / max(best_delta, 1e-9)
    emit(
        format_table(
            ["pipeline", "time ms", "batches", "final frequent"],
            [
                [
                    "rebuild per batch",
                    f"{best_rebuild*1e3:.1f}",
                    len(batches),
                    len(rebuild_keys[-1]),
                ],
                [
                    "delta-maintained",
                    f"{best_delta*1e3:.1f}",
                    len(batches),
                    len(delta_keys[-1]),
                ],
                ["speedup", f"{speedup:.2f}x", "", ""],
            ],
            title="tab9b: delta-maintained dynamic mining vs rebuild-per-batch",
        )
    )
    assert speedup >= 1.3, f"delta path only {speedup:.2f}x over rebuild-per-batch"

    benchmark(delta_run)


def test_tab9b_benchmark_rebuild_per_batch(stream_workload, benchmark):
    base, updates = stream_workload
    batches = _batches(updates, 6)

    def rebuild_run():
        graph = base.copy()
        results = [mine_frequent_patterns(graph, **STREAM_PARAMS)]
        for batch in batches:
            _apply_batch(graph, batch)
            results.append(mine_frequent_patterns(graph, **STREAM_PARAMS))
        return results

    benchmark(rebuild_run)


# ----------------------------------------------------------------------
# tab9c — deletion-heavy mixed stream: delta maintenance vs rebuild
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def churn_workload(stream_workload):
    """A deletion-heavy mixed stream over the tab9b two-region graph.

    Reuses the stream workload's base (expensive welded A/B/C bulk plus a
    sparse D/E growth region) but the updates now churn: a short growth
    phase inserts new D/E leaves, then the stream deletes twice as many
    edges as it inserted — every leaf edge it grew plus pre-existing
    edges of the D/E region (leaf-first, so removals never strand a
    vertex with unseen incident edges).  All touched label pairs stay in
    the sparse region, so the delta path re-evaluates a small slice per
    batch while rebuild-per-batch re-mines the welded bulk every time.
    """
    import random

    base, _ = stream_workload
    graph = base.copy()
    rng = random.Random(83)
    growth_vertices = [v for v in graph.vertices() if graph.label_of(v) in ("D", "E")]
    updates = []
    inserted = []
    serial = 0
    for _ in range(12):
        vertex = f"c{serial}"
        serial += 1
        parent = rng.choice(growth_vertices)
        updates.append(("v", vertex, rng.choice("DE")))
        updates.append(("e", parent, vertex))
        inserted.append((parent, vertex))
        growth_vertices.append(vertex)
    # Deletion phase: drop every inserted leaf edge (newest first), then
    # prune pre-existing D/E region edges leaf-first.
    for parent, vertex in reversed(inserted):
        updates.append(("de", parent, vertex))
        updates.append(("dv", vertex))
    region = {v for v in graph.vertices() if graph.label_of(v) in ("D", "E")}
    region_edges = [(u, v) for u, v in graph.edges() if u in region and v in region]
    for u, v in region_edges[: len(inserted)]:
        updates.append(("de", u, v))
    deletions = sum(1 for update in updates if update[0] in ("de", "dv"))
    assert deletions > len(updates) // 2  # deletion-heavy by construction
    return graph, updates


def test_tab9c_deletion_stream_vs_rebuild_per_batch(churn_workload, benchmark, emit):
    """Acceptance gate: O(delta) deletions beat rebuild-per-batch.

    Same interleaved min-of-3 discipline as tab9b; per-batch results must
    be identical between the delta-maintained miner and a full re-mine.
    """
    base, updates = churn_workload
    batches = _batches(updates, 6)

    def delta_run():
        graph = base.copy()
        miner = DynamicMiner(graph, **STREAM_PARAMS)
        keys = [miner.refresh().certificates()]
        for batch in batches:
            _apply_batch(graph, batch)
            keys.append(miner.refresh().certificates())
        return keys

    def rebuild_run():
        graph = base.copy()
        keys = [mine_frequent_patterns(graph, **STREAM_PARAMS).certificates()]
        for batch in batches:
            _apply_batch(graph, batch)
            keys.append(mine_frequent_patterns(graph, **STREAM_PARAMS).certificates())
        return keys

    best_delta = best_rebuild = float("inf")
    delta_keys = rebuild_keys = None
    for _ in range(3):
        start = time.perf_counter()
        rebuild_keys = rebuild_run()
        best_rebuild = min(best_rebuild, time.perf_counter() - start)
        start = time.perf_counter()
        delta_keys = delta_run()
        best_delta = min(best_delta, time.perf_counter() - start)

    assert delta_keys == rebuild_keys  # identical after every batch
    speedup = best_rebuild / max(best_delta, 1e-9)
    deletions = sum(1 for update in updates if update[0] in ("de", "dv"))
    emit(
        format_table(
            ["pipeline", "time ms", "batches", "deletions", "final frequent"],
            [
                [
                    "rebuild per batch",
                    f"{best_rebuild * 1e3:.1f}",
                    len(batches),
                    deletions,
                    len(rebuild_keys[-1]),
                ],
                [
                    "delta-maintained",
                    f"{best_delta * 1e3:.1f}",
                    len(batches),
                    deletions,
                    len(delta_keys[-1]),
                ],
                ["speedup", f"{speedup:.2f}x", "", "", ""],
            ],
            title="tab9c: delta maintenance vs rebuild on a deletion-heavy stream",
        )
    )
    assert speedup >= 1.3, f"delta path only {speedup:.2f}x over rebuild-per-batch"

    benchmark(delta_run)
