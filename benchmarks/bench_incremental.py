"""tab9 (ablation) — embedding propagation vs recomputing miner.

The search-scheme half of the single-graph FSM problem: extending the
parent's embedding list avoids re-running subgraph isomorphism for every
candidate.  Results must be identical; wall time and enumeration counts
are the ablation.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis.report import format_table
from repro.datasets.synthetic import planted_pattern_graph
from repro.graph.builders import path_pattern, star_pattern
from repro.mining.incremental import mine_frequent_patterns_incremental
from repro.mining.miner import mine_frequent_patterns


@pytest.fixture(scope="module")
def workload():
    pattern = star_pattern("A", ["B", "B"])
    graph = planted_pattern_graph(
        pattern, num_copies=12, overlap_fraction=0.5, seed=19
    )
    chain = path_pattern(["B", "A", "B", "A"])
    welded = planted_pattern_graph(chain, num_copies=6, overlap_fraction=0.4, seed=7)
    offset = graph.num_vertices + 50
    for vertex in welded.vertices():
        graph.add_vertex(vertex + offset, welded.label_of(vertex))
    for u, v in welded.edges():
        graph.add_edge(u + offset, v + offset)
    return graph


def test_tab9_incremental_vs_recompute(workload, benchmark, emit):
    rows = []
    for max_nodes in (3, 4):
        start = time.perf_counter()
        baseline = mine_frequent_patterns(
            workload, measure="mni", min_support=3, max_pattern_nodes=max_nodes
        )
        t_base = time.perf_counter() - start

        start = time.perf_counter()
        incremental = mine_frequent_patterns_incremental(
            workload, measure="mni", min_support=3, max_pattern_nodes=max_nodes
        )
        t_inc = time.perf_counter() - start

        assert baseline.certificates() == incremental.certificates()
        rows.append(
            [
                max_nodes,
                baseline.num_frequent,
                baseline.stats.occurrence_enumerations,
                incremental.stats.occurrence_enumerations,
                f"{t_base*1e3:.1f}",
                f"{t_inc*1e3:.1f}",
            ]
        )
    emit(
        format_table(
            [
                "max nodes",
                "frequent",
                "enumerations (recompute)",
                "enumerations (incremental)",
                "recompute ms",
                "incremental ms",
            ],
            rows,
            title="tab9: embedding propagation vs recomputing miner (identical results)",
        )
    )

    benchmark(
        lambda: mine_frequent_patterns_incremental(
            workload, measure="mni", min_support=3, max_pattern_nodes=3
        )
    )


def test_tab9_benchmark_recompute(workload, benchmark):
    benchmark(
        lambda: mine_frequent_patterns(
            workload, measure="mni", min_support=3, max_pattern_nodes=3
        )
    )
