"""tab7 (ablation) — additive component-decomposed solving vs monolithic.

DESIGN.md calls out decomposition as the ablation for the NP-hard solvers:
connected components of the occurrence hypergraph are independent
subproblems, so solving per component and summing must (a) give identical
values and (b) be no slower — usually far faster — on fragmented
workloads.  This regenerates the ablation table.
"""

from __future__ import annotations

import time


from repro.analysis.report import format_table
from repro.datasets.synthetic import planted_pattern_graph
from repro.graph.builders import triangle_pattern
from repro.hypergraph.construction import HypergraphBundle
from repro.measures.decomposition import (
    component_statistics,
    decomposed_mvc_support,
    hypergraph_components,
)
from repro.measures.mvc import mvc_support_of

PATTERN = triangle_pattern("A", "B", "C")


def _workload(overlap: float, copies: int = 14):
    graph = planted_pattern_graph(
        PATTERN, num_copies=copies, overlap_fraction=overlap, seed=41
    )
    return HypergraphBundle.build(PATTERN, graph).occurrence_hg


def test_tab7_decomposition_ablation(benchmark, emit):
    rows = []
    for overlap in (0.0, 0.4, 0.8):
        hypergraph = _workload(overlap)
        stats = component_statistics(hypergraph)

        start = time.perf_counter()
        monolithic = mvc_support_of(hypergraph)
        t_mono = time.perf_counter() - start

        start = time.perf_counter()
        additive = decomposed_mvc_support(hypergraph)
        t_add = time.perf_counter() - start

        assert additive == monolithic  # additivity is exact
        rows.append(
            [
                f"{overlap:.1f}",
                hypergraph.num_edges,
                stats["components"],
                stats["largest_edges"],
                monolithic,
                f"{t_mono*1e3:.2f}",
                f"{t_add*1e3:.2f}",
            ]
        )
    emit(
        format_table(
            [
                "overlap",
                "edges",
                "components",
                "largest",
                "MVC",
                "monolithic ms",
                "additive ms",
            ],
            rows,
            title="tab7: additive decomposition ablation (values identical)",
        )
    )

    hypergraph = _workload(0.4)
    benchmark(lambda: decomposed_mvc_support(hypergraph))


def test_tab7_benchmark_component_split(benchmark):
    hypergraph = _workload(0.4)
    benchmark(lambda: hypergraph_components(hypergraph))


def test_tab7_benchmark_monolithic(benchmark):
    hypergraph = _workload(0.4)
    benchmark(lambda: mvc_support_of(hypergraph))
