"""tab5 — approximation quality of the MVC algorithms (Section 3.3).

On a k-uniform occurrence hypergraph the greedy maximal-matching cover and
the LP-rounded cover are both k-approximations.  This benchmark measures
the *empirical* ratios across workloads and asserts the guarantee.
Expected shape: ratios are 1.0 on disjoint workloads, and never exceed k.
"""

from __future__ import annotations


from repro.analysis.report import format_table
from repro.datasets.synthetic import planted_pattern_graph, random_labeled_graph
from repro.datasets.zoo import zoo_graph
from repro.graph.builders import path_pattern, triangle_pattern
from repro.graph.pattern import Pattern
from repro.hypergraph.construction import HypergraphBundle
from repro.measures.mvc import (
    greedy_vertex_cover,
    is_vertex_cover,
    lp_rounded_vertex_cover,
    minimum_vertex_cover,
)

WORKLOADS = [
    ("fan/triangle", lambda: zoo_graph("triangle_fan"), triangle_pattern("a")),
    (
        "disjoint/triangle",
        lambda: zoo_graph("disjoint_triangles"),
        triangle_pattern("a"),
    ),
    ("star/edge", lambda: zoo_graph("star"), Pattern.single_edge("a", "a")),
    (
        "er/path3",
        lambda: random_labeled_graph(16, 0.2, alphabet=("A", "B"), seed=8),
        path_pattern(["A", "B", "A"]),
    ),
    (
        "welded/triangle",
        lambda: planted_pattern_graph(
            triangle_pattern("A", "B", "C"), num_copies=10, overlap_fraction=0.7, seed=4
        ),
        triangle_pattern("A", "B", "C"),
    ),
]


def test_tab5_approximation_quality(benchmark, emit):
    rows = []
    for name, build, pattern in WORKLOADS:
        graph = build()
        bundle = HypergraphBundle.build(pattern, graph)
        hypergraph = bundle.occurrence_hg
        if hypergraph.num_edges == 0:
            continue
        k = hypergraph.uniformity()
        exact = len(minimum_vertex_cover(hypergraph))
        greedy = greedy_vertex_cover(hypergraph)
        rounded = lp_rounded_vertex_cover(hypergraph)

        assert is_vertex_cover(hypergraph, greedy)
        assert is_vertex_cover(hypergraph, rounded)
        greedy_ratio = len(greedy) / exact
        rounded_ratio = len(rounded) / exact
        # The k-approximation guarantee.
        assert greedy_ratio <= k + 1e-9
        assert rounded_ratio <= k + 1e-9

        rows.append(
            [
                name,
                k,
                exact,
                len(greedy),
                f"{greedy_ratio:.2f}",
                len(rounded),
                f"{rounded_ratio:.2f}",
            ]
        )
    emit(
        format_table(
            ["workload", "k", "MVC*", "greedy", "ratio", "LP-round", "ratio"],
            rows,
            title="tab5: MVC approximation quality (guarantee: ratio <= k)",
        )
    )

    graph = zoo_graph("triangle_fan")
    bundle = HypergraphBundle.build(triangle_pattern("a"), graph)
    benchmark(lambda: lp_rounded_vertex_cover(bundle.occurrence_hg))


def test_tab5_disjoint_ratio_for_lp_round_is_1(benchmark):
    pattern = triangle_pattern("A", "B", "C")
    graph = planted_pattern_graph(pattern, num_copies=6, overlap_fraction=0.0, seed=2)
    bundle = HypergraphBundle.build(pattern, graph)
    exact = len(minimum_vertex_cover(bundle.occurrence_hg))
    # On disjoint edges LP sets x = 1/k per vertex... rounding keeps all;
    # greedy also takes all k vertices per edge.  The *exact* solver must
    # hit one per edge.
    assert exact == 6
    benchmark(lambda: minimum_vertex_cover(bundle.occurrence_hg))


def test_tab5_benchmark_exact(benchmark):
    graph = zoo_graph("triangle_fan")
    bundle = HypergraphBundle.build(triangle_pattern("a"), graph)
    benchmark(lambda: minimum_vertex_cover(bundle.occurrence_hg))


def test_tab5_benchmark_greedy(benchmark):
    graph = zoo_graph("triangle_fan")
    bundle = HypergraphBundle.build(triangle_pattern("a"), graph)
    benchmark(lambda: greedy_vertex_cover(bundle.occurrence_hg))


def test_tab5_benchmark_lp_rounding(benchmark):
    graph = zoo_graph("triangle_fan")
    bundle = HypergraphBundle.build(triangle_pattern("a"), graph)
    benchmark(lambda: lp_rounded_vertex_cover(bundle.occurrence_hg))
