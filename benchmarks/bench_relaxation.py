"""tab3 — LP relaxation tightness (Section 4.3 / Theorem 4.6).

For hypergraphs of varying overlap density, measures the sandwich

    sigma_MIES <= nu_MIES = nu_MVC <= sigma_MVC

and reports the integrality gaps on both sides.  Expected shape: the
duality equality holds exactly everywhere; gaps are zero on disjoint
workloads and grow with overlap, but nu always stays within the k-factor
of both integral optima (k-uniform LP bound).
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table
from repro.datasets.synthetic import planted_pattern_graph
from repro.graph.builders import triangle_pattern
from repro.hypergraph.construction import HypergraphBundle
from repro.measures.mies import mies_support_of
from repro.measures.mvc import mvc_support_of
from repro.measures.relaxations import lp_mies_support_of, lp_mvc_support_of

PATTERN = triangle_pattern("A", "B", "C")


def _bundle_for(overlap: float):
    graph = planted_pattern_graph(
        PATTERN, num_copies=10, overlap_fraction=overlap, seed=31
    )
    return HypergraphBundle.build(PATTERN, graph)


def test_tab3_relaxation_tightness(benchmark, emit):
    rows = []
    for overlap in (0.0, 0.3, 0.6, 0.9):
        bundle = _bundle_for(overlap)
        hypergraph = bundle.occurrence_hg
        mies = mies_support_of(hypergraph)
        mvc = mvc_support_of(hypergraph)
        nu_cover = lp_mvc_support_of(hypergraph)
        nu_packing = lp_mies_support_of(hypergraph)

        # Theorem 4.6: duality equality + sandwich.
        assert nu_cover == pytest.approx(nu_packing, abs=1e-5)
        assert mies <= nu_packing + 1e-6
        assert nu_cover <= mvc + 1e-6
        # k-uniform LP bound: nu >= mvc / k.
        k = hypergraph.uniformity() or 1
        assert nu_cover >= mvc / k - 1e-6

        rows.append(
            [
                f"{overlap:.1f}",
                hypergraph.num_edges,
                mies,
                f"{nu_packing:.3f}",
                mvc,
                f"{nu_packing - mies:.3f}",
                f"{mvc - nu_cover:.3f}",
            ]
        )
    emit(
        format_table(
            [
                "overlap",
                "edges",
                "sigma_MIES",
                "nu",
                "sigma_MVC",
                "packing gap",
                "cover gap",
            ],
            rows,
            title="tab3: LP relaxation tightness across overlap density",
        )
    )

    bundle = _bundle_for(0.3)
    benchmark(lambda: lp_mvc_support_of(bundle.occurrence_hg))


def test_tab3_disjoint_gap_is_zero(benchmark):
    bundle = _bundle_for(0.0)
    hypergraph = bundle.occurrence_hg
    nu = lp_mvc_support_of(hypergraph)
    assert nu == pytest.approx(mies_support_of(hypergraph))
    assert nu == pytest.approx(mvc_support_of(hypergraph))
    benchmark(lambda: lp_mvc_support_of(hypergraph))


def test_tab3_benchmark_lp(benchmark):
    bundle = _bundle_for(0.6)
    benchmark(lambda: lp_mvc_support_of(bundle.occurrence_hg))


def test_tab3_benchmark_simplex_backend(benchmark):
    bundle = _bundle_for(0.6)
    benchmark(lambda: lp_mvc_support_of(bundle.occurrence_hg, backend="simplex"))
