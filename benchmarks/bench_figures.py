"""Figures 1-10: regenerate every thesis figure worksheet (experiment ids fig1..fig10).

Each benchmark rebuilds one figure's data graph, recomputes the full measure
spectrum, asserts the pinned values from the thesis, prints the worksheet,
and times the spectrum computation.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_hypergraph, format_occurrence_table
from repro.analysis.spectrum import measure_spectrum, spectrum_report
from repro.datasets.paper_figures import load_figure
from repro.hypergraph.construction import HypergraphBundle
from repro.isomorphism.matcher import find_occurrences
from repro.measures.bounds import chain_values

FIGURE_IDS = [f"fig{i}" for i in range(1, 11)]
SPECIAL_KEYS = {"super_occurrences", "super_mvc", "transitive_subsets"}


@pytest.mark.parametrize("figure_id", FIGURE_IDS)
def test_figure(figure_id, benchmark, emit):
    figure = load_figure(figure_id)
    bundle = HypergraphBundle.build(figure.pattern, figure.data_graph)

    # Assert the thesis-pinned values before timing anything.
    values = chain_values(figure.pattern, figure.data_graph, bundle=bundle)
    for key, want in figure.expected.items():
        if key in SPECIAL_KEYS:
            continue
        assert values[key] == pytest.approx(want), (figure_id, key)

    occurrences = find_occurrences(figure.pattern, figure.data_graph)
    emit(f"{figure_id}: {figure.title}")
    emit(format_occurrence_table(figure.pattern, occurrences))
    emit(format_hypergraph(bundle.occurrence_hg))
    spectrum = measure_spectrum(figure.pattern, figure.data_graph, bundle=bundle)
    emit(spectrum_report(spectrum))

    benchmark(
        lambda: measure_spectrum(figure.pattern, figure.data_graph, bundle=bundle)
    )
