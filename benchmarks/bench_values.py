"""tab1 — measure-value comparison across graphs and patterns.

Regenerates the paper's qualitative value table: for each (graph, pattern)
cell, every measure in the bounding chain.  The assertions check the
orderings the theorems pin down; the printed table is the experiment
record.  Expected shape: MIS <= nu <= MVC <= MI <= MNI in every cell,
with the MNI/MIS ratio growing with overlap density.
"""

from __future__ import annotations


from repro.analysis.report import format_table
from repro.datasets.synthetic import planted_pattern_graph, random_labeled_graph
from repro.datasets.zoo import zoo_graph
from repro.graph.builders import path_pattern, star_pattern, triangle_pattern
from repro.graph.pattern import Pattern
from repro.measures.bounds import chain_values

WORKLOADS = [
    ("fan", lambda: zoo_graph("triangle_fan"), triangle_pattern("a")),
    ("disjoint", lambda: zoo_graph("disjoint_triangles"), triangle_pattern("a")),
    ("star", lambda: zoo_graph("star"), Pattern.single_edge("a", "a")),
    ("bipartite", lambda: zoo_graph("bipartite"), Pattern.single_edge("a", "b")),
    (
        "er-sparse",
        lambda: random_labeled_graph(18, 0.12, alphabet=("A", "B"), seed=5),
        path_pattern(["A", "B"]),
    ),
    (
        "er-dense",
        lambda: random_labeled_graph(14, 0.35, alphabet=("A", "B"), seed=5),
        path_pattern(["A", "B"]),
    ),
    (
        "planted-weld",
        lambda: planted_pattern_graph(
            triangle_pattern("A", "B", "C"), num_copies=8, overlap_fraction=0.6, seed=9
        ),
        triangle_pattern("A", "B", "C"),
    ),
]


def test_tab1_value_comparison(benchmark, emit):
    rows = []
    for name, build, pattern in WORKLOADS:
        graph = build()
        values = chain_values(pattern, graph)
        rows.append(
            [
                name,
                values["occurrences"],
                values["instances"],
                values["mis"],
                values["lp_mvc"],
                values["mvc"],
                values["mi"],
                values["mni"],
                values["mcp"],
            ]
        )
        # The chain must hold in every cell.
        assert values["mis"] <= values["lp_mvc"] + 1e-6
        assert values["lp_mvc"] <= values["mvc"] + 1e-6
        assert values["mvc"] <= values["mi"] <= values["mni"]
        assert values["mis"] <= values["mcp"]

    emit(
        format_table(
            ["workload", "occ", "inst", "MIS", "nu", "MVC", "MI", "MNI", "MCP"],
            rows,
            title="tab1: support measure values across workloads",
        )
    )

    # Benchmark one representative cell end-to-end.
    graph = zoo_graph("triangle_fan")
    pattern = triangle_pattern("a")
    benchmark(lambda: chain_values(pattern, graph))


def test_tab1_gap_grows_with_overlap(benchmark, emit):
    """The MNI/MIS ratio widens as planted copies weld together."""
    pattern = star_pattern("A", ["B", "B"])
    rows = []
    previous_ratio = None
    ratios = []
    for overlap in (0.0, 0.5, 0.9):
        graph = planted_pattern_graph(
            pattern, num_copies=12, overlap_fraction=overlap, seed=3
        )
        values = chain_values(pattern, graph, include_mcp=False)
        ratio = values["mni"] / max(values["mis"], 1.0)
        ratios.append(ratio)
        rows.append([f"{overlap:.1f}", values["mis"], values["mni"], f"{ratio:.2f}x"])
    emit(
        format_table(
            ["overlap fraction", "MIS", "MNI", "MNI/MIS"],
            rows,
            title="tab1b: welding instances widens the MNI/MIS gap",
        )
    )
    assert ratios[-1] >= ratios[0]

    pattern = star_pattern("A", ["B", "B"])
    graph = planted_pattern_graph(pattern, num_copies=12, overlap_fraction=0.9, seed=3)
    benchmark(lambda: chain_values(pattern, graph, include_mcp=False))
