"""tab8 (ablation) — lazy (GraMi-style) vs eager MNI evaluation.

GraMi's central engineering claim is that deciding "support >= t" with
anchored searches beats enumerating all occurrences, and the gap widens
with occurrence count.  This regenerates that comparison on planted
workloads; correctness (lazy == eager) is asserted on every row.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis.report import format_table
from repro.datasets.synthetic import graph_with_occurrence_count
from repro.graph.builders import path_pattern
from repro.isomorphism.matcher import find_occurrences
from repro.measures.lazy_mni import lazy_mni_support, mni_at_least
from repro.measures.mni import mni_support_from_occurrences

PATTERN = path_pattern(["A", "B", "A"])
THRESHOLD = 5


@pytest.fixture(scope="module")
def workloads(bench_scale):
    targets = (60, 200) if bench_scale == "small" else (100, 400, 1600)
    loads = []
    for target in targets:
        graph = graph_with_occurrence_count(
            PATTERN, target, overlap_fraction=0.3, seed=23
        )
        loads.append((target, graph))
    return loads


def test_tab8_lazy_vs_eager(workloads, benchmark, emit):
    rows = []
    for _target, graph in workloads:
        start = time.perf_counter()
        occurrences = find_occurrences(PATTERN, graph)
        eager_value = mni_support_from_occurrences(PATTERN, occurrences)
        t_eager = time.perf_counter() - start

        start = time.perf_counter()
        lazy_decision = mni_at_least(PATTERN, graph, THRESHOLD)
        t_lazy = time.perf_counter() - start

        assert lazy_decision == (eager_value >= THRESHOLD)
        rows.append(
            [
                len(occurrences),
                eager_value,
                f"{t_eager*1e3:.2f}",
                f"{t_lazy*1e3:.2f}",
                f"{t_eager/max(t_lazy, 1e-9):.1f}x",
            ]
        )
    emit(
        format_table(
            [
                "#occurrences",
                "MNI",
                "eager ms (full enumeration)",
                f"lazy ms (>= {THRESHOLD}?)",
                "speedup",
            ],
            rows,
            title="tab8: lazy vs eager MNI evaluation (GraMi strategy)",
        )
    )

    _target, graph = workloads[-1]
    benchmark(lambda: mni_at_least(PATTERN, graph, THRESHOLD))


def test_tab8_lazy_exact_value_agrees(workloads, benchmark):
    _target, graph = workloads[0]
    occurrences = find_occurrences(PATTERN, graph)
    assert lazy_mni_support(PATTERN, graph) == mni_support_from_occurrences(
        PATTERN, occurrences
    )
    benchmark(lambda: lazy_mni_support(PATTERN, graph))


def test_tab8_benchmark_eager(workloads, benchmark):
    _target, graph = workloads[0]

    def eager():
        occurrences = find_occurrences(PATTERN, graph)
        return mni_support_from_occurrences(PATTERN, occurrences)

    benchmark(eager)
