"""Shared update-stream workload generators for the stream benchmarks.

``bench_incremental.py`` (tab9b/tab9c) and ``bench_partition.py``
(tab10d) time maintenance strategies over the same family of workloads:
an expensive *stable* region whose frequent patterns dominate the search,
plus a sparse *churn* region the stream actually touches.  The delta
paths re-evaluate only the cheap touched slice per batch while the
rebuild / re-partition baselines pay for the stable bulk every time —
which is exactly the effect the gates measure.  One generator module
keeps the two benchmark files from drifting apart on workload shape.
"""

from __future__ import annotations

import random

from repro.datasets.synthetic import planted_pattern_graph, random_labeled_graph
from repro.graph.builders import path_pattern, star_pattern
from repro.mining.dynamic import apply_update

#: The tab9-family search parameters every stream gate mines with — one
#: definition, so tab9b/tab9c (bench_incremental) and tab10d
#: (bench_partition) keep measuring the same search over the shared
#: workload.
STREAM_PARAMS = dict(
    measure="mni", min_support=3, max_pattern_nodes=4, max_pattern_edges=4
)


def two_region_base():
    """A medium two-region graph: welded A/B/C bulk + sparse D/E growth region.

    The stable region (heavily welded planted A-(B,C) stars plus welded
    A-B-A-C chains) carries the expensive bulk of the frequent patterns;
    streams built by the generators below only ever touch the sparse D/E
    region, so delta maintenance re-evaluates a small footprint-affected
    slice per batch.
    """
    base = planted_pattern_graph(
        star_pattern("A", ["B", "C"]),
        num_copies=60,
        overlap_fraction=0.55,
        background_vertices=40,
        background_edge_probability=0.05,
        seed=61,
        name="stream-base",
    )
    chain = path_pattern(["A", "B", "A", "C"])
    welded = planted_pattern_graph(chain, num_copies=40, overlap_fraction=0.45, seed=57)
    offset = base.num_vertices + 1000
    for vertex in welded.vertices():
        base.add_vertex(vertex + offset, welded.label_of(vertex))
    for u, v in welded.edges():
        base.add_edge(u + offset, v + offset)
    growth = random_labeled_graph(8, 0.25, alphabet=("D", "E"), seed=67)
    offset2 = offset + 10000
    for vertex in growth.vertices():
        base.add_vertex(vertex + offset2, growth.label_of(vertex))
    for u, v in growth.edges():
        base.add_edge(u + offset2, v + offset2)
    base.add_edge(0, offset2)  # stitch the regions
    return base


def insertion_stream(base, count: int = 48, seed: int = 71):
    """Tree-shaped D/E growth: ``count`` updates hanging new leaves.

    Every new D/E vertex hangs off an existing one, keeping the affected
    region sparse (cheap to re-evaluate).
    """
    rng = random.Random(seed)
    growth_vertices = [
        vertex for vertex in base.vertices() if base.label_of(vertex) in ("D", "E")
    ]
    updates = []
    serial = 0
    while len(updates) < count:
        vertex = f"g{serial}"
        serial += 1
        updates.append(("v", vertex, rng.choice("DE")))
        updates.append(("e", rng.choice(growth_vertices), vertex))
        growth_vertices.append(vertex)
    return updates


def churn_stream(base, grow: int = 12, seed: int = 83):
    """A deletion-heavy mixed stream over a copy of ``base``.

    A short growth phase inserts ``grow`` new D/E leaves, then the stream
    deletes twice as many edges as it inserted — every leaf edge it grew
    plus pre-existing edges of the D/E region (leaf-first, so removals
    never strand a vertex with unseen incident edges).  All touched label
    pairs stay in the sparse region.  Returns ``(graph, updates)`` where
    ``graph`` is the private copy the updates were authored against.
    """
    graph = base.copy()
    rng = random.Random(seed)
    growth_vertices = [
        v for v in graph.vertices() if graph.label_of(v) in ("D", "E")
    ]
    updates = []
    inserted = []
    serial = 0
    for _ in range(grow):
        vertex = f"c{serial}"
        serial += 1
        parent = rng.choice(growth_vertices)
        updates.append(("v", vertex, rng.choice("DE")))
        updates.append(("e", parent, vertex))
        inserted.append((parent, vertex))
        growth_vertices.append(vertex)
    # Deletion phase: drop every inserted leaf edge (newest first), then
    # prune pre-existing D/E region edges leaf-first.
    for parent, vertex in reversed(inserted):
        updates.append(("de", parent, vertex))
        updates.append(("dv", vertex))
    region = {v for v in graph.vertices() if graph.label_of(v) in ("D", "E")}
    region_edges = [(u, v) for u, v in graph.edges() if u in region and v in region]
    for u, v in region_edges[: len(inserted)]:
        updates.append(("de", u, v))
    deletions = sum(1 for update in updates if update[0] in ("de", "dv"))
    assert deletions > len(updates) // 2  # deletion-heavy by construction
    return graph, updates


def batches(updates, size: int):
    """Split an update list into contiguous batches of ``size``."""
    return [updates[start : start + size] for start in range(0, len(updates), size)]


def apply_batch(graph, batch):
    """Apply one batch of parsed update ops to ``graph``."""
    for update in batch:
        apply_update(graph, update)
