"""tab2 — runtime scaling vs. number of occurrences.

The paper's complexity claims: MNI and MI are linear in the occurrence
count; the LP relaxations are polynomial; exact MVC/MIS are NP-hard (their
B&B cost explodes with overlap).  This benchmark measures wall time of each
measure on planted graphs indexed by occurrence count and asserts the
*shape*: the linear measures' per-occurrence cost stays roughly flat, and
the exact solvers are never faster than the linear ones by more than noise.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis.report import format_table
from repro.datasets.synthetic import graph_with_occurrence_count
from repro.graph.builders import path_pattern
from repro.hypergraph.construction import HypergraphBundle
from repro.hypergraph.overlap import instance_overlap_graph
from repro.measures.mi import mi_support_from_occurrences
from repro.measures.mni import mni_support_from_occurrences
from repro.measures.mvc import mvc_support_of
from repro.measures.mis import mis_support_of
from repro.measures.relaxations import lp_mvc_support_of

PATTERN = path_pattern(["A", "B", "A"])


def _time(func) -> float:
    start = time.perf_counter()
    func()
    return time.perf_counter() - start


@pytest.fixture(scope="module")
def workloads(bench_scale):
    targets = (50, 150, 400) if bench_scale == "small" else (100, 400, 1600, 6400)
    loads = []
    for target in targets:
        graph = graph_with_occurrence_count(
            PATTERN, target, overlap_fraction=0.3, seed=17
        )
        bundle = HypergraphBundle.build(PATTERN, graph)
        loads.append((target, graph, bundle))
    return loads


def test_tab2_runtime_scaling(workloads, benchmark, emit):
    rows = []
    linear_per_occurrence = []
    for target, graph, bundle in workloads:
        occurrences = bundle.occurrences
        t_mni = _time(lambda: mni_support_from_occurrences(PATTERN, occurrences))
        t_mi = _time(lambda: mi_support_from_occurrences(PATTERN, occurrences))
        t_lp = _time(lambda: lp_mvc_support_of(bundle.occurrence_hg))
        t_mvc = _time(lambda: mvc_support_of(bundle.occurrence_hg))
        t_mis = _time(
            lambda: mis_support_of(instance_overlap_graph(bundle.instances))
        )
        m = bundle.num_occurrences
        linear_per_occurrence.append(t_mni / m)
        rows.append(
            [
                m,
                f"{t_mni*1e3:.2f}",
                f"{t_mi*1e3:.2f}",
                f"{t_lp*1e3:.2f}",
                f"{t_mvc*1e3:.2f}",
                f"{t_mis*1e3:.2f}",
            ]
        )
    emit(
        format_table(
            ["#occurrences", "MNI ms", "MI ms", "nu_MVC ms", "MVC ms", "MIS ms"],
            rows,
            title="tab2: measure runtime vs occurrence count",
        )
    )
    # Linear shape check: per-occurrence MNI cost must not blow up by more
    # than ~25x across the sweep (generous bound for timer noise on small runs).
    assert max(linear_per_occurrence) <= 25 * min(linear_per_occurrence) + 1e-4

    _t, _g, bundle = workloads[0]
    benchmark(lambda: mni_support_from_occurrences(PATTERN, bundle.occurrences))


def test_tab2_benchmark_mni(workloads, benchmark):
    _target, _graph, bundle = workloads[-1]
    benchmark(lambda: mni_support_from_occurrences(PATTERN, bundle.occurrences))


def test_tab2_benchmark_mi(workloads, benchmark):
    _target, _graph, bundle = workloads[-1]
    benchmark(lambda: mi_support_from_occurrences(PATTERN, bundle.occurrences))


def test_tab2_benchmark_lp(workloads, benchmark):
    _target, _graph, bundle = workloads[0]
    benchmark(lambda: lp_mvc_support_of(bundle.occurrence_hg))


def test_tab2_benchmark_mvc(workloads, benchmark):
    _target, _graph, bundle = workloads[0]
    benchmark(lambda: mvc_support_of(bundle.occurrence_hg))
