"""Mining frequent motifs in a synthetic molecular-interaction graph.

The paper's introduction motivates single-graph mining with chemical
compounds and biomolecular structures.  This example builds a synthetic
"molecule-like" labeled graph (carbon/nitrogen/oxygen vertices with planted
ring and chain motifs), then mines it with three different support
measures and shows how the choice of measure changes both the frequent set
and the mining cost.

Run:  python examples/molecule_motifs.py
"""

from repro.analysis import format_table
from repro.datasets import planted_pattern_graph
from repro.graph import cycle_pattern, path_pattern
from repro.mining import mine_frequent_patterns


def build_molecule_graph():
    """Plant C-N-C chains and C-C-O triangles with moderate welding."""
    chain = path_pattern(["C", "N", "C"], name="C-N-C chain")
    graph = planted_pattern_graph(
        chain,
        num_copies=8,
        overlap_fraction=0.4,
        seed=11,
        name="molecule",
    )
    # Weld some rings onto existing atoms by planting into the same graph:
    ring = cycle_pattern(["C", "C", "O"], name="C-C-O ring")
    ring_graph = planted_pattern_graph(ring, num_copies=5, overlap_fraction=0.3, seed=23)
    offset = graph.num_vertices
    for vertex in ring_graph.vertices():
        graph.add_vertex(vertex + offset, ring_graph.label_of(vertex))
    for u, v in ring_graph.edges():
        graph.add_edge(u + offset, v + offset)
    # A few cross-links between the two regions.
    graph.add_edge(0, offset)
    graph.add_edge(2, offset + 1)
    return graph


def main() -> None:
    graph = build_molecule_graph()
    print(f"molecule graph: {graph.num_vertices} atoms, {graph.num_edges} bonds")
    print(f"label histogram: {graph.label_histogram()}\n")

    rows = []
    results = {}
    for measure in ("mni", "mi", "mis"):
        result = mine_frequent_patterns(
            graph,
            measure=measure,
            min_support=3,
            max_pattern_nodes=4,
            max_pattern_edges=4,
        )
        results[measure] = result
        rows.append(
            [
                measure,
                result.num_frequent,
                result.stats.patterns_evaluated,
                result.stats.patterns_pruned,
                result.max_pattern_edges(),
            ]
        )

    print(
        format_table(
            ["measure", "frequent", "evaluated", "pruned", "max edges"],
            rows,
            title="mining the molecule graph (min_support = 3)",
        )
    )

    print(
        "\nMNI over-counts, so it keeps the most patterns; MIS counts only "
        "independent instances, so it prunes hardest:"
    )
    mis_set = set(results["mis"].certificates())
    mni_set = set(results["mni"].certificates())
    print(f"  MIS-frequent is a subset of MNI-frequent: {mis_set <= mni_set}")
    print(f"  patterns frequent under MNI but not MIS: {len(mni_set - mis_set)}")

    print("\nLargest frequent motifs under MIS:")
    largest = [
        fp for fp in results["mis"].frequent
        if fp.num_edges == results["mis"].max_pattern_edges()
    ]
    for fp in largest:
        labels = [fp.pattern.label_of(n) for n in fp.pattern.nodes()]
        print(
            f"  {fp.num_nodes} atoms {labels}, {fp.num_edges} bonds, "
            f"support {fp.support:g} ({fp.num_occurrences} occurrences)"
        )


if __name__ == "__main__":
    main()
