"""Exploring simple / harmful / structural overlap (paper Section 4.5).

Rebuilds the paper's Figure 9 and Figure 10 examples, classifies every
occurrence pair under the three overlap semantics, and shows how MIS
changes when the overlap graph is built from the sparser semantics —
the variant measures the paper proposes at the end of Section 4.5.

Run:  python examples/overlap_semantics.py
"""

from repro.analysis import format_table
from repro.datasets import load_figure
from repro.hypergraph import (
    harmful_overlap,
    occurrence_overlap_graph,
    simple_overlap,
    structural_overlap,
)
from repro.isomorphism import find_occurrences
from repro.measures import mis_support_of


def classify_pairs(figure_id: str) -> None:
    figure = load_figure(figure_id)
    pattern, graph = figure.pattern, figure.data_graph
    occurrences = find_occurrences(pattern, graph)
    print(f"\n{figure_id}: {figure.title}")
    print(f"  pattern nodes: {pattern.nodes()}  occurrences: {len(occurrences)}")

    rows = []
    for i, first in enumerate(occurrences):
        for second in occurrences[i + 1:]:
            rows.append(
                [
                    f"({first.label()}, {second.label()})",
                    "yes" if simple_overlap(first, second) else "-",
                    "yes" if harmful_overlap(pattern, first, second) else "-",
                    "yes" if structural_overlap(pattern, first, second) else "-",
                ]
            )
    print(format_table(["pair", "simple", "harmful", "structural"], rows))

    mis_rows = []
    for kind in ("simple", "harmful", "structural"):
        overlap_graph = occurrence_overlap_graph(pattern, occurrences, kind=kind)
        mis_rows.append(
            [kind, overlap_graph.num_edges, mis_support_of(overlap_graph)]
        )
    print(
        format_table(
            ["overlap semantics", "overlap edges", "MIS"],
            mis_rows,
        )
    )


def main() -> None:
    print(
        "Both harmful (HO) and structural (SO) overlap imply simple overlap,\n"
        "but neither implies the other.  Figure 9 exhibits SO without HO;\n"
        "Figure 10 exhibits HO without SO and a simple-only pair."
    )
    classify_pairs("fig9")
    classify_pairs("fig10")
    print(
        "\nSparser overlap semantics admit larger independent sets, so the\n"
        "resulting MIS variants sit above the simple-overlap MIS — exactly\n"
        "the design space Section 4.5 points at."
    )


if __name__ == "__main__":
    main()
