"""Hub-induced over-counting in a social-network-like graph.

The paper's Figure 6 shows that image-based measures (MNI, MI) cannot see
*partial* overlap: a hub vertex welds many occurrences together, yet every
pattern node still has many distinct images.  Heavy-tailed social graphs
are exactly this regime at scale.  This example builds a preferential-
attachment graph, computes the spectrum for the "follows" edge pattern and
a star pattern, and quantifies the MNI/MIS gap as the hubs grow.

Run:  python examples/social_hubs.py
"""

from repro import Pattern
from repro.analysis import format_table, measure_spectrum
from repro.datasets import preferential_attachment_graph
from repro.graph import star_pattern


def main() -> None:
    rows = []
    for size in (30, 60, 90):
        graph = preferential_attachment_graph(
            size, 2, alphabet=("user",), seed=42, name=f"social{size}"
        )
        edge = Pattern.single_edge("user", "user")
        spectrum = measure_spectrum(
            edge, graph, include=["instances", "mis", "mvc", "mi", "mni"]
        )
        hub_degree = graph.degree_sequence()[0]
        rows.append(
            [
                size,
                graph.num_edges,
                hub_degree,
                spectrum.value("mis"),
                spectrum.value("mvc"),
                spectrum.value("mni"),
                f"{spectrum.value('mni') / spectrum.value('mis'):.2f}x",
            ]
        )
    print(
        format_table(
            ["users", "edges", "hub degree", "MIS", "MVC", "MNI", "MNI/MIS"],
            rows,
            title="edge pattern: the hub widens the MNI/MIS gap",
        )
    )

    print()
    # For star patterns the occurrence count explodes around hubs, so the
    # NP-hard exact MIS is replaced by the polynomial nu_MVC relaxation —
    # exactly the trade the paper's Section 4.3 is about.
    graph = preferential_attachment_graph(40, 2, alphabet=("user",), seed=42)
    star_rows = []
    for leaves in (2, 3):
        star = star_pattern("user", ["user"] * leaves)
        spectrum = measure_spectrum(
            star,
            graph,
            include=["occurrences", "instances", "lp_mvc", "mvc", "mi", "mni"],
        )
        star_rows.append(
            [
                f"star-{leaves}",
                spectrum.value("occurrences"),
                spectrum.value("instances"),
                round(spectrum.value("lp_mvc"), 2),
                spectrum.value("mvc"),
                spectrum.value("mi"),
                spectrum.value("mni"),
            ]
        )
    print(
        format_table(
            ["pattern", "occurrences", "instances", "nu_MVC", "MVC", "MI", "MNI"],
            star_rows,
            title="star patterns on the 40-user graph",
        )
    )
    print(
        "\nMI < MNI on stars because the symmetric leaves form one transitive "
        "node subset; MVC (and its polynomial relaxation nu_MVC, which lower-"
        "bounds it) falls much lower because every occurrence shares the hub."
    )


if __name__ == "__main__":
    main()
