"""Quickstart: compute every support measure for a pattern in a graph.

Builds the paper's Figure 4 example by hand, enumerates occurrences, prints
the occurrence table exactly like the figure, and computes the full measure
spectrum — showing why MI (= 1) is a better instance count than MNI (= 2).

Run:  python examples/quickstart.py
"""

from repro import LabeledGraph, Pattern, find_occurrences
from repro.analysis import format_occurrence_table, measure_spectrum, spectrum_report
from repro.measures import mi_support_breakdown


def main() -> None:
    # The data graph: a path 1 - 2 - 3 - 4 with labels a, b, b, a.
    graph = LabeledGraph(
        vertices=[(1, "a"), (2, "b"), (3, "b"), (4, "a")],
        edges=[(1, 2), (2, 3), (3, 4)],
        name="quickstart",
    )

    # The query pattern: a path v1(a) - v2(b) - v3(b).
    pattern = Pattern.from_edges(
        [("v1", "a"), ("v2", "b"), ("v3", "b")],
        [("v1", "v2"), ("v2", "v3")],
        name="a-b-b path",
    )

    occurrences = find_occurrences(pattern, graph)
    print("Occurrences of the pattern (cf. paper Figure 4):\n")
    print(format_occurrence_table(pattern, occurrences))

    print("\nWhy MI = 1 while MNI = 2 — the MI worksheet (c(T) per subset):")
    for subset, count in mi_support_breakdown(pattern, occurrences):
        members = ", ".join(sorted(subset))
        print(f"  c({{{members}}}) = {count}")

    print("\nThe full measure spectrum:\n")
    spectrum = measure_spectrum(pattern, graph)
    print(spectrum_report(spectrum, title="support measures for the a-b-b path"))

    print(
        "\nReading the chain: sigma_MIS = sigma_MIES <= nu <= sigma_MVC "
        "<= sigma_MI <= sigma_MNI."
    )


if __name__ == "__main__":
    main()
