"""Transaction mining vs single-graph mining (the paper's framing).

The introduction contrasts the easy setting — a database of many small
graphs, where support = number of containing transactions — with the hard
single-graph setting this paper is about.  This example builds a small
transaction database of "molecules", computes the classic transaction
support, then merges the database into one disjoint-union graph and shows
where each single-graph measure lands relative to the transaction count.

Run:  python examples/transactions_vs_single_graph.py
"""

from repro.analysis import format_table, measure_spectrum
from repro.graph import cycle_graph, path_graph, path_pattern, triangle_pattern
from repro.mining import disjoint_union, transaction_support


def build_database():
    """Six small 'molecules' over labels C and O."""
    return [
        cycle_graph(["C", "C", "O"]),            # ring with one oxygen
        cycle_graph(["C", "C", "C"]),            # pure carbon ring
        path_graph(["C", "O", "C"]),             # ether-like chain
        path_graph(["C", "C", "O", "C"]),        # longer chain
        cycle_graph(["C", "C", "O"]),            # second oxygen ring
        path_graph(["O", "C"]),                  # fragment
    ]


def main() -> None:
    database = build_database()
    union = disjoint_union(database, name="merged-database")
    print(
        f"database: {len(database)} transactions; merged graph: "
        f"{union.num_vertices} vertices, {union.num_edges} edges\n"
    )

    patterns = [
        ("C-O edge", path_pattern(["C", "O"])),
        ("C-C edge", path_pattern(["C", "C"])),
        ("C-O-C chain", path_pattern(["C", "O", "C"])),
        ("C-C-O ring", triangle_pattern("C", "C", "O")),
    ]

    rows = []
    for name, pattern in patterns:
        tx_support = transaction_support(pattern, database)
        spectrum = measure_spectrum(
            pattern, union, include=["instances", "mis", "mvc", "mi", "mni"]
        )
        rows.append(
            [
                name,
                tx_support,
                spectrum.value("mis"),
                spectrum.value("mvc"),
                spectrum.value("mi"),
                spectrum.value("mni"),
                spectrum.value("instances"),
            ]
        )
    print(
        format_table(
            ["pattern", "tx support", "MIS", "MVC", "MI", "MNI", "instances"],
            rows,
            title="transaction support vs single-graph measures on the union",
        )
    )
    print(
        "\nOn a disjoint union, every containing transaction contributes at\n"
        "least one independent instance, so MIS >= transaction support; the\n"
        "image-based measures (MI, MNI) sit higher because one transaction\n"
        "can host several instances.  In a genuinely single graph there is\n"
        "no transaction boundary at all — which is why the paper needs the\n"
        "hypergraph framework in the first place."
    )


if __name__ == "__main__":
    main()
