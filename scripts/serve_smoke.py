"""CI smoke for the service daemon: protocol vs one-shot CLI, per Python.

Starts a real ``repro serve`` subprocess on an ephemeral TCP port, replays
a mixed insert/delete update stream over the JSON protocol, and after each
batch issues **two concurrent mine requests** on separate connections.
Every protocol response is diffed byte-for-byte against a one-shot CLI
``mine --json`` of the graph materialized at the same version — the
acceptance bar for the whole service layer: whichever path answers
(writer-maintained cache, reader snapshot mine, or a from-scratch CLI
process), the result bytes must be identical.

A standing threshold subscription rides along on its own connection: the
events polled after every batch are replayed client-side and the
reconstructed answer is diffed byte-for-byte against the same one-shot
CLI payload — the acceptance bar for the subscription layer.  A second,
push-delivery subscription must receive identical events as unsolicited
``notify`` frames.

Run from the repository root: ``PYTHONPATH=src python scripts/serve_smoke.py``.
"""

import json
import os
import socket
import subprocess
import sys
import tempfile
import threading
from pathlib import Path

_SRC = str(Path(__file__).resolve().parent.parent / "src")
sys.path.insert(0, _SRC)
# Child processes (the server, the one-shot CLI runs) need the package too.
_ENV = dict(os.environ)
_ENV["PYTHONPATH"] = _SRC + os.pathsep + _ENV.get("PYTHONPATH", "")

from repro.graph.builders import path_graph  # noqa: E402
from repro.graph.io import save_graph  # noqa: E402
from repro.mining.dynamic import StreamApplier  # noqa: E402

SPEC_FLAGS = ["--min-support", "2", "--max-nodes", "3"]
SPEC_FIELDS = {"min_support": 2, "max_nodes": 3}

# The daemon runs the full execution stack — sharded, pooled, paged —
# while the one-shot reference stays serial and flat: the byte-for-byte
# diff below then doubles as an execution-strategy equivalence check,
# and every instrumented subsystem registers its metrics.
SERVE_FLAGS = SPEC_FLAGS + [
    "--shards", "3",
    "--workers", "2",
    "--max-resident", "2",
]

#: One core counter per instrumented subsystem that a stream of update
#: batches plus mine requests must have moved (the `metrics` verb gate).
CORE_NONZERO = [
    "repro_miner_sessions",  # the writer's maintained refreshes
    "repro_sharded_index_patches_applied",  # delta maintenance patched
    "repro_pool_slices_shipped",  # resident workers got their shards
    "repro_pager_recomputes",  # out-of-core views materialized
    "repro_snapshots_publishes",  # MVCC advanced per batch
    "repro_snapshots_pins",  # readers pinned snapshots
    "repro_cache_entries",  # maintained results cached
    "repro_service_batches_applied",  # the writer applied our batches
    "repro_service_mine_requests",  # the readers' mines were served
    "repro_subs_registered",  # the standing subscriptions registered
    "repro_subs_dispatches",  # every batch was routed to subscribers
    "repro_subs_evaluations",  # affected subscriptions re-evaluated
    "repro_subs_events_emitted",  # answer changes became typed events
]

BATCHES = [
    [["v", 7, "a"], ["e", 6, 7], ["v", 8, "b"], ["e", 7, 8]],  # inserts
    [["de", 1, 2], ["dv", 1], ["e", 8, 2]],  # deletions + re-link
    [["v", 9, "a"], ["e", 8, 9], ["de", 3, 4]],  # mixed
]


class Client:
    """One NDJSON connection to the served port."""

    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=120)
        self.reader = self.sock.makefile("r", encoding="utf-8")

    def request(self, payload, expect_error=False):
        self.sock.sendall((json.dumps(payload) + "\n").encode("utf-8"))
        response = json.loads(self.reader.readline())
        if expect_error:
            if response.get("ok"):
                raise SystemExit(f"FAIL: request {payload} succeeded: {response}")
        elif payload.get("op") != "shutdown" and not response.get("ok"):
            raise SystemExit(f"FAIL: request {payload} -> {response}")
        if response.get("v") != 1:
            raise SystemExit(f"FAIL: response without protocol v:1: {response}")
        return response

    def read_event(self):
        """One unsolicited server-push frame (blocks until it arrives)."""
        return json.loads(self.reader.readline())

    def close(self):
        self.reader.close()
        self.sock.close()


def replay_events(answer, events):
    """Apply poll/notify event payloads to a client-side answer dict."""
    for event in events:
        if event["support"] is None:
            answer.pop(event["certificate"], None)
        else:
            answer[event["certificate"]] = {
                "support": event["support"],
                "num_occurrences": event["num_occurrences"],
            }
    return answer


def answer_bytes(answer):
    """Canonical bytes of a client-side answer, CLI-payload comparable."""
    payload = [
        {"certificate": cert, **entry} for cert, entry in sorted(answer.items())
    ]
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def one_shot_cli(graph_path):
    """The canonical payload from a from-scratch CLI ``mine --json``."""
    out = subprocess.run(
        [sys.executable, "-m", "repro", "mine", str(graph_path), "--json"]
        + SPEC_FLAGS,
        capture_output=True,
        text=True,
        check=True,
        env=_ENV,
    )
    return json.loads(out.stdout)


def main():
    workdir = Path(tempfile.mkdtemp(prefix="serve-smoke-"))
    base = path_graph(["a", "b", "a", "b", "a", "b"])
    base_path = workdir / "base.lg"
    save_graph(base, base_path)

    # Reference graphs: the base with each prefix of the stream applied
    # directly (no service involved), saved for one-shot CLI mining.
    reference = path_graph(["a", "b", "a", "b", "a", "b"])
    applier = StreamApplier(reference, window=None)
    reference_paths = []
    for i, batch in enumerate(BATCHES):
        applier.apply_batch([tuple(record) for record in batch])
        ref_path = workdir / f"after-batch-{i}.lg"
        save_graph(reference, ref_path)
        reference_paths.append(ref_path)

    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", str(base_path), "--port", "0"]
        + SERVE_FLAGS,
        stdout=subprocess.PIPE,
        text=True,
        env=_ENV,
    )
    try:
        ready = json.loads(server.stdout.readline())
        assert ready.get("event") == "ready", f"FAIL: bad ready event {ready}"
        port = ready["port"]
        print(f"serving on port {port} at version {ready['version']}")

        control = Client(port)
        assert control.request({"op": "ping"})["op"] == "ping"

        # Protocol versioning: pinning v:1 works, anything else is
        # refused with the machine-readable code.
        assert control.request({"op": "ping", "v": 1})["op"] == "ping"
        refused = control.request({"op": "ping", "v": 99}, expect_error=True)
        assert refused.get("code") == "unsupported_protocol", (
            f"FAIL: v:99 not refused as unsupported_protocol: {refused}"
        )
        unknown = control.request({"op": "frob"}, expect_error=True)
        assert unknown.get("code") == "unknown_op", (
            f"FAIL: unknown op code missing: {unknown}"
        )

        # Standing subscriptions: a poll-delivery subscriber whose
        # replayed events must reconstruct the one-shot CLI answer, and
        # a push-delivery subscriber that must see identical events as
        # unsolicited notify frames.
        poller = Client(port)
        subscribed = poller.request({"op": "subscribe", "spec": SPEC_FIELDS})
        sub_id = subscribed["subscription"]
        answer = {
            entry["certificate"]: {
                "support": entry["support"],
                "num_occurrences": entry["num_occurrences"],
            }
            for entry in subscribed["answer"]
        }
        pusher = Client(port)
        push_spec = dict(SPEC_FIELDS, delivery="push")
        push_sub = pusher.request({"op": "subscribe", "spec": push_spec})
        assert push_sub["answer"] == subscribed["answer"], (
            "FAIL: push/poll subscription baselines diverged"
        )
        print(
            f"subscribed {sub_id} (poll) + {push_sub['subscription']} (push): "
            f"{len(answer)} frequent at version {subscribed['version']}"
        )

        for i, batch in enumerate(BATCHES):
            info = control.request({"op": "update", "updates": batch})
            print(
                f"batch {i}: version {info['version']} "
                f"({info['num_vertices']}v/{info['num_edges']}e)"
            )

            # Two concurrent mine requests on their own connections —
            # readers over pinned snapshots while the writer sits idle.
            results = [None, None]

            def mine(slot):
                client = Client(port)
                try:
                    results[slot] = client.request(
                        {"op": "mine", "spec": SPEC_FIELDS, "id": slot}
                    )
                finally:
                    client.close()

            threads = [threading.Thread(target=mine, args=(slot,)) for slot in (0, 1)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            expected = one_shot_cli(reference_paths[i])
            for slot, response in enumerate(results):
                assert response is not None, f"FAIL: reader {slot} died"
                assert response["version"] == info["version"], (
                    f"FAIL: reader {slot} mined version {response['version']}, "
                    f"expected {info['version']}"
                )
                if response["result"] != expected:
                    raise SystemExit(
                        f"FAIL: batch {i} reader {slot} diverged from the "
                        f"one-shot CLI:\nserved:  {response['result']}\n"
                        f"one-shot: {expected}"
                    )
            print(
                f"batch {i}: both concurrent readers == one-shot CLI "
                f"({expected['num_frequent']} frequent patterns)"
            )

            # The standing subscription's events, replayed client-side,
            # must reconstruct the same answer the one-shot CLI reports.
            polled = poller.request({"op": "poll_events", "subscription": sub_id})
            replay_events(answer, polled["events"])
            expected_bytes = answer_bytes(
                {
                    p["certificate"]: {
                        "support": p["support"],
                        "num_occurrences": p["num_occurrences"],
                    }
                    for p in expected["patterns"]
                }
            )
            replayed_bytes = answer_bytes(answer)
            if replayed_bytes != expected_bytes:
                raise SystemExit(
                    f"FAIL: batch {i} replayed subscription answer diverged "
                    f"from the one-shot CLI:\nreplayed: {replayed_bytes}\n"
                    f"one-shot: {expected_bytes}"
                )
            if polled["events"]:
                # The push subscriber watches the same spec, so the same
                # answer change must arrive as an unsolicited frame with
                # identical typed events.
                frame = pusher.read_event()
                assert frame.get("event") == "notify" and frame.get("v") == 1, (
                    f"FAIL: bad notify frame: {frame}"
                )
                assert frame["events"] == polled["events"], (
                    f"FAIL: push events diverged from polled events:\n"
                    f"push: {frame['events']}\npoll: {polled['events']}"
                )
            print(
                f"batch {i}: {len(polled['events'])} subscription event(s) "
                f"replayed == one-shot CLI answer"
                + (" (push frame identical)" if polled["events"] else "")
            )

        stats = control.request({"op": "stats"})
        print(
            f"cache: {stats['hits']} hits / {stats['misses']} misses / "
            f"{stats['evictions']} evictions"
        )

        # The mine response echoes a trace id; the trace verb must replay
        # that request's span tree.
        last_mine = results[0]
        trace_id = last_mine.get("trace_id")
        assert trace_id, f"FAIL: mine response carried no trace_id: {last_mine}"
        spans = control.request({"op": "trace", "trace_id": trace_id})["spans"]
        span_names = {span["name"] for span in spans}
        assert "service.mine" in span_names, (
            f"FAIL: trace {trace_id} has no service.mine span: {span_names}"
        )
        print(f"trace {trace_id}: {len(spans)} span(s), names {sorted(span_names)}")

        # The metrics verb: the full registry snapshot, with at least one
        # moved counter per instrumented subsystem.
        metrics = control.request({"op": "metrics"})["metrics"]
        flat = {k: v for k, v in metrics.items() if not isinstance(v, dict)}
        quiet = [name for name in CORE_NONZERO if not flat.get(name)]
        assert not quiet, (
            f"FAIL: core counters never moved: {quiet}\nsnapshot: {metrics}"
        )
        # stats and metrics are one source: the aliases cannot drift.
        for alias, metric in (
            ("hits", "repro_cache_hits"),
            ("misses", "repro_cache_misses"),
            ("evictions", "repro_cache_evictions"),
            ("entries", "repro_cache_entries"),
        ):
            assert stats[alias] == metrics[metric], (
                f"FAIL: stats[{alias}]={stats[alias]} != "
                f"{metric}={metrics[metric]}"
            )
        moved = sum(1 for value in flat.values() if value)
        print(
            f"metrics: {len(metrics)} instruments, {moved} moved; "
            f"all {len(CORE_NONZERO)} core counters non-zero"
        )

        assert flat.get("repro_subs_active") == 2, (
            f"FAIL: expected 2 active subscriptions, "
            f"got {flat.get('repro_subs_active')}"
        )
        done = poller.request({"op": "unsubscribe", "subscription": sub_id})
        assert done["ok"], f"FAIL: unsubscribe failed: {done}"
        poller.close()
        pusher.close()  # disconnect GC reaps the push subscription

        control.request({"op": "shutdown"})
        control.close()
        server.wait(timeout=120)
    finally:
        if server.poll() is None:
            server.kill()
    print("serve smoke OK")


if __name__ == "__main__":
    main()
