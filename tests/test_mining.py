"""Unit and integration tests for the frequent-subgraph miner."""

import pytest

from repro.datasets.zoo import zoo_graph
from repro.errors import MiningError
from repro.graph.builders import path_graph
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.pattern import Pattern
from repro.mining.extension import (
    adjacent_label_pairs,
    backward_extensions,
    forward_extensions,
    single_edge_patterns,
)
from repro.mining.miner import FrequentSubgraphMiner, mine_frequent_patterns

# These suites deliberately exercise the legacy-kwarg entry points
# alongside spec=; the deprecation they trigger is the point, not noise.
pytestmark = pytest.mark.filterwarnings(
    "ignore:legacy mining kwargs:DeprecationWarning"
)


class TestExtensionGeneration:
    def test_adjacent_label_pairs(self):
        g = path_graph(["a", "b", "c"])
        pairs = adjacent_label_pairs(g)
        assert ("a", "b") in pairs and ("b", "a") in pairs
        assert ("b", "c") in pairs
        assert ("a", "c") not in pairs

    def test_single_edge_seeds_deduplicated(self):
        g = LabeledGraph(
            vertices=[(1, "a"), (2, "b"), (3, "a"), (4, "b")],
            edges=[(1, 2), (3, 4), (2, 3)],
        )
        seeds = single_edge_patterns(g)
        # Distinct label pairs: (a,b) and (b,a) collapse; so a-b and a... wait
        # edges are a-b, a-b, b-a: only one distinct unordered pair.
        assert len(seeds) == 1

    def test_seed_uniform_and_mixed(self):
        g = LabeledGraph(
            vertices=[(1, "a"), (2, "a"), (3, "b")],
            edges=[(1, 2), (2, 3)],
        )
        seeds = single_edge_patterns(g)
        assert len(seeds) == 2

    def test_forward_extensions_respect_label_pairs(self):
        pattern = Pattern.single_edge("a", "b")
        pairs = {("a", "b"), ("b", "a")}
        extensions = list(forward_extensions(pattern, pairs))
        # v1 (label a) can host a new b-node; v2 (label b) a new a-node.
        assert len(extensions) == 2
        assert all(ext.num_nodes == 3 for ext in extensions)

    def test_backward_extensions_close_cycles(self):
        from repro.graph.builders import path_pattern

        pattern = path_pattern(["a", "a", "a"])
        pairs = {("a", "a")}
        extensions = list(backward_extensions(pattern, pairs))
        assert len(extensions) == 1
        assert extensions[0].num_edges == 3

    def test_backward_extension_blocked_by_labels(self):
        from repro.graph.builders import path_pattern

        pattern = path_pattern(["a", "b", "c"])
        pairs = {("a", "b"), ("b", "a"), ("b", "c"), ("c", "b")}
        assert list(backward_extensions(pattern, pairs)) == []


class TestMinerBasics:
    def test_rejects_non_anti_monotonic_measure(self):
        g = path_graph(["a", "a", "a"])
        with pytest.raises(MiningError):
            FrequentSubgraphMiner(g, measure="occurrences")

    def test_non_anti_monotonic_opt_in(self):
        g = path_graph(["a", "a", "a"])
        miner = FrequentSubgraphMiner(
            g, measure="occurrences", allow_non_anti_monotonic=True, min_support=1
        )
        assert miner.mine().num_frequent >= 1

    def test_rejects_non_positive_support(self):
        g = path_graph(["a", "a"])
        with pytest.raises(MiningError):
            FrequentSubgraphMiner(g, min_support=0)

    def test_empty_graph_mines_nothing(self):
        result = mine_frequent_patterns(LabeledGraph(), min_support=1)
        assert result.num_frequent == 0


class TestMiningResults:
    def test_disjoint_triangles_with_mis(self, disjoint_tri_graph):
        result = mine_frequent_patterns(
            disjoint_tri_graph,
            measure="mis",
            min_support=3,
            max_pattern_nodes=3,
            max_pattern_edges=3,
        )
        shapes = sorted((fp.num_nodes, fp.num_edges) for fp in result.frequent)
        # Edge, path-of-3, and triangle each appear 3 independent times.
        assert shapes == [(2, 1), (3, 2), (3, 3)]
        assert all(fp.support == 3 for fp in result.frequent)

    def test_threshold_monotonicity(self, disjoint_tri_graph):
        low = mine_frequent_patterns(disjoint_tri_graph, measure="mni", min_support=2)
        high = mine_frequent_patterns(disjoint_tri_graph, measure="mni", min_support=4)
        assert set(high.certificates()) <= set(low.certificates())

    def test_measure_ordering_nests_results(self, fan_graph):
        # sigma_MIS <= sigma_MNI pointwise => MIS-frequent set is a subset.
        mis_result = mine_frequent_patterns(
            fan_graph, measure="mis", min_support=2, max_pattern_nodes=3
        )
        mni_result = mine_frequent_patterns(
            fan_graph, measure="mni", min_support=2, max_pattern_nodes=3
        )
        assert set(mis_result.certificates()) <= set(mni_result.certificates())

    def test_results_sorted_by_size(self, disjoint_tri_graph):
        result = mine_frequent_patterns(
            disjoint_tri_graph, measure="mni", min_support=2
        )
        sizes = [fp.num_edges for fp in result.frequent]
        assert sizes == sorted(sizes)

    def test_stats_are_consistent(self, disjoint_tri_graph):
        result = mine_frequent_patterns(
            disjoint_tri_graph, measure="mni", min_support=2
        )
        stats = result.stats
        assert stats.patterns_frequent == result.num_frequent
        assert stats.patterns_evaluated == (
            stats.patterns_frequent + stats.patterns_pruned
        )
        assert stats.patterns_generated >= stats.patterns_evaluated

    def test_by_size_grouping(self, disjoint_tri_graph):
        result = mine_frequent_patterns(
            disjoint_tri_graph, measure="mni", min_support=2
        )
        grouped = result.by_size()
        assert sum(len(v) for v in grouped.values()) == result.num_frequent

    def test_max_pattern_edges_cap(self, disjoint_tri_graph):
        result = mine_frequent_patterns(
            disjoint_tri_graph, measure="mni", min_support=1, max_pattern_edges=2
        )
        assert result.max_pattern_edges() <= 2

    def test_no_duplicate_patterns(self, fan_graph):
        result = mine_frequent_patterns(
            fan_graph, measure="mni", min_support=2, max_pattern_nodes=4
        )
        certificates = result.certificates()
        assert len(certificates) == len(set(certificates))

    def test_mined_patterns_actually_occur(self, fan_graph):
        from repro.isomorphism.vf2 import has_subgraph_isomorphism

        result = mine_frequent_patterns(fan_graph, measure="mni", min_support=2)
        for fp in result.frequent:
            assert has_subgraph_isomorphism(fp.pattern, fan_graph)

    def test_mi_and_mvc_measures_work_end_to_end(self, disjoint_tri_graph):
        for measure in ("mi", "mvc", "lp_mvc"):
            result = mine_frequent_patterns(
                disjoint_tri_graph,
                measure=measure,
                min_support=2,
                max_pattern_nodes=3,
            )
            assert result.num_frequent >= 1, measure


class TestCompletenessAgainstBruteForce:
    def test_all_frequent_edges_found(self):
        # Brute-force: every distinct one-edge pattern with MNI >= 2 is mined.
        g = zoo_graph("bipartite")
        result = mine_frequent_patterns(
            g, measure="mni", min_support=2, max_pattern_edges=1
        )
        seeds = single_edge_patterns(g)
        from repro.measures.base import compute_support

        expected = sum(1 for s in seeds if compute_support("mni", s, g) >= 2)
        assert result.num_frequent == expected
