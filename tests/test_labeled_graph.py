"""Unit tests for the LabeledGraph substrate."""

import pytest

from repro.errors import (
    EdgeNotFoundError,
    GraphError,
    SelfLoopError,
    VertexNotFoundError,
)
from repro.graph.labeled_graph import LabeledGraph, normalize_edge


def build_square():
    return LabeledGraph(
        vertices=[(1, "a"), (2, "b"), (3, "a"), (4, "b")],
        edges=[(1, 2), (2, 3), (3, 4), (4, 1)],
    )


class TestConstruction:
    def test_empty_graph(self):
        g = LabeledGraph()
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert g.vertices() == []
        assert g.edges() == []

    def test_add_vertices_and_edges(self):
        g = build_square()
        assert g.num_vertices == 4
        assert g.num_edges == 4
        assert g.has_edge(1, 2) and g.has_edge(2, 1)
        assert not g.has_edge(1, 3)

    def test_readding_vertex_same_label_is_noop(self):
        g = LabeledGraph()
        g.add_vertex(1, "a")
        g.add_vertex(1, "a")
        assert g.num_vertices == 1

    def test_readding_vertex_with_new_label_fails(self):
        g = LabeledGraph()
        g.add_vertex(1, "a")
        with pytest.raises(GraphError):
            g.add_vertex(1, "b")

    def test_self_loop_rejected(self):
        g = LabeledGraph(vertices=[(1, "a")])
        with pytest.raises(SelfLoopError):
            g.add_edge(1, 1)

    def test_edge_to_missing_vertex_fails(self):
        g = LabeledGraph(vertices=[(1, "a")])
        with pytest.raises(VertexNotFoundError):
            g.add_edge(1, 2)

    def test_duplicate_edge_is_idempotent(self):
        g = LabeledGraph(vertices=[(1, "a"), (2, "b")])
        g.add_edge(1, 2)
        g.add_edge(2, 1)
        assert g.num_edges == 1


class TestRemoval:
    def test_remove_edge(self):
        g = build_square()
        g.remove_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert g.num_edges == 3

    def test_remove_missing_edge_fails(self):
        g = build_square()
        with pytest.raises(EdgeNotFoundError):
            g.remove_edge(1, 3)

    def test_remove_vertex_drops_incident_edges(self):
        g = build_square()
        g.remove_vertex(1)
        assert g.num_vertices == 3
        assert g.num_edges == 2
        assert not g.has_vertex(1)

    def test_remove_missing_vertex_fails(self):
        g = build_square()
        with pytest.raises(VertexNotFoundError):
            g.remove_vertex(99)

    def test_remove_vertex_cleans_label_index(self):
        g = LabeledGraph(vertices=[(1, "only")])
        g.remove_vertex(1)
        assert g.vertices_with_label("only") == set()
        assert "only" not in g.label_alphabet()


class TestQueries:
    def test_labels(self):
        g = build_square()
        assert g.label_of(1) == "a"
        assert g.label_histogram() == {"a": 2, "b": 2}
        assert g.label_alphabet() == ["a", "b"]
        assert g.vertices_with_label("a") == {1, 3}

    def test_label_of_missing_vertex(self):
        g = build_square()
        with pytest.raises(VertexNotFoundError):
            g.label_of(42)

    def test_neighbors_and_degree(self):
        g = build_square()
        assert g.neighbors(1) == {2, 4}
        assert g.degree(1) == 2
        assert g.neighbors_with_label(1, "b") == {2, 4}
        assert g.neighbors_with_label(1, "a") == set()

    def test_degree_sequence(self):
        g = build_square()
        assert g.degree_sequence() == [2, 2, 2, 2]

    def test_contains_len_iter(self):
        g = build_square()
        assert 1 in g
        assert 9 not in g
        assert len(g) == 4
        assert list(g) == [1, 2, 3, 4]

    def test_edges_are_canonical_and_unique(self):
        g = build_square()
        edges = g.edges()
        assert len(edges) == 4
        assert all(u <= v for u, v in edges)


class TestStructure:
    def test_induced_subgraph(self):
        g = build_square()
        sub = g.subgraph([1, 2, 3])
        assert sub.num_vertices == 3
        assert sub.has_edge(1, 2) and sub.has_edge(2, 3)
        assert not sub.has_edge(1, 3)

    def test_subgraph_with_unknown_vertex_fails(self):
        g = build_square()
        with pytest.raises(VertexNotFoundError):
            g.subgraph([1, 42])

    def test_edge_subgraph(self):
        g = build_square()
        sub = g.edge_subgraph([(1, 2), (3, 4)])
        assert sub.num_vertices == 4
        assert sub.num_edges == 2

    def test_edge_subgraph_missing_edge_fails(self):
        g = build_square()
        with pytest.raises(EdgeNotFoundError):
            g.edge_subgraph([(1, 3)])

    def test_copy_is_independent(self):
        g = build_square()
        clone = g.copy()
        clone.remove_edge(1, 2)
        assert g.has_edge(1, 2)
        assert not clone.has_edge(1, 2)

    def test_relabeled(self):
        g = build_square()
        renamed = g.relabeled({1: "x"})
        assert renamed.has_vertex("x")
        assert renamed.has_edge("x", 2)
        assert not renamed.has_vertex(1)

    def test_relabeled_non_injective_fails(self):
        g = build_square()
        with pytest.raises(GraphError):
            g.relabeled({1: 2, 2: 2})

    def test_connected_components(self):
        g = LabeledGraph(
            vertices=[(i, "a") for i in range(1, 6)],
            edges=[(1, 2), (3, 4)],
        )
        components = g.connected_components()
        assert sorted(sorted(c) for c in components) == [[1, 2], [3, 4], [5]]
        assert not g.is_connected()
        assert build_square().is_connected()

    def test_empty_graph_is_not_connected(self):
        assert not LabeledGraph().is_connected()

    def test_is_subgraph_of(self):
        g = build_square()
        sub = g.subgraph([1, 2])
        assert sub.is_subgraph_of(g)
        assert not g.is_subgraph_of(sub)

    def test_is_subgraph_of_respects_labels(self):
        g = build_square()
        other = LabeledGraph(vertices=[(1, "DIFFERENT")])
        assert not other.is_subgraph_of(g)

    def test_signature_equality(self):
        assert build_square().signature() == build_square().signature()

    def test_structural_equality(self):
        assert build_square() == build_square()
        other = build_square()
        other.remove_edge(1, 2)
        assert build_square() != other

    def test_graphs_are_unhashable(self):
        with pytest.raises(TypeError):
            hash(build_square())


class TestNormalizeEdge:
    def test_orders_comparable_ids(self):
        assert normalize_edge(2, 1) == (1, 2)
        assert normalize_edge(1, 2) == (1, 2)

    def test_orders_mixed_types_by_repr(self):
        e1 = normalize_edge("x", 1)
        e2 = normalize_edge(1, "x")
        assert e1 == e2
