"""Edge-case tests for smaller code paths across the library."""

import pytest

from repro.errors import MeasureError
from repro.graph.builders import complete_graph, path_graph, triangle_pattern
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.pattern import Pattern
from repro.hypergraph.construction import HypergraphBundle
from repro.isomorphism.matcher import find_occurrences
from repro.measures.base import available_measures, compute_support, measure_info

# These suites deliberately exercise the legacy-kwarg entry points
# alongside spec=; the deprecation they trigger is the point, not noise.
pytestmark = pytest.mark.filterwarnings(
    "ignore:legacy mining kwargs:DeprecationWarning"
)


class TestMeasureRegistry:
    def test_unknown_measure(self):
        g = path_graph(["a", "a"])
        with pytest.raises(MeasureError):
            compute_support("nonexistent", Pattern.single_edge("a", "a"), g)

    def test_all_registered_measures_compute_on_small_graph(self):
        g = path_graph(["a", "b", "a"])
        p = Pattern.single_edge("a", "b")
        bundle = HypergraphBundle.build(p, g)
        for name in available_measures():
            value = compute_support(name, p, g, bundle=bundle)
            assert value >= 0.0, name

    def test_expected_measures_present(self):
        names = available_measures()
        for expected in (
            "occurrences", "instances", "mni", "mi", "mvc", "mvc_greedy",
            "mis", "mis_occurrence", "mis_harmful", "mis_structural",
            "mies", "mies_occurrence", "mcp", "lp_mvc", "lp_mies", "pmvc",
        ):
            assert expected in names, expected

    def test_measure_info_metadata(self):
        info = measure_info("mni")
        assert info.anti_monotonic
        assert "O(m)" in info.complexity
        assert info.display_name

    def test_anti_monotone_flags(self):
        # The paper's taxonomy: raw counts are not anti-monotonic;
        # all chain measures are.
        assert not measure_info("occurrences").anti_monotonic
        assert not measure_info("instances").anti_monotonic
        for name in ("mni", "mi", "mvc", "mis", "mies", "lp_mvc", "lp_mies", "mcp"):
            assert measure_info(name).anti_monotonic, name


class TestBundleSharing:
    def test_bundle_reuse_matches_fresh(self, fig6):
        bundle = HypergraphBundle.build(fig6.pattern, fig6.data_graph)
        for name in ("mni", "mi", "mvc", "mis"):
            with_bundle = compute_support(
                name, fig6.pattern, fig6.data_graph, bundle=bundle
            )
            fresh = compute_support(name, fig6.pattern, fig6.data_graph)
            assert with_bundle == fresh, name


class TestOccurrenceLimits:
    def test_find_occurrences_limit(self):
        g = complete_graph(["a"] * 5)
        p = triangle_pattern("a")
        limited = find_occurrences(p, g, limit=10)
        assert len(limited) == 10
        assert [o.index for o in limited] == list(range(10))

    def test_bundle_limit(self):
        g = complete_graph(["a"] * 5)
        p = triangle_pattern("a")
        bundle = HypergraphBundle.build(p, g, limit=6)
        assert bundle.num_occurrences == 6


class TestLazyMiningFloatThreshold:
    def test_float_min_support_ceils(self):
        from repro.datasets.zoo import zoo_graph
        from repro.mining import mine_frequent_patterns

        graph = zoo_graph("disjoint_triangles")
        result = mine_frequent_patterns(
            graph, measure="mni", min_support=2.5, max_pattern_nodes=3, lazy=True
        )
        # Threshold 2.5 requires support >= 2.5, i.e. 3 confirmed images.
        assert all(fp.support >= 2.5 for fp in result.frequent)


class TestPatternNaming:
    def test_node_names_survive_extension_conflicts(self):
        # Extending a pattern whose nodes are not contiguous v1..vk.
        p = Pattern.from_edges([("v1", "a"), ("v3", "a")], [("v1", "v3")])
        extended = p.extend_with_node("v1", "v2", "a")
        assert extended.num_nodes == 3

    def test_pattern_repr(self):
        p = triangle_pattern("a")
        assert "nodes=3" in repr(p)


class TestGraphReprAndName:
    def test_named_graph_repr(self):
        g = LabeledGraph(name="demo")
        assert "demo" in repr(g)

    def test_subgraph_inherits_name_marker(self):
        g = path_graph(["a", "b"], name="base")
        sub = g.subgraph([1])
        assert "base" in sub.name
