"""Unit and property tests for additive (component-wise) measure computation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets.paper_figures import load_figure
from repro.datasets.synthetic import planted_pattern_graph, random_labeled_graph
from repro.graph.builders import path_pattern, triangle_pattern
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.construction import HypergraphBundle
from repro.measures.decomposition import (
    component_statistics,
    decomposed_lp_mvc_support,
    decomposed_mies_support,
    decomposed_mvc_support,
    hypergraph_components,
)
from repro.measures.mies import mies_support_of
from repro.measures.mvc import mvc_support_of
from repro.measures.relaxations import lp_mvc_support_of


class TestComponents:
    def test_disjoint_edges_are_singleton_components(self):
        h = Hypergraph.from_edge_sets([[1, 2], [3, 4], [5, 6]])
        components = hypergraph_components(h)
        assert len(components) == 3
        assert all(c.num_edges == 1 for c in components)

    def test_chain_is_one_component(self):
        h = Hypergraph.from_edge_sets([[1, 2], [2, 3], [3, 4]])
        assert len(hypergraph_components(h)) == 1

    def test_empty_hypergraph(self):
        assert hypergraph_components(Hypergraph()) == []

    def test_components_partition_edges(self):
        h = Hypergraph.from_edge_sets([[1, 2], [2, 3], [7, 8], [9, 10], [10, 11]])
        components = hypergraph_components(h)
        labels = sorted(
            edge.label for component in components for edge in component.edges()
        )
        assert labels == sorted(e.label for e in h.edges())

    def test_fig3_has_three_components(self):
        fig = load_figure("fig3")
        bundle = HypergraphBundle.build(fig.pattern, fig.data_graph)
        # {e1}, {e2, e3, e4}, {e5, e6}.
        components = hypergraph_components(bundle.occurrence_hg)
        sizes = sorted(c.num_edges for c in components)
        assert sizes == [1, 2, 3]


class TestAdditivity:
    @pytest.mark.parametrize("figure_id", [f"fig{i}" for i in range(1, 11)])
    def test_decomposed_equals_monolithic_on_figures(self, figure_id):
        fig = load_figure(figure_id)
        bundle = HypergraphBundle.build(fig.pattern, fig.data_graph)
        h = bundle.occurrence_hg
        assert decomposed_mvc_support(h) == mvc_support_of(h)
        assert decomposed_mies_support(h) == mies_support_of(h)
        assert decomposed_lp_mvc_support(h) == pytest.approx(
            lp_mvc_support_of(h), abs=1e-6
        )

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=3_000))
    def test_decomposed_equals_monolithic_on_random(self, seed):
        graph = random_labeled_graph(10, 0.25, alphabet=("A", "B"), seed=seed)
        pattern = path_pattern(["A", "B"])
        bundle = HypergraphBundle.build(pattern, graph)
        h = bundle.occurrence_hg
        assert decomposed_mvc_support(h) == mvc_support_of(h)
        assert decomposed_mies_support(h) == mies_support_of(h)

    def test_decomposition_shrinks_planted_workload(self):
        pattern = triangle_pattern("A", "B", "C")
        graph = planted_pattern_graph(
            pattern, num_copies=12, overlap_fraction=0.3, seed=5
        )
        bundle = HypergraphBundle.build(pattern, graph)
        stats = component_statistics(bundle.occurrence_hg)
        assert stats["components"] > 1
        assert stats["reduction"] < 1.0

    def test_statistics_empty(self):
        stats = component_statistics(Hypergraph())
        assert stats["components"] == 0
