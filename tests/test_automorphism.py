"""Unit tests for automorphisms, orbits, and transitive node subsets."""

from repro.graph.automorphism import (
    automorphism_group_size,
    automorphisms,
    is_transitive_pair,
    transitive_node_subsets,
    transitive_pairs,
    vertex_orbits,
)
from repro.graph.builders import (
    complete_graph,
    cycle_graph,
    cycle_pattern,
    path_graph,
    path_pattern,
    star_pattern,
    triangle_pattern,
)


class TestAutomorphisms:
    def test_uniform_triangle_has_six(self):
        assert automorphism_group_size(cycle_graph(["a"] * 3)) == 6

    def test_distinct_labels_kill_symmetry(self):
        assert automorphism_group_size(cycle_graph(["a", "b", "c"])) == 1

    def test_uniform_path_has_reversal(self):
        assert automorphism_group_size(path_graph(["a", "a", "a"])) == 2

    def test_k4_has_24(self):
        assert automorphism_group_size(complete_graph(["a"] * 4)) == 24

    def test_identity_always_present(self):
        autos = automorphisms(path_graph(["a", "b"]))
        identity = {1: 1, 2: 2}
        assert identity in autos


class TestTransitivePairs:
    def test_diagonal_is_transitive(self):
        g = path_graph(["a", "b"])
        assert is_transitive_pair(g, 1, 1)

    def test_path_ends_transitive(self):
        g = path_graph(["a", "a", "a"])
        assert is_transitive_pair(g, 1, 3)
        assert not is_transitive_pair(g, 1, 2)

    def test_label_mismatch_never_transitive(self):
        g = path_graph(["a", "b"])
        assert not is_transitive_pair(g, 1, 2)

    def test_degree_mismatch_never_transitive(self):
        g = path_graph(["a", "a", "a"])
        assert not is_transitive_pair(g, 2, 1)


class TestOrbits:
    def test_uniform_triangle_single_orbit(self):
        orbits = vertex_orbits(cycle_graph(["a"] * 3))
        assert orbits == [frozenset({1, 2, 3})]

    def test_uniform_path_orbits(self):
        orbits = vertex_orbits(path_graph(["a", "a", "a"]))
        assert sorted(sorted(o) for o in orbits) == [[1, 3], [2]]

    def test_labeled_triangle_all_singletons(self):
        orbits = vertex_orbits(cycle_graph(["a", "b", "c"]))
        assert all(len(o) == 1 for o in orbits)

    def test_orbits_partition_vertices(self):
        g = complete_graph(["a", "a", "b", "b"])
        orbits = vertex_orbits(g)
        combined = sorted(v for orbit in orbits for v in orbit)
        assert combined == g.vertices()
        assert sum(len(o) for o in orbits) == g.num_vertices


class TestTransitiveNodeSubsets:
    def test_fig4_pattern_family(self):
        # a-b-b path: singletons + {v2, v3} via the edge subpattern.
        p = path_pattern(["a", "b", "b"])
        subsets = transitive_node_subsets(p)
        as_sets = {tuple(sorted(s)) for s in subsets}
        assert as_sets == {("v1",), ("v2",), ("v3",), ("v2", "v3")}

    def test_uniform_path_family(self):
        # a-a-a path (Fig. 7): singletons + both edges + the end pair.
        p = path_pattern(["a", "a", "a"])
        subsets = {tuple(sorted(s)) for s in transitive_node_subsets(p)}
        assert subsets == {
            ("v1",), ("v2",), ("v3",),
            ("v1", "v2"), ("v2", "v3"), ("v1", "v3"),
        }

    def test_uniform_triangle_includes_full_orbit(self):
        p = triangle_pattern("a")
        subsets = transitive_node_subsets(p)
        assert frozenset({"v1", "v2", "v3"}) in subsets

    def test_star_leaves_form_orbit(self):
        p = star_pattern("c", ["l", "l", "l"])
        subsets = transitive_node_subsets(p)
        assert frozenset({"v2", "v3", "v4"}) in subsets

    def test_no_edgeless_pair_from_disconnected_subpattern(self):
        # Path b-a-c-b (Fig. 10): ends share a label but are not transitive
        # in any connected subpattern.
        p = path_pattern(["b", "a", "c", "b"])
        subsets = transitive_node_subsets(p)
        assert frozenset({"v1", "v4"}) not in subsets
        assert all(len(s) == 1 for s in subsets)

    def test_max_subpattern_size_still_includes_singletons(self):
        p = triangle_pattern("a")
        subsets = transitive_node_subsets(p, max_subpattern_size=1)
        assert {tuple(sorted(s)) for s in subsets} == {("v1",), ("v2",), ("v3",)}

    def test_include_partial_adds_pairs(self):
        p = triangle_pattern("a")
        full = transitive_node_subsets(p, include_partial=True)
        assert frozenset({"v1", "v2"}) in full
        assert frozenset({"v1", "v2", "v3"}) in full

    def test_cycle4_uniform_orbits(self):
        p = cycle_pattern(["a"] * 4)
        subsets = transitive_node_subsets(p)
        # The whole cycle is one orbit.
        assert frozenset({"v1", "v2", "v3", "v4"}) in subsets


class TestTransitivePairsFunction:
    def test_pairs_symmetric_with_diagonal(self):
        p = path_pattern(["a", "a", "a"])
        pairs = transitive_pairs(p)
        assert ("v1", "v1") in pairs
        assert ("v1", "v3") in pairs and ("v3", "v1") in pairs

    def test_fig10_pattern_only_diagonal(self):
        p = path_pattern(["b", "a", "c", "b"])
        pairs = transitive_pairs(p)
        off_diagonal = {(u, w) for u, w in pairs if u != w}
        assert off_diagonal == set()
