"""Unit tests for occurrence/instance hypergraph construction."""

import pytest

from repro.graph.builders import complete_graph, path_graph, triangle_pattern
from repro.hypergraph.construction import (
    HypergraphBundle,
    instance_hypergraph,
    occurrence_hypergraph,
)


class TestOccurrenceHypergraph:
    def test_fig2_six_edges_one_vertex_set(self, fig2):
        hg = occurrence_hypergraph(fig2.pattern, fig2.data_graph)
        assert hg.num_edges == 6
        assert hg.num_vertices == 3
        assert all(edge.vertices == frozenset({1, 2, 3}) for edge in hg.edges())
        labels = [edge.label for edge in hg.edges()]
        assert labels == [f"f{i}" for i in range(1, 7)]

    def test_uniformity(self, fig2):
        hg = occurrence_hypergraph(fig2.pattern, fig2.data_graph)
        assert hg.is_uniform()
        assert hg.uniformity() == fig2.pattern.num_nodes

    def test_empty_when_pattern_absent(self):
        hg = occurrence_hypergraph(triangle_pattern("a"), path_graph(["a", "a"]))
        assert hg.num_edges == 0

    def test_limit_respected(self):
        g = complete_graph(["a"] * 5)
        hg = occurrence_hypergraph(triangle_pattern("a"), g, limit=10)
        assert hg.num_edges == 10


class TestInstanceHypergraph:
    def test_fig2_single_instance_edge(self, fig2):
        hg = instance_hypergraph(fig2.pattern, fig2.data_graph)
        assert hg.num_edges == 1
        assert hg.edge("S1").vertices == frozenset({1, 2, 3})

    def test_instances_vs_occurrences_on_symmetric_pattern(self):
        g = complete_graph(["a"] * 4)
        p = triangle_pattern("a")
        occ_hg = occurrence_hypergraph(p, g)
        inst_hg = instance_hypergraph(p, g)
        assert occ_hg.num_edges == 24
        assert inst_hg.num_edges == 4


class TestBundle:
    def test_bundle_consistency(self, fig2):
        bundle = HypergraphBundle.build(fig2.pattern, fig2.data_graph)
        assert bundle.num_occurrences == 6
        assert bundle.num_instances == 1
        assert bundle.occurrence_hg.num_edges == 6
        assert bundle.instance_hg.num_edges == 1

    def test_view_selector(self, fig2):
        bundle = HypergraphBundle.build(fig2.pattern, fig2.data_graph)
        assert bundle.view("occurrence") is bundle.occurrence_hg
        assert bundle.view("instance") is bundle.instance_hg
        with pytest.raises(ValueError):
            bundle.view("nonsense")

    def test_vertex_sets_match_between_views(self, fig6):
        bundle = HypergraphBundle.build(fig6.pattern, fig6.data_graph)
        occ_sets = {edge.vertices for edge in bundle.occurrence_hg.edges()}
        inst_sets = {edge.vertices for edge in bundle.instance_hg.edges()}
        assert occ_sets == inst_sets
