"""Unit tests for the MiningSpec request API and its legacy-kwarg shims."""

import gc
import json

import pytest

from repro.cli import build_parser, spec_from_args
from repro.errors import MeasureError, MiningError
from repro.graph.builders import path_graph
from repro.mining.dynamic import DynamicMiner, mine_stream
from repro.mining.miner import mine_frequent_patterns
from repro.mining.spec import DEFAULT_SPEC, MiningSpec, resolve_spec
from repro.service.protocol import result_bytes

# These suites deliberately exercise the legacy-kwarg entry points
# alongside spec=; the deprecation they trigger is the point, not noise.
pytestmark = pytest.mark.filterwarnings(
    "ignore:legacy mining kwargs:DeprecationWarning"
)


def sample_graph():
    return path_graph(["a", "b", "a", "b", "a"])


class TestValidation:
    def test_defaults_are_valid(self):
        spec = MiningSpec()
        assert spec.measure == "mni"
        assert spec.min_support == 2.0

    def test_rejects_unknown_measure(self):
        with pytest.raises(MeasureError):
            MiningSpec(measure="nonsense")

    def test_rejects_nonpositive_support(self):
        with pytest.raises(MiningError, match="min_support must be positive"):
            MiningSpec(min_support=0)

    def test_lazy_requires_mni(self):
        with pytest.raises(MiningError, match="lazy"):
            MiningSpec(measure="mis", min_support=1, lazy=True)

    def test_partition_method_checked_only_when_sharded(self):
        # shards == 1 never partitions, so the method is irrelevant.
        MiningSpec(partition_method="hash")
        with pytest.raises(MiningError):
            MiningSpec(shards=2, partition_method="bogus")

    def test_max_resident_requires_shards(self):
        with pytest.raises(MiningError, match="max_resident"):
            MiningSpec(max_resident=2)

    def test_bounds(self):
        with pytest.raises(MiningError):
            MiningSpec(max_pattern_nodes=1)
        with pytest.raises(MiningError):
            MiningSpec(max_pattern_edges=0)
        with pytest.raises(MiningError):
            MiningSpec(max_occurrences=0)
        with pytest.raises(MiningError):
            MiningSpec(workers=0)
        with pytest.raises(MiningError):
            MiningSpec(window=0)
        with pytest.raises(MiningError):
            MiningSpec(batch_size=0)
        with pytest.raises(MiningError):
            MiningSpec(mode="sideways")

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_SPEC.min_support = 99  # type: ignore[misc]


class TestSerialization:
    def test_json_round_trip(self):
        spec = MiningSpec(
            measure="mis",
            min_support=3,
            max_pattern_nodes=4,
            shards=2,
            partition_method="label",
            window=10,
        )
        assert MiningSpec.from_json(spec.to_json()) == spec

    def test_to_json_is_canonical(self):
        # Field order and separators are fixed — equal specs, equal bytes.
        a = MiningSpec(min_support=2, shards=2, partition_method="label")
        b = MiningSpec(partition_method="label", shards=2, min_support=2)
        assert a.to_json() == b.to_json()

    def test_cache_key_ignores_strategy_fields(self):
        # Strategy knobs (index, shards, workers...) never change the
        # result set, so they must not fragment the cache.
        base = MiningSpec()
        assert base.cache_key() == MiningSpec(shards=2, workers=1).cache_key()
        assert base.cache_key() == MiningSpec(use_index=False).cache_key()
        assert base.cache_key() != MiningSpec(min_support=3).cache_key()
        assert base.cache_key() != MiningSpec(lazy=True).cache_key()

    def test_replace(self):
        spec = DEFAULT_SPEC.replace(min_support=5)
        assert spec.min_support == 5
        assert DEFAULT_SPEC.min_support == 2.0


class TestFromKwargs:
    def test_aliases(self):
        spec = MiningSpec.from_kwargs(max_nodes=4, max_edges=5, partition="label")
        assert spec.max_pattern_nodes == 4
        assert spec.max_pattern_edges == 5
        assert spec.partition_method == "label"

    def test_unknown_key_rejected(self):
        with pytest.raises(MiningError, match="unknown"):
            MiningSpec.from_kwargs(min_supprot=2)

    def test_alias_conflict_rejected(self):
        with pytest.raises(MiningError):
            MiningSpec.from_kwargs(max_nodes=4, max_pattern_nodes=5)

    def test_resolve_spec_overrides_fold_over_spec(self):
        spec = MiningSpec(min_support=3, measure="mis")
        merged = resolve_spec(spec, {"min_support": 4})
        assert merged.min_support == 4
        assert merged.measure == "mis"

    def test_resolve_spec_type_checked(self):
        with pytest.raises(MiningError):
            resolve_spec({"min_support": 2}, {})


class TestLegacyKwargEquivalence:
    """Every entry point: kwargs and spec= produce byte-identical results."""

    def test_mine_frequent_patterns(self):
        data = sample_graph()
        via_kwargs = mine_frequent_patterns(
            data, measure="mni", min_support=2, max_pattern_nodes=4
        )
        via_spec = mine_frequent_patterns(
            data, spec=MiningSpec(min_support=2, max_pattern_nodes=4)
        )
        assert result_bytes(via_kwargs) == result_bytes(via_spec)

    def test_explicit_kwargs_override_spec(self):
        data = sample_graph()
        loose = mine_frequent_patterns(
            data, spec=MiningSpec(min_support=99), min_support=2
        )
        direct = mine_frequent_patterns(data, min_support=2)
        assert result_bytes(loose) == result_bytes(direct)
        assert len(loose.frequent) > 0

    def test_dynamic_miner(self):
        g1, g2 = sample_graph(), sample_graph()
        with DynamicMiner(g1, min_support=2) as via_kwargs:
            with DynamicMiner(g2, spec=MiningSpec(min_support=2)) as via_spec:
                assert result_bytes(via_kwargs.refresh()) == result_bytes(
                    via_spec.refresh()
                )

    def test_mine_stream(self):
        updates = [("v", 6, "b"), ("e", 5, 6)]
        via_kwargs = list(
            mine_stream(sample_graph(), updates, min_support=2, batch_size=2)
        )
        via_spec = list(
            mine_stream(
                sample_graph(),
                updates,
                spec=MiningSpec(min_support=2, batch_size=2),
            )
        )
        assert len(via_kwargs) == len(via_spec)
        for a, b in zip(via_kwargs, via_spec):
            assert result_bytes(a.result) == result_bytes(b.result)


class TestCliDefaultsSingleSource:
    """The CLI must not re-declare (and drift from) library defaults."""

    def test_mine_defaults_equal_default_spec(self):
        args = build_parser().parse_args(["mine", "g.lg"])
        assert spec_from_args(args) == DEFAULT_SPEC

    def test_mine_stream_defaults_equal_default_spec(self):
        args = build_parser().parse_args(["mine-stream", "g.lg", "u.lg"])
        assert spec_from_args(args, stream=True) == DEFAULT_SPEC

    def test_serve_defaults_equal_default_spec(self):
        args = build_parser().parse_args(["serve", "g.lg"])
        assert spec_from_args(args, stream=True) == DEFAULT_SPEC

    def test_every_spec_flag_reaches_the_spec(self):
        args = build_parser().parse_args(
            [
                "mine-stream",
                "g.lg",
                "u.lg",
                "--measure",
                "mis",
                "--min-support",
                "1",
                "--max-nodes",
                "3",
                "--max-edges",
                "4",
                "--shards",
                "2",
                "--partition",
                "label",
                "--workers",
                "2",
                "--batch-size",
                "3",
                "--window",
                "7",
                "--mode",
                "rebuild",
            ]
        )
        spec = spec_from_args(args, stream=True)
        assert spec == MiningSpec(
            measure="mis",
            min_support=1,
            max_pattern_nodes=3,
            max_pattern_edges=4,
            shards=2,
            partition_method="label",
            workers=2,
            batch_size=3,
            window=7,
            mode="rebuild",
        )


class TestDynamicMinerTeardown:
    def test_abandoned_miner_releases_graph_subscription(self):
        # No detach(), no refresh() — the finalizer must still unhook the
        # observer so an abandoned miner doesn't make the graph grow a
        # delta log forever.
        graph = sample_graph()
        miner = DynamicMiner(graph, min_support=2)
        assert graph.has_observers()
        del miner
        gc.collect()
        assert not graph.has_observers()

    def test_abandoned_pooled_miner_releases_resources(self):
        graph = path_graph(["a", "b", "a", "b", "a", "b"])
        miner = DynamicMiner(graph, min_support=2, shards=2, workers=2)
        miner.refresh()  # the pool is created lazily, on first use
        pool = miner._pool
        assert pool is not None
        del miner
        gc.collect()
        assert not graph.has_observers()
        assert pool._closed

    def test_close_is_idempotent_and_context_managed(self):
        graph = sample_graph()
        with DynamicMiner(graph, min_support=2) as miner:
            miner.refresh()
        assert not graph.has_observers()
        miner.close()  # second release is a no-op
        assert not graph.has_observers()


def test_spec_json_shape_is_pure_data():
    # from_json must accept exactly what to_json emits (dict of
    # JSON-native scalars), making specs wire-safe for the protocol.
    payload = json.loads(MiningSpec(window=5).to_json())
    assert isinstance(payload, dict)
    for value in payload.values():
        assert value is None or isinstance(value, (bool, int, float, str))


class TestLegacyKwargDeprecation:
    """Bare legacy kwargs warn at every public entry point; spec= never does.

    The module-level filterwarnings mark silences the deprecation for the
    equivalence suites above, so these tests re-raise it locally.
    """

    pytestmark = pytest.mark.filterwarnings(
        "error:legacy mining kwargs:DeprecationWarning"
    )

    def test_mine_frequent_patterns_warns(self):
        with pytest.warns(DeprecationWarning, match="legacy mining kwargs"):
            mine_frequent_patterns(sample_graph(), min_support=2)

    def test_frequent_subgraph_miner_warns(self):
        from repro.mining.miner import FrequentSubgraphMiner

        with pytest.warns(DeprecationWarning, match="legacy mining kwargs"):
            FrequentSubgraphMiner(sample_graph(), min_support=2)

    def test_dynamic_miner_warns(self):
        graph = sample_graph()
        with pytest.warns(DeprecationWarning, match="legacy mining kwargs"):
            miner = DynamicMiner(graph, min_support=2)
        miner.close()

    def test_mine_stream_warns(self):
        # mine_stream is a generator: the spec resolves (and warns) when
        # iteration starts, not at the bare call.
        with pytest.warns(DeprecationWarning, match="legacy mining kwargs"):
            list(mine_stream(sample_graph(), [("v", 99, "a")], min_support=2))

    def test_spec_path_is_silent(self):
        # filterwarnings("error") above turns any stray warning into a
        # failure, so plain calls prove the spec= path never warns.
        spec = MiningSpec(min_support=2)
        mine_frequent_patterns(sample_graph(), spec=spec)
        list(mine_stream(sample_graph(), [("v", 99, "a")], spec=spec))
        with DynamicMiner(sample_graph(), spec=spec) as miner:
            miner.refresh()

    def test_resolve_spec_defaults_are_silent(self):
        # No kwargs at all -> pure defaults, nothing legacy to flag.
        assert resolve_spec(None, {}) == DEFAULT_SPEC
