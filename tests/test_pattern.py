"""Unit tests for Pattern and its subpattern machinery."""

import pytest

from repro.errors import PatternError
from repro.graph.builders import path_pattern, triangle_pattern
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.pattern import Pattern


class TestConstruction:
    def test_from_edges(self):
        p = Pattern.from_edges([("v1", "a"), ("v2", "b")], [("v1", "v2")])
        assert p.num_nodes == 2
        assert p.num_edges == 1
        assert p.label_of("v1") == "a"

    def test_single_node(self):
        p = Pattern.single_node("x")
        assert p.num_nodes == 1
        assert p.num_edges == 0

    def test_single_edge(self):
        p = Pattern.single_edge("a", "b")
        assert p.num_nodes == 2
        assert p.edges() == [("v1", "v2")]

    def test_empty_pattern_rejected(self):
        with pytest.raises(PatternError):
            Pattern(LabeledGraph())

    def test_equality_and_hash(self):
        p1 = Pattern.single_edge("a", "b")
        p2 = Pattern.single_edge("a", "b")
        assert p1 == p2
        assert hash(p1) == hash(p2)

    def test_iteration(self):
        p = path_pattern(["a", "b", "c"])
        assert list(p) == ["v1", "v2", "v3"]
        assert len(p) == 3


class TestSubpatternRelation:
    def test_subpattern_of_itself(self):
        p = triangle_pattern("a")
        assert p.is_subpattern_of(p)

    def test_edge_removed_is_subpattern(self):
        p = triangle_pattern("a")
        sub = p.remove_edge_pattern("v1", "v2")
        assert sub.is_subpattern_of(p)
        assert not p.is_subpattern_of(sub)

    def test_induced_subpattern(self):
        p = triangle_pattern("a")
        sub = p.induced_subpattern(["v1", "v2"])
        assert sub.num_nodes == 2
        assert sub.num_edges == 1
        assert sub.is_subpattern_of(p)

    def test_edge_subpattern(self):
        p = triangle_pattern("a")
        sub = p.edge_subpattern([("v1", "v2")])
        assert sub.num_nodes == 2
        assert sub.num_edges == 1


class TestConnectedSubsets:
    def test_path3_connected_subsets(self):
        p = path_pattern(["a", "a", "a"])
        subsets = {tuple(sorted(s)) for s in p.connected_node_subsets()}
        # v1-v2-v3 path: all subsets except the disconnected {v1, v3}.
        assert subsets == {
            ("v1",), ("v2",), ("v3",),
            ("v1", "v2"), ("v2", "v3"),
            ("v1", "v2", "v3"),
        }

    def test_triangle_all_subsets_connected(self):
        p = triangle_pattern("a")
        subsets = p.connected_node_subsets()
        assert len(subsets) == 7  # 3 singletons + 3 pairs + 1 triple

    def test_max_size_limits(self):
        p = path_pattern(["a"] * 5)
        subsets = p.connected_node_subsets(max_size=2)
        assert all(len(s) <= 2 for s in subsets)
        # 5 singletons + 4 adjacent pairs
        assert len(subsets) == 9

    def test_singletons_always_present(self):
        p = path_pattern(["a", "b"])
        subsets = p.connected_node_subsets()
        assert frozenset(["v1"]) in subsets
        assert frozenset(["v2"]) in subsets


class TestConnectedSubpatterns:
    def test_induced_subpatterns_of_triangle(self):
        p = triangle_pattern("a")
        subs = p.connected_subpatterns()
        sizes = sorted((s.num_nodes, s.num_edges) for s in subs)
        assert sizes == [(1, 0), (1, 0), (1, 0), (2, 1), (2, 1), (2, 1), (3, 3)]

    def test_non_induced_includes_spanning_subgraphs(self):
        p = triangle_pattern("a")
        subs = p.connected_subpatterns(induced=False)
        # The three 2-edge spanning paths of the triangle appear as well.
        shapes = [(s.num_nodes, s.num_edges) for s in subs]
        assert shapes.count((3, 2)) == 3

    def test_deduplication_by_signature(self):
        p = path_pattern(["a", "a", "a"])
        subs = p.connected_subpatterns()
        signatures = [s.graph.signature() for s in subs]
        assert len(signatures) == len(set(signatures))


class TestExtensions:
    def test_extend_with_node(self):
        p = Pattern.single_edge("a", "b")
        bigger = p.extend_with_node("v1", "v3", "c")
        assert bigger.num_nodes == 3
        assert bigger.graph.has_edge("v1", "v3")
        # Original untouched.
        assert p.num_nodes == 2

    def test_extend_with_edge(self):
        p = path_pattern(["a", "a", "a"])
        cycle = p.extend_with_edge("v1", "v3")
        assert cycle.num_edges == 3

    def test_remove_edge_pattern_keeps_nodes(self):
        p = triangle_pattern("a")
        sub = p.remove_edge_pattern("v1", "v2")
        assert sub.num_nodes == 3
        assert sub.num_edges == 2
