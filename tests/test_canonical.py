"""Unit tests for canonical certificates and forms."""

import pytest

from repro.errors import GraphError
from repro.graph.builders import (
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.graph.canonical import canonical_certificate, canonical_form
from repro.graph.labeled_graph import LabeledGraph
from repro.isomorphism.vf2 import are_isomorphic


class TestCertificates:
    def test_equal_for_relabeled_graph(self):
        g = cycle_graph(["a", "b", "a", "b"])
        h = g.relabeled({1: "p", 2: "q", 3: "r", 4: "s"})
        assert canonical_certificate(g) == canonical_certificate(h)

    def test_equal_for_permuted_construction(self):
        g1 = LabeledGraph(
            vertices=[(1, "a"), (2, "b"), (3, "a")], edges=[(1, 2), (2, 3)]
        )
        g2 = LabeledGraph(
            vertices=[(3, "a"), (1, "b"), (2, "a")], edges=[(2, 1), (1, 3)]
        )
        assert canonical_certificate(g1) == canonical_certificate(g2)

    def test_different_for_non_isomorphic(self):
        path = path_graph(["a", "a", "a"])
        triangle = cycle_graph(["a", "a", "a"])
        assert canonical_certificate(path) != canonical_certificate(triangle)

    def test_different_for_different_labels(self):
        g1 = path_graph(["a", "a"])
        g2 = path_graph(["a", "b"])
        assert canonical_certificate(g1) != canonical_certificate(g2)

    def test_highly_symmetric_graph(self):
        g = complete_graph(["a"] * 6)
        h = g.relabeled({i: 10 - i for i in range(1, 7)})
        assert canonical_certificate(g) == canonical_certificate(h)

    def test_star_vs_path_same_size(self):
        star = star_graph("a", ["a"] * 3)
        path = path_graph(["a"] * 4)
        assert canonical_certificate(star) != canonical_certificate(path)

    def test_empty_graph(self):
        assert canonical_certificate(LabeledGraph()) == "L[]E[]"

    def test_size_cap_enforced(self):
        g = complete_graph(["a"] * 13)
        with pytest.raises(GraphError):
            canonical_certificate(g)

    def test_size_cap_can_be_raised(self):
        g = path_graph(["a"] * 13)
        assert canonical_certificate(g, max_vertices=13)

    def test_certificate_distinguishes_c6_from_two_c3(self):
        c6 = cycle_graph(["a"] * 6)
        two_c3 = LabeledGraph(
            vertices=[(i, "a") for i in range(1, 7)],
            edges=[(1, 2), (2, 3), (1, 3), (4, 5), (5, 6), (4, 6)],
        )
        assert canonical_certificate(c6) != canonical_certificate(two_c3)


class TestCanonicalForm:
    def test_form_is_isomorphic_to_input(self):
        g = cycle_graph(["a", "b", "a", "b"])
        form = canonical_form(g)
        assert are_isomorphic(g, form)

    def test_isomorphic_inputs_give_equal_forms(self):
        g = star_graph("c", ["l", "l"])
        h = g.relabeled({0: "center", 1: "leafA", 2: "leafB"})
        assert canonical_form(g) == canonical_form(h)

    def test_form_vertices_are_consecutive_ints(self):
        g = path_graph(["a", "b", "c"])
        form = canonical_form(g)
        assert sorted(form.vertices()) == [0, 1, 2]
