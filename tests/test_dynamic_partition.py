"""Dynamic partitions: delta routing, rebalancing, and persisted state.

The mining-level acceptance property (patched sharded miner ==
fresh partition + rebuild, byte for byte) lives in
``tests/test_partition_equivalence.py``; this suite pins the structures
underneath it:

* a delta-patched :class:`ShardedIndex` is **structurally identical** to
  one rebuilt from its own (patched) partition — shard membership, core
  edges, halos, label-pair directory, merged histogram;
* the :class:`EdgeRouter` continues each partitioner's placement rule
  deterministically, and its state survives ``save_partition`` /
  ``load_partition`` so a loaded partition keeps absorbing deltas
  exactly like the saved one;
* :class:`ShardedIndexMaintainer` shares the flat maintainer's
  rebuild/coalesce bookkeeping (gaps rebuild, bursts coalesce, runs
  patch) and applies the :class:`RebalancePolicy` triggers;
* ``repro partition --rebalance`` absorbs on-disk graph drift and
  re-balances in place.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.cli import main
from repro.datasets.synthetic import random_labeled_graph
from repro.errors import PartitionError
from repro.graph.io import save_graph
from repro.graph.labeled_graph import LabeledGraph
from repro.index import MaintainableIndex
from repro.mining.miner import mine_frequent_patterns
from repro.partition import (
    PARTITION_METHODS,
    EdgeRouter,
    Partition,
    RebalancePolicy,
    ShardedIndex,
    ShardedIndexMaintainer,
    absorb_graph,
    load_partition,
    partition_edges,
    save_partition,
)

# These suites deliberately exercise the legacy-kwarg entry points
# alongside spec=; the deprecation they trigger is the point, not noise.
pytestmark = pytest.mark.filterwarnings(
    "ignore:legacy mining kwargs:DeprecationWarning"
)

MINE_KWARGS = dict(
    measure="mni", min_support=2, max_pattern_nodes=4, max_pattern_edges=4
)


def build_graph(seed, size=14, p=0.25, alphabet=("A", "B", "C")):
    return random_labeled_graph(size, p, alphabet=alphabet, seed=seed)


def churn_randomly(graph, rng, steps, alphabet, tag):
    applied = 0
    serial = 0
    while applied < steps:
        roll = rng.random()
        if roll < 0.25:
            graph.add_vertex(f"{tag}-{serial}", rng.choice(alphabet))
            serial += 1
            applied += 1
        elif roll < 0.5 and graph.num_edges > 3:
            graph.remove_edge(*rng.choice(graph.edges()))
            applied += 1
        elif roll < 0.6 and graph.num_vertices > 6:
            graph.remove_vertex(rng.choice(graph.vertices()))
            applied += 1
        else:
            u, v = rng.sample(graph.vertices(), 2)
            if not graph.has_edge(u, v):
                graph.add_edge(u, v)
                applied += 1


def sharded_structure(sharded):
    """Every structure delta maintenance patches, via the public API."""
    return {
        "version": sharded.version,
        "histogram": dict(sharded.label_histogram()),
        "directory": dict(sharded.label_pair_directory()),
        "assignment": dict(sharded.partition.assignment),
        "vertex_assignment": dict(sharded.partition.vertex_assignment),
        "members": [sorted(s.graph.vertices(), key=repr) for s in sharded.shards],
        "shard_edges": [s.graph.edges() for s in sharded.shards],
        "core_edges": [s.core_edges for s in sharded.shards],
        "halos": [set(s.halo_vertices) for s in sharded.shards],
        "boundary": sharded.boundary_vertices(),
    }


def rebuilt_from_partition(sharded):
    """A ShardedIndex rebuilt from scratch over the *patched* partition."""
    rebuilt = ShardedIndex(
        sharded.graph,
        Partition(
            num_shards=sharded.num_shards,
            method=sharded.partition.method,
            assignment=dict(sharded.partition.assignment),
            vertex_assignment=dict(sharded.partition.vertex_assignment),
        ),
    )
    return rebuilt


class TestShardedApplyDelta:
    @pytest.mark.parametrize("method", PARTITION_METHODS)
    @pytest.mark.parametrize("seed", [0, 3, 7])
    def test_patched_structure_identical_to_rebuilt(self, seed, method):
        graph = build_graph(seed)
        maintainer = ShardedIndexMaintainer(graph, 3, method)
        rng = random.Random(seed * 101 + 9)
        for batch in range(5):
            churn_randomly(graph, rng, steps=6, alphabet="ABCD", tag=f"b{batch}")
            patched = maintainer.sharded()
            reference = rebuilt_from_partition(patched)
            got, want = sharded_structure(patched), sharded_structure(reference)
            assert got == dict(want, version=got["version"])
            assert patched.version == graph.mutation_version()
        assert maintainer.rebuilds == 0
        assert maintainer.patches_applied >= 5

    def test_isolated_vertex_lifecycle(self):
        """VertexAdded -> EdgeAdded -> EdgeRemoved -> VertexRemoved round trip."""
        graph = build_graph(5)
        maintainer = ShardedIndexMaintainer(graph, 3, "hash")
        graph.add_vertex("lone", "B")
        patched = maintainer.sharded()
        assert patched.partition.vertex_assignment["lone"] == (
            patched.router().route_vertex("lone")
        )
        anchor = next(v for v in graph.vertices() if v != "lone")
        graph.add_edge(anchor, "lone")
        patched = maintainer.sharded()
        # No longer isolated: the explicit assignment is retired, exactly
        # as a fresh partition would have it.
        assert "lone" not in patched.partition.vertex_assignment
        graph.remove_edge(anchor, "lone")
        patched = maintainer.sharded()
        assert "lone" in patched.partition.vertex_assignment
        graph.remove_vertex("lone")
        patched = maintainer.sharded()
        assert "lone" not in patched.partition.vertex_assignment
        assert all(not s.graph.has_vertex("lone") for s in patched.shards)
        assert sharded_structure(patched) == dict(
            sharded_structure(rebuilt_from_partition(patched)),
            version=patched.version,
        )
        assert maintainer.rebuilds == 0

    def test_expansion_cache_survives_remote_deltas(self):
        """A delta outside a cached expansion's ball leaves the view cached."""
        graph = LabeledGraph(name="two-islands")
        for i in range(4):
            graph.add_vertex(f"l{i}", "A")
            graph.add_vertex(f"r{i}", "B")
        for i in range(3):
            graph.add_edge(f"l{i}", f"l{i + 1}")
            graph.add_edge(f"r{i}", f"r{i + 1}")
        assignment = {}
        for u, v in graph.edges():
            assignment[(u, v)] = 0 if u.startswith("l") else 1
        partition = Partition(
            num_shards=2, method="hash", assignment=assignment,
            vertex_assignment={},
        )
        sharded = ShardedIndex(graph, partition)
        maintainer = ShardedIndexMaintainer(sharded=sharded)
        left_view = sharded.expanded_shard(0, 1)
        right_view = sharded.expanded_shard(1, 1)
        # Remove a middle right-island edge: no vertex isolates, so only
        # the right shard's views are touched.
        graph.remove_edge("r1", "r2")
        patched = maintainer.sharded()
        assert patched is sharded
        assert sharded.expanded_shard(0, 1) is left_view  # cache survives
        fresh_right = sharded.expanded_shard(1, 1)
        assert fresh_right is not right_view  # invalidated and rebuilt
        assert not fresh_right.has_edge("r1", "r2")

    def test_maintainable_protocol(self):
        graph = build_graph(11)
        sharded = ShardedIndex.build(graph, 2, "label")
        assert isinstance(sharded, MaintainableIndex)
        assert sharded.is_current()
        graph.add_vertex("new", "A")
        assert not sharded.is_current()
        rebuilt = sharded.rebuilt()
        assert rebuilt.is_current()
        assert rebuilt.num_shards == 2
        assert rebuilt.partition.method == "label"


class TestShardedMaintainerLifecycle:
    def test_gap_rebuilds_then_patches(self):
        graph = build_graph(2)
        maintainer = ShardedIndexMaintainer(graph, 3, "hash")
        maintainer.detach()
        graph.add_vertex("gap", "A")
        maintainer_view = maintainer.sharded()
        assert maintainer.rebuilds == 1
        assert maintainer_view.is_current()
        attached = ShardedIndexMaintainer(graph, 3, "hash")
        graph.remove_edge(*graph.edges()[0])
        attached_view = attached.sharded()
        assert attached.patches_applied == 1
        assert attached.rebuilds == 0
        assert attached_view.is_current()

    def test_burst_coalesces_into_one_repartition(self):
        graph = build_graph(4, size=16, p=0.35)
        maintainer = ShardedIndexMaintainer(graph, 2, "hash", patch_limit=3)
        for u, v in list(graph.edges())[:8]:
            graph.remove_edge(u, v)
        assert maintainer.rebuild_pending
        view = maintainer.sharded()
        assert maintainer.rebuilds == 1
        assert maintainer.deltas_coalesced == 8
        assert view.is_current()
        assert sharded_structure(view) == dict(
            sharded_structure(rebuilt_from_partition(view)), version=view.version
        )

    def test_noop_refresh_returns_same_object(self):
        graph = build_graph(6)
        maintainer = ShardedIndexMaintainer(graph, 2, "edgecut")
        first = maintainer.sharded()
        assert maintainer.sharded() is first
        assert maintainer.patches_applied == 0

    def test_rejects_mismatched_graph_and_sharded(self):
        graph = build_graph(7)
        other = build_graph(8)
        sharded = ShardedIndex.build(other, 2, "hash")
        with pytest.raises(PartitionError):
            ShardedIndexMaintainer(graph, sharded=sharded)
        with pytest.raises(PartitionError):
            ShardedIndexMaintainer()


class TestRebalancing:
    def skewed_maintainer(self, policy):
        """A 3-shard partition with every edge piled onto shard 0."""
        graph = build_graph(9, size=16, p=0.3)
        assignment = {edge: 0 for edge in graph.edges()}
        partition = Partition(
            num_shards=3, method="hash", assignment=assignment,
            vertex_assignment={},
        )
        sharded = ShardedIndex(graph, partition)
        return graph, ShardedIndexMaintainer(sharded=sharded, policy=policy)

    def test_overflowing_shard_sheds_edges(self):
        import math

        graph, maintainer = self.skewed_maintainer(
            RebalancePolicy(max_load_factor=1.25)
        )
        view = maintainer.sharded()
        loads = [shard.num_core_edges for shard in view.shards]
        capacity = max(1, math.ceil(1.25 * sum(loads) / 3))
        assert max(loads) <= capacity
        assert maintainer.edges_moved > 0
        assert maintainer.rebalances == 1
        # Moves preserve the partition invariants exactly.
        assert sharded_structure(view) == dict(
            sharded_structure(rebuilt_from_partition(view)), version=view.version
        )
        # ... and mining over the rebalanced partition stays exact.
        sharded_result = mine_frequent_patterns(graph.copy(), shards=3, **MINE_KWARGS)
        flat_result = mine_frequent_patterns(graph.copy(), **MINE_KWARGS)
        assert sharded_result.certificates() == flat_result.certificates()

    def test_rebalance_is_deterministic(self):
        first_graph, first = self.skewed_maintainer(RebalancePolicy(1.25))
        second_graph, second = self.skewed_maintainer(RebalancePolicy(1.25))
        assert (
            first.sharded().partition.assignment
            == second.sharded().partition.assignment
        )

    def test_replication_trigger_falls_back_to_full_repartition(self):
        graph = build_graph(10, size=16, p=0.35)
        maintainer = ShardedIndexMaintainer(
            graph, 4, "hash", policy=RebalancePolicy(1.5, max_replication=1.01)
        )
        before = maintainer.sharded()
        if before.replication_factor() <= 1.01:  # pragma: no cover - guard
            pytest.skip("hash partition unexpectedly local")
        assert maintainer.full_repartitions >= 1
        after = maintainer.sharded()
        assert after.is_current()

    def test_balanced_partition_is_untouched(self):
        graph = build_graph(12)
        maintainer = ShardedIndexMaintainer(
            graph, 2, "hash", policy=RebalancePolicy(max_load_factor=2.0)
        )
        view = maintainer.sharded()
        assert maintainer.edges_moved == 0
        assert view.partition.assignment == partition_edges(graph, 2, "hash").assignment

    def test_policy_validation(self):
        with pytest.raises(PartitionError):
            RebalancePolicy(max_load_factor=0.5)
        with pytest.raises(PartitionError):
            RebalancePolicy(max_replication=0.9)
        graph = build_graph(13)
        with pytest.raises(PartitionError):
            ShardedIndex.build(graph, 2, "hash").rebalance(0.8)


class TestRouter:
    def test_hash_routing_matches_static_partitioner(self):
        graph = build_graph(1, size=18, p=0.3)
        sharded = ShardedIndex.build(graph, 3, "hash")
        router = sharded.router()
        static = partition_edges(graph, 3, "hash")
        for u, v in graph.edges():
            assert router.route_edge(
                u, v, graph.label_of(u), graph.label_of(v)
            ) == static.assignment[(u, v)]

    def test_label_routing_is_sticky(self):
        graph = build_graph(3, alphabet=("A", "B"))
        maintainer = ShardedIndexMaintainer(graph, 2, "label")
        sharded = maintainer.sharded()
        pair_home = {}
        for (lu, lv), shards in sharded.label_pair_directory().items():
            assert len(shards) == 1  # label placement keeps pairs whole
            pair_home[(lu, lv)] = shards[0]
        graph.add_vertex("xa", "A")
        graph.add_vertex("xb", "B")
        graph.add_edge("xa", "xb")
        patched = maintainer.sharded()
        home = pair_home.get(("A", "B"))
        if home is not None:
            assert patched.partition.assignment[("xa", "xb")] == home

    def test_router_loads_stay_exact_when_first_touch_is_a_removal(self):
        """The router must materialize from *pre-delta* state.

        A lazily built router constructed mid-splice (after the detach
        already shrank the shard) would under-count the removed edge.
        """
        graph = build_graph(14)
        maintainer = ShardedIndexMaintainer(graph, 3, "hash")
        graph.remove_edge(*graph.edges()[0])
        patched = maintainer.sharded()  # first router touch is EdgeRemoved
        assert patched.router().loads == [
            shard.num_core_edges for shard in patched.shards
        ]

    def test_router_loads_stay_exact_when_first_touch_is_rebalance(self):
        """Same hazard on the rebalance path (router built mid-move)."""
        graph = build_graph(15, size=16, p=0.3)
        assignment = {edge: 0 for edge in graph.edges()}
        partition = Partition(
            num_shards=2, method="label", assignment=assignment,
            vertex_assignment={},
        )
        sharded = ShardedIndex(graph, partition)
        assert sharded.rebalance(1.0) > 0  # router is built mid-call
        assert sharded.router().loads == [
            shard.num_core_edges for shard in sharded.shards
        ]

    def test_router_reconstruction_matches_live_router(self):
        graph = build_graph(6)
        maintainer = ShardedIndexMaintainer(graph, 3, "edgecut")
        rng = random.Random(77)
        churn_randomly(graph, rng, steps=8, alphabet="ABC", tag="r")
        patched = maintainer.sharded()
        live = patched.router()
        rebuilt = EdgeRouter.for_sharded(patched)
        assert rebuilt.loads == live.loads
        assert rebuilt.method == live.method

    def test_invalid_router_arguments(self):
        with pytest.raises(PartitionError):
            EdgeRouter("metis", 2)
        with pytest.raises(PartitionError):
            EdgeRouter("hash", 0)


class TestPersistedAssignmentState:
    @pytest.mark.parametrize("method", PARTITION_METHODS)
    def test_loaded_partition_absorbs_deltas_like_the_saved_one(self, tmp_path, method):
        graph = build_graph(4, size=16, p=0.3)
        live = ShardedIndexMaintainer(graph, 3, method)
        save_partition(live.sharded(), tmp_path / "saved")
        loaded = load_partition(tmp_path / "saved")
        loaded_maintainer = ShardedIndexMaintainer(sharded=loaded)
        # Apply the same churn to both graphs; routing must agree step
        # for step, so the partitions stay identical.
        live_rng = random.Random(4242)
        loaded_rng = random.Random(4242)
        churn_randomly(graph, live_rng, steps=10, alphabet="ABC", tag="s")
        churn_randomly(loaded.graph, loaded_rng, steps=10, alphabet="ABC", tag="s")
        patched_live = live.sharded()
        patched_loaded = loaded_maintainer.sharded()
        assert loaded_maintainer.rebuilds == 0
        assert patched_loaded.partition.assignment == (
            patched_live.partition.assignment
        )
        assert patched_loaded.partition.vertex_assignment == (
            patched_live.partition.vertex_assignment
        )

    def test_sticky_pair_state_survives_round_trip(self, tmp_path):
        """A pair whose edges were all deleted still routes to its old home.

        Shard files alone cannot express this — it is exactly the
        assignment state the format 2 manifest persists.
        """
        graph = LabeledGraph(name="sticky")
        for i in range(3):
            graph.add_vertex(f"a{i}", "A")
            graph.add_vertex(f"b{i}", "B")
            graph.add_vertex(f"c{i}", "C")
        graph.add_edge("a0", "b0")
        for i in range(3):
            graph.add_edge(f"b{i}", f"c{i}")
        maintainer = ShardedIndexMaintainer(graph, 2, "label")
        sharded = maintainer.sharded()
        ab_home = sharded.partition.assignment[("a0", "b0")]
        graph.remove_edge("a0", "b0")  # the last A-B edge disappears
        save_partition(maintainer.sharded(), tmp_path / "sticky")
        loaded = load_partition(tmp_path / "sticky")
        assert loaded.router().route_edge("a1", "b1", "A", "B") == ab_home

    def test_manifest_format_and_fields(self, tmp_path):
        graph = build_graph(2)
        graph.add_vertex("loner", "C")
        sharded = ShardedIndex.build(graph, 3, "label")
        manifest_path = save_partition(sharded, tmp_path / "v2")
        manifest = json.loads(manifest_path.read_text())
        assert manifest["format"] == 2
        assert ["loner", sharded.partition.vertex_assignment["loner"]] in (
            manifest["vertex_assignment"]
        )
        assert manifest["router"]["loads"] == [
            shard.num_core_edges for shard in sharded.shards
        ]
        assert manifest["router"]["pair_shards"]

    def test_format_1_manifest_still_loads(self, tmp_path):
        graph = build_graph(3)
        graph.add_vertex("island", "B")
        sharded = ShardedIndex.build(graph, 2, "hash")
        manifest_path = save_partition(sharded, tmp_path / "v1")
        manifest = json.loads(manifest_path.read_text())
        manifest["format"] = 1
        del manifest["vertex_assignment"]
        del manifest["router"]
        manifest_path.write_text(json.dumps(manifest))
        loaded = load_partition(tmp_path / "v1")
        assert loaded.graph == graph
        assert loaded.partition.vertex_assignment == (
            sharded.partition.vertex_assignment
        )
        # A reconstructed router still routes (no persisted stickiness).
        assert 0 <= loaded.router().route_edge("island", 0, "B", "A") < 2

    def test_unknown_assigned_vertex_rejected(self, tmp_path):
        graph = build_graph(5)
        sharded = ShardedIndex.build(graph, 2, "hash")
        manifest_path = save_partition(sharded, tmp_path / "bad")
        manifest = json.loads(manifest_path.read_text())
        manifest["vertex_assignment"] = [["ghost", 1]]
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(PartitionError):
            load_partition(tmp_path / "bad")

    @pytest.mark.parametrize("shard_id", [-1, 5])
    def test_out_of_range_manifest_shard_ids_rejected(self, tmp_path, shard_id):
        graph = build_graph(6)
        graph.add_vertex("stray", "A")
        sharded = ShardedIndex.build(graph, 2, "label")
        manifest_path = save_partition(sharded, tmp_path / "range")
        manifest = json.loads(manifest_path.read_text())
        manifest["vertex_assignment"] = [["stray", shard_id]]
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(PartitionError):
            load_partition(tmp_path / "range")
        manifest["vertex_assignment"] = [
            ["stray", sharded.partition.vertex_assignment["stray"]]
        ]
        manifest["router"]["pair_shards"] = [["A", "B", shard_id]]
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(PartitionError):
            load_partition(tmp_path / "range")


class TestAbsorbGraph:
    def test_absorbs_drift_and_stays_exact(self):
        graph = build_graph(8, size=16, p=0.3)
        maintainer = ShardedIndexMaintainer(graph, 3, "label")
        maintainer.sharded()
        target = graph.copy()
        rng = random.Random(99)
        churn_randomly(target, rng, steps=8, alphabet="ABC", tag="d")
        applied = absorb_graph(graph, target)
        assert applied > 0
        assert graph == target
        patched = maintainer.sharded()
        assert maintainer.rebuilds == 0
        assert sharded_structure(patched) == dict(
            sharded_structure(rebuilt_from_partition(patched)),
            version=patched.version,
        )

    def test_noop_absorb(self):
        graph = build_graph(9)
        assert absorb_graph(graph, graph.copy()) == 0

    def test_relabel_rejected(self):
        graph = LabeledGraph(vertices=[(1, "A")])
        target = LabeledGraph(vertices=[(1, "B")])
        with pytest.raises(PartitionError):
            absorb_graph(graph, target)


class TestRebalanceCLI:
    def test_rebalance_round_trip(self, tmp_path, capsys):
        graph = build_graph(1, size=18, p=0.3)
        graph_path = tmp_path / "g.lg"
        save_graph(graph, graph_path)
        outdir = tmp_path / "shards"
        code = main(
            ["partition", str(graph_path), str(outdir), "--shards", "3",
             "--method", "label"]
        )
        assert code == 0
        capsys.readouterr()
        # Drift the graph on disk, then absorb + rebalance in place.
        rng = random.Random(5)
        anchor = graph.vertices()[0]
        for i in range(5):
            graph.add_vertex(f"n{i}", rng.choice("ABC"))
            graph.add_edge(anchor, f"n{i}")
        graph.remove_edge(*graph.edges()[-1])
        save_graph(graph, graph_path)
        code = main(
            ["partition", str(graph_path), str(outdir), "--rebalance",
             "--max-load", "1.2"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "absorbed" in output
        assert "re-partition" in output
        loaded = load_partition(outdir)
        assert loaded.graph == graph
        sharded_result = mine_frequent_patterns(graph.copy(), shards=3, **MINE_KWARGS)
        flat_result = mine_frequent_patterns(graph.copy(), **MINE_KWARGS)
        assert sharded_result.certificates() == flat_result.certificates()
