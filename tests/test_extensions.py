"""Tests for the PMVC framework extension and the edge-overlap kind."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets.paper_figures import load_figure
from repro.datasets.synthetic import random_labeled_graph
from repro.graph.builders import path_pattern, star_pattern, triangle_pattern
from repro.hypergraph.construction import HypergraphBundle
from repro.hypergraph.overlap import occurrence_overlap_graph
from repro.isomorphism.matcher import find_occurrences
from repro.measures.base import compute_support, measure_info
from repro.measures.extensions import (
    projected_hypergraph,
    projected_mvc_breakdown,
    projected_mvc_support_from_occurrences,
)
from repro.measures.mi import mi_support_from_occurrences
from repro.measures.mvc import mvc_support_of


class TestProjectedHypergraph:
    def test_deduplicates_image_sets(self, fig2):
        occurrences = find_occurrences(fig2.pattern, fig2.data_graph)
        full_orbit = frozenset({"v1", "v2", "v3"})
        projected = projected_hypergraph(full_orbit, occurrences)
        # All six occurrences share the image set {1, 2, 3}.
        assert projected.num_edges == 1

    def test_singleton_projection_edges_are_vertices(self, fig4):
        occurrences = find_occurrences(fig4.pattern, fig4.data_graph)
        projected = projected_hypergraph(frozenset({"v1"}), occurrences)
        assert projected.num_edges == 2  # images 1 and 4
        assert projected.uniformity() == 1


class TestPMVCSandwich:
    @pytest.mark.parametrize("figure_id", [f"fig{i}" for i in range(1, 11)])
    def test_between_mvc_and_mi_on_figures(self, figure_id):
        fig = load_figure(figure_id)
        bundle = HypergraphBundle.build(fig.pattern, fig.data_graph)
        pmvc = projected_mvc_support_from_occurrences(
            fig.pattern, bundle.occurrences
        )
        mvc = mvc_support_of(bundle.occurrence_hg)
        mi = mi_support_from_occurrences(fig.pattern, bundle.occurrences)
        assert mvc <= pmvc <= mi, figure_id

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=5_000))
    def test_sandwich_on_random_graphs(self, seed):
        graph = random_labeled_graph(10, 0.3, alphabet=("A", "B"), seed=seed)
        pattern = path_pattern(["A", "A"])
        bundle = HypergraphBundle.build(pattern, graph)
        if not bundle.occurrences:
            return
        pmvc = projected_mvc_support_from_occurrences(pattern, bundle.occurrences)
        mvc = mvc_support_of(bundle.occurrence_hg)
        mi = mi_support_from_occurrences(pattern, bundle.occurrences)
        assert mvc <= pmvc <= mi

    def test_strictly_below_mi_on_chained_stars(self):
        # Three stars whose leaf pairs chain ({2,3}, {3,5}, {5,6}): the
        # leaf-orbit image sets are distinct (so MI counts 3) but overlap
        # pairwise, so a 2-vertex cover {3, 5} exists and PMVC = 2.
        from repro.graph.labeled_graph import LabeledGraph

        graph = LabeledGraph(
            vertices=[
                (1, "A"), (4, "A"), (7, "A"),
                (2, "B"), (3, "B"), (5, "B"), (6, "B"),
            ],
            edges=[(1, 2), (1, 3), (4, 3), (4, 5), (7, 5), (7, 6)],
        )
        pattern = star_pattern("A", ["B", "B"])
        occurrences = find_occurrences(pattern, graph)
        mi = mi_support_from_occurrences(pattern, occurrences)
        pmvc = projected_mvc_support_from_occurrences(pattern, occurrences)
        assert mi == 3
        assert pmvc == 2


class TestPMVCAntiMonotonicity:
    def test_fig5_extension(self):
        fig = load_figure("fig5")
        sub_occ = find_occurrences(fig.pattern, fig.data_graph)
        sup_occ = find_occurrences(fig.superpattern, fig.data_graph)
        assert projected_mvc_support_from_occurrences(
            fig.pattern, sub_occ
        ) >= projected_mvc_support_from_occurrences(fig.superpattern, sup_occ)

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2_000))
    def test_triangle_vs_path_on_random(self, seed):
        graph = random_labeled_graph(9, 0.4, alphabet=("A",), seed=seed)
        triangle = triangle_pattern("A")
        path = triangle.remove_edge_pattern("v1", "v3")
        tri_occ = find_occurrences(triangle, graph)
        path_occ = find_occurrences(path, graph)
        assert projected_mvc_support_from_occurrences(
            path, path_occ
        ) >= projected_mvc_support_from_occurrences(triangle, tri_occ)


class TestPMVCRegistry:
    def test_registered_and_anti_monotonic(self):
        info = measure_info("pmvc")
        assert info.anti_monotonic

    def test_zero_when_absent(self):
        graph = random_labeled_graph(4, 0.0, alphabet=("A",), seed=1)
        assert compute_support("pmvc", triangle_pattern("A"), graph) == 0.0

    def test_breakdown_rows_respect_mi_bound(self, fig6):
        occurrences = find_occurrences(fig6.pattern, fig6.data_graph)
        for _subset, c_t, projected in projected_mvc_breakdown(
            fig6.pattern, occurrences
        ):
            assert projected <= c_t


class TestEdgeOverlapKind:
    def test_edge_overlap_graph_is_sparser_than_simple(self, fig6):
        occurrences = find_occurrences(fig6.pattern, fig6.data_graph)
        simple = occurrence_overlap_graph(fig6.pattern, occurrences, kind="simple")
        edge = occurrence_overlap_graph(fig6.pattern, occurrences, kind="edge")
        assert edge.num_edges <= simple.num_edges

    def test_edge_overlap_on_fig2_triangle(self, fig2):
        # All six occurrences use the same three data edges: complete graph.
        occurrences = find_occurrences(fig2.pattern, fig2.data_graph)
        graph = occurrence_overlap_graph(fig2.pattern, occurrences, kind="edge")
        assert graph.num_edges == 15  # C(6, 2)

    def test_vertex_share_without_edge_share(self):
        fig = load_figure("fig10")
        occurrences = find_occurrences(fig.pattern, fig.data_graph)
        simple = occurrence_overlap_graph(fig.pattern, occurrences, kind="simple")
        edge = occurrence_overlap_graph(fig.pattern, occurrences, kind="edge")
        # f1/f2/f3 share vertices but never a data edge.
        assert simple.num_edges == 3
        assert edge.num_edges == 0
