"""Unit tests for the standalone two-phase simplex solver."""

import pytest

from repro.errors import InfeasibleLPError, LPError, UnboundedLPError
from repro.lp.simplex import solve_bounded, solve_standard


class TestSolveStandard:
    def test_trivial_minimum_at_origin(self):
        x, value = solve_standard([1.0, 1.0], [[1.0, 1.0]], [10.0])
        assert value == pytest.approx(0.0)
        assert x == pytest.approx([0.0, 0.0])

    def test_negative_cost_pushes_to_constraint(self):
        # min -x1 s.t. x1 <= 4  -> x1 = 4.
        x, value = solve_standard([-1.0], [[1.0]], [4.0])
        assert value == pytest.approx(-4.0)
        assert x[0] == pytest.approx(4.0)

    def test_two_variable_lp(self):
        # min -3x - 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (classic).
        x, value = solve_standard(
            [-3.0, -5.0],
            [[1.0, 0.0], [0.0, 2.0], [3.0, 2.0]],
            [4.0, 12.0, 18.0],
        )
        assert value == pytest.approx(-36.0)
        assert x == pytest.approx([2.0, 6.0])

    def test_ge_constraints_via_negative_rhs(self):
        # min x1 + x2 s.t. x1 + x2 >= 1  (written as -x1 - x2 <= -1).
        x, value = solve_standard([1.0, 1.0], [[-1.0, -1.0]], [-1.0])
        assert value == pytest.approx(1.0)

    def test_infeasible(self):
        # x1 <= -1 with x1 >= 0 is infeasible.
        with pytest.raises(InfeasibleLPError):
            solve_standard([1.0], [[1.0]], [-1.0])

    def test_unbounded(self):
        # min -x1 with no constraints binding x1.
        with pytest.raises(UnboundedLPError):
            solve_standard([-1.0], [[0.0]], [1.0])

    def test_dimension_mismatch(self):
        with pytest.raises(LPError):
            solve_standard([1.0], [[1.0, 2.0]], [1.0])
        with pytest.raises(LPError):
            solve_standard([1.0], [[1.0]], [1.0, 2.0])

    def test_degenerate_redundant_constraints(self):
        # Duplicate >= rows exercise the artificial-variable cleanup.
        x, value = solve_standard(
            [1.0, 1.0],
            [[-1.0, -1.0], [-1.0, -1.0]],
            [-1.0, -1.0],
        )
        assert value == pytest.approx(1.0)


class TestSolveBounded:
    def test_vertex_cover_lp_of_triangle(self):
        # Fractional vertex cover of K3 is 3 * 1/2.
        rows = [[-1.0, -1.0, 0.0], [0.0, -1.0, -1.0], [-1.0, 0.0, -1.0]]
        x, value = solve_bounded(
            [1.0, 1.0, 1.0], rows, [-1.0, -1.0, -1.0], [(0.0, 1.0)] * 3
        )
        assert value == pytest.approx(1.5)
        assert all(abs(v - 0.5) < 1e-6 for v in x)

    def test_maximization(self):
        # max x1 + x2 s.t. x1 + x2 <= 1.5, x in [0, 1].
        x, value = solve_bounded(
            [1.0, 1.0], [[1.0, 1.0]], [1.5], [(0.0, 1.0)] * 2, sense="max"
        )
        assert value == pytest.approx(1.5)

    def test_nonzero_lower_bounds(self):
        # min x s.t. x in [2, 5] -> 2.
        x, value = solve_bounded([1.0], [], [], [(2.0, 5.0)])
        assert value == pytest.approx(2.0)
        assert x[0] == pytest.approx(2.0)

    def test_invalid_sense(self):
        with pytest.raises(LPError):
            solve_bounded([1.0], [], [], [(0.0, 1.0)], sense="sideways")

    def test_bounds_length_mismatch(self):
        with pytest.raises(LPError):
            solve_bounded([1.0, 1.0], [], [], [(0.0, 1.0)])


class TestAgainstScipy:
    """Cross-validate the simplex against scipy on random LPs."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_covering_lps(self, seed):
        import random

        scipy = pytest.importorskip("scipy.optimize")
        rng = random.Random(seed)
        num_vars = rng.randint(2, 6)
        num_rows = rng.randint(1, 6)
        rows = []
        for _ in range(num_rows):
            members = rng.sample(range(num_vars), k=rng.randint(1, num_vars))
            row = [-1.0 if j in members else 0.0 for j in range(num_vars)]
            rows.append(row)
        rhs = [-1.0] * num_rows
        objective = [1.0] * num_vars
        bounds = [(0.0, 1.0)] * num_vars

        _, ours = solve_bounded(objective, rows, rhs, bounds)
        result = scipy.linprog(
            c=objective, A_ub=rows, b_ub=rhs, bounds=bounds, method="highs"
        )
        assert result.success
        assert ours == pytest.approx(result.fun, abs=1e-7)
