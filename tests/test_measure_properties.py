"""Property-based (seeded-random) checks of the paper's measure theorems.

Three families, each exercised over seeded random workloads:

* the Section 4.4 **bounding chain**
  ``sigma_MIS = sigma_MIES <= nu_MIES = nu_MVC <= sigma_MVC <= sigma_MI
  <= sigma_MNI`` plus the MNI upper bounds (occurrence count and the
  rarest-pattern-label frequency used by the miner's pre-enumeration
  prune);
* **anti-monotonicity** spot checks: extending a pattern by one edge can
  never increase any anti-monotonic measure's support;
* the Section 4.5 **containment theorems**: harmful and structural
  overlap each imply simple overlap (and neither implies the other in
  general — witnessed by the paper's figures, spot-checked here).
"""

from __future__ import annotations

import pytest

from repro.datasets.synthetic import planted_pattern_graph, random_labeled_graph
from repro.graph.builders import path_pattern, star_pattern
from repro.hypergraph.overlap import (
    harmful_overlap,
    overlap_statistics,
    simple_overlap,
    structural_overlap,
)
from repro.isomorphism.matcher import find_occurrences
from repro.measures.base import compute_support
from repro.measures.bounds import verify_bounding_chain
from repro.measures.lazy_mni import lazy_mni_support
from repro.mining.extension import (
    adjacent_label_pairs,
    all_extensions,
    single_edge_patterns,
)
from repro.mining.miner import mine_frequent_patterns
from repro.mining.parallel import label_frequency_bound

# These suites deliberately exercise the legacy-kwarg entry points
# alongside spec=; the deprecation they trigger is the point, not noise.
pytestmark = pytest.mark.filterwarnings(
    "ignore:legacy mining kwargs:DeprecationWarning"
)

CHAIN_PATTERNS = [
    path_pattern(["A", "B"]),
    path_pattern(["A", "B", "A"]),
    star_pattern("B", ["A", "A"]),
]

ANTI_MONOTONIC_MEASURES = ("mni", "mi", "mvc", "mis")


def random_graph(seed: int):
    alphabet = ("A", "B", "C") if seed % 2 else ("A", "B")
    return random_labeled_graph(12 + seed % 5, 0.3, alphabet=alphabet, seed=seed)


class TestBoundingChain:
    @pytest.mark.parametrize("seed", range(12))
    def test_chain_holds_on_random_graphs(self, seed):
        graph = random_graph(seed)
        for pattern in CHAIN_PATTERNS:
            if not find_occurrences(pattern, graph, limit=1):
                continue
            report = verify_bounding_chain(pattern, graph, include_mcp=False)
            assert report.holds, report.violations

    @pytest.mark.parametrize("seed", range(12, 20))
    def test_mni_upper_bounds(self, seed):
        graph = random_graph(seed)
        histogram = graph.label_histogram()
        for pattern in CHAIN_PATTERNS:
            occurrences = find_occurrences(pattern, graph)
            mni = compute_support("mni", pattern, graph)
            assert mni <= len(occurrences)
            # The label-frequency bound that justifies the miner's
            # pre-enumeration prune (GraMi trick).
            assert mni <= label_frequency_bound(pattern, histogram)

    @pytest.mark.parametrize("seed", range(20, 26))
    def test_lazy_mni_equals_eager_mni(self, seed):
        graph = random_graph(seed)
        for pattern in CHAIN_PATTERNS:
            assert lazy_mni_support(pattern, graph) == compute_support(
                "mni", pattern, graph
            )


class TestAntiMonotonicity:
    @pytest.mark.parametrize("seed", range(8))
    def test_one_edge_extension_never_gains_support(self, seed):
        graph = random_graph(seed)
        label_pairs = adjacent_label_pairs(graph)
        for parent in single_edge_patterns(graph)[:2]:
            parent_supports = {
                m: compute_support(m, parent, graph) for m in ANTI_MONOTONIC_MEASURES
            }
            extensions = list(
                all_extensions(parent, label_pairs, max_nodes=3, max_edges=3)
            )[:4]
            for child in extensions:
                for measure in ANTI_MONOTONIC_MEASURES:
                    child_support = compute_support(measure, child, graph)
                    assert child_support <= parent_supports[measure] + 1e-9, (
                        f"{measure} grew from {parent_supports[measure]} to "
                        f"{child_support} under one-edge extension (seed {seed})"
                    )

    @pytest.mark.parametrize("measure", ANTI_MONOTONIC_MEASURES)
    def test_mined_pattern_supports_dominated_by_subpattern_level(self, measure):
        graph = planted_pattern_graph(
            star_pattern("A", ["B", "B"]),
            num_copies=8,
            overlap_fraction=0.5,
            seed=9,
        )
        result = mine_frequent_patterns(
            graph, measure=measure, min_support=2, max_pattern_nodes=4,
            max_pattern_edges=4,
        )
        best_by_size = {}
        for fp in result.frequent:
            best_by_size.setdefault(fp.num_edges, []).append(fp.support)
        sizes = sorted(best_by_size)
        for smaller, larger in zip(sizes, sizes[1:]):
            # Every (k+1)-edge frequent pattern extends SOME k-edge one, so
            # the (k+1)-level maximum cannot exceed the k-level maximum.
            assert max(best_by_size[larger]) <= max(best_by_size[smaller]) + 1e-9


class TestOverlapContainment:
    @pytest.mark.parametrize("seed", range(10))
    def test_ho_and_so_imply_simple_overlap(self, seed):
        graph = random_graph(seed)
        pattern = path_pattern(["A", "B", "A"])
        occurrences = find_occurrences(pattern, graph, limit=25)
        for i, first in enumerate(occurrences):
            for second in occurrences[i + 1:]:
                if harmful_overlap(pattern, first, second):
                    assert simple_overlap(first, second)
                if structural_overlap(pattern, first, second):
                    assert simple_overlap(first, second)

    @pytest.mark.parametrize("seed", range(10, 16))
    def test_statistics_respect_containment(self, seed):
        graph = random_graph(seed)
        pattern = star_pattern("A", ["B", "B"])
        occurrences = find_occurrences(pattern, graph, limit=25)
        # "brute" asserts the containment theorems pair-by-pair internally.
        stats = overlap_statistics(pattern, occurrences, method="brute")
        assert stats.harmful_pairs <= stats.simple_pairs
        assert stats.structural_pairs <= stats.simple_pairs
        assert overlap_statistics(pattern, occurrences) == stats


class TestFractionalThresholds:
    """Regression for the old ``int(-(-min_support // 1))`` float ceil."""

    @pytest.mark.parametrize("min_support", [1.5, 2.5, 3.0001])
    def test_lazy_fractional_threshold_matches_eager(self, min_support):
        graph = planted_pattern_graph(
            path_pattern(["A", "B", "A"]),
            num_copies=7,
            overlap_fraction=0.4,
            seed=31,
        )
        eager = mine_frequent_patterns(
            graph, measure="mni", min_support=min_support, max_pattern_nodes=4
        )
        lazy = mine_frequent_patterns(
            graph, measure="mni", min_support=min_support, max_pattern_nodes=4,
            lazy=True,
        )
        assert lazy.certificates() == eager.certificates()

    def test_lazy_cap_is_true_ceiling(self):
        import math

        from repro.mining.miner import FrequentSubgraphMiner

        graph = planted_pattern_graph(path_pattern(["A", "B"]), num_copies=4, seed=1)
        for threshold in (0.4, 1.0, 2.5, 3.0, 7.2):
            miner = FrequentSubgraphMiner(
                graph, measure="mni", min_support=threshold, lazy=True
            )
            assert miner._lazy_cap == max(1, math.ceil(threshold))
