"""Cross-cutting framework properties on randomized inputs.

These tie subsystems together: dual-hypergraph identities, LP duality as a
*property* (not just on examples), solver cross-validation (blossom vs
branch-and-bound vs LP bounds), and miner completeness against a
brute-force oracle at depth 2.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets.synthetic import planted_pattern_graph, random_labeled_graph
from repro.graph.builders import path_pattern
from repro.graph.pattern import Pattern
from repro.hypergraph.hypergraph import Hypergraph, dual_hypergraph
from repro.measures.mies import mies_support_of
from repro.measures.mvc import mvc_support_of
from repro.measures.relaxations import lp_mies_support_of, lp_mvc_support_of

# These suites deliberately exercise the legacy-kwarg entry points
# alongside spec=; the deprecation they trigger is the point, not noise.
pytestmark = pytest.mark.filterwarnings(
    "ignore:legacy mining kwargs:DeprecationWarning"
)


def random_hypergraph(
    seed: int, max_vertices: int = 9, max_edges: int = 8
) -> Hypergraph:
    rng = random.Random(seed)
    k = rng.randint(2, 3)
    num_vertices = rng.randint(k, max_vertices)
    num_edges = rng.randint(1, max_edges)
    edge_sets = []
    for _ in range(num_edges):
        edge_sets.append(rng.sample(range(num_vertices), k))
    return Hypergraph.from_edge_sets(edge_sets)


class TestDualIdentities:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_dual_preserves_incidence_count(self, seed):
        h = random_hypergraph(seed)
        dual = dual_hypergraph(h)
        primal_incidences = sum(len(edge) for edge in h.edges())
        dual_incidences = sum(len(edge) for edge in dual.hypergraph.edges())
        assert primal_incidences == dual_incidences

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_dual_edge_sizes_are_vertex_degrees(self, seed):
        h = random_hypergraph(seed)
        dual = dual_hypergraph(h)
        for vertex in h.vertices():
            assert len(dual.dual_edge(vertex)) == h.vertex_degree(vertex)


class TestLPDualityProperty:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_cover_packing_duality(self, seed):
        h = random_hypergraph(seed)
        assert lp_mvc_support_of(h) == pytest.approx(lp_mies_support_of(h), abs=1e-5)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_weak_duality_sandwich(self, seed):
        h = random_hypergraph(seed)
        nu = lp_mvc_support_of(h)
        assert mies_support_of(h) <= nu + 1e-6
        assert nu <= mvc_support_of(h) + 1e-6

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_k_uniform_lp_bound(self, seed):
        h = random_hypergraph(seed)
        k = max(len(edge) for edge in h.edges())
        assert lp_mvc_support_of(h) >= mvc_support_of(h) / k - 1e-6


class TestSpectrumDispatch:
    def test_blossom_path_taken_for_large_edge_patterns(self):
        # > 60 instances of a one-edge pattern: the spectrum must still
        # satisfy MIS == MIES and finish quickly.
        from repro.analysis.spectrum import measure_spectrum

        pattern = Pattern.single_edge("A", "B")
        graph = planted_pattern_graph(
            pattern, num_copies=80, overlap_fraction=0.2, seed=3
        )
        spectrum = measure_spectrum(
            pattern, graph, include=["mis", "mies", "mvc", "mni"]
        )
        assert spectrum.value("mis") == spectrum.value("mies")
        assert spectrum.value("mis") <= spectrum.value("mvc")


class TestMinerDepth2Oracle:
    def test_two_edge_frequent_patterns_complete(self):
        # Oracle: enumerate all connected 2-edge patterns over the label
        # pairs and check the miner finds exactly the frequent ones.
        from repro.measures.base import compute_support
        from repro.mining.extension import adjacent_label_pairs
        from repro.mining.miner import mine_frequent_patterns
        from repro.graph.canonical import canonical_certificate

        graph = random_labeled_graph(12, 0.25, alphabet=("A", "B"), seed=11)
        threshold = 2
        result = mine_frequent_patterns(
            graph, measure="mni", min_support=threshold, max_pattern_edges=2
        )
        mined = {fp.certificate for fp in result.frequent if fp.num_edges == 2}

        pairs = adjacent_label_pairs(graph)
        labels = sorted({l for pair in pairs for l in pair})
        oracle = set()
        # Shape 1: path v1 - v2 - v3.
        for a in labels:
            for b in labels:
                for c in labels:
                    if (a, b) in pairs and (b, c) in pairs:
                        pattern = Pattern.from_edges(
                            [("v1", a), ("v2", b), ("v3", c)],
                            [("v1", "v2"), ("v2", "v3")],
                        )
                        if compute_support("mni", pattern, graph) >= threshold:
                            oracle.add(canonical_certificate(pattern.graph))
        assert mined == oracle


class TestMeasureMonotoneInData:
    """Adding data edges never *decreases* any anti-monotone measure value
    computed on the same pattern (more occurrences, supersets of images)."""

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2_000))
    def test_mni_monotone_under_data_growth(self, seed):
        from repro.isomorphism.matcher import find_occurrences
        from repro.measures.mni import mni_support_from_occurrences

        rng = random.Random(seed)
        graph = random_labeled_graph(8, 0.2, alphabet=("A",), seed=seed)
        pattern = path_pattern(["A", "A"])
        before = mni_support_from_occurrences(pattern, find_occurrences(pattern, graph))
        # Add one random non-edge.
        vertices = graph.vertices()
        for _ in range(20):
            u, v = rng.sample(vertices, 2)
            if not graph.has_edge(u, v):
                graph.add_edge(u, v)
                break
        after = mni_support_from_occurrences(pattern, find_occurrences(pattern, graph))
        assert after >= before
