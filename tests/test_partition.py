"""Partition-subsystem invariants: cover, halo bookkeeping, IO, CLI.

The sharded evaluation layer's exactness rests on structural invariants
of the partition itself — every edge owned by exactly one shard, every
boundary vertex replicated into every incident shard exactly once, halo
expansion reaching the ``n - 2`` ball — so this suite pins them directly,
independent of the mining-level equivalence suite
(``tests/test_partition_equivalence.py``).
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.datasets.synthetic import (
    planted_pattern_graph,
    random_labeled_graph,
)
from repro.errors import DatasetError, PartitionError
from repro.graph.builders import star_pattern
from repro.graph.io import save_graph
from repro.graph.labeled_graph import LabeledGraph
from repro.partition import (
    PARTITION_METHODS,
    Partition,
    ShardedIndex,
    load_partition,
    partition_edges,
    save_partition,
)

GRAPH_SPECS = [("er", 3, 16, 0.3), ("er", 9, 20, 0.2), ("er", 14, 12, 0.4)]


def build_graph(spec):
    _, seed, size, p = spec
    return random_labeled_graph(size, p, alphabet=("A", "B", "C"), seed=seed)


def build_pattern():
    from repro.graph.builders import path_pattern

    return path_pattern(["A", "B", "A"])


def clustered_graph():
    """Two welded planted regions joined by a single stitch edge."""
    left = planted_pattern_graph(
        star_pattern("A", ["B", "C"]), num_copies=8, overlap_fraction=0.5, seed=3
    )
    right = planted_pattern_graph(
        star_pattern("D", ["E", "E"]), num_copies=8, overlap_fraction=0.5, seed=5
    )
    offset = left.num_vertices + 100
    for vertex in right.vertices():
        left.add_vertex(vertex + offset, right.label_of(vertex))
    for u, v in right.edges():
        left.add_edge(u + offset, v + offset)
    left.add_edge(0, offset)
    return left


class TestPartitioners:
    @pytest.mark.parametrize("method", PARTITION_METHODS)
    @pytest.mark.parametrize("spec", GRAPH_SPECS, ids=lambda s: f"{s[0]}-s{s[1]}")
    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_edge_disjoint_cover(self, spec, method, k):
        graph = build_graph(spec)
        partition = partition_edges(graph, k, method)
        assert partition.num_shards == k
        assert partition.method == method
        # Exactly one shard per edge, every edge covered, ids in range.
        assert sorted(partition.assignment, key=repr) == graph.edges()
        assert all(0 <= owner < k for owner in partition.assignment.values())
        assert sum(partition.shard_sizes()) == graph.num_edges

    @pytest.mark.parametrize("method", PARTITION_METHODS)
    def test_deterministic_across_builds(self, method):
        graph = build_graph(GRAPH_SPECS[0])
        first = partition_edges(graph, 4, method)
        second = partition_edges(graph.copy(), 4, method)
        assert first.assignment == second.assignment
        assert first.vertex_assignment == second.vertex_assignment

    def test_isolated_vertices_are_assigned(self):
        graph = LabeledGraph(vertices=[(1, "A"), (2, "B"), (3, "A")], edges=[(1, 2)])
        partition = partition_edges(graph, 3, "hash")
        assert set(partition.vertex_assignment) == {3}
        assert 0 <= partition.vertex_assignment[3] < 3

    def test_label_method_keeps_pairs_together(self):
        graph = build_graph(GRAPH_SPECS[1])
        partition = partition_edges(graph, 3, "label")
        owner_of_pair = {}
        for (u, v), owner in partition.assignment.items():
            pair = tuple(sorted((graph.label_of(u), graph.label_of(v)), key=repr))
            assert owner_of_pair.setdefault(pair, owner) == owner

    def test_edgecut_beats_hash_on_clustered_graph(self):
        graph = clustered_graph()
        hash_rep = ShardedIndex.build(graph, 2, "hash").replication_factor()
        cut_rep = ShardedIndex.build(graph, 2, "edgecut").replication_factor()
        assert cut_rep < hash_rep

    def test_edgecut_respects_soft_balance(self):
        graph = clustered_graph()
        sizes = partition_edges(graph, 4, "edgecut").shard_sizes()
        capacity = graph.num_edges * 21 // (20 * 4) + 1
        assert max(sizes) <= capacity

    def test_invalid_arguments(self):
        graph = build_graph(GRAPH_SPECS[0])
        with pytest.raises(PartitionError):
            partition_edges(graph, 0, "hash")
        with pytest.raises(PartitionError):
            partition_edges(graph, 2, "metis")
        with pytest.raises(PartitionError):
            partition_edges(graph, 2, "hash").shard_of("nope", "nada")


class TestHaloBookkeeping:
    @pytest.mark.parametrize("method", PARTITION_METHODS)
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_boundary_vertex_in_every_incident_shard_exactly_once(self, method, k):
        graph = build_graph(GRAPH_SPECS[0])
        sharded = ShardedIndex.build(graph, k, method)
        partition = sharded.partition
        incident = {}
        for (u, v), owner in partition.assignment.items():
            incident.setdefault(u, set()).add(owner)
            incident.setdefault(v, set()).add(owner)
        for vertex, owner in partition.vertex_assignment.items():
            incident.setdefault(vertex, set()).add(owner)
        for vertex in graph.vertices():
            containing = [
                shard.shard_id
                for shard in sharded.shards
                if shard.graph.has_vertex(vertex)
            ]
            # Present in every incident shard; once per shard is implied
            # by shard graphs being sets, so the id list has no repeats.
            assert sorted(containing) == sorted(incident[vertex])
            is_boundary = len(incident[vertex]) > 1
            for shard in sharded.shards:
                if shard.graph.has_vertex(vertex):
                    assert (vertex in shard.halo_vertices) == is_boundary
                    assert (vertex in shard.interior_vertices()) == (not is_boundary)
        assert sharded.boundary_vertices() == {
            vertex for vertex, owners in incident.items() if len(owners) > 1
        }

    def test_shard_graphs_carry_exactly_core_edges(self):
        graph = build_graph(GRAPH_SPECS[1])
        sharded = ShardedIndex.build(graph, 3, "edgecut")
        for shard in sharded.shards:
            assert shard.graph.edges() == list(shard.core_edges)
            assert shard.num_core_edges == len(shard.core_edge_set)
            for u, v in shard.core_edges:
                assert shard.owns_edge((u, v))
                assert shard.graph.label_of(u) == graph.label_of(u)
                assert shard.graph.label_of(v) == graph.label_of(v)

    def test_merged_histogram_counts_replicas_once(self):
        graph = build_graph(GRAPH_SPECS[2])
        for k in (1, 2, 4):
            sharded = ShardedIndex.build(graph, k, "hash")
            assert sharded.label_histogram() == graph.label_histogram()

    def test_label_pair_directory_matches_core_edges(self):
        graph = build_graph(GRAPH_SPECS[0])
        sharded = ShardedIndex.build(graph, 3, "label")
        for pair, shard_ids in sharded.label_pair_directory().items():
            for shard_id in shard_ids:
                labels = {
                    tuple(
                        sorted(
                            (
                                sharded.graph.label_of(u),
                                sharded.graph.label_of(v),
                            ),
                            key=repr,
                        )
                    )
                    for u, v in sharded.shards[shard_id].core_edges
                }
                assert pair in labels
        assert sharded.shards_for_pair("Z", "Z") == ()

    def test_expanded_shard_is_induced_ball(self):
        graph = build_graph(GRAPH_SPECS[0])
        sharded = ShardedIndex.build(graph, 3, "hash")
        shard = sharded.shards[1]
        ball = set(shard.graph.vertices())
        expanded0 = sharded.expanded_shard(1, 0)
        assert set(expanded0.vertices()) == ball
        for _ in range(2):
            ball |= {n for v in ball for n in graph.neighbors(v)}
        expanded2 = sharded.expanded_shard(1, 2)
        assert set(expanded2.vertices()) == ball
        for u, v in expanded2.edges():  # induced: all graph edges inside
            assert graph.has_edge(u, v)
        for u in ball:
            for v in graph.neighbors(u):
                if v in ball:
                    assert expanded2.has_edge(u, v)
        assert sharded.expanded_shard(1, 2) is expanded2  # cached

    def test_expanded_shard_degenerates_to_whole_graph(self):
        graph = build_graph(GRAPH_SPECS[0])
        sharded = ShardedIndex.build(graph, 2, "hash")
        assert sharded.expanded_shard(0, graph.num_vertices) is graph

    def test_staleness_tracking(self):
        graph = build_graph(GRAPH_SPECS[0])
        sharded = ShardedIndex.build(graph, 2, "hash")
        assert sharded.is_current()
        graph.add_vertex("fresh", "A")
        assert not sharded.is_current()

    def test_uncovered_edge_raises_partition_error(self):
        graph = build_graph(GRAPH_SPECS[0])
        partition = partition_edges(graph, 2, "hash")
        u = graph.vertices()[0]
        graph.add_vertex("extra", "A")
        graph.add_edge(u, "extra")  # not covered by the partition
        with pytest.raises(PartitionError):
            ShardedIndex(graph, partition)

    def test_shard_occurrence_limit_truncates_anchored_occurrences(self):
        from repro.partition import shard_occurrence_items

        graph = build_graph(GRAPH_SPECS[0])
        sharded = ShardedIndex.build(graph, 3, "hash")
        pattern = build_pattern()
        for shard_id in range(3):
            full = shard_occurrence_items(pattern, sharded, shard_id)
            for limit in (0, 1, 3):
                limited = shard_occurrence_items(
                    pattern, sharded, shard_id, limit=limit
                )
                # Early-stopped enumeration returns the same anchored
                # occurrences, in the same order, just truncated.
                assert limited == full[:limit]


class TestPartitionIO:
    @pytest.mark.parametrize("method", PARTITION_METHODS)
    def test_roundtrip(self, tmp_path, method):
        graph = build_graph(GRAPH_SPECS[1])
        graph.add_vertex("loner", "C")  # isolated vertex must survive
        sharded = ShardedIndex.build(graph, 3, method)
        save_partition(sharded, tmp_path / "out")
        loaded = load_partition(tmp_path / "out")
        assert loaded.graph == graph
        assert loaded.num_shards == sharded.num_shards
        assert loaded.partition.method == method
        assert loaded.partition.assignment == sharded.partition.assignment
        assert loaded.partition.vertex_assignment == (
            sharded.partition.vertex_assignment
        )
        for original, reloaded in zip(sharded.shards, loaded.shards):
            assert reloaded.graph == original.graph
            assert reloaded.core_edges == original.core_edges
            assert reloaded.halo_vertices == original.halo_vertices

    def test_missing_and_malformed_directories(self, tmp_path):
        with pytest.raises(DatasetError):
            load_partition(tmp_path / "absent")
        bad = tmp_path / "bad"
        bad.mkdir()
        (bad / "manifest.json").write_text("not json")
        with pytest.raises(DatasetError):
            load_partition(bad)

    def test_duplicate_edge_ownership_rejected(self, tmp_path):
        graph = LabeledGraph(vertices=[(1, "A"), (2, "B")], edges=[(1, 2)])
        sharded = ShardedIndex.build(graph, 2, "hash")
        save_partition(sharded, tmp_path / "dup")
        # Copy the owning shard's file over the other: both now claim (1, 2).
        owner = sharded.partition.shard_of(1, 2)
        other = 1 - owner
        text = (tmp_path / "dup" / f"shard-{owner:04d}.lg").read_text()
        (tmp_path / "dup" / f"shard-{other:04d}.lg").write_text(text)
        with pytest.raises(PartitionError):
            load_partition(tmp_path / "dup")

    def test_conflicting_boundary_replica_label_rejected(self, tmp_path):
        graph = build_graph(GRAPH_SPECS[0])
        sharded = ShardedIndex.build(graph, 2, "hash")
        save_partition(sharded, tmp_path / "conflict")
        # Relabel one replicated boundary vertex in a single shard file.
        victim = sorted(sharded.boundary_vertices(), key=repr)[0]
        path = tmp_path / "conflict" / "shard-0001.lg"
        lines = [
            f"v {victim} ZZZ" if line == f"v {victim} {graph.label_of(victim)}"
            else line
            for line in path.read_text().splitlines()
        ]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(PartitionError) as excinfo:
            load_partition(tmp_path / "conflict")
        assert "replicas must agree" in str(excinfo.value)

    def test_manifest_entry_without_file_field_rejected(self, tmp_path):
        import json

        graph = build_graph(GRAPH_SPECS[0])
        save_partition(ShardedIndex.build(graph, 2, "hash"), tmp_path / "nofile")
        manifest_path = tmp_path / "nofile" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        del manifest["shards"][1]["file"]
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(DatasetError):
            load_partition(tmp_path / "nofile")

    def test_partition_is_picklable(self):
        import pickle

        graph = build_graph(GRAPH_SPECS[0])
        partition = partition_edges(graph, 3, "edgecut")
        clone = pickle.loads(pickle.dumps(partition))
        assert isinstance(clone, Partition)
        assert clone.assignment == partition.assignment


class TestPartitionCLI:
    def test_partition_command_writes_directory(self, tmp_path, capsys):
        graph = build_graph(GRAPH_SPECS[0])
        graph_path = tmp_path / "g.lg"
        save_graph(graph, graph_path)
        out = tmp_path / "shards"
        code = main(
            ["partition", str(graph_path), str(out), "--shards", "3",
             "--method", "edgecut"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "3 shards" in output
        assert "replication factor" in output
        loaded = load_partition(out)
        assert loaded.graph == graph

    def test_mine_with_shards_matches_unsharded(self, tmp_path, capsys):
        graph = build_graph(GRAPH_SPECS[0])
        graph_path = tmp_path / "g.lg"
        save_graph(graph, graph_path)
        base_args = [
            "mine", str(graph_path), "--min-support", "2", "--max-nodes", "3"
        ]
        assert main(base_args) == 0
        flat = capsys.readouterr().out
        assert main(base_args + ["--shards", "3", "--partition", "label"]) == 0
        sharded = capsys.readouterr().out
        assert sharded == flat
