"""Unit tests for occurrence/instance enumeration (Definitions 2.1.8-2.1.9)."""

import pytest

from repro.graph.builders import complete_graph, path_graph, triangle_pattern
from repro.isomorphism.matcher import (
    Occurrence,
    find_instances,
    find_occurrences,
    group_into_instances,
    summarize_matches,
)


class TestOccurrence:
    def test_from_mapping_roundtrip(self):
        occ = Occurrence.from_mapping({"v1": 3, "v2": 1}, index=0)
        assert occ.mapping == {"v1": 3, "v2": 1}
        assert occ.image_of("v1") == 3
        assert occ.vertex_set == frozenset({1, 3})

    def test_image_of_missing_node(self):
        occ = Occurrence.from_mapping({"v1": 3})
        with pytest.raises(KeyError):
            occ.image_of("nope")

    def test_image_of_set(self):
        occ = Occurrence.from_mapping({"v1": 3, "v2": 1, "v3": 2})
        assert occ.image_of_set(["v1", "v3"]) == frozenset({2, 3})

    def test_labels_follow_paper_convention(self):
        assert Occurrence.from_mapping({"v1": 1}, index=0).label() == "f1"
        assert Occurrence.from_mapping({"v1": 1}, index=4).label() == "f5"

    def test_edge_set(self):
        p = triangle_pattern("a")
        occ = Occurrence.from_mapping({"v1": 1, "v2": 2, "v3": 3})
        assert occ.edge_set(p) == frozenset({(1, 2), (2, 3), (1, 3)})

    def test_occurrences_hashable(self):
        a = Occurrence.from_mapping({"v1": 1}, index=0)
        b = Occurrence.from_mapping({"v1": 1}, index=0)
        assert a == b
        assert len({a, b}) == 1


class TestInstanceGrouping:
    def test_triangle_six_occurrences_one_instance(self, fig2):
        occurrences = find_occurrences(fig2.pattern, fig2.data_graph)
        assert len(occurrences) == 6
        instances = group_into_instances(fig2.pattern, occurrences)
        assert len(instances) == 1
        assert instances[0].vertex_set == frozenset({1, 2, 3})
        assert instances[0].occurrence_indices == (0, 1, 2, 3, 4, 5)

    def test_instance_labels(self, fig2):
        instances = find_instances(fig2.pattern, fig2.data_graph)
        assert instances[0].label() == "S1"

    def test_instance_subgraph_materialization(self, fig2):
        instance = find_instances(fig2.pattern, fig2.data_graph)[0]
        sub = instance.subgraph(fig2.data_graph)
        assert sub.num_vertices == 3
        assert sub.num_edges == 3

    def test_asymmetric_pattern_instances_equal_occurrences(self, fig4):
        occurrences = find_occurrences(fig4.pattern, fig4.data_graph)
        instances = find_instances(fig4.pattern, fig4.data_graph)
        # a-b-b path admits no automorphism, so 1:1.
        assert len(occurrences) == len(instances) == 2

    def test_instances_distinguished_by_edge_set(self):
        # Two triangles sharing all three vertices is impossible in simple
        # graphs, but two paths can share vertex sets with different edges:
        # data: square 1-2-3-4-1; pattern path of 3 uniform.
        from repro.graph.builders import cycle_graph, path_pattern

        g = cycle_graph(["a"] * 4)
        p = path_pattern(["a"] * 3)
        instances = find_instances(p, g)
        # Paths 1-2-3 / 2-3-4 / 3-4-1 / 4-1-2: four distinct edge sets.
        assert len(instances) == 4

    def test_summarize_matches(self, fig2):
        summary = summarize_matches(fig2.pattern, fig2.data_graph)
        assert summary.num_occurrences == 6
        assert summary.num_instances == 1
        assert summary.occurrences_per_instance == 6.0

    def test_summary_of_absent_pattern(self):
        g = path_graph(["a", "a"])
        p = triangle_pattern("a")
        summary = summarize_matches(p, g)
        assert summary.num_occurrences == 0
        assert summary.occurrences_per_instance == 0.0

    def test_occurrences_per_instance_equals_automorphism_count(self):
        from repro.graph.automorphism import automorphism_group_size

        g = complete_graph(["a"] * 4)
        p = triangle_pattern("a")
        summary = summarize_matches(p, g)
        assert (
            summary.occurrences_per_instance
            == automorphism_group_size(p.graph)
            == 6
        )
