"""Unit tests for the MI measure (Section 3.2)."""

from repro.datasets.paper_figures import load_figure
from repro.graph.builders import (
    path_pattern,
    star_graph,
    star_pattern,
    triangle_pattern,
)
from repro.graph.labeled_graph import LabeledGraph
from repro.isomorphism.matcher import Occurrence, find_occurrences
from repro.measures.base import compute_support
from repro.measures.mi import (
    coarse_grained_image_count,
    mi_support_breakdown,
    mi_support_from_occurrences,
)
from repro.measures.mni import mni_support_from_occurrences


class TestCoarseGrainedImageCount:
    def test_image_sets_collapse_orderings(self):
        # Fig. 4's point: {2,3} and {3,2} are one image set.
        occurrences = [
            Occurrence.from_mapping({"v2": 2, "v3": 3}, 0),
            Occurrence.from_mapping({"v2": 3, "v3": 2}, 1),
        ]
        assert coarse_grained_image_count(frozenset({"v2", "v3"}), occurrences) == 1

    def test_singleton_counts_distinct_vertices(self):
        occurrences = [
            Occurrence.from_mapping({"v2": 2, "v3": 3}, 0),
            Occurrence.from_mapping({"v2": 3, "v3": 2}, 1),
        ]
        assert coarse_grained_image_count(frozenset({"v2"}), occurrences) == 2


class TestMI:
    def test_fig4_value(self, fig4):
        occurrences = find_occurrences(fig4.pattern, fig4.data_graph)
        assert mi_support_from_occurrences(fig4.pattern, occurrences) == 1
        assert mni_support_from_occurrences(fig4.pattern, occurrences) == 2

    def test_fig2_value(self, fig2):
        occurrences = find_occurrences(fig2.pattern, fig2.data_graph)
        # All six occurrences map the full orbit {v1,v2,v3} to {1,2,3}.
        assert mi_support_from_occurrences(fig2.pattern, occurrences) == 1

    def test_fig6_mi_equals_mni(self, fig6):
        # Distinct labels: no non-trivial transitive subsets.
        occurrences = find_occurrences(fig6.pattern, fig6.data_graph)
        assert mi_support_from_occurrences(fig6.pattern, occurrences) == 4
        assert mni_support_from_occurrences(fig6.pattern, occurrences) == 4

    def test_fig9_value(self):
        fig = load_figure("fig9")
        occurrences = find_occurrences(fig.pattern, fig.data_graph)
        assert mi_support_from_occurrences(fig.pattern, occurrences) == 2

    def test_zero_without_occurrences(self):
        p = triangle_pattern("a")
        assert mi_support_from_occurrences(p, []) == 0

    def test_mi_bounded_by_mni_on_star(self):
        g = star_graph("c", ["l"] * 5)
        p = star_pattern("c", ["l", "l"])
        occurrences = find_occurrences(p, g)
        mi = mi_support_from_occurrences(p, occurrences)
        mni = mni_support_from_occurrences(p, occurrences)
        assert mi <= mni

    def test_max_subpattern_size_interpolates(self, fig4):
        occurrences = find_occurrences(fig4.pattern, fig4.data_graph)
        # Cap 1: singletons only => MNI.
        capped = mi_support_from_occurrences(
            fig4.pattern, occurrences, max_subpattern_size=1
        )
        assert capped == mni_support_from_occurrences(fig4.pattern, occurrences)
        full = mi_support_from_occurrences(fig4.pattern, occurrences)
        assert full <= capped

    def test_non_induced_family_never_larger(self):
        # Extra (edge-subset) subpatterns can only lower the minimum.
        fig = load_figure("fig8")
        occurrences = find_occurrences(fig.pattern, fig.data_graph)
        induced = mi_support_from_occurrences(fig.pattern, occurrences, induced=True)
        all_subs = mi_support_from_occurrences(fig.pattern, occurrences, induced=False)
        assert all_subs <= induced

    def test_breakdown_contains_all_subsets(self, fig4):
        occurrences = find_occurrences(fig4.pattern, fig4.data_graph)
        breakdown = dict(mi_support_breakdown(fig4.pattern, occurrences))
        assert breakdown[frozenset({"v2", "v3"})] == 1
        assert breakdown[frozenset({"v1"})] == 2
        assert min(breakdown.values()) == 1

    def test_registry_entry(self, fig4):
        assert compute_support("mi", fig4.pattern, fig4.data_graph) == 1.0


class TestAntiMonotonicity:
    def test_mi_anti_monotone_fig5(self):
        fig5 = load_figure("fig5")
        sub_occ = find_occurrences(fig5.pattern, fig5.data_graph)
        super_occ = find_occurrences(fig5.superpattern, fig5.data_graph)
        assert mi_support_from_occurrences(
            fig5.pattern, sub_occ
        ) >= mi_support_from_occurrences(fig5.superpattern, super_occ)

    def test_mi_anti_monotone_on_path_chain(self):
        # Growing path patterns against a fixed chain graph.
        g = LabeledGraph(
            vertices=[(i, "a") for i in range(1, 9)],
            edges=[(i, i + 1) for i in range(1, 8)],
        )
        previous = None
        for length in (2, 3, 4, 5):
            p = path_pattern(["a"] * length)
            value = mi_support_from_occurrences(p, find_occurrences(p, g))
            if previous is not None:
                assert value <= previous
            previous = value
