"""Unit tests for .lg graph I/O."""

import pytest

from repro.errors import DatasetError
from repro.graph.builders import cycle_graph, path_graph
from repro.graph.io import (
    format_lg,
    load_graph,
    load_pattern,
    parse_edge_list,
    parse_lg,
    read_lg_stream,
    save_graph,
    write_lg_stream,
)
from repro.isomorphism.vf2 import are_isomorphic


SAMPLE = """\
# t sample
v 1 A
v 2 B
v 3 A
e 1 2
e 2 3
"""


class TestParseLG:
    def test_parse_basic(self):
        g = parse_lg(SAMPLE)
        assert g.num_vertices == 3
        assert g.num_edges == 2
        assert g.label_of(1) == "A"

    def test_comments_and_blanks_skipped(self):
        g = parse_lg("# comment\n\nv 1 A\n\n# another\nv 2 B\ne 1 2\n")
        assert g.num_vertices == 2

    def test_string_vertex_ids(self):
        g = parse_lg("v alpha A\nv beta B\ne alpha beta\n")
        assert g.has_vertex("alpha")
        assert g.has_edge("alpha", "beta")

    def test_malformed_vertex_line(self):
        with pytest.raises(DatasetError):
            parse_lg("v 1\n")

    def test_malformed_edge_line(self):
        with pytest.raises(DatasetError):
            parse_lg("v 1 A\ne 1\n")

    def test_unknown_record_kind(self):
        with pytest.raises(DatasetError):
            parse_lg("x 1 2\n")

    def test_edge_referencing_unknown_vertex(self):
        with pytest.raises(DatasetError):
            parse_lg("v 1 A\ne 1 2\n")


class TestRoundTrip:
    def test_format_parse_roundtrip(self):
        g = cycle_graph(["a", "b", "c", "d"])
        text = format_lg(g)
        back = parse_lg(text)
        assert back.num_vertices == g.num_vertices
        assert back.num_edges == g.num_edges
        assert are_isomorphic(g, back)

    def test_file_roundtrip(self, tmp_path):
        g = path_graph(["x", "y", "z"])
        path = tmp_path / "g.lg"
        save_graph(g, path)
        back = load_graph(path)
        assert are_isomorphic(g, back)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            load_graph(tmp_path / "nope.lg")

    def test_load_pattern(self, tmp_path):
        g = path_graph(["x", "y"])
        path = tmp_path / "p.lg"
        save_graph(g, path)
        pattern = load_pattern(path)
        assert pattern.num_nodes == 2


class TestEdgeList:
    def test_parse_edge_list(self):
        g = parse_edge_list(["1 2", "2 3", "# comment", "", "3 1"])
        assert g.num_vertices == 3
        assert g.num_edges == 3
        assert g.label_of(1) == "A"

    def test_parse_edge_list_ignores_self_loops(self):
        g = parse_edge_list(["1 1", "1 2"])
        assert g.num_edges == 1

    def test_malformed_line(self):
        with pytest.raises(DatasetError):
            parse_edge_list(["justone"])


class TestStreams:
    def test_multi_graph_stream_roundtrip(self, tmp_path):
        import io

        graphs = [path_graph(["a", "b"]), cycle_graph(["x"] * 3)]
        buffer = io.StringIO()
        count = write_lg_stream(graphs, buffer)
        assert count == 2
        back = read_lg_stream(buffer.getvalue())
        assert len(back) == 2
        assert are_isomorphic(back[0], graphs[0])
        assert are_isomorphic(back[1], graphs[1])


class TestUpdateStreams:
    def test_parse_update_stream(self):
        from repro.graph.io import parse_update_stream

        updates = parse_update_stream(
            "# header\nt 1\nv 4 C\n\ne 1 4\nv name B\ne name 4\n"
        )
        assert updates == [
            ("v", 4, "C"),
            ("e", 1, 4),
            ("v", "name", "B"),
            ("e", "name", 4),
        ]

    def test_lg_file_is_a_valid_update_stream(self):
        from repro.graph.io import parse_update_stream
        from repro.graph.labeled_graph import LabeledGraph
        from repro.mining.dynamic import apply_update

        original = path_graph(["a", "b", "a"])
        replayed = LabeledGraph()
        for update in parse_update_stream(format_lg(original)):
            apply_update(replayed, update)
        assert replayed == original

    def test_load_update_stream(self, tmp_path):
        from repro.graph.io import load_update_stream

        path = tmp_path / "updates.lg"
        path.write_text("v 1 A\nv 2 B\ne 1 2\n")
        assert load_update_stream(path) == [("v", 1, "A"), ("v", 2, "B"), ("e", 1, 2)]
        with pytest.raises(DatasetError):
            load_update_stream(tmp_path / "missing.lg")

    def test_malformed_update_lines(self):
        from repro.graph.io import parse_update_stream

        with pytest.raises(DatasetError):
            parse_update_stream("v 1\n")
        with pytest.raises(DatasetError):
            parse_update_stream("e 1\n")
        with pytest.raises(DatasetError):
            parse_update_stream("q 1 2\n")

    def test_blank_and_whitespace_lines_are_skipped(self):
        from repro.graph.io import parse_update_stream

        text = "\n   \n\t\nv 1 A\n  \n# note\ne 1 2\n\n"
        assert parse_update_stream(text) == [("v", 1, "A"), ("e", 1, 2)]

    def test_duplicate_edge_insertion_rejected_with_line_numbers(self):
        from repro.graph.io import parse_update_stream

        with pytest.raises(DatasetError) as excinfo:
            parse_update_stream("v 1 A\nv 2 B\ne 1 2\ne 1 2\n")
        assert "line 4" in str(excinfo.value)
        assert "already present at line 3" in str(excinfo.value)
        # Both endpoint orders name the same undirected edge.
        with pytest.raises(DatasetError):
            parse_update_stream("e 1 2\ne 2 1\n")
        # Deleting in between makes the re-insertion legal again.
        assert parse_update_stream("e 1 2\nde 1 2\ne 2 1\n") == [
            ("e", 1, 2),
            ("de", 1, 2),
            ("e", 2, 1),
        ]

    def test_self_loop_insertion_rejected(self):
        from repro.graph.io import parse_update_stream

        with pytest.raises(DatasetError) as excinfo:
            parse_update_stream("v 7 A\ne 7 7\n")
        assert "line 2" in str(excinfo.value)
        assert "self loop" in str(excinfo.value)

    def test_conflicting_vertex_relabel_rejected(self):
        from repro.graph.io import parse_update_stream

        with pytest.raises(DatasetError) as excinfo:
            parse_update_stream("v 1 A\nv 1 B\n")
        assert "line 2" in str(excinfo.value)
        # Re-declaring with the same label stays legal (concatenated .lg
        # fragments repeat their vertex preambles).
        assert parse_update_stream("v 1 A\nv 1 A\n") == [
            ("v", 1, "A"),
            ("v", 1, "A"),
        ]

    def test_errors_are_repro_errors(self):
        from repro.errors import ReproError
        from repro.graph.io import parse_update_stream

        for text in ("e 1 1\n", "e 1 2\ne 2 1\n", "v 1 A\nv 1 B\n", "x\n"):
            with pytest.raises(ReproError):
                parse_update_stream(text)


class TestUpdateStreamDeletions:
    def test_parse_deletion_records(self):
        from repro.graph.io import parse_update_stream

        updates = parse_update_stream("v 1 A\nv 2 B\ne 1 2\nde 1 2\ndv 2\nv 2 B\n")
        assert updates == [
            ("v", 1, "A"),
            ("v", 2, "B"),
            ("e", 1, 2),
            ("de", 1, 2),
            ("dv", 2),
            ("v", 2, "B"),
        ]

    def test_deletion_stream_replays_onto_a_graph(self):
        from repro.graph.io import parse_update_stream
        from repro.graph.labeled_graph import LabeledGraph
        from repro.mining.dynamic import apply_update

        graph = LabeledGraph([(1, "A"), (2, "B"), (3, "A")], [(1, 2), (2, 3)])
        for update in parse_update_stream("de 2 3\ndv 3\nv 4 C\ne 1 4\n"):
            apply_update(graph, update)
        assert not graph.has_vertex(3)
        assert graph.has_edge(1, 4)
        assert graph.num_edges == 2

    def test_malformed_deletion_lines(self):
        from repro.graph.io import parse_update_stream

        with pytest.raises(DatasetError):
            parse_update_stream("de 1\n")
        with pytest.raises(DatasetError):
            parse_update_stream("dv\n")
        with pytest.raises(DatasetError) as excinfo:
            parse_update_stream("de 3 3\n")
        assert "self loop" in str(excinfo.value)

    def test_double_edge_deletion_rejected(self):
        from repro.graph.io import parse_update_stream

        with pytest.raises(DatasetError) as excinfo:
            parse_update_stream("e 1 2\nde 1 2\nde 2 1\n")
        assert "line 3" in str(excinfo.value)
        assert "deleted at line 2" in str(excinfo.value)

    def test_vertex_deletion_with_live_edges_rejected(self):
        from repro.graph.io import parse_update_stream

        with pytest.raises(DatasetError) as excinfo:
            parse_update_stream("v 1 A\nv 2 B\ne 1 2\ndv 2\n")
        assert "line 4" in str(excinfo.value)
        assert "live incident" in str(excinfo.value)
        # Deleting the edge first makes it legal.
        parse_update_stream("v 1 A\nv 2 B\ne 1 2\nde 1 2\ndv 2\n")

    def test_touching_a_deleted_vertex_rejected(self):
        from repro.graph.io import parse_update_stream

        with pytest.raises(DatasetError) as excinfo:
            parse_update_stream("dv 5\ne 5 6\n")
        assert "line 2" in str(excinfo.value)
        assert "deleted earlier" in str(excinfo.value)
        with pytest.raises(DatasetError):
            parse_update_stream("dv 5\ndv 5\n")

    def test_unknown_facts_are_trusted_without_base(self):
        """First mentions may refer to the (unseen) base graph."""
        from repro.graph.io import parse_update_stream

        assert parse_update_stream("de 8 9\ndv 8\n") == [("de", 8, 9), ("dv", 8)]


class TestUpdateStreamBaseValidation:
    @pytest.fixture()
    def base(self):
        from repro.graph.labeled_graph import LabeledGraph

        return LabeledGraph([(1, "A"), (2, "B"), (3, "A")], [(1, 2), (2, 3)])

    def test_valid_stream_against_base(self, base):
        from repro.graph.io import parse_update_stream

        updates = parse_update_stream("de 1 2\nv 4 C\ne 2 4\nde 2 3\ndv 3\n", base=base)
        assert len(updates) == 5

    def test_inserting_an_existing_base_edge_rejected(self, base):
        from repro.graph.io import parse_update_stream

        with pytest.raises(DatasetError) as excinfo:
            parse_update_stream("e 2 1\n", base=base)
        assert "already present in the base graph" in str(excinfo.value)

    def test_deleting_an_absent_edge_rejected(self, base):
        from repro.graph.io import parse_update_stream

        with pytest.raises(DatasetError) as excinfo:
            parse_update_stream("de 1 3\n", base=base)
        assert "never inserted" in str(excinfo.value)

    def test_unknown_vertex_rejected(self, base):
        from repro.graph.io import parse_update_stream

        with pytest.raises(DatasetError):
            parse_update_stream("e 1 99\n", base=base)
        with pytest.raises(DatasetError):
            parse_update_stream("dv 99\n", base=base)

    def test_vertex_deletion_sees_base_edges(self, base):
        from repro.graph.io import parse_update_stream

        with pytest.raises(DatasetError) as excinfo:
            parse_update_stream("dv 2\n", base=base)
        assert "live incident" in str(excinfo.value)
        parse_update_stream("de 1 2\nde 2 3\ndv 2\n", base=base)

    def test_conflicting_relabel_of_base_vertex_rejected(self, base):
        from repro.graph.io import parse_update_stream

        with pytest.raises(DatasetError):
            parse_update_stream("v 1 Z\n", base=base)
        # Same label re-declaration stays legal, as without a base.
        parse_update_stream("v 1 A\n", base=base)

    def test_window_mode_relaxes_only_expiry_dependent_checks(self, base):
        from repro.graph.io import parse_update_stream

        # Re-inserting a present edge: rejected normally, legal windowed
        # (the window may have expired it between the two records).
        stream = "v 9 C\ne 1 9\ne 1 9\n"
        with pytest.raises(DatasetError):
            parse_update_stream(stream, base=base)
        parse_update_stream(stream, base=base, window=True)
        # Deleting a vertex whose only live edges are stream-inserted:
        # they may have expired, so windowed validation lets it through.
        stream = "v 9 C\ne 1 9\ndv 9\n"
        with pytest.raises(DatasetError):
            parse_update_stream(stream, base=base)
        parse_update_stream(stream, base=base, window=True)
        # Base-graph edges never expire: dv still blocks on them.
        with pytest.raises(DatasetError):
            parse_update_stream("dv 2\n", base=base, window=True)
        # Window-independent checks stay strict: an edge that never
        # existed cannot have expired.
        with pytest.raises(DatasetError) as excinfo:
            parse_update_stream("de 1 99\n", base=base, window=True)
        assert "line 1" in str(excinfo.value)
        with pytest.raises(DatasetError):
            parse_update_stream("e 1 9\n", base=base, window=True)  # unknown vertex
        with pytest.raises(DatasetError):
            parse_update_stream("v 1 Z\n", base=base, window=True)  # relabel

    def test_load_update_stream_forwards_base(self, base, tmp_path):
        from repro.graph.io import load_update_stream

        path = tmp_path / "mixed.lg"
        path.write_text("de 1 2\n")
        assert load_update_stream(path, base=base) == [("de", 1, 2)]
        path.write_text("de 1 3\n")
        with pytest.raises(DatasetError):
            load_update_stream(path, base=base)
