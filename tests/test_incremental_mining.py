"""The incremental (embedding-propagating) miner must match the baseline."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets.synthetic import planted_pattern_graph, random_labeled_graph
from repro.datasets.zoo import zoo_graph, zoo_names
from repro.errors import MiningError
from repro.graph.builders import path_pattern, star_pattern
from repro.graph.labeled_graph import LabeledGraph
from repro.isomorphism.matcher import find_occurrences
from repro.mining.incremental import (
    IncrementalMiner,
    extend_occurrences_backward,
    extend_occurrences_forward,
    mine_frequent_patterns_incremental,
)
from repro.mining.miner import mine_frequent_patterns

# These suites deliberately exercise the legacy-kwarg entry points
# alongside spec=; the deprecation they trigger is the point, not noise.
pytestmark = pytest.mark.filterwarnings(
    "ignore:legacy mining kwargs:DeprecationWarning"
)


class TestExtensionPrimitives:
    def test_forward_extension_complete(self):
        # Parent a-b path, forward-extend v2 with an 'a' neighbor: must
        # produce exactly the occurrences of the a-b-a path.
        graph = random_labeled_graph(10, 0.3, alphabet=("A", "B"), seed=4)
        parent = path_pattern(["A", "B"])
        child = path_pattern(["A", "B", "A"])
        parent_maps = [o.mapping for o in find_occurrences(parent, graph)]
        extended = extend_occurrences_forward(graph, parent_maps, "v2", "v3", "A")
        expected = [o.mapping for o in find_occurrences(child, graph)]
        assert sorted(map(repr, extended)) == sorted(map(repr, expected))

    def test_backward_extension_complete(self):
        graph = random_labeled_graph(9, 0.4, alphabet=("A",), seed=6)
        parent = path_pattern(["A", "A", "A"])
        child = parent.extend_with_edge("v1", "v3")  # triangle
        parent_maps = [o.mapping for o in find_occurrences(parent, graph)]
        extended = extend_occurrences_backward(graph, parent_maps, "v1", "v3")
        expected = [o.mapping for o in find_occurrences(child, graph)]
        assert sorted(map(repr, extended)) == sorted(map(repr, expected))

    def test_forward_respects_injectivity(self):
        graph = LabeledGraph(vertices=[(1, "A"), (2, "B")], edges=[(1, 2)])
        parent = path_pattern(["A", "B"])
        maps = [o.mapping for o in find_occurrences(parent, graph)]
        # Extending v2 with an 'A' neighbor can only reuse vertex 1 — blocked.
        assert extend_occurrences_forward(graph, maps, "v2", "v3", "A") == []


class TestMinerEquivalence:
    @pytest.mark.parametrize("name", zoo_names())
    def test_matches_baseline_on_zoo(self, name):
        graph = zoo_graph(name)
        baseline = mine_frequent_patterns(
            graph, measure="mni", min_support=2, max_pattern_nodes=3,
            max_pattern_edges=3,
        )
        incremental = mine_frequent_patterns_incremental(
            graph, measure="mni", min_support=2, max_pattern_nodes=3,
            max_pattern_edges=3,
        )
        assert baseline.certificates() == incremental.certificates()
        baseline_supports = {fp.certificate: fp.support for fp in baseline.frequent}
        for fp in incremental.frequent:
            assert fp.support == baseline_supports[fp.certificate]

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1_000))
    def test_matches_baseline_on_random(self, seed):
        graph = random_labeled_graph(10, 0.25, alphabet=("A", "B"), seed=seed)
        baseline = mine_frequent_patterns(
            graph, measure="mni", min_support=2, max_pattern_nodes=4,
            max_pattern_edges=4,
        )
        incremental = mine_frequent_patterns_incremental(
            graph, measure="mni", min_support=2, max_pattern_nodes=4,
            max_pattern_edges=4,
        )
        assert baseline.certificates() == incremental.certificates()

    def test_occurrence_counts_match_baseline(self):
        pattern = star_pattern("A", ["B", "B"])
        graph = planted_pattern_graph(
            pattern, num_copies=6, overlap_fraction=0.4, seed=2
        )
        baseline = mine_frequent_patterns(
            graph, measure="mni", min_support=2, max_pattern_nodes=3
        )
        incremental = mine_frequent_patterns_incremental(
            graph, measure="mni", min_support=2, max_pattern_nodes=3
        )
        base = {fp.certificate: fp.num_occurrences for fp in baseline.frequent}
        for fp in incremental.frequent:
            assert fp.num_occurrences == base[fp.certificate]

    def test_works_with_other_measures(self):
        graph = zoo_graph("disjoint_triangles")
        for measure in ("mi", "mis"):
            result = mine_frequent_patterns_incremental(
                graph, measure=measure, min_support=3, max_pattern_nodes=3
            )
            assert result.num_frequent == 3

    def test_fewer_enumerations_than_baseline(self):
        graph = zoo_graph("grid")
        baseline = mine_frequent_patterns(
            graph, measure="mni", min_support=2, max_pattern_nodes=4
        )
        incremental = mine_frequent_patterns_incremental(
            graph, measure="mni", min_support=2, max_pattern_nodes=4
        )
        # The incremental miner only enumerates seeds from scratch.
        assert (
            incremental.stats.occurrence_enumerations
            < baseline.stats.occurrence_enumerations
        )

    def test_rejects_non_anti_monotonic(self):
        with pytest.raises(MiningError):
            IncrementalMiner(zoo_graph("star"), measure="instances")

    def test_rejects_bad_threshold(self):
        with pytest.raises(MiningError):
            IncrementalMiner(zoo_graph("star"), min_support=0)
