"""Property-based tests (hypothesis) for core invariants.

These go beyond the bounding chain (tests/test_bounds_chain.py) and check
the structural invariants every component must satisfy on arbitrary inputs:
isomorphism-invariance of measures, anti-monotonicity under random edge
deletion, canonical-certificate soundness, and occurrence/automorphism
counting identities.
"""

import random

from hypothesis import assume, given, settings, strategies as st

from repro.datasets.synthetic import random_labeled_graph
from repro.graph.automorphism import automorphism_group_size, vertex_orbits
from repro.graph.builders import path_pattern, triangle_pattern
from repro.graph.canonical import canonical_certificate
from repro.graph.labeled_graph import LabeledGraph
from repro.hypergraph.construction import HypergraphBundle
from repro.isomorphism.matcher import find_instances, find_occurrences
from repro.isomorphism.vf2 import are_isomorphic
from repro.measures.mi import mi_support_from_occurrences
from repro.measures.mni import mni_support_from_occurrences
from repro.measures.mvc import is_vertex_cover, minimum_vertex_cover
from repro.measures.mies import mies_support_of


def random_graph(seed: int, n: int = 8, p: float = 0.35) -> LabeledGraph:
    return random_labeled_graph(n, p, alphabet=("A", "B"), seed=seed)


def random_permutation_copy(graph: LabeledGraph, seed: int) -> LabeledGraph:
    rng = random.Random(seed)
    vertices = graph.vertices()
    shuffled = list(vertices)
    rng.shuffle(shuffled)
    return graph.relabeled({v: ("x", s) for v, s in zip(vertices, shuffled)})


class TestIsomorphismInvariance:
    """Support values are invariant under relabeling the data graph."""

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=5_000))
    def test_mni_mi_invariant(self, seed):
        graph = random_graph(seed)
        shuffled = random_permutation_copy(graph, seed + 1)
        pattern = path_pattern(["A", "B"])
        occ1 = find_occurrences(pattern, graph)
        occ2 = find_occurrences(pattern, shuffled)
        assert len(occ1) == len(occ2)
        assert mni_support_from_occurrences(pattern, occ1) == (
            mni_support_from_occurrences(pattern, occ2)
        )
        assert mi_support_from_occurrences(pattern, occ1) == (
            mi_support_from_occurrences(pattern, occ2)
        )

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=5_000))
    def test_certificate_invariant(self, seed):
        graph = random_graph(seed, n=7)
        shuffled = random_permutation_copy(graph, seed + 1)
        assert canonical_certificate(graph) == canonical_certificate(shuffled)


class TestCertificateSoundness:
    """Equal certificates <=> isomorphic, on random pairs."""

    @settings(max_examples=20, deadline=None)
    @given(
        seed1=st.integers(min_value=0, max_value=300),
        seed2=st.integers(min_value=0, max_value=300),
    )
    def test_certificate_decides_isomorphism(self, seed1, seed2):
        g1 = random_graph(seed1, n=6, p=0.4)
        g2 = random_graph(seed2, n=6, p=0.4)
        same_certificate = canonical_certificate(g1) == canonical_certificate(g2)
        assert same_certificate == are_isomorphic(g1, g2)


class TestAntiMonotonicityUnderEdgeDeletion:
    """Removing a pattern edge (keeping it connected) never lowers support."""

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2_000))
    def test_triangle_vs_path(self, seed):
        graph = random_graph(seed, n=9, p=0.4)
        triangle = triangle_pattern("A")
        path = triangle.remove_edge_pattern("v1", "v3")  # still connected
        tri_occ = find_occurrences(triangle, graph)
        path_occ = find_occurrences(path, graph)
        assert mni_support_from_occurrences(path, path_occ) >= (
            mni_support_from_occurrences(triangle, tri_occ)
        )
        assert mi_support_from_occurrences(path, path_occ) >= (
            mi_support_from_occurrences(triangle, tri_occ)
        )

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2_000))
    def test_mvc_and_mies_anti_monotone(self, seed):
        graph = random_graph(seed, n=8, p=0.45)
        triangle = triangle_pattern("A")
        path = triangle.remove_edge_pattern("v1", "v3")
        from repro.measures.mvc import mvc_support_of

        tri_bundle = HypergraphBundle.build(triangle, graph)
        path_bundle = HypergraphBundle.build(path, graph)
        assert mvc_support_of(path_bundle.occurrence_hg) >= (
            mvc_support_of(tri_bundle.occurrence_hg)
        )
        assert mies_support_of(path_bundle.instance_hg) >= (
            mies_support_of(tri_bundle.instance_hg)
        )


class TestCountingIdentities:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2_000))
    def test_occurrences_equal_instances_times_automorphisms(self, seed):
        graph = random_graph(seed, n=8, p=0.4)
        pattern = triangle_pattern("A")
        occurrences = find_occurrences(pattern, graph)
        instances = find_instances(pattern, graph)
        assert len(occurrences) == len(instances) * automorphism_group_size(
            pattern.graph
        )

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2_000))
    def test_orbits_partition(self, seed):
        graph = random_graph(seed, n=7, p=0.4)
        orbits = vertex_orbits(graph)
        combined = sorted(v for orbit in orbits for v in orbit)
        assert combined == graph.vertices()


class TestCoverInvariants:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2_000))
    def test_minimum_cover_is_a_cover_and_minimal(self, seed):
        graph = random_graph(seed, n=8, p=0.4)
        pattern = path_pattern(["A", "B"])
        bundle = HypergraphBundle.build(pattern, graph)
        assume(bundle.occurrence_hg.num_edges > 0)
        cover = minimum_vertex_cover(bundle.occurrence_hg)
        assert is_vertex_cover(bundle.occurrence_hg, cover)
        # Removing any single vertex breaks the cover (minimality).
        for vertex in cover:
            assert not is_vertex_cover(bundle.occurrence_hg, cover - {vertex})


class TestMatcherRandomizedOracle:
    """Cross-check the VF2 engine against a brute-force oracle."""

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=500))
    def test_occurrence_count_matches_bruteforce(self, seed):
        from itertools import permutations

        graph = random_graph(seed, n=6, p=0.5)
        pattern = path_pattern(["A", "B", "A"])
        nodes = pattern.nodes()
        brute = 0
        for assignment in permutations(graph.vertices(), len(nodes)):
            mapping = dict(zip(nodes, assignment))
            if any(
                graph.label_of(mapping[n]) != pattern.label_of(n) for n in nodes
            ):
                continue
            if all(graph.has_edge(mapping[u], mapping[v]) for u, v in pattern.edges()):
                brute += 1
        assert len(find_occurrences(pattern, graph)) == brute
