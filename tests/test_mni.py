"""Unit tests for the MNI measure (Definitions 2.2.8-2.2.9)."""

import pytest

from repro.errors import MeasureError
from repro.graph.builders import (
    complete_graph,
    path_graph,
    path_pattern,
    triangle_pattern,
)
from repro.isomorphism.matcher import find_occurrences
from repro.measures.base import compute_support
from repro.measures.mni import (
    mni_k_support_from_occurrences,
    mni_support_from_occurrences,
    node_image_counts,
)


class TestMNI:
    def test_fig2_value(self, fig2):
        occurrences = find_occurrences(fig2.pattern, fig2.data_graph)
        assert mni_support_from_occurrences(fig2.pattern, occurrences) == 3

    def test_fig2_per_node_images(self, fig2):
        occurrences = find_occurrences(fig2.pattern, fig2.data_graph)
        counts = node_image_counts(fig2.pattern, occurrences)
        assert counts == {"v1": 3, "v2": 3, "v3": 3}

    def test_fig4_value(self, fig4):
        occurrences = find_occurrences(fig4.pattern, fig4.data_graph)
        assert mni_support_from_occurrences(fig4.pattern, occurrences) == 2

    def test_zero_when_no_occurrence(self):
        p = triangle_pattern("a")
        g = path_graph(["a", "a"])
        assert mni_support_from_occurrences(p, find_occurrences(p, g)) == 0

    def test_minimum_over_nodes(self):
        # Star center has 1 image, leaves have many: MNI = 1.
        from repro.graph.builders import star_graph, star_pattern

        g = star_graph("c", ["l"] * 4)
        p = star_pattern("c", ["l", "l"])
        occurrences = find_occurrences(p, g)
        counts = node_image_counts(p, occurrences)
        assert counts["v1"] == 1
        assert counts["v2"] == 4
        assert mni_support_from_occurrences(p, occurrences) == 1

    def test_registry_entry(self, fig2):
        value = compute_support("mni", fig2.pattern, fig2.data_graph)
        assert value == 3.0


class TestMNIk:
    def test_k1_equals_plain_mni(self, fig2):
        occurrences = find_occurrences(fig2.pattern, fig2.data_graph)
        assert mni_k_support_from_occurrences(
            fig2.pattern, occurrences, k=1
        ) == mni_support_from_occurrences(fig2.pattern, occurrences)

    def test_k_equals_pattern_size_counts_image_sets(self, fig2):
        occurrences = find_occurrences(fig2.pattern, fig2.data_graph)
        # All six occurrences share the single image set {1,2,3}.
        assert mni_k_support_from_occurrences(fig2.pattern, occurrences, k=3) == 1

    def test_k2_on_fig4(self, fig4):
        occurrences = find_occurrences(fig4.pattern, fig4.data_graph)
        # Connected pairs: {v1,v2} images {1,2},{4,3}; {v2,v3} images {2,3},{3,2}->1.
        assert mni_k_support_from_occurrences(fig4.pattern, occurrences, k=2) == 1

    def test_values_on_complete_graph(self):
        # K5, uniform 3-path: k=1 counts vertices (5); k=2 counts vertex
        # pairs (C(5,2) = 10); k=3 counts vertex triples (C(5,3) = 10).
        # Note MNI-k is *not* monotone in k — image sets of larger subsets
        # can be more numerous than single-vertex images.
        g = complete_graph(["a"] * 5)
        p = path_pattern(["a", "a", "a"])
        occurrences = find_occurrences(p, g)
        values = [
            mni_k_support_from_occurrences(p, occurrences, k=k) for k in (1, 2, 3)
        ]
        assert values == [5, 10, 10]

    def test_invalid_k(self, fig2):
        occurrences = find_occurrences(fig2.pattern, fig2.data_graph)
        with pytest.raises(MeasureError):
            mni_k_support_from_occurrences(fig2.pattern, occurrences, k=0)
        with pytest.raises(MeasureError):
            mni_k_support_from_occurrences(fig2.pattern, occurrences, k=99)

    def test_empty_occurrences(self, fig2):
        assert mni_k_support_from_occurrences(fig2.pattern, [], k=2) == 0


class TestAntiMonotonicity:
    def test_mni_anti_monotone_under_extension(self, fig2):
        from repro.datasets.paper_figures import load_figure

        fig5 = load_figure("fig5")
        sub_occ = find_occurrences(fig5.pattern, fig5.data_graph)
        super_occ = find_occurrences(fig5.superpattern, fig5.data_graph)
        assert mni_support_from_occurrences(
            fig5.pattern, sub_occ
        ) >= mni_support_from_occurrences(fig5.superpattern, super_occ)
