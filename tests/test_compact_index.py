"""Compact-core tests: LabelTable interning, CSR patching, backend switch.

The compact index must be indistinguishable from the dict index through
every decoded query, and its O(delta) CSR splices must land exactly
where a from-scratch rebuild would put them — under randomized mixed
insert/delete/window churn, not just single-delta unit cases.  The
intern table may keep tombstones while patching (slots are never
recycled) but a rebuild must shed them.
"""

from __future__ import annotations

import random

import pytest

from repro.datasets.synthetic import random_labeled_graph
from repro.graph.labeled_graph import LabeledGraph
from repro.index import (
    CompactGraphIndex,
    GraphIndex,
    IndexMaintainer,
    LabelTable,
    get_index,
    index_backend,
    projected_index_nbytes,
    set_index_backend,
)


def decoded_view(index, graph):
    """Every decoded query the rest of the library can ask an index."""
    labels = graph.label_alphabet()
    return {
        "hist": index.label_histogram(),
        "adj_pairs": index.adjacent_label_pairs(),
        "pairs": index.distinct_edge_label_pairs(),
        "deg": index.degree_map(),
        "sig": index.signature_map(),
        "inv": {label: index.vertices_with_label(label) for label in labels},
        "nwl": {
            (v, label): index.neighbors_with_label(v, label)
            for v in graph.vertices()
            for label in labels
        },
        "edges": {
            pair: index.edges_with_labels(*pair)
            for pair in index.distinct_edge_label_pairs()
        },
    }


class TestLabelTable:
    def test_interns_in_canonical_order(self):
        table = LabelTable(["b", "a", "c"], ["Y", "X"])
        assert list(table.vertex_of) == ["b", "a", "c"]
        assert list(table.label_of) == ["Y", "X"]
        assert table.vint("a") == 1
        assert table.lint("X") == 1
        assert table.lint("Z") is None

    def test_intern_appends_and_revives(self):
        table = LabelTable(["a"], ["X"])
        assert table.intern_vertex("b") == 1
        assert table.intern_vertex("b") == 1  # idempotent
        assert table.intern_label("Y") == 1
        assert table.entries == 4

    def test_nbytes_positive(self):
        table = LabelTable(["a", "b"], ["X"])
        assert table.nbytes() > 0


class TestBackendSwitch:
    @pytest.fixture(autouse=True)
    def _restore(self):
        previous = index_backend()
        yield
        set_index_backend(previous)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            set_index_backend("sparse-matrix")

    def test_switch_returns_previous(self):
        first = set_index_backend("dict")
        assert first in ("dict", "compact")
        assert set_index_backend("compact") == "dict"

    def test_get_index_follows_backend(self):
        graph = random_labeled_graph(12, 0.3, alphabet=("A", "B"), seed=5)
        set_index_backend("dict")
        index = get_index(graph)
        assert type(index) is GraphIndex
        set_index_backend("compact")
        index = get_index(graph)
        assert isinstance(index, CompactGraphIndex)
        # The compact cache keeps serving while the backend is compact.
        assert get_index(graph) is index


class TestCompactFootprint:
    def test_compact_smaller_than_dict(self):
        graph = random_labeled_graph(40, 0.2, alphabet=("A", "B", "C"), seed=11)
        dict_bytes = GraphIndex.build(graph).nbytes()
        compact_bytes = CompactGraphIndex(graph).nbytes()
        assert compact_bytes < dict_bytes / 2

    def test_projected_footprint_tracks_nbytes(self):
        # The projection is the pager's cost model: it must land within a
        # small constant factor of the measured footprint for both
        # backends and preserve the compact-vs-dict ordering.
        for seed, size, p in ((3, 30, 0.2), (7, 80, 0.12), (19, 150, 0.08)):
            graph = random_labeled_graph(
                size, p, alphabet=("A", "B", "C", "D"), seed=seed
            )
            num_labels = len(graph.label_alphabet())
            for backend, index in (
                ("dict", GraphIndex.build(graph)),
                ("compact", CompactGraphIndex(graph)),
            ):
                projected = projected_index_nbytes(
                    graph.num_vertices, graph.num_edges, num_labels, backend
                )
                measured = index.nbytes()
                assert measured / 3 <= projected <= measured * 3
        projected_dict = projected_index_nbytes(100, 300, 4, "dict")
        projected_compact = projected_index_nbytes(100, 300, 4, "compact")
        assert projected_compact <= 0.7 * projected_dict

    def test_intern_entries_counts_table(self):
        graph = random_labeled_graph(15, 0.3, alphabet=("A", "B"), seed=2)
        index = CompactGraphIndex(graph)
        assert index.intern_entries() == graph.num_vertices + len(
            graph.label_alphabet()
        )
        assert GraphIndex.build(graph).intern_entries() == 0


def _random_mutation(rng: random.Random, graph: LabeledGraph, next_id: list) -> None:
    vertices = sorted(graph.vertices(), key=repr)
    roll = rng.random()
    if roll < 0.30 or graph.num_vertices < 4:
        vertex = f"n{next_id[0]}"
        next_id[0] += 1
        graph.add_vertex(vertex, rng.choice("ABCD"))
        if vertices and rng.random() < 0.8:
            graph.add_edge(vertex, rng.choice(vertices))
    elif roll < 0.60:
        u, v = rng.sample(vertices, 2)
        if not graph.has_edge(u, v):
            graph.add_edge(u, v)
    elif roll < 0.85:
        edges = graph.edges()
        if edges:
            graph.remove_edge(*rng.choice(edges))
    else:
        vertex = rng.choice(vertices)
        graph.remove_vertex(vertex)


class TestCompactChurn:
    """CSR-patched == rebuilt under randomized mixed churn streams."""

    @pytest.mark.parametrize("seed", [1, 2, 5, 9, 14, 23, 31, 47])
    def test_patched_matches_rebuilt(self, seed):
        rng = random.Random(seed)
        graph = random_labeled_graph(
            10, 0.3, alphabet=("A", "B", "C"), seed=seed
        )
        patched = CompactGraphIndex(graph)
        pending = []
        graph.subscribe(pending.append)
        next_id = [0]
        for step in range(120):
            _random_mutation(rng, graph, next_id)
            for delta in pending:
                assert patched.apply_delta(delta)
            pending.clear()
            assert patched.is_current()
            if step % 20 == 19:
                rebuilt = patched.rebuilt()
                fresh_dict = GraphIndex.build(graph)
                expected = decoded_view(fresh_dict, graph)
                assert decoded_view(patched, graph) == expected
                assert decoded_view(rebuilt, graph) == expected

    @pytest.mark.parametrize("seed", [6, 18, 27])
    def test_window_stream_and_intern_compaction(self, seed):
        """Sliding-window churn: adds followed by expiry of the oldest.

        While patching, retired slots stay tombstoned (never recycled);
        a rebuild re-interns from scratch, so the fresh table must hold
        exactly the live vertices and labels — no leaked retirees.
        """
        rng = random.Random(seed)
        graph = LabeledGraph(name="window")
        index = CompactGraphIndex(graph)
        pending = []
        graph.subscribe(pending.append)
        window = []
        for step in range(80):
            vertex = f"w{step}"
            graph.add_vertex(vertex, rng.choice("AB"))
            if window and rng.random() < 0.9:
                graph.add_edge(vertex, rng.choice(window))
            window.append(vertex)
            if len(window) > 12:
                graph.remove_vertex(window.pop(0))
            for delta in pending:
                assert index.apply_delta(delta)
            pending.clear()
        assert index.is_current()
        live = graph.num_vertices + len(graph.label_alphabet())
        assert index.intern_entries() > live  # tombstones accumulated
        rebuilt = index.rebuilt()
        assert rebuilt.intern_entries() == live  # rebuild sheds them
        assert decoded_view(rebuilt, graph) == decoded_view(index, graph)

    def test_maintainer_patches_compact_index(self):
        previous = set_index_backend("compact")
        try:
            graph = random_labeled_graph(12, 0.3, alphabet=("A", "B"), seed=4)
            maintainer = IndexMaintainer(graph)
            assert isinstance(maintainer.index(), CompactGraphIndex)
            anchor = sorted(graph.vertices(), key=repr)[0]
            graph.add_vertex("fresh", "A")
            graph.add_edge("fresh", anchor)
            index = maintainer.index()
            assert index.is_current()
            assert "fresh" in index.vertices_with_label("A")
            assert maintainer.patches_applied >= 1
        finally:
            set_index_backend(previous)


class TestSegmentSetMemo:
    def test_memo_invalidated_by_patch(self):
        graph = random_labeled_graph(10, 0.4, alphabet=("A", "B"), seed=8)
        index = CompactGraphIndex(graph)
        vertex = sorted(graph.vertices())[0]
        vi = index.table.vint(vertex)
        li = index.table.lint("A")
        before = index._segment_set(vi, li)
        assert index._segment_set(vi, li) is before  # memoized
        pending = []
        graph.subscribe(pending.append)
        graph.add_vertex("zz", "A")
        graph.add_edge("zz", vertex)
        for delta in pending:
            index.apply_delta(delta)
        after = index._segment_set(vi, li)
        assert index.table.vint("zz") in after
        assert len(after) == len(before) + 1
