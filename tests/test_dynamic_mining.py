"""Randomized equivalence: DynamicMiner == re-mined-from-scratch, per batch.

The dynamic mining subsystem (repro.mining.dynamic) maintains the
frequent-pattern set under a stream of mixed insertions and deletions,
re-evaluating only patterns whose label-pair footprint intersects the
batch's touched pairs.  After *every* batch its results must be
byte-identical — certificates, support values, occurrence counts — to a
full re-mine of the current graph, both through a freshly built index
and through the ``use_index=False`` brute-force reference path.
"""

from __future__ import annotations

import random

import pytest

from repro.datasets.synthetic import planted_pattern_graph, random_labeled_graph
from repro.errors import MiningError
from repro.graph.builders import star_pattern
from repro.mining.dynamic import (
    DynamicMiner,
    StreamBatch,
    mine_stream,
    pattern_footprint,
)
from repro.mining.miner import mine_frequent_patterns

# These suites deliberately exercise the legacy-kwarg entry points
# alongside spec=; the deprecation they trigger is the point, not noise.
pytestmark = pytest.mark.filterwarnings(
    "ignore:legacy mining kwargs:DeprecationWarning"
)

MINE_KWARGS = dict(
    measure="mni", min_support=2, max_pattern_nodes=4, max_pattern_edges=4
)


def result_key(result):
    """The byte-identity certificate: (certificate, support, occurrences)."""
    return [
        (fp.certificate, fp.support, fp.num_occurrences)
        for fp in sorted(result.frequent, key=lambda fp: fp.certificate)
    ]


def reference_keys(graph, **kwargs):
    """Full re-mine references: rebuilt index (on a copy) and brute force."""
    rebuilt = mine_frequent_patterns(graph.copy(), **kwargs)
    brute = mine_frequent_patterns(graph, use_index=False, **kwargs)
    assert result_key(rebuilt) == result_key(brute)
    return result_key(rebuilt)


def grow_randomly(graph, rng, steps, alphabet, tag):
    added = 0
    serial = 0
    while added < steps:
        if rng.random() < 0.3:
            graph.add_vertex(f"{tag}-{serial}", rng.choice(alphabet))
            serial += 1
            added += 1
        else:
            u, v = rng.sample(graph.vertices(), 2)
            if not graph.has_edge(u, v):
                graph.add_edge(u, v)
                added += 1


def churn_randomly(graph, rng, steps, alphabet, tag):
    """Mixed mutations: insertions, edge removals, vertex removals."""
    applied = 0
    serial = 0
    while applied < steps:
        roll = rng.random()
        if roll < 0.25:
            graph.add_vertex(f"{tag}-{serial}", rng.choice(alphabet))
            serial += 1
            applied += 1
        elif roll < 0.5 and graph.num_edges > 3:
            graph.remove_edge(*rng.choice(graph.edges()))
            applied += 1
        elif roll < 0.6 and graph.num_vertices > 6:
            graph.remove_vertex(rng.choice(graph.vertices()))
            applied += 1
        else:
            u, v = rng.sample(graph.vertices(), 2)
            if not graph.has_edge(u, v):
                graph.add_edge(u, v)
                applied += 1


class TestRandomizedStreamEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 5, 8, 13])
    def test_identical_after_every_batch(self, seed):
        alphabet = ("A", "B", "C") if seed % 2 else ("A", "B", "C", "D")
        graph = random_labeled_graph(14, 0.22, alphabet=alphabet, seed=seed)
        rng = random.Random(seed * 37 + 5)
        miner = DynamicMiner(graph, **MINE_KWARGS)
        assert result_key(miner.refresh()) == reference_keys(graph, **MINE_KWARGS)
        for batch in range(4):
            grow_randomly(graph, rng, steps=5, alphabet="ABCD", tag=f"s{seed}b{batch}")
            dynamic = miner.refresh()
            assert result_key(dynamic) == reference_keys(graph, **MINE_KWARGS)

    @pytest.mark.parametrize("measure", ["mni", "mi", "mis"])
    def test_measure_generality(self, measure):
        kwargs = dict(MINE_KWARGS, measure=measure)
        graph = planted_pattern_graph(
            star_pattern("A", ["B", "C"]),
            num_copies=8,
            overlap_fraction=0.5,
            background_vertices=4,
            background_edge_probability=0.3,
            seed=21,
        )
        rng = random.Random(99)
        miner = DynamicMiner(graph, **kwargs)
        miner.refresh()
        for batch in range(3):
            grow_randomly(graph, rng, steps=4, alphabet="ABC", tag=f"m{batch}")
            assert result_key(miner.refresh()) == reference_keys(graph, **kwargs)

    def test_lazy_mni_stream(self):
        kwargs = dict(MINE_KWARGS, lazy=True)
        graph = random_labeled_graph(14, 0.25, alphabet=("A", "B", "C"), seed=31)
        rng = random.Random(7)
        miner = DynamicMiner(graph, **kwargs)
        miner.refresh()
        for batch in range(3):
            grow_randomly(graph, rng, steps=4, alphabet="ABC", tag=f"l{batch}")
            assert result_key(miner.refresh()) == reference_keys(graph, **kwargs)

    def test_brute_reference_mode(self):
        graph = random_labeled_graph(12, 0.25, alphabet=("A", "B"), seed=17)
        rng = random.Random(3)
        miner = DynamicMiner(graph, use_index=False, **MINE_KWARGS)
        miner.refresh()
        grow_randomly(graph, rng, steps=6, alphabet="AB", tag="nb")
        assert result_key(miner.refresh()) == reference_keys(graph, **MINE_KWARGS)


class TestMixedStreamEquivalence:
    """Deletions ride the same footprint shortcut as insertions."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 5, 8, 13])
    def test_identical_after_every_mixed_batch(self, seed):
        alphabet = ("A", "B", "C") if seed % 2 else ("A", "B", "C", "D")
        graph = random_labeled_graph(14, 0.25, alphabet=alphabet, seed=seed)
        rng = random.Random(seed * 53 + 11)
        miner = DynamicMiner(graph, **MINE_KWARGS)
        assert result_key(miner.refresh()) == reference_keys(graph, **MINE_KWARGS)
        for batch in range(4):
            churn_randomly(graph, rng, steps=5, alphabet="ABCD", tag=f"x{seed}b{batch}")
            assert result_key(miner.refresh()) == reference_keys(graph, **MINE_KWARGS)

    @pytest.mark.parametrize("measure", ["mni", "mi", "mis"])
    def test_measure_generality_under_churn(self, measure):
        kwargs = dict(MINE_KWARGS, measure=measure)
        graph = planted_pattern_graph(
            star_pattern("A", ["B", "C"]),
            num_copies=8,
            overlap_fraction=0.5,
            background_vertices=4,
            background_edge_probability=0.3,
            seed=43,
        )
        rng = random.Random(77)
        miner = DynamicMiner(graph, **kwargs)
        miner.refresh()
        for batch in range(3):
            churn_randomly(graph, rng, steps=4, alphabet="ABC", tag=f"g{batch}")
            assert result_key(miner.refresh()) == reference_keys(graph, **kwargs)

    def test_lazy_mni_under_churn(self):
        kwargs = dict(MINE_KWARGS, lazy=True)
        graph = random_labeled_graph(14, 0.28, alphabet=("A", "B", "C"), seed=47)
        rng = random.Random(19)
        miner = DynamicMiner(graph, **kwargs)
        miner.refresh()
        for batch in range(3):
            churn_randomly(graph, rng, steps=4, alphabet="ABC", tag=f"z{batch}")
            assert result_key(miner.refresh()) == reference_keys(graph, **kwargs)

    def test_pure_deletion_batches(self):
        graph = random_labeled_graph(16, 0.3, alphabet=("A", "B", "C"), seed=51)
        rng = random.Random(23)
        miner = DynamicMiner(graph, **MINE_KWARGS)
        miner.refresh()
        for batch in range(4):
            for _ in range(3):
                if graph.num_edges:
                    graph.remove_edge(*rng.choice(graph.edges()))
            assert result_key(miner.refresh()) == reference_keys(graph, **MINE_KWARGS)

    def test_localized_deletion_reuses_unaffected_patterns(self):
        """Deletions confined to one label region leave the rest reused."""
        graph = planted_pattern_graph(
            star_pattern("A", ["B", "B"]), num_copies=8, overlap_fraction=0.4, seed=3
        )
        offset = graph.num_vertices + 100
        right = planted_pattern_graph(
            star_pattern("C", ["D", "D"]), num_copies=8, overlap_fraction=0.4, seed=4
        )
        for vertex in right.vertices():
            graph.add_vertex(vertex + offset, right.label_of(vertex))
        for u, v in right.edges():
            graph.add_edge(u + offset, v + offset)
        miner = DynamicMiner(graph, **MINE_KWARGS)
        initial = miner.refresh()
        # Delete only C-D edges; every A/B pattern must be reused verbatim.
        cd_edges = [
            (u, v)
            for u, v in graph.edges()
            if {graph.label_of(u), graph.label_of(v)} == {"C", "D"}
        ]
        for edge in cd_edges[:2]:
            graph.remove_edge(*edge)
        refreshed = miner.refresh()
        stats = refreshed.stats
        assert stats.patterns_reused > 0
        assert stats.patterns_evaluated < initial.stats.patterns_evaluated
        assert result_key(refreshed) == reference_keys(graph, **MINE_KWARGS)

    def test_deleted_pattern_resurfaces_after_reinsert(self):
        """A pattern killed by deletions revives when insertions restore it."""
        graph = planted_pattern_graph(
            star_pattern("A", ["B", "B"]), num_copies=3, overlap_fraction=0.0, seed=9
        )
        miner = DynamicMiner(graph, measure="mni", min_support=3, max_pattern_nodes=3)
        initial = miner.refresh()
        star_cert = next(fp.certificate for fp in initial.frequent if fp.num_edges == 2)
        # Break one planted star: support drops from 3 below min_support.
        a_vertex = sorted(graph.vertices_with_label("A"), key=repr)[0]
        b_neighbor = sorted(graph.neighbors_with_label(a_vertex, "B"), key=repr)[0]
        graph.remove_edge(a_vertex, b_neighbor)
        shrunk = miner.refresh()
        assert star_cert not in {fp.certificate for fp in shrunk.frequent}
        assert shrunk.stats.patterns_revived == 0  # pruning revives nothing
        assert result_key(shrunk) == reference_keys(
            graph, measure="mni", min_support=3, max_pattern_nodes=3
        )
        # Repair it: the pruned pattern must resurface, counted as revived.
        graph.add_edge(a_vertex, b_neighbor)
        revived = miner.refresh()
        assert star_cert in {fp.certificate for fp in revived.frequent}
        assert revived.stats.patterns_revived >= 1
        assert result_key(revived) == result_key(initial)

    def test_isolated_vertex_removal_evaluates_nothing(self):
        graph = random_labeled_graph(14, 0.25, alphabet=("A", "B"), seed=55)
        graph.add_vertex("loner", "A")
        miner = DynamicMiner(graph, **MINE_KWARGS)
        initial = miner.refresh()
        graph.remove_vertex("loner")
        refreshed = miner.refresh()
        assert refreshed.stats.patterns_evaluated == 0
        assert refreshed.stats.patterns_reused == initial.num_frequent
        assert result_key(refreshed) == result_key(initial)


class TestDeltaSavings:
    def test_localized_delta_reuses_unaffected_patterns(self):
        """Insertions confined to one label region leave the rest untouched."""
        left = planted_pattern_graph(
            star_pattern("A", ["B", "B"]), num_copies=8, overlap_fraction=0.4, seed=3
        )
        graph = left
        offset = graph.num_vertices + 100
        right = planted_pattern_graph(
            star_pattern("C", ["D", "D"]), num_copies=8, overlap_fraction=0.4, seed=4
        )
        for vertex in right.vertices():
            graph.add_vertex(vertex + offset, right.label_of(vertex))
        for u, v in right.edges():
            graph.add_edge(u + offset, v + offset)
        miner = DynamicMiner(graph, **MINE_KWARGS)
        initial = miner.refresh()
        assert initial.num_frequent > 0
        # Touch only the C/D region.
        c_vertices = sorted(graph.vertices_with_label("C"), key=repr)
        graph.add_vertex("new-d", "D")
        graph.add_edge(c_vertices[0], "new-d")
        refreshed = miner.refresh()
        stats = refreshed.stats
        assert stats.patterns_reused > 0
        assert stats.patterns_evaluated < initial.stats.patterns_evaluated
        # First appearances on a growth-only refresh are not "revivals".
        assert stats.patterns_revived == 0
        assert result_key(refreshed) == reference_keys(graph, **MINE_KWARGS)

    def test_vertex_only_batch_evaluates_nothing(self):
        graph = random_labeled_graph(14, 0.25, alphabet=("A", "B"), seed=5)
        miner = DynamicMiner(graph, **MINE_KWARGS)
        initial = miner.refresh()
        graph.add_vertex("isolated", "A")
        refreshed = miner.refresh()
        assert refreshed.stats.patterns_evaluated == 0
        assert refreshed.stats.patterns_reused == initial.num_frequent
        assert result_key(refreshed) == result_key(initial)

    def test_noop_refresh_returns_cached_result(self):
        graph = random_labeled_graph(10, 0.3, alphabet=("A", "B"), seed=6)
        miner = DynamicMiner(graph, **MINE_KWARGS)
        first = miner.refresh()
        assert miner.refresh() is first


class TestFallbacks:
    def test_edge_removal_stays_on_the_delta_path(self):
        """A deletion is a delta, not a fallback: unaffected patterns reuse."""
        graph = random_labeled_graph(14, 0.3, alphabet=("A", "B", "C"), seed=9)
        miner = DynamicMiner(graph, **MINE_KWARGS)
        miner.refresh()
        u, v = graph.edges()[0]
        graph.remove_edge(u, v)
        refreshed = miner.refresh()
        assert refreshed.stats.patterns_reused > 0
        assert result_key(refreshed) == reference_keys(graph, **MINE_KWARGS)

    def test_vertex_removal_stays_on_the_delta_path(self):
        graph = random_labeled_graph(14, 0.3, alphabet=("A", "B", "C"), seed=10)
        miner = DynamicMiner(graph, **MINE_KWARGS)
        miner.refresh()
        graph.remove_vertex(graph.vertices()[0])
        refreshed = miner.refresh()
        assert refreshed.stats.patterns_reused > 0
        assert result_key(refreshed) == reference_keys(graph, **MINE_KWARGS)

    def test_detached_miner_stays_correct_via_full_remine(self):
        graph = random_labeled_graph(12, 0.25, alphabet=("A", "B"), seed=11)
        miner = DynamicMiner(graph, **MINE_KWARGS)
        miner.refresh()
        assert miner.attached
        miner.detach()
        assert not miner.attached
        grow_randomly(graph, random.Random(1), steps=5, alphabet="AB", tag="det")
        refreshed = miner.refresh()
        assert refreshed.stats.patterns_reused == 0  # no delta savings anymore
        assert result_key(refreshed) == reference_keys(graph, **MINE_KWARGS)
        miner.detach()  # idempotent

    def test_rejects_non_anti_monotonic_measure(self):
        graph = random_labeled_graph(8, 0.3, alphabet=("A", "B"), seed=12)
        with pytest.raises(MiningError):
            DynamicMiner(graph, measure="occurrences")

    def test_rejects_bad_parameters(self):
        graph = random_labeled_graph(8, 0.3, alphabet=("A", "B"), seed=13)
        with pytest.raises(MiningError):
            DynamicMiner(graph, min_support=0)
        with pytest.raises(MiningError):
            DynamicMiner(graph, measure="mis", lazy=True)


class TestMineStream:
    def _updates(self, tag, count):
        updates = [("v", f"{tag}-{i}", "AB"[i % 2]) for i in range(count)]
        for i in range(1, count):
            updates.append(("e", f"{tag}-{i - 1}", f"{tag}-{i}"))
        return updates

    def test_modes_agree_per_batch(self):
        updates = self._updates("u", 6)
        keys = {}
        for mode in ("delta", "rebuild", "brute"):
            graph = random_labeled_graph(10, 0.25, alphabet=("A", "B"), seed=20)
            steps = list(
                mine_stream(graph, updates, batch_size=3, mode=mode, **MINE_KWARGS)
            )
            assert [step.batch for step in steps] == [0, 1, 2, 3, 4]
            assert steps[0].updates_applied == 0
            keys[mode] = [result_key(step.result) for step in steps]
        assert keys["delta"] == keys["rebuild"] == keys["brute"]

    def test_stream_batch_shape(self):
        graph = random_labeled_graph(8, 0.3, alphabet=("A", "B"), seed=22)
        before_v, before_e = graph.num_vertices, graph.num_edges
        steps = list(
            mine_stream(
                graph,
                [("v", "s-0", "A"), ("e", "s-0", graph.vertices()[0])],
                batch_size=2,
                **MINE_KWARGS,
            )
        )
        assert isinstance(steps[0], StreamBatch)
        assert steps[0].num_vertices == before_v and steps[0].num_edges == before_e
        assert steps[1].num_vertices == before_v + 1
        assert steps[1].num_edges == before_e + 1
        assert steps[1].updates_applied == 2

    def test_stream_detaches_observers_when_done(self):
        graph = random_labeled_graph(8, 0.3, alphabet=("A", "B"), seed=24)
        list(mine_stream(graph, [("v", "s-0", "A")], **MINE_KWARGS))
        assert not graph.has_observers()
        # Abandoning the generator mid-stream must also clean up.
        stream = mine_stream(graph, [("v", "s-1", "B")], **MINE_KWARGS)
        next(stream)
        stream.close()
        assert not graph.has_observers()

    def test_modes_agree_on_mixed_stream(self):
        """Insert/delete updates (de/dv records) keep all modes identical."""
        updates = self._updates("u", 5) + [
            ("de", "u-0", "u-1"),
            ("de", "u-1", "u-2"),
            ("dv", "u-1"),
            ("v", "u-1", "B"),
            ("e", "u-0", "u-1"),
        ]
        keys = {}
        for mode in ("delta", "rebuild", "brute"):
            graph = random_labeled_graph(10, 0.25, alphabet=("A", "B"), seed=26)
            steps = list(
                mine_stream(graph, updates, batch_size=3, mode=mode, **MINE_KWARGS)
            )
            keys[mode] = [result_key(step.result) for step in steps]
            assert graph.num_vertices == 10 + 5 - 1 + 1
        assert keys["delta"] == keys["rebuild"] == keys["brute"]

    def test_rejects_bad_mode_and_batch_size(self):
        graph = random_labeled_graph(8, 0.3, alphabet=("A", "B"), seed=23)
        with pytest.raises(MiningError):
            list(mine_stream(graph, [], mode="nope"))
        with pytest.raises(MiningError):
            list(mine_stream(graph, [], batch_size=0))
        with pytest.raises(MiningError):
            list(mine_stream(graph, [("x", 1, 2)]))


class TestSlidingWindow:
    def _chain_updates(self, graph, count):
        """A growing chain of new vertices, one edge per new vertex."""
        anchor = graph.vertices()[0]
        updates = []
        for i in range(count):
            updates.append(("v", f"w-{i}", "AB"[i % 2]))
            updates.append(("e", f"w-{i - 1}" if i else anchor, f"w-{i}"))
        return updates

    def test_window_caps_live_stream_edges(self):
        graph = random_labeled_graph(8, 0.25, alphabet=("A", "B"), seed=29)
        base_edges = graph.num_edges
        updates = self._chain_updates(graph, 10)
        steps = list(mine_stream(graph, updates, batch_size=4, window=3, **MINE_KWARGS))
        # Once saturated, every batch expires as many edges as it inserts.
        assert [step.edges_expired for step in steps] == [0, 0, 1, 2, 2, 2]
        assert graph.num_edges == base_edges + 3  # exactly the window remains
        assert sum(step.edges_expired for step in steps) == 10 - 3

    def test_window_modes_agree_per_batch(self):
        updates = None
        keys = {}
        for mode in ("delta", "rebuild", "brute"):
            graph = random_labeled_graph(8, 0.25, alphabet=("A", "B"), seed=33)
            updates = updates or self._chain_updates(graph, 8)
            steps = list(
                mine_stream(
                    graph, updates, batch_size=3, window=4, mode=mode, **MINE_KWARGS
                )
            )
            keys[mode] = [
                (result_key(step.result), step.edges_expired) for step in steps
            ]
        assert keys["delta"] == keys["rebuild"] == keys["brute"]

    def test_explicit_deletion_retires_edge_from_window(self):
        """A de record frees window budget; the expiry skips dead entries."""
        graph = random_labeled_graph(8, 0.25, alphabet=("A", "B"), seed=35)
        updates = self._chain_updates(graph, 4) + [("de", "w-2", "w-3")]
        steps = list(
            mine_stream(
                graph, updates, batch_size=len(updates), window=3, **MINE_KWARGS
            )
        )
        # 4 inserted, 1 explicitly deleted -> 3 live: nothing left to expire.
        assert steps[-1].edges_expired == 0
        assert graph.has_edge("w-0", "w-1")

    def test_base_graph_edges_never_expire(self):
        graph = random_labeled_graph(8, 0.4, alphabet=("A", "B"), seed=37)
        base = set(map(tuple, graph.edges()))
        updates = self._chain_updates(graph, 6)
        list(mine_stream(graph, updates, batch_size=2, window=1, **MINE_KWARGS))
        assert base <= set(map(tuple, graph.edges()))

    def test_redundant_reinsert_does_not_hand_base_edge_to_window(self):
        """A stream re-inserting an existing base edge must not make it expire.

        The insertion is an idempotent no-op on the graph, so the window
        may not claim the edge as stream-owned (lax validation — no base
        graph — is exactly the windowed CLI configuration).
        """
        graph = random_labeled_graph(8, 0.4, alphabet=("A", "B"), seed=45)
        u, v = graph.edges()[0]
        updates = [("e", u, v)] + self._chain_updates(graph, 5)
        list(mine_stream(graph, updates, batch_size=3, window=2, **MINE_KWARGS))
        assert graph.has_edge(u, v)

    def test_window_supersedes_explicit_deletion_of_expired_edge(self):
        """A de record for an edge the window already expired is a no-op.

        The stream is valid un-windowed; a small window must not make it
        crash mid-replay just because expiry got to the edge first.
        """
        graph = random_labeled_graph(8, 0.25, alphabet=("A", "B"), seed=43)
        updates = self._chain_updates(graph, 6) + [
            ("de", graph.vertices()[0], "w-0"),  # oldest edge: expired by then
            ("v", "w-6", "A"),
            ("e", "w-5", "w-6"),
        ]
        for mode in ("delta", "rebuild"):
            replay = random_labeled_graph(8, 0.25, alphabet=("A", "B"), seed=43)
            steps = list(
                mine_stream(
                    replay, updates, batch_size=4, window=2, mode=mode, **MINE_KWARGS
                )
            )
            assert steps[-1].num_edges == replay.num_edges
            assert not replay.has_edge(replay.vertices()[0], "w-0")

    def test_rejects_bad_window(self):
        graph = random_labeled_graph(8, 0.3, alphabet=("A", "B"), seed=39)
        with pytest.raises(MiningError):
            list(mine_stream(graph, [], window=0))

    def test_stream_batch_expired_default(self):
        graph = random_labeled_graph(8, 0.3, alphabet=("A", "B"), seed=41)
        steps = list(mine_stream(graph, [("v", "s-0", "A")], **MINE_KWARGS))
        assert all(step.edges_expired == 0 for step in steps)


def test_pattern_footprint_is_canonical():
    pattern = star_pattern("A", ["B", "C"])
    footprint = pattern_footprint(pattern)
    assert len(footprint) == 2
    for pair in footprint:
        assert pair == (pair if repr(pair[0]) <= repr(pair[1]) else (pair[1], pair[0]))
