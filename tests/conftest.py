"""Shared fixtures: paper figures, zoo graphs, and small random instances."""

from __future__ import annotations

import pytest

from repro.datasets.paper_figures import load_all_figures, load_figure
from repro.datasets.zoo import zoo_graph
from repro.graph.builders import path_pattern, triangle_pattern
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.pattern import Pattern


@pytest.fixture(scope="session")
def all_figures():
    return load_all_figures()


@pytest.fixture
def fig2():
    return load_figure("fig2")


@pytest.fixture
def fig4():
    return load_figure("fig4")


@pytest.fixture
def fig6():
    return load_figure("fig6")


@pytest.fixture
def small_path_graph() -> LabeledGraph:
    """The Fig. 4 path: 1(a)-2(b)-3(b)-4(a)."""
    return LabeledGraph(
        vertices=[(1, "a"), (2, "b"), (3, "b"), (4, "a")],
        edges=[(1, 2), (2, 3), (3, 4)],
        name="small-path",
    )


@pytest.fixture
def uniform_triangle() -> Pattern:
    """The one-label triangle pattern (|Aut| = 6)."""
    return triangle_pattern("a")


@pytest.fixture
def asymmetric_path() -> Pattern:
    """Path a-b-b (one non-trivial transitive pair in a subpattern)."""
    return path_pattern(["a", "b", "b"])


@pytest.fixture
def fan_graph() -> LabeledGraph:
    return zoo_graph("triangle_fan")


@pytest.fixture
def disjoint_tri_graph() -> LabeledGraph:
    return zoo_graph("disjoint_triangles")
