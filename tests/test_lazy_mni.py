"""Tests for anchored isomorphism search and lazy (GraMi-style) MNI."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets.synthetic import random_labeled_graph
from repro.datasets.zoo import zoo_graph
from repro.errors import MeasureError, MiningError
from repro.graph.builders import path_graph, path_pattern, star_graph, triangle_pattern
from repro.graph.pattern import Pattern
from repro.isomorphism.anchored import (
    find_anchored_isomorphisms,
    has_occurrence_with,
    valid_images,
)
from repro.isomorphism.matcher import find_occurrences
from repro.measures.lazy_mni import lazy_mni_support, mni_at_least
from repro.measures.mni import mni_support_from_occurrences
from repro.mining.miner import FrequentSubgraphMiner, mine_frequent_patterns

# These suites deliberately exercise the legacy-kwarg entry points
# alongside spec=; the deprecation they trigger is the point, not noise.
pytestmark = pytest.mark.filterwarnings(
    "ignore:legacy mining kwargs:DeprecationWarning"
)


class TestAnchoredSearch:
    def test_anchored_matches_filtered_enumeration(self, fig2):
        all_occurrences = find_occurrences(fig2.pattern, fig2.data_graph)
        anchored = list(
            find_anchored_isomorphisms(fig2.pattern, fig2.data_graph, {"v1": 2})
        )
        expected = [o.mapping for o in all_occurrences if o.mapping["v1"] == 2]
        assert sorted(map(repr, anchored)) == sorted(map(repr, expected))

    def test_label_mismatch_rejected(self):
        g = path_graph(["a", "b"])
        p = Pattern.single_edge("a", "b")
        assert list(find_anchored_isomorphisms(p, g, {"v1": 2})) == []

    def test_non_injective_anchor_rejected(self):
        g = path_graph(["a", "a", "a"])
        p = path_pattern(["a", "a"])
        assert list(find_anchored_isomorphisms(p, g, {"v1": 1, "v2": 1})) == []

    def test_anchored_edge_consistency(self):
        g = path_graph(["a", "a", "a"])
        p = path_pattern(["a", "a"])
        # v1=1 and v2=3 are not adjacent in the path.
        assert list(find_anchored_isomorphisms(p, g, {"v1": 1, "v2": 3})) == []

    def test_unknown_vertex_rejected(self):
        g = path_graph(["a", "a"])
        p = path_pattern(["a", "a"])
        assert list(find_anchored_isomorphisms(p, g, {"v1": 99})) == []

    def test_has_occurrence_with(self, fig2):
        assert has_occurrence_with(fig2.pattern, fig2.data_graph, "v1", 1)
        # Vertex 4 hangs off the triangle: never an image of a triangle node.
        assert not has_occurrence_with(fig2.pattern, fig2.data_graph, "v1", 4)

    def test_valid_images_matches_eager(self, fig2):
        occurrences = find_occurrences(fig2.pattern, fig2.data_graph)
        eager = {o.mapping["v1"] for o in occurrences}
        assert set(valid_images(fig2.pattern, fig2.data_graph, "v1")) == eager

    def test_valid_images_stop_after(self):
        g = star_graph("c", ["l"] * 6)
        p = Pattern.single_edge("c", "l")
        images = valid_images(p, g, "v2", stop_after=3)
        assert len(images) == 3


class TestLazyMNI:
    def test_agrees_with_eager_on_figures(self, all_figures):
        for fig in all_figures:
            eager = mni_support_from_occurrences(
                fig.pattern, find_occurrences(fig.pattern, fig.data_graph)
            )
            assert lazy_mni_support(fig.pattern, fig.data_graph) == eager, fig.figure_id

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=3_000))
    def test_agrees_with_eager_on_random(self, seed):
        graph = random_labeled_graph(9, 0.3, alphabet=("A", "B"), seed=seed)
        pattern = path_pattern(["A", "B", "A"])
        eager = mni_support_from_occurrences(
            pattern, find_occurrences(pattern, graph)
        )
        assert lazy_mni_support(pattern, graph) == eager

    def test_decision_procedure(self, fig2):
        assert mni_at_least(fig2.pattern, fig2.data_graph, 1)
        assert mni_at_least(fig2.pattern, fig2.data_graph, 3)
        assert not mni_at_least(fig2.pattern, fig2.data_graph, 4)

    def test_decision_rejects_bad_threshold(self, fig2):
        with pytest.raises(MeasureError):
            mni_at_least(fig2.pattern, fig2.data_graph, 0)

    def test_cap_truncates(self, fig2):
        assert lazy_mni_support(fig2.pattern, fig2.data_graph, cap=2) == 2

    def test_zero_when_absent(self):
        g = path_graph(["a", "a"])
        assert lazy_mni_support(triangle_pattern("a"), g) == 0
        assert not mni_at_least(triangle_pattern("a"), g, 1)

    def test_label_histogram_shortcut(self):
        # Threshold above the label population fails without any search.
        g = path_graph(["a", "b"])
        p = Pattern.single_edge("a", "b")
        assert not mni_at_least(p, g, 2)


class TestLazyMining:
    def test_lazy_matches_eager_results(self):
        graph = zoo_graph("triangle_fan")
        eager = mine_frequent_patterns(
            graph, measure="mni", min_support=3, max_pattern_nodes=3
        )
        lazy = mine_frequent_patterns(
            graph, measure="mni", min_support=3, max_pattern_nodes=3, lazy=True
        )
        assert eager.certificates() == lazy.certificates()

    def test_lazy_never_enumerates_occurrences(self):
        graph = zoo_graph("disjoint_triangles")
        result = mine_frequent_patterns(
            graph, measure="mni", min_support=2, max_pattern_nodes=3, lazy=True
        )
        assert result.stats.occurrence_enumerations == 0
        assert all(fp.num_occurrences == -1 for fp in result.frequent)

    def test_lazy_requires_mni(self):
        with pytest.raises(MiningError):
            FrequentSubgraphMiner(zoo_graph("star"), measure="mi", lazy=True)

    def test_lazy_supports_capped_at_threshold(self):
        graph = zoo_graph("disjoint_triangles")
        result = mine_frequent_patterns(
            graph, measure="mni", min_support=2, max_pattern_nodes=3, lazy=True
        )
        assert all(fp.support <= 2 for fp in result.frequent)
