"""Unit and property tests for Edmonds' blossom maximum matching."""

import random
from itertools import combinations

from hypothesis import given, settings, strategies as st

from repro.graph.matching import is_matching, maximum_matching, maximum_matching_size


def brute_force_matching_size(edges):
    """Exponential oracle: try all subsets of edges, largest disjoint one."""
    edges = list(edges)
    best = 0
    for size in range(len(edges), 0, -1):
        if size <= best:
            break
        for combo in combinations(edges, size):
            used = set()
            ok = True
            for u, v in combo:
                if u in used or v in used:
                    ok = False
                    break
                used.add(u)
                used.add(v)
            if ok:
                best = size
                break
    return best


class TestBasics:
    def test_empty(self):
        assert maximum_matching([]) == {}
        assert maximum_matching_size([]) == 0

    def test_single_edge(self):
        m = maximum_matching([(1, 2)])
        assert m == {1: 2, 2: 1}

    def test_path_of_four(self):
        assert maximum_matching_size([(1, 2), (2, 3), (3, 4)]) == 2

    def test_star_matches_one(self):
        assert maximum_matching_size([(0, i) for i in range(1, 6)]) == 1

    def test_triangle(self):
        assert maximum_matching_size([(1, 2), (2, 3), (1, 3)]) == 1

    def test_odd_cycle_blossom(self):
        # C5: matching of size 2; requires blossom handling to augment.
        edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]
        assert maximum_matching_size(edges) == 2

    def test_petersen_graph_has_perfect_matching(self):
        outer = [(i, (i + 1) % 5) for i in range(5)]
        spokes = [(i, i + 5) for i in range(5)]
        inner = [(5 + i, 5 + (i + 2) % 5) for i in range(5)]
        assert maximum_matching_size(outer + spokes + inner) == 5

    def test_classic_blossom_trap(self):
        # Two triangles joined by a path: greedy augmentation without
        # blossoms fails; correct answer is 3.
        edges = [
            (1, 2), (2, 3), (1, 3),   # triangle A
            (4, 5), (5, 6), (4, 6),   # triangle B
            (3, 4),                   # bridge
        ]
        assert maximum_matching_size(edges) == 3

    def test_self_loops_and_duplicates_ignored(self):
        assert maximum_matching_size([(1, 1), (1, 2), (2, 1), (1, 2)]) == 1

    def test_result_is_symmetric(self):
        edges = [(1, 2), (2, 3), (3, 4), (4, 1)]
        m = maximum_matching(edges)
        for u, v in m.items():
            assert m[v] == u

    def test_result_is_valid_matching(self):
        edges = [(1, 2), (2, 3), (3, 4), (4, 5), (5, 1), (2, 5)]
        m = maximum_matching(edges)
        pairs = [(u, v) for u, v in m.items() if repr(u) < repr(v)]
        assert is_matching(edges, pairs)

    def test_string_node_ids(self):
        m = maximum_matching([("a", "b"), ("b", "c")])
        assert len(m) // 2 == 1


class TestAgainstBruteForce:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        n=st.integers(min_value=2, max_value=8),
        m=st.integers(min_value=1, max_value=12),
    )
    def test_random_graphs(self, seed, n, m):
        rng = random.Random(seed)
        edges = set()
        for _ in range(m):
            u, v = rng.sample(range(n), 2)
            edges.add((min(u, v), max(u, v)))
        edges = sorted(edges)
        assert maximum_matching_size(edges) == brute_force_matching_size(edges)


class TestMIESIntegration:
    def test_2_uniform_hypergraph_uses_matching(self):
        from repro.hypergraph.hypergraph import Hypergraph
        from repro.measures.mies import mies_support_of

        # A 9-cycle as a 2-uniform hypergraph: MIES = floor(9/2) = 4.
        h = Hypergraph.from_edge_sets([[i, (i + 1) % 9] for i in range(9)])
        assert mies_support_of(h) == 4

    def test_matches_branch_and_bound_on_small_cases(self):
        from repro.hypergraph.hypergraph import Hypergraph
        from repro.measures.mies import maximum_independent_edge_set

        rng = random.Random(7)
        for trial in range(10):
            edges = set()
            for _ in range(rng.randint(2, 10)):
                u, v = rng.sample(range(7), 2)
                edges.add((min(u, v), max(u, v)))
            h = Hypergraph.from_edge_sets([list(e) for e in sorted(edges)])
            blossom = maximum_matching_size(sorted(edges))
            bnb = len(maximum_independent_edge_set(h))
            assert blossom == bnb, sorted(edges)

    def test_large_one_edge_pattern_is_fast(self):
        from repro.datasets.synthetic import preferential_attachment_graph
        from repro.graph.pattern import Pattern
        from repro.measures.bounds import chain_values

        graph = preferential_attachment_graph(120, 2, alphabet=("u",), seed=1)
        pattern = Pattern.single_edge("u", "u")
        values = chain_values(pattern, graph, include_mcp=False)
        # Matching-based MIS equals MIES and respects the chain.
        assert values["mis"] == values["mies"]
        assert values["mis"] <= values["mvc"] <= values["mi"] <= values["mni"]
