"""Integration tests: every thesis figure reproduces its pinned values.

This is the per-experiment index of DESIGN.md made executable — one test
class per figure, asserting exactly what the thesis text states.
"""

import pytest

from repro.datasets.paper_figures import (
    FIGURE3_EDGE_SETS,
    load_all_figures,
    load_figure,
)
from repro.graph.automorphism import transitive_node_subsets
from repro.hypergraph.construction import HypergraphBundle
from repro.hypergraph.hypergraph import dual_hypergraph
from repro.isomorphism.matcher import find_occurrences
from repro.measures.bounds import chain_values
from repro.measures.mvc import mvc_support_of


def figure_values(figure_id):
    fig = load_figure(figure_id)
    bundle = HypergraphBundle.build(fig.pattern, fig.data_graph)
    return fig, bundle, chain_values(fig.pattern, fig.data_graph, bundle=bundle)


class TestAllFiguresPinnedValues:
    """Every `expected` entry of every figure matches the computed value."""

    @pytest.mark.parametrize("figure_id", [f"fig{i}" for i in range(1, 11)])
    def test_expected_values(self, figure_id):
        fig, _bundle, values = figure_values(figure_id)
        special = {"super_occurrences", "super_mvc", "transitive_subsets"}
        for key, want in fig.expected.items():
            if key in special:
                continue
            assert values[key] == pytest.approx(want), (
                f"{figure_id}: {key} expected {want}, got {values[key]}"
            )


class TestFigure1:
    def test_four_hyperedges_and_dual(self):
        fig, bundle, _values = figure_values("fig1")
        assert bundle.occurrence_hg.num_edges == 4
        dual = dual_hypergraph(bundle.instance_hg)
        # One dual edge per data vertex appearing in an occurrence.
        assert dual.hypergraph.num_edges == bundle.instance_hg.num_vertices


class TestFigure2:
    def test_occurrence_table_is_all_permutations(self):
        fig = load_figure("fig2")
        occurrences = find_occurrences(fig.pattern, fig.data_graph)
        images = {
            tuple(occ.mapping[node] for node in fig.pattern.nodes())
            for occ in occurrences
        }
        import itertools

        assert images == set(itertools.permutations((1, 2, 3)))

    def test_single_instance_on_vertices_123(self):
        fig, bundle, _values = figure_values("fig2")
        assert bundle.instances[0].vertex_set == frozenset({1, 2, 3})


class TestFigure3:
    def test_hyperedge_sets_match_thesis(self):
        fig, bundle, _values = figure_values("fig3")
        got = {edge.vertices for edge in bundle.occurrence_hg.edges()}
        assert got == set(FIGURE3_EDGE_SETS)

    def test_occurrence_equals_instance_hypergraph(self):
        # Distinct labels -> trivial automorphism group -> identical views.
        fig, bundle, _values = figure_values("fig3")
        occ_sets = sorted(sorted(e.vertices) for e in bundle.occurrence_hg.edges())
        inst_sets = sorted(sorted(e.vertices) for e in bundle.instance_hg.edges())
        assert occ_sets == inst_sets

    def test_untouched_vertices_absent_from_hypergraph(self):
        fig, bundle, _values = figure_values("fig3")
        hypergraph_vertices = set(bundle.occurrence_hg.vertices())
        for vertex in (7, 12, 14, 18, 19, 20):
            assert vertex not in hypergraph_vertices


class TestFigure4:
    def test_occurrence_table(self):
        fig = load_figure("fig4")
        occurrences = find_occurrences(fig.pattern, fig.data_graph)
        tuples = {
            tuple(occ.mapping[n] for n in ("v1", "v2", "v3")) for occ in occurrences
        }
        assert tuples == {(1, 2, 3), (4, 3, 2)}

    def test_mni_2_mi_1(self):
        _fig, _bundle, values = figure_values("fig4")
        assert values["mni"] == 2
        assert values["mi"] == 1


class TestFigure5:
    def test_superpattern_occurrence_table(self):
        fig = load_figure("fig5")
        occurrences = find_occurrences(fig.superpattern, fig.data_graph)
        tuples = {
            tuple(occ.mapping[n] for n in ("v1", "v2", "v3", "v4"))
            for occ in occurrences
        }
        assert tuples == {
            (1, 2, 3, 5),
            (1, 2, 3, 6),
            (1, 3, 2, 4),
            (2, 1, 3, 5),
            (2, 1, 3, 6),
            (3, 1, 2, 4),
        }

    def test_mvc_stays_1_under_extension(self):
        fig = load_figure("fig5")
        sub = HypergraphBundle.build(fig.pattern, fig.data_graph)
        sup = HypergraphBundle.build(fig.superpattern, fig.data_graph)
        assert mvc_support_of(sub.occurrence_hg) == fig.expected["mvc"] == 1
        assert mvc_support_of(sup.occurrence_hg) == fig.expected["super_mvc"] == 1

    def test_every_measure_anti_monotone_through_extension(self):
        fig = load_figure("fig5")
        sub_values = chain_values(fig.pattern, fig.data_graph)
        sup_values = chain_values(fig.superpattern, fig.data_graph)
        for key in ("mni", "mi", "mvc", "mis", "mies", "lp_mvc", "lp_mies", "mcp"):
            assert sub_values[key] >= sup_values[key] - 1e-6, key


class TestFigure6:
    def test_headline_values(self):
        _fig, _bundle, values = figure_values("fig6")
        assert values["mis"] == 2
        assert values["mvc"] == 2
        assert values["mi"] == 4
        assert values["mni"] == 4

    def test_minimum_cover_is_1_and_8(self):
        from repro.measures.mvc import minimum_vertex_cover

        _fig, bundle, _values = figure_values("fig6")
        assert minimum_vertex_cover(bundle.occurrence_hg) == {1, 8}


class TestFigure7:
    def test_transitive_subset_family(self):
        fig = load_figure("fig7")
        subsets = {tuple(sorted(s)) for s in transitive_node_subsets(fig.pattern)}
        assert subsets == {
            ("v1",), ("v2",), ("v3",),
            ("v1", "v2"), ("v2", "v3"), ("v1", "v3"),
        }
        assert len(subsets) == fig.expected["transitive_subsets"]


class TestFigure8:
    def test_dual_hypergraph_edges(self):
        _fig, bundle, _values = figure_values("fig8")
        dual = dual_hypergraph(bundle.instance_hg)
        # Every data vertex lies on exactly two cycle edges.
        for vertex in (1, 2, 3, 4):
            assert len(dual.dual_edge(vertex)) == 2

    def test_mis_equals_mies_equals_2(self):
        _fig, _bundle, values = figure_values("fig8")
        assert values["mis"] == values["mies"] == 2


class TestFigure9And10:
    # Pairwise overlap relations are covered in tests/test_overlap.py; here
    # we assert the counts the figures print.
    def test_fig9_three_occurrences_mi_2(self):
        _fig, _bundle, values = figure_values("fig9")
        assert values["occurrences"] == 3
        assert values["mi"] == 2

    def test_fig10_three_occurrences(self):
        _fig, _bundle, values = figure_values("fig10")
        assert values["occurrences"] == 3


class TestFigureLoader:
    def test_load_all_returns_ten(self):
        assert len(load_all_figures()) == 10

    def test_unknown_figure(self):
        with pytest.raises(KeyError):
            load_figure("fig99")
