"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.graph.builders import path_graph
from repro.graph.io import save_graph


@pytest.fixture()
def lg_files(tmp_path):
    graph_path = tmp_path / "graph.lg"
    pattern_path = tmp_path / "pattern.lg"
    save_graph(path_graph(["a", "b", "a", "b", "a"]), graph_path)
    save_graph(path_graph(["a", "b"]), pattern_path)
    return str(graph_path), str(pattern_path)


class TestMeasureCommand:
    def test_prints_spectrum(self, lg_files, capsys):
        graph_path, pattern_path = lg_files
        assert main(["measure", graph_path, pattern_path]) == 0
        out = capsys.readouterr().out
        assert "sigma_MNI" in out
        assert "sigma_MIS" in out


class TestMineCommand:
    def test_mines_patterns(self, lg_files, capsys):
        graph_path, _ = lg_files
        assert main(["mine", graph_path, "--min-support", "2"]) == 0
        out = capsys.readouterr().out
        assert "frequent patterns" in out
        assert "patterns_generated" in out

    def test_measure_flag(self, lg_files, capsys):
        graph_path, _ = lg_files
        assert main(["mine", graph_path, "--measure", "mis", "--min-support", "1"]) == 0
        assert "measure=mis" in capsys.readouterr().out


class TestMineStreamCommand:
    @pytest.fixture()
    def stream_files(self, tmp_path):
        graph_path = tmp_path / "base.lg"
        updates_path = tmp_path / "updates.lg"
        save_graph(path_graph(["a", "b", "a", "b", "a"]), graph_path)
        updates_path.write_text(
            "# grow the path\n"
            "v 6 b\n"
            "e 5 6\n"
            "v 7 a\n"
            "e 6 7\n"
        )
        return str(graph_path), str(updates_path)

    def test_streams_batches(self, stream_files, capsys):
        graph_path, updates_path = stream_files
        assert (
            main(
                [
                    "mine-stream",
                    graph_path,
                    updates_path,
                    "--batch-size",
                    "2",
                    "--min-support",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "mine-stream over 4 updates" in out
        assert "mode=delta" in out
        assert "frequent patterns after the stream" in out

    @pytest.mark.parametrize("mode", ["rebuild", "brute"])
    def test_reference_modes(self, stream_files, mode, capsys):
        graph_path, updates_path = stream_files
        assert (
            main(
                [
                    "mine-stream",
                    graph_path,
                    updates_path,
                    "--mode",
                    mode,
                    "--min-support",
                    "2",
                ]
            )
            == 0
        )
        assert f"mode={mode}" in capsys.readouterr().out

    @pytest.fixture()
    def mixed_stream_files(self, tmp_path):
        graph_path = tmp_path / "base.lg"
        updates_path = tmp_path / "mixed.lg"
        save_graph(path_graph(["a", "b", "a", "b", "a"]), graph_path)
        updates_path.write_text(
            "# mixed churn\n"
            "v 6 b\n"
            "e 5 6\n"
            "de 1 2\n"
            "v 7 a\n"
            "e 6 7\n"
            "de 5 6\n"
            "de 6 7\n"
            "dv 6\n"
        )
        return str(graph_path), str(updates_path)

    def test_mixed_stream_with_deletions(self, mixed_stream_files, capsys):
        graph_path, updates_path = mixed_stream_files
        assert (
            main(
                [
                    "mine-stream",
                    graph_path,
                    updates_path,
                    "--batch-size",
                    "3",
                    "--min-support",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "mine-stream over 8 updates" in out
        assert "expired" in out

    def test_invalid_deletion_stream_fails_with_line_number(self, tmp_path, capsys):
        from repro.errors import DatasetError

        graph_path = tmp_path / "base.lg"
        updates_path = tmp_path / "bad.lg"
        save_graph(path_graph(["a", "b", "a"]), graph_path)
        updates_path.write_text("de 1 3\n")  # not an edge of the path 1-2-3
        with pytest.raises(DatasetError) as excinfo:
            main(["mine-stream", str(graph_path), str(updates_path)])
        assert "line 1" in str(excinfo.value)
        # Windowed runs keep the window-independent checks: deleting an
        # edge that never existed still fails up front with the line.
        with pytest.raises(DatasetError) as excinfo:
            main(["mine-stream", str(graph_path), str(updates_path), "--window", "3"])
        assert "line 1" in str(excinfo.value)

    def test_sliding_window(self, stream_files, capsys):
        graph_path, updates_path = stream_files
        assert (
            main(
                [
                    "mine-stream",
                    graph_path,
                    updates_path,
                    "--batch-size",
                    "2",
                    "--window",
                    "1",
                    "--min-support",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "window=1" in out
        assert "frequent patterns after the stream" in out


class TestFigureCommand:
    @pytest.mark.parametrize("figure_id", ["fig2", "fig4", "fig6"])
    def test_regenerates_figures(self, figure_id, capsys):
        assert main(["figure", figure_id]) == 0
        out = capsys.readouterr().out
        assert figure_id in out
        assert "# of images:" in out

    def test_unknown_figure_raises(self):
        with pytest.raises(KeyError):
            main(["figure", "fig42"])


class TestInfoCommand:
    def test_lists_measures(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        for name in ("mni", "mi", "mvc", "mis", "mies", "lp_mvc"):
            assert name in out
