"""Randomized equivalence: sharded evaluation == unsharded, byte for byte.

The partition layer (repro.partition) reroutes support evaluation through
per-shard enumeration of halo-expanded shard views.  Every rerouted path
must produce results *identical* to the flat single-graph path — support
values, occurrence counts, frequent-pattern certificates, mining
statistics — for every shard count, every partitioner, eager and lazy,
with and without the acceleration index, serial and pooled.  This suite
pins that on ~30 seeded random graphs spanning sparse/dense and
label-poor/label-rich regimes (style and scope mirror
``tests/test_index_equivalence.py``).
"""

from __future__ import annotations

import random

import pytest

from repro.datasets.synthetic import (
    planted_pattern_graph,
    preferential_attachment_graph,
    random_labeled_graph,
)
from repro.graph.builders import path_pattern, star_pattern, triangle_pattern
from repro.isomorphism.matcher import find_occurrences
from repro.measures.lazy_mni import lazy_mni_support
from repro.mining.dynamic import DynamicMiner, mine_stream
from repro.mining.miner import mine_frequent_patterns
from repro.mining.parallel import evaluate_support
from repro.partition import (
    PARTITION_METHODS,
    ShardedIndex,
    sharded_evaluate_support,
    sharded_lazy_mni,
    sharded_occurrences,
)

# These suites deliberately exercise the legacy-kwarg entry points
# alongside spec=; the deprecation they trigger is the point, not noise.
pytestmark = pytest.mark.filterwarnings(
    "ignore:legacy mining kwargs:DeprecationWarning"
)

PATTERNS = [
    path_pattern(["A", "B"]),
    path_pattern(["A", "B", "A"]),
    path_pattern(["B", "A", "C"]),
    star_pattern("A", ["B", "B"]),
    triangle_pattern("A"),
]

#: ~30 seeded random graphs: (generator-kind, seed, size, density-ish knob).
GRAPH_SPECS = (
    [("er", seed, 14, 0.25) for seed in range(8)]
    + [("er", seed, 20, 0.15) for seed in range(8, 15)]
    + [("er", seed, 16, 0.35) for seed in range(15, 20)]
    + [("ba", seed, 20, 2) for seed in range(20, 26)]
    + [("planted", seed, 8, 0.5) for seed in range(26, 31)]
)

MINE_KWARGS = dict(
    measure="mni", min_support=2, max_pattern_nodes=4, max_pattern_edges=4
)


def build_graph(spec):
    kind, seed, size, knob = spec
    if kind == "er":
        alphabet = ("A", "B", "C") if seed % 2 else ("A", "B", "C", "D")
        return random_labeled_graph(size, knob, alphabet=alphabet, seed=seed)
    if kind == "ba":
        return preferential_attachment_graph(
            size, knob, alphabet=("A", "B", "C", "D"), seed=seed, label_skew=0.3
        )
    return planted_pattern_graph(
        star_pattern("A", ["B", "C"]),
        num_copies=size,
        overlap_fraction=knob,
        background_vertices=4,
        background_edge_probability=0.3,
        seed=seed,
    )


def assert_mining_identical(sharded_result, flat_result):
    """Byte identity of everything a mining run reports."""
    assert sharded_result.certificates() == flat_result.certificates()
    assert [fp.support for fp in sharded_result.frequent] == [
        fp.support for fp in flat_result.frequent
    ]
    assert [fp.num_occurrences for fp in sharded_result.frequent] == [
        fp.num_occurrences for fp in flat_result.frequent
    ]
    assert sharded_result.stats.as_dict() == flat_result.stats.as_dict()


@pytest.fixture(params=GRAPH_SPECS, ids=lambda spec: f"{spec[0]}-s{spec[1]}")
def graph(request):
    return build_graph(request.param)


class TestShardedMiningEquivalence:
    def test_mining_identical_across_all_graphs(self, graph):
        """Every seeded graph, eager MNI, three shards."""
        flat = mine_frequent_patterns(graph, **MINE_KWARGS)
        sharded = mine_frequent_patterns(graph, shards=3, **MINE_KWARGS)
        assert_mining_identical(sharded, flat)


@pytest.mark.parametrize("method", PARTITION_METHODS)
@pytest.mark.parametrize("shards", [2, 3, 4])
@pytest.mark.parametrize("seed", [1, 9, 22, 27])
def test_mining_identical_per_partitioner(seed, shards, method):
    """k in {2, 3, 4} x all three partitioners (the acceptance matrix)."""
    graph = build_graph(GRAPH_SPECS[seed])
    flat = mine_frequent_patterns(graph, **MINE_KWARGS)
    sharded = mine_frequent_patterns(
        graph, shards=shards, partition_method=method, **MINE_KWARGS
    )
    assert_mining_identical(sharded, flat)


@pytest.mark.parametrize("measure", ["mni", "mi", "mis"])
@pytest.mark.parametrize("seed", [4, 12, 28])
def test_measures_mine_identically(seed, measure):
    graph = build_graph(GRAPH_SPECS[seed])
    kwargs = {**MINE_KWARGS, "measure": measure}
    flat = mine_frequent_patterns(graph, **kwargs)
    sharded = mine_frequent_patterns(
        graph, shards=3, partition_method="label", **kwargs
    )
    assert_mining_identical(sharded, flat)


@pytest.mark.parametrize("method", ["hash", "edgecut"])
@pytest.mark.parametrize("seed", [0, 6, 10, 17, 21, 24, 29])
def test_lazy_mining_identical(seed, method):
    graph = build_graph(GRAPH_SPECS[seed])
    kwargs = {**MINE_KWARGS, "lazy": True}
    flat = mine_frequent_patterns(graph, **kwargs)
    sharded = mine_frequent_patterns(
        graph, shards=4, partition_method=method, **kwargs
    )
    assert_mining_identical(sharded, flat)


@pytest.mark.parametrize("seed", [2, 13, 25])
def test_brute_force_sharded_identical(seed):
    """index=False stays the reference path shard-by-shard too."""
    graph = build_graph(GRAPH_SPECS[seed])
    kwargs = {**MINE_KWARGS, "use_index": False}
    flat = mine_frequent_patterns(graph, **kwargs)
    sharded = mine_frequent_patterns(graph, shards=2, **kwargs)
    assert_mining_identical(sharded, flat)


@pytest.mark.parametrize("seed", [5, 16, 23])
def test_pooled_sharded_identical(seed):
    """shards=k composed with workers=N matches the flat serial run."""
    graph = build_graph(GRAPH_SPECS[seed])
    flat = mine_frequent_patterns(graph, **MINE_KWARGS)
    pooled = mine_frequent_patterns(graph, shards=3, workers=2, **MINE_KWARGS)
    assert_mining_identical(pooled, flat)


@pytest.mark.parametrize("seed", [7, 18])
def test_pooled_lazy_sharded_identical(seed):
    """The lazy fanout branch (per-node image partials merged in the parent).

    hash partitioning spreads footprints across shards, so multi-shard
    candidates actually exercise shard_node_images + merge_lazy_partials
    rather than collapsing to solo tasks.
    """
    graph = build_graph(GRAPH_SPECS[seed])
    kwargs = {**MINE_KWARGS, "lazy": True}
    flat = mine_frequent_patterns(graph, **kwargs)
    pooled = mine_frequent_patterns(
        graph, shards=3, workers=2, partition_method="hash", **kwargs
    )
    assert_mining_identical(pooled, flat)


@pytest.mark.parametrize("seed", [6, 20])
def test_max_occurrences_sharded_deterministic(seed):
    """max_occurrences + shards: truncation is deterministic and pool-stable.

    The truncated subset may legitimately differ from the flat
    enumeration prefix (documented), but serial sharded, repeated serial
    sharded, and pooled sharded runs must all agree exactly.
    """
    graph = build_graph(GRAPH_SPECS[seed])
    kwargs = {**MINE_KWARGS, "max_occurrences": 5}
    first = mine_frequent_patterns(graph, shards=3, **kwargs)
    again = mine_frequent_patterns(graph, shards=3, **kwargs)
    pooled = mine_frequent_patterns(graph, shards=3, workers=2, **kwargs)
    assert_mining_identical(again, first)
    assert_mining_identical(pooled, first)


@pytest.mark.parametrize("seed", [3, 11, 19])
def test_single_shard_session_is_the_flat_path(seed):
    """shards=1 must not even build a ShardedIndex — today's path, untouched."""
    from repro.mining.miner import FrequentSubgraphMiner

    graph = build_graph(GRAPH_SPECS[seed])
    miner = FrequentSubgraphMiner(graph, **MINE_KWARGS)
    assert miner._sharded is None
    assert_mining_identical(
        mine_frequent_patterns(graph, shards=1, **MINE_KWARGS),
        miner.mine(),
    )


class TestShardedSupportEquivalence:
    @pytest.mark.parametrize("seed", [0, 7, 9, 18, 20, 26])
    @pytest.mark.parametrize("method", PARTITION_METHODS)
    def test_occurrence_sets_identical(self, seed, method):
        graph = build_graph(GRAPH_SPECS[seed])
        sharded = ShardedIndex.build(graph, 3, method)
        for pattern in PATTERNS:
            flat = find_occurrences(pattern, graph)
            merged = sharded_occurrences(pattern, sharded)
            assert {occ.mapping_items for occ in merged} == {
                occ.mapping_items for occ in flat
            }
            assert len(merged) == len(flat)

    @pytest.mark.parametrize("seed", [1, 8, 15, 21, 28])
    @pytest.mark.parametrize("measure", ["mni", "mi", "mis"])
    def test_support_values_identical(self, seed, measure):
        graph = build_graph(GRAPH_SPECS[seed])
        sharded = ShardedIndex.build(graph, 4, "hash")
        common = dict(
            lazy=False,
            lazy_cap=2,
            max_occurrences=None,
            index_arg=None,
            histogram=graph.label_histogram(),
            prune_below=None,
        )
        for pattern in PATTERNS:
            assert sharded_evaluate_support(
                pattern, sharded, measure, **common
            ) == evaluate_support(pattern, graph, measure, **common)

    @pytest.mark.parametrize("seed", [2, 14, 24])
    def test_prune_decisions_identical(self, seed):
        graph = build_graph(GRAPH_SPECS[seed])
        sharded = ShardedIndex.build(graph, 3, "edgecut")
        histogram = sharded.label_histogram()
        for pattern in PATTERNS:
            for threshold in (2.0, 4.0, 100.0):
                common = dict(
                    lazy=False,
                    lazy_cap=2,
                    max_occurrences=None,
                    index_arg=None,
                    histogram=histogram,
                    prune_below=threshold,
                )
                assert sharded_evaluate_support(
                    pattern, sharded, "mni", **common
                ) == evaluate_support(pattern, graph, "mni", **common)

    @pytest.mark.parametrize("seed", [4, 10, 16, 27])
    def test_lazy_capped_values_identical(self, seed):
        graph = build_graph(GRAPH_SPECS[seed])
        sharded = ShardedIndex.build(graph, 3, "hash")
        for pattern in PATTERNS[:3]:
            for cap in (1, 2, 4, None):
                assert sharded_lazy_mni(pattern, sharded, cap) == lazy_mni_support(
                    pattern, graph, cap=cap
                )


# ----------------------------------------------------------------------
# dynamic partitions: delta-maintained ShardedIndex under mixed churn
# ----------------------------------------------------------------------


def result_key(result):
    """The byte-identity certificate: (certificate, support, occurrences)."""
    return [
        (fp.certificate, fp.support, fp.num_occurrences)
        for fp in sorted(result.frequent, key=lambda fp: fp.certificate)
    ]


def churn_randomly(graph, rng, steps, alphabet, tag):
    """Mixed mutations: insertions, edge removals, vertex removals."""
    applied = 0
    serial = 0
    while applied < steps:
        roll = rng.random()
        if roll < 0.25:
            graph.add_vertex(f"{tag}-{serial}", rng.choice(alphabet))
            serial += 1
            applied += 1
        elif roll < 0.5 and graph.num_edges > 3:
            graph.remove_edge(*rng.choice(graph.edges()))
            applied += 1
        elif roll < 0.6 and graph.num_vertices > 6:
            graph.remove_vertex(rng.choice(graph.vertices()))
            applied += 1
        else:
            u, v = rng.sample(graph.vertices(), 2)
            if not graph.has_edge(u, v):
                graph.add_edge(u, v)
                applied += 1


class TestDynamicShardedEquivalence:
    """Patched ShardedIndex == freshly partitioned + rebuilt, per churn batch.

    The acceptance criterion of the dynamic-partitions PR: after any
    validated update stream the delta-maintained sharded miner must
    produce byte-identical results (certificates, supports, occurrence
    counts) to a from-scratch partition + rebuild of the current graph —
    and to the flat miner, by the PR 3 exactness argument.
    """

    @pytest.mark.parametrize("method", PARTITION_METHODS)
    @pytest.mark.parametrize("seed", [0, 9, 21])
    def test_mixed_churn_matches_fresh_partition(self, seed, method):
        graph = build_graph(GRAPH_SPECS[seed])
        rng = random.Random(seed * 131 + 17)
        miner = DynamicMiner(graph, shards=3, partition_method=method, **MINE_KWARGS)
        try:
            assert result_key(miner.refresh()) == result_key(
                mine_frequent_patterns(graph.copy(), **MINE_KWARGS)
            )
            for batch in range(3):
                churn_randomly(
                    graph, rng, steps=5, alphabet="ABCD", tag=f"{method}{seed}b{batch}"
                )
                patched = result_key(miner.refresh())
                fresh = result_key(
                    mine_frequent_patterns(
                        graph.copy(),
                        shards=3,
                        partition_method=method,
                        **MINE_KWARGS,
                    )
                )
                flat = result_key(mine_frequent_patterns(graph.copy(), **MINE_KWARGS))
                assert patched == fresh == flat
        finally:
            miner.detach()

    @pytest.mark.parametrize("measure", ["mni", "mi", "mis"])
    def test_measure_generality_under_sharded_churn(self, measure):
        kwargs = {**MINE_KWARGS, "measure": measure}
        graph = build_graph(GRAPH_SPECS[28])
        rng = random.Random(53)
        miner = DynamicMiner(graph, shards=2, partition_method="hash", **kwargs)
        try:
            miner.refresh()
            for batch in range(3):
                churn_randomly(graph, rng, steps=4, alphabet="ABC", tag=f"m{batch}")
                patched = result_key(miner.refresh())
                fresh = result_key(
                    mine_frequent_patterns(
                        graph.copy(), shards=2, partition_method="hash", **kwargs
                    )
                )
                assert patched == fresh
        finally:
            miner.detach()

    def test_lazy_mni_under_sharded_churn(self):
        kwargs = {**MINE_KWARGS, "lazy": True}
        graph = build_graph(GRAPH_SPECS[12])
        rng = random.Random(29)
        miner = DynamicMiner(graph, shards=3, partition_method="edgecut", **kwargs)
        try:
            miner.refresh()
            for batch in range(3):
                churn_randomly(graph, rng, steps=4, alphabet="ABC", tag=f"z{batch}")
                patched = result_key(miner.refresh())
                fresh = result_key(
                    mine_frequent_patterns(
                        graph.copy(), shards=3, partition_method="edgecut", **kwargs
                    )
                )
                flat = result_key(mine_frequent_patterns(graph.copy(), **kwargs))
                assert patched == fresh == flat
        finally:
            miner.detach()

    def test_delta_savings_survive_sharding(self):
        """Footprint reuse/skip still fires when evaluation is sharded."""
        graph = build_graph(GRAPH_SPECS[26])  # planted: two label regions
        miner = DynamicMiner(graph, shards=2, partition_method="label", **MINE_KWARGS)
        try:
            initial = miner.refresh()
            anchor = sorted(graph.vertices_with_label("A"), key=repr)[0]
            graph.add_vertex("fresh-b", "B")
            graph.add_edge(anchor, "fresh-b")
            refreshed = miner.refresh()
            assert (
                refreshed.stats.patterns_reused
                + refreshed.stats.patterns_skipped_unaffected
                > 0
            )
            assert refreshed.stats.patterns_evaluated <= (
                initial.stats.patterns_evaluated
            )
            assert result_key(refreshed) == result_key(
                mine_frequent_patterns(graph.copy(), **MINE_KWARGS)
            )
        finally:
            miner.detach()


class TestShardedWindowStreams:
    """Sliding-window expiry rides the same delta-routing machinery."""

    def _chain_updates(self, graph, count):
        anchor = graph.vertices()[0]
        updates = []
        for i in range(count):
            updates.append(("v", f"w-{i}", "AB"[i % 2]))
            updates.append(("e", f"w-{i - 1}" if i else anchor, f"w-{i}"))
        return updates

    @pytest.mark.parametrize("method", ["hash", "label"])
    def test_window_stream_sharded_modes_agree(self, method):
        updates = None
        keys = {}
        for mode in ("delta", "rebuild"):
            graph = build_graph(GRAPH_SPECS[2])
            updates = updates or self._chain_updates(graph, 8)
            steps = list(
                mine_stream(
                    graph,
                    updates,
                    batch_size=3,
                    window=4,
                    mode=mode,
                    shards=2,
                    partition_method=method,
                    **MINE_KWARGS,
                )
            )
            keys[mode] = [
                (result_key(step.result), step.edges_expired) for step in steps
            ]
            assert not graph.has_observers()
        assert keys["delta"] == keys["rebuild"]

    def test_sharded_stream_matches_unsharded_stream(self):
        updates = None
        keys = {}
        for shards in (1, 3):
            graph = build_graph(GRAPH_SPECS[13])
            updates = updates or self._chain_updates(graph, 9) + [
                ("de", "w-1", "w-2"),
                ("dv", "w-2"),
                ("v", "w-2", "A"),
                ("e", "w-1", "w-2"),
            ]
            steps = list(
                mine_stream(
                    graph,
                    updates,
                    batch_size=4,
                    shards=shards,
                    partition_method="edgecut",
                    **MINE_KWARGS,
                )
            )
            keys[shards] = [result_key(step.result) for step in steps]
        assert keys[1] == keys[3]
