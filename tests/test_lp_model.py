"""Unit tests for the LinearProgram model layer and backend dispatch."""

import pytest

from repro.errors import LPError
from repro.lp.model import LinearProgram, solve


def cover_lp_for_triangle() -> LinearProgram:
    lp = LinearProgram(sense="min")
    for name in ("x1", "x2", "x3"):
        lp.add_variable(name, objective=1.0)
    lp.add_ge_constraint({"x1": 1.0, "x2": 1.0}, 1.0)
    lp.add_ge_constraint({"x2": 1.0, "x3": 1.0}, 1.0)
    lp.add_ge_constraint({"x1": 1.0, "x3": 1.0}, 1.0)
    return lp


class TestModel:
    def test_variable_registration(self):
        lp = LinearProgram()
        index = lp.add_variable("x", objective=2.0)
        assert index == 0
        assert lp.num_variables == 1
        assert lp.variable_names() == ["x"]

    def test_duplicate_variable_rejected(self):
        lp = LinearProgram()
        lp.add_variable("x")
        with pytest.raises(LPError):
            lp.add_variable("x")

    def test_unknown_variable_in_constraint(self):
        lp = LinearProgram()
        with pytest.raises(LPError):
            lp.add_le_constraint({"ghost": 1.0}, 1.0)

    def test_invalid_bounds(self):
        lp = LinearProgram()
        with pytest.raises(LPError):
            lp.add_variable("x", lower=2.0, upper=1.0)

    def test_invalid_sense(self):
        with pytest.raises(LPError):
            LinearProgram(sense="diagonal")

    def test_dense_rows(self):
        lp = cover_lp_for_triangle()
        rows, rhs = lp.dense_rows()
        assert len(rows) == 3
        assert rhs == [-1.0, -1.0, -1.0]  # ge stored negated
        assert rows[0] == [-1.0, -1.0, 0.0]


class TestSolveBackends:
    def test_auto_backend(self):
        solution = solve(cover_lp_for_triangle())
        assert solution.value == pytest.approx(1.5)

    def test_simplex_backend(self):
        solution = solve(cover_lp_for_triangle(), backend="simplex")
        assert solution.value == pytest.approx(1.5)
        assert solution.backend == "simplex"

    def test_scipy_backend(self):
        pytest.importorskip("scipy")
        solution = solve(cover_lp_for_triangle(), backend="scipy")
        assert solution.value == pytest.approx(1.5)
        assert solution.backend == "scipy-highs"

    def test_backends_agree_on_assignment_value(self):
        lp1 = cover_lp_for_triangle()
        lp2 = cover_lp_for_triangle()
        simplex = solve(lp1, backend="simplex")
        auto = solve(lp2, backend="auto")
        assert simplex.value == pytest.approx(auto.value, abs=1e-7)

    def test_solution_getitem(self):
        solution = solve(cover_lp_for_triangle(), backend="simplex")
        assert 0.0 <= solution["x1"] <= 1.0

    def test_unknown_backend(self):
        with pytest.raises(LPError):
            solve(cover_lp_for_triangle(), backend="abacus")

    def test_maximization_problem(self):
        lp = LinearProgram(sense="max")
        lp.add_variable("y1", objective=1.0)
        lp.add_variable("y2", objective=1.0)
        lp.add_le_constraint({"y1": 1.0, "y2": 1.0}, 1.0)
        solution = solve(lp, backend="simplex")
        assert solution.value == pytest.approx(1.0)
