"""Unit tests for MIS, MIES, and the Theorem 4.1 equivalence."""

import pytest

from repro.datasets.paper_figures import load_figure
from repro.errors import BudgetExceededError
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.construction import HypergraphBundle
from repro.hypergraph.overlap import OverlapGraph, instance_overlap_graph
from repro.measures.base import compute_support
from repro.measures.mies import (
    greedy_independent_edge_set,
    is_independent_edge_set,
    maximum_independent_edge_set,
    mies_support_of,
)
from repro.measures.mis import (
    greedy_independent_set,
    maximum_independent_set,
    mis_support_of,
)


def path_overlap_graph() -> OverlapGraph:
    """P4 as an overlap graph: 0-1-2-3; MIS = 2."""
    return OverlapGraph(
        nodes=[0, 1, 2, 3],
        adjacency={0: {1}, 1: {0, 2}, 2: {1, 3}, 3: {2}},
    )


class TestMIS:
    def test_path_graph_mis(self):
        assert mis_support_of(path_overlap_graph()) == 2

    def test_complete_overlap_graph_mis_is_1(self):
        nodes = [0, 1, 2, 3]
        adjacency = {n: set(nodes) - {n} for n in nodes}
        graph = OverlapGraph(nodes=nodes, adjacency=adjacency)
        assert mis_support_of(graph) == 1

    def test_empty_overlap_graph(self):
        graph = OverlapGraph(nodes=[], adjacency={})
        assert mis_support_of(graph) == 0

    def test_isolated_vertices_all_selected(self):
        graph = OverlapGraph(nodes=[0, 1, 2], adjacency={0: set(), 1: set(), 2: set()})
        assert mis_support_of(graph) == 3

    def test_greedy_seed_is_independent(self):
        graph = path_overlap_graph()
        seed = greedy_independent_set(graph)
        for u in seed:
            assert not (graph.adjacency[u] & seed)

    def test_result_is_independent(self, fig6):
        bundle = HypergraphBundle.build(fig6.pattern, fig6.data_graph)
        graph = instance_overlap_graph(bundle.instances)
        chosen = maximum_independent_set(graph)
        for u in chosen:
            assert not (graph.adjacency[u] & chosen)

    def test_budget_guard(self):
        # A 9-cycle forces branching beyond one node.
        nodes = list(range(9))
        adjacency = {n: {(n - 1) % 9, (n + 1) % 9} for n in nodes}
        graph = OverlapGraph(nodes=nodes, adjacency=adjacency)
        with pytest.raises(BudgetExceededError):
            maximum_independent_set(graph, budget=1)

    def test_cycle_mis(self):
        nodes = list(range(5))
        adjacency = {n: {(n - 1) % 5, (n + 1) % 5} for n in nodes}
        graph = OverlapGraph(nodes=nodes, adjacency=adjacency)
        assert mis_support_of(graph) == 2


class TestMIES:
    def test_fig6_value(self, fig6):
        bundle = HypergraphBundle.build(fig6.pattern, fig6.data_graph)
        assert mies_support_of(bundle.instance_hg) == 2

    def test_disjoint_edges_all_chosen(self):
        h = Hypergraph.from_edge_sets([[1, 2], [3, 4], [5, 6]])
        assert mies_support_of(h) == 3

    def test_sunflower_only_one(self):
        h = Hypergraph.from_edge_sets([[0, 1, 2], [0, 3, 4], [0, 5, 6]])
        assert mies_support_of(h) == 1

    def test_result_is_independent(self, fig6):
        bundle = HypergraphBundle.build(fig6.pattern, fig6.data_graph)
        chosen = maximum_independent_edge_set(bundle.instance_hg)
        assert is_independent_edge_set(bundle.instance_hg, chosen)

    def test_greedy_is_independent(self, fig6):
        bundle = HypergraphBundle.build(fig6.pattern, fig6.data_graph)
        chosen = greedy_independent_edge_set(bundle.instance_hg)
        assert is_independent_edge_set(bundle.instance_hg, chosen)

    def test_empty_hypergraph(self):
        assert mies_support_of(Hypergraph()) == 0

    def test_budget_guard(self):
        # Greedy (scan order) picks e1 = {1, 4}, blocking both others, so
        # the incumbent (1) is below the bound (2) and branching must occur.
        h = Hypergraph.from_edge_sets([[1, 4], [1, 2], [3, 4]])
        with pytest.raises(BudgetExceededError):
            maximum_independent_edge_set(h, budget=1)


class TestTheorem41Equivalence:
    """sigma_MIES == sigma_MIS on every figure example (Theorem 4.1)."""

    @pytest.mark.parametrize("figure_id", [f"fig{i}" for i in range(1, 11)])
    def test_equality_on_figures(self, figure_id):
        fig = load_figure(figure_id)
        bundle = HypergraphBundle.build(fig.pattern, fig.data_graph)
        mies = mies_support_of(bundle.instance_hg)
        mis = mis_support_of(instance_overlap_graph(bundle.instances))
        assert mies == mis

    def test_occurrence_view_agrees(self, fig2):
        bundle = HypergraphBundle.build(fig2.pattern, fig2.data_graph)
        # Duplicate occurrence edges always intersect, so occurrence-level
        # MIES equals instance-level MIES.
        assert mies_support_of(bundle.occurrence_hg) == mies_support_of(
            bundle.instance_hg
        )

    def test_registry_entries_agree(self, fig6):
        assert compute_support("mis", fig6.pattern, fig6.data_graph) == 2.0
        assert compute_support("mies", fig6.pattern, fig6.data_graph) == 2.0
        assert compute_support(
            "mis_occurrence", fig6.pattern, fig6.data_graph
        ) == 2.0
        assert compute_support(
            "mies_occurrence", fig6.pattern, fig6.data_graph
        ) == 2.0
