"""Unit tests for Hypergraph and DualHypergraph."""

import pytest

from repro.errors import HypergraphError
from repro.hypergraph.hypergraph import (
    DualHypergraph,
    Hyperedge,
    Hypergraph,
    dual_hypergraph,
)


def build_sample() -> Hypergraph:
    h = Hypergraph(name="sample")
    h.add_edge("e1", [1, 2, 3])
    h.add_edge("e2", [3, 4])
    h.add_edge("e3", [4, 5])
    return h


class TestHyperedge:
    def test_basics(self):
        e = Hyperedge("e1", [1, 2, 2, 3])
        assert len(e) == 3
        assert 2 in e
        assert 9 not in e

    def test_empty_edge_rejected(self):
        with pytest.raises(HypergraphError):
            Hyperedge("e", [])

    def test_equality(self):
        assert Hyperedge("e", [1, 2]) == Hyperedge("e", [2, 1])
        assert Hyperedge("e", [1, 2]) != Hyperedge("f", [1, 2])


class TestHypergraph:
    def test_counts(self):
        h = build_sample()
        assert h.num_vertices == 5
        assert h.num_edges == 3

    def test_duplicate_label_rejected(self):
        h = build_sample()
        with pytest.raises(HypergraphError):
            h.add_edge("e1", [9])

    def test_duplicate_vertex_sets_allowed_with_distinct_labels(self):
        # Fig. 2: six occurrence edges over one vertex set.
        h = Hypergraph()
        for i in range(6):
            h.add_edge(f"f{i+1}", [1, 2, 3])
        assert h.num_edges == 6
        assert h.num_vertices == 3

    def test_edge_lookup(self):
        h = build_sample()
        assert h.edge("e2").vertices == frozenset({3, 4})
        with pytest.raises(HypergraphError):
            h.edge("nope")

    def test_edges_containing(self):
        h = build_sample()
        labels = [e.label for e in h.edges_containing(3)]
        assert labels == ["e1", "e2"]
        with pytest.raises(HypergraphError):
            h.edges_containing(42)

    def test_vertex_degree(self):
        h = build_sample()
        assert h.vertex_degree(3) == 2
        assert h.vertex_degree(1) == 1
        assert h.max_vertex_degree() == 2

    def test_from_edge_sets(self):
        h = Hypergraph.from_edge_sets([[1, 2], [2, 3]])
        assert h.edge_labels() == ["e1", "e2"]

    def test_uniformity(self):
        assert Hypergraph.from_edge_sets([[1, 2], [3, 4]]).uniformity() == 2
        assert build_sample().uniformity() is None
        assert not build_sample().is_uniform()
        assert Hypergraph().is_uniform()

    def test_is_simple(self):
        h = Hypergraph.from_edge_sets([[1, 2], [3, 4]])
        assert h.is_simple()
        nested = Hypergraph.from_edge_sets([[1, 2, 3], [1, 2]])
        assert not nested.is_simple()
        duplicated = Hypergraph.from_edge_sets([[1, 2], [1, 2]])
        assert not duplicated.is_simple()

    def test_overlapping_edge_pairs(self):
        h = build_sample()
        assert h.overlapping_edge_pairs() == [("e1", "e2"), ("e2", "e3")]

    def test_restrict_vertices(self):
        h = build_sample()
        restricted = h.restrict_vertices([1, 2, 3])
        assert restricted.num_edges == 2  # e3 emptied and dropped
        assert restricted.edge("e2").vertices == frozenset({3})

    def test_empty_hypergraph_properties(self):
        h = Hypergraph()
        assert h.num_vertices == 0
        assert h.max_vertex_degree() == 0
        assert h.overlapping_edge_pairs() == []


class TestDual:
    def test_dual_structure(self):
        h = build_sample()
        dual = dual_hypergraph(h)
        assert isinstance(dual, DualHypergraph)
        # One dual edge per primal vertex.
        assert dual.hypergraph.num_edges == h.num_vertices
        # Dual vertices are the primal edge labels.
        assert set(dual.vertices()) == {"e1", "e2", "e3"}

    def test_dual_edge_contents(self):
        h = build_sample()
        dual = dual_hypergraph(h)
        assert dual.dual_edge(3).vertices == frozenset({"e1", "e2"})
        assert dual.dual_edge(1).vertices == frozenset({"e1"})

    def test_double_dual_recovers_incidence(self):
        h = build_sample()
        dual = dual_hypergraph(h)
        # Vertex v is in edge e  <=>  e is in dual edge X_v.
        for vertex in h.vertices():
            for edge in h.edges():
                assert (vertex in edge.vertices) == (
                    edge.label in dual.dual_edge(vertex).vertices
                )
