"""Unit tests for the MVC measure and its approximations (Section 3.3)."""

import pytest

from repro.errors import BudgetExceededError
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.construction import HypergraphBundle
from repro.measures.base import compute_support
from repro.measures.mvc import (
    greedy_vertex_cover,
    is_vertex_cover,
    lp_relaxed_cover,
    lp_rounded_vertex_cover,
    matching_lower_bound,
    minimum_vertex_cover,
    mvc_support_of,
)


def fig6_hypergraph() -> Hypergraph:
    """The hyperedges of Fig. 6 as listed in the thesis."""
    return Hypergraph.from_edge_sets(
        [[1, 5], [1, 6], [1, 7], [1, 8], [2, 8], [3, 8], [4, 8]]
    )


class TestExactMVC:
    def test_fig6_cover_is_1_and_8(self):
        cover = minimum_vertex_cover(fig6_hypergraph())
        assert cover == {1, 8}

    def test_fig2_single_vertex_covers(self, fig2):
        bundle = HypergraphBundle.build(fig2.pattern, fig2.data_graph)
        assert mvc_support_of(bundle.occurrence_hg) == 1

    def test_empty_hypergraph(self):
        assert minimum_vertex_cover(Hypergraph()) == set()
        assert mvc_support_of(Hypergraph()) == 0

    def test_disjoint_edges_need_one_each(self):
        h = Hypergraph.from_edge_sets([[1, 2], [3, 4], [5, 6]])
        assert mvc_support_of(h) == 3

    def test_sunflower_covered_by_core(self):
        h = Hypergraph.from_edge_sets([[0, 1, 2], [0, 3, 4], [0, 5, 6]])
        assert minimum_vertex_cover(h) == {0}

    def test_result_is_a_cover(self, fig6):
        bundle = HypergraphBundle.build(fig6.pattern, fig6.data_graph)
        cover = minimum_vertex_cover(bundle.occurrence_hg)
        assert is_vertex_cover(bundle.occurrence_hg, cover)

    def test_budget_guard_general_solver(self):
        # 3-uniform input goes through edge branching; budget of 1 node.
        h = Hypergraph.from_edge_sets(
            [[1, 2, 3], [3, 4, 5], [5, 6, 1], [2, 4, 6], [1, 4, 7]]
        )
        with pytest.raises(BudgetExceededError):
            minimum_vertex_cover(h, budget=1)

    def test_budget_guard_graph_solver(self):
        # C5's vertex-cover LP is all-half, so Nemhauser-Trotter fixes
        # nothing and the graph branch-and-bound must actually branch.
        h = Hypergraph.from_edge_sets([[i, (i + 1) % 5] for i in range(5)])
        with pytest.raises(BudgetExceededError):
            minimum_vertex_cover(h, budget=1)

    def test_nt_core_solved_correctly_on_odd_cycles(self):
        # C5 cover = 3, C7 cover = 4: all-half LPs, pure core search.
        for n, want in ((5, 3), (7, 4)):
            h = Hypergraph.from_edge_sets([[i, (i + 1) % n] for i in range(n)])
            assert mvc_support_of(h) == want

    def test_graph_solver_matches_bruteforce(self):
        import random
        from itertools import combinations

        rng = random.Random(3)
        for _trial in range(12):
            n = rng.randint(3, 8)
            edges = set()
            for _ in range(rng.randint(2, 12)):
                u, v = rng.sample(range(n), 2)
                edges.add((min(u, v), max(u, v)))
            h = Hypergraph.from_edge_sets([list(e) for e in sorted(edges)])
            brute = None
            vertices = sorted({x for e in edges for x in e})
            for size in range(len(vertices) + 1):
                for combo in combinations(vertices, size):
                    chosen = set(combo)
                    if all(set(e) & chosen for e in edges):
                        brute = size
                        break
                if brute is not None:
                    break
            assert mvc_support_of(h) == brute, sorted(edges)

    def test_3_uniform_cover(self):
        # Two triangles sharing a vertex.
        h = Hypergraph.from_edge_sets([[1, 2, 3], [3, 4, 5]])
        assert mvc_support_of(h) == 1


class TestGreedyCover:
    def test_greedy_is_a_cover(self):
        h = fig6_hypergraph()
        cover = greedy_vertex_cover(h)
        assert is_vertex_cover(h, cover)

    def test_greedy_within_k_factor(self):
        h = fig6_hypergraph()
        k = h.uniformity()
        greedy = len(greedy_vertex_cover(h))
        optimal = mvc_support_of(h)
        assert greedy <= k * optimal

    def test_greedy_on_disjoint_edges(self):
        h = Hypergraph.from_edge_sets([[1, 2], [3, 4]])
        assert len(greedy_vertex_cover(h)) == 4  # takes both endpoints


class TestMatchingLowerBound:
    def test_bound_below_optimum(self):
        h = fig6_hypergraph()
        bound = matching_lower_bound([e.vertices for e in h.edges()])
        assert bound <= mvc_support_of(h)
        assert bound >= 1

    def test_bound_on_disjoint_edges_is_exact(self):
        sets = [frozenset({1, 2}), frozenset({3, 4}), frozenset({5, 6})]
        assert matching_lower_bound(sets) == 3


class TestLPRounding:
    def test_lp_value_below_integral(self):
        h = fig6_hypergraph()
        value, assignment = lp_relaxed_cover(h)
        assert value <= mvc_support_of(h) + 1e-9
        assert all(-1e-9 <= x <= 1 + 1e-9 for x in assignment.values())

    def test_rounded_set_is_cover(self):
        h = fig6_hypergraph()
        rounded = lp_rounded_vertex_cover(h)
        assert is_vertex_cover(h, rounded)

    def test_rounded_within_k_factor(self):
        h = Hypergraph.from_edge_sets([[1, 2, 3], [3, 4, 5], [5, 6, 1], [2, 4, 6]])
        k = h.uniformity()
        assert len(lp_rounded_vertex_cover(h)) <= k * mvc_support_of(h)

    def test_rounding_empty_hypergraph(self):
        assert lp_rounded_vertex_cover(Hypergraph()) == set()


class TestRegistry:
    def test_mvc_measure(self, fig6):
        assert compute_support("mvc", fig6.pattern, fig6.data_graph) == 2.0

    def test_mvc_greedy_measure_upper_bounds_exact(self, fig6):
        exact = compute_support("mvc", fig6.pattern, fig6.data_graph)
        greedy = compute_support("mvc_greedy", fig6.pattern, fig6.data_graph)
        assert greedy >= exact


class TestAntiMonotonicity:
    def test_fig5_extension_keeps_mvc_1(self):
        from repro.datasets.paper_figures import load_figure

        fig5 = load_figure("fig5")
        sub = HypergraphBundle.build(fig5.pattern, fig5.data_graph)
        sup = HypergraphBundle.build(fig5.superpattern, fig5.data_graph)
        assert mvc_support_of(sub.occurrence_hg) == 1
        assert mvc_support_of(sup.occurrence_hg) == 1
