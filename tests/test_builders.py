"""Unit tests for graph/pattern builders."""

import pytest

from repro.errors import GraphError
from repro.graph.builders import (
    binary_tree_graph,
    clique_pattern,
    complete_graph,
    cycle_graph,
    cycle_pattern,
    grid_graph,
    path_graph,
    path_pattern,
    star_graph,
    star_pattern,
    triangle_pattern,
)


class TestGraphBuilders:
    def test_path_graph(self):
        g = path_graph(["a", "b", "c"])
        assert g.num_vertices == 3
        assert g.num_edges == 2
        assert g.has_edge(1, 2) and g.has_edge(2, 3)
        assert g.label_of(2) == "b"

    def test_path_graph_single_vertex(self):
        g = path_graph(["a"])
        assert g.num_vertices == 1
        assert g.num_edges == 0

    def test_path_graph_empty_fails(self):
        with pytest.raises(GraphError):
            path_graph([])

    def test_cycle_graph(self):
        g = cycle_graph(["a"] * 4)
        assert g.num_edges == 4
        assert g.has_edge(4, 1)

    def test_cycle_too_small_fails(self):
        with pytest.raises(GraphError):
            cycle_graph(["a", "b"])

    def test_star_graph(self):
        g = star_graph("c", ["l"] * 5)
        assert g.num_vertices == 6
        assert g.degree(0) == 5
        assert all(g.degree(i) == 1 for i in range(1, 6))

    def test_complete_graph(self):
        g = complete_graph(["a"] * 5)
        assert g.num_edges == 10
        assert g.degree_sequence() == [4] * 5

    def test_grid_graph(self):
        g = grid_graph(3, 4, ["a", "b"])
        assert g.num_vertices == 12
        # 3*3 horizontal + 2*4 vertical = 9 + 8
        assert g.num_edges == 17
        assert g.has_edge(0, 1) and g.has_edge(0, 4)

    def test_grid_invalid_dimensions(self):
        with pytest.raises(GraphError):
            grid_graph(0, 3, ["a"])

    def test_binary_tree(self):
        g = binary_tree_graph(2, ["a"])
        assert g.num_vertices == 7
        assert g.num_edges == 6
        assert g.degree(0) == 2

    def test_binary_tree_depth_zero(self):
        g = binary_tree_graph(0, ["a"])
        assert g.num_vertices == 1

    def test_binary_tree_negative_depth_fails(self):
        with pytest.raises(GraphError):
            binary_tree_graph(-1, ["a"])


class TestPatternBuilders:
    def test_path_pattern_nodes_named_like_paper(self):
        p = path_pattern(["a", "b", "c"])
        assert p.nodes() == ["v1", "v2", "v3"]
        assert p.label_of("v2") == "b"

    def test_cycle_pattern(self):
        p = cycle_pattern(["a", "b", "c", "d"])
        assert p.num_edges == 4
        assert p.graph.has_edge("v4", "v1")

    def test_triangle_defaults_to_uniform(self):
        p = triangle_pattern("x")
        assert {p.label_of(n) for n in p.nodes()} == {"x"}
        assert p.num_edges == 3

    def test_triangle_with_distinct_labels(self):
        p = triangle_pattern("x", "y", "z")
        assert [p.label_of(n) for n in p.nodes()] == ["x", "y", "z"]

    def test_star_pattern(self):
        p = star_pattern("c", ["l", "l", "l"])
        assert p.num_nodes == 4
        assert p.graph.degree("v1") == 3

    def test_clique_pattern(self):
        p = clique_pattern(["a"] * 4)
        assert p.num_edges == 6
