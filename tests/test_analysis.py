"""Unit tests for the analysis layer (spectrum + report rendering)."""

import pytest

from repro.analysis.report import (
    format_hypergraph,
    format_occurrence_table,
    format_table,
)
from repro.analysis.spectrum import measure_spectrum, spectrum_report
from repro.hypergraph.construction import HypergraphBundle
from repro.isomorphism.matcher import find_occurrences


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "long-name" in lines[3]

    def test_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"
        assert text.splitlines()[1] == "=" * len("My Table")

    def test_float_rendering(self):
        text = format_table(["v"], [[1.0], [1.5], [0.333333]])
        assert "1" in text and "1.5" in text and "0.333" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text


class TestOccurrenceTable:
    def test_matches_fig2_layout(self, fig2):
        occurrences = find_occurrences(fig2.pattern, fig2.data_graph)
        text = format_occurrence_table(fig2.pattern, occurrences)
        assert "f1:" in text
        assert "f6:" in text
        assert "# of images:" in text
        # All three image counts are 3 (the figure's footer row).
        footer = text.splitlines()[-1]
        assert footer.count("3") == 3


class TestFormatHypergraph:
    def test_lists_edges(self, fig2):
        bundle = HypergraphBundle.build(fig2.pattern, fig2.data_graph)
        text = format_hypergraph(bundle.occurrence_hg)
        assert "f1" in text and "{1, 2, 3}" in text


class TestSpectrum:
    def test_values_match_expected(self, fig6):
        spectrum = measure_spectrum(fig6.pattern, fig6.data_graph)
        assert spectrum.value("mis") == 2
        assert spectrum.value("mni") == 4
        assert spectrum.num_occurrences == 7

    def test_unknown_key(self, fig6):
        spectrum = measure_spectrum(fig6.pattern, fig6.data_graph)
        with pytest.raises(KeyError):
            spectrum.value("bogus")

    def test_include_filter(self, fig6):
        spectrum = measure_spectrum(
            fig6.pattern, fig6.data_graph, include=["mni", "mi"]
        )
        assert set(spectrum.as_dict()) == {"mni", "mi"}

    def test_entries_in_chain_order(self, fig6):
        spectrum = measure_spectrum(fig6.pattern, fig6.data_graph)
        keys = [entry.key for entry in spectrum.entries]
        assert keys.index("mis") < keys.index("mvc") < keys.index("mni")

    def test_report_renders(self, fig6):
        spectrum = measure_spectrum(fig6.pattern, fig6.data_graph)
        text = spectrum_report(spectrum, title="fig6")
        assert "sigma_MNI" in text
        assert "occurrences" in text

    def test_timings_nonnegative(self, fig6):
        spectrum = measure_spectrum(fig6.pattern, fig6.data_graph)
        assert all(entry.seconds >= 0 for entry in spectrum.entries)
        assert spectrum.enumeration_seconds >= 0

    def test_shared_bundle_reused(self, fig6):
        bundle = HypergraphBundle.build(fig6.pattern, fig6.data_graph)
        spectrum = measure_spectrum(fig6.pattern, fig6.data_graph, bundle=bundle)
        assert spectrum.num_occurrences == bundle.num_occurrences
