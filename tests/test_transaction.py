"""Unit tests for the transaction-setting support module."""

import pytest

from repro.graph.builders import cycle_graph, path_graph, path_pattern, triangle_pattern
from repro.mining.transaction import (
    disjoint_union,
    transaction_counts_match_single_graph,
    transaction_support,
)


@pytest.fixture()
def transactions():
    return [
        cycle_graph(["a"] * 3),          # contains triangle + paths
        path_graph(["a", "a", "a"]),     # paths only
        path_graph(["a", "a"]),          # single edge
        cycle_graph(["a"] * 4),          # paths, no triangle
    ]


class TestTransactionSupport:
    def test_counts_containing_graphs(self, transactions):
        edge = path_pattern(["a", "a"])
        assert transaction_support(edge, transactions) == 4
        path3 = path_pattern(["a", "a", "a"])
        assert transaction_support(path3, transactions) == 3
        triangle = triangle_pattern("a")
        assert transaction_support(triangle, transactions) == 1

    def test_anti_monotone_by_construction(self, transactions):
        # Superpattern support never exceeds subpattern support.
        path2 = path_pattern(["a", "a"])
        path3 = path_pattern(["a", "a", "a"])
        assert transaction_support(path3, transactions) <= transaction_support(
            path2, transactions
        )

    def test_empty_database(self):
        assert transaction_support(path_pattern(["a", "a"]), []) == 0


class TestDisjointUnion:
    def test_sizes_add_up(self, transactions):
        union = disjoint_union(transactions)
        assert union.num_vertices == sum(t.num_vertices for t in transactions)
        assert union.num_edges == sum(t.num_edges for t in transactions)

    def test_components_stay_separate(self, transactions):
        union = disjoint_union(transactions)
        assert len(union.connected_components()) == len(transactions)

    def test_namespaced_vertices(self, transactions):
        union = disjoint_union(transactions)
        assert union.has_vertex((0, 1))
        assert union.has_vertex((3, 1))

    def test_mis_on_union_upper_bounds_transaction_support(self, transactions):
        for pattern in (
            path_pattern(["a", "a"]),
            path_pattern(["a", "a", "a"]),
            triangle_pattern("a"),
        ):
            assert transaction_counts_match_single_graph(pattern, transactions)
