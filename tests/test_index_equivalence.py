"""Randomized equivalence: indexed hot paths == brute-force reference.

The GraphIndex layer (repro.index) reroutes subgraph matching, anchored
search, lazy MNI, mining, and overlap-graph construction.  Every rerouted
path must produce results *identical* to the brute-force reference
(``index=False`` / ``use_index=False``) — not merely isomorphic ones:
occurrence lists (content and order), support values, frequent-pattern
certificates, overlap adjacency.  This suite pins that on ~50 seeded
random graphs spanning sparse/dense and label-poor/label-rich regimes.
"""

from __future__ import annotations

import pytest

from repro.datasets.synthetic import (
    planted_pattern_graph,
    preferential_attachment_graph,
    random_labeled_graph,
)
from repro.graph.builders import path_pattern, star_pattern, triangle_pattern
from repro.hypergraph.overlap import (
    OVERLAP_KINDS,
    occurrence_overlap_graph,
    overlap_statistics,
    overlaps,
)
from repro.index import (
    CompactGraphIndex,
    GraphIndex,
    get_index,
    index_backend,
    set_index_backend,
)
from repro.isomorphism.anchored import valid_images
from repro.isomorphism.matcher import find_occurrences
from repro.isomorphism.vf2 import find_subgraph_isomorphisms
from repro.measures.lazy_mni import lazy_mni_support, mni_at_least
from repro.measures.mni import mni_support_from_occurrences
from repro.mining.extension import adjacent_label_pairs, single_edge_patterns
from repro.mining.miner import mine_frequent_patterns

# These suites deliberately exercise the legacy-kwarg entry points
# alongside spec=; the deprecation they trigger is the point, not noise.
pytestmark = pytest.mark.filterwarnings(
    "ignore:legacy mining kwargs:DeprecationWarning"
)

PATTERNS = [
    path_pattern(["A", "B"]),
    path_pattern(["A", "B", "A"]),
    path_pattern(["B", "A", "C"]),
    star_pattern("A", ["B", "B"]),
    triangle_pattern("A"),
]

#: ~50 seeded random graphs: (generator-kind, seed, size, density-ish knob).
GRAPH_SPECS = (
    [("er", seed, 14, 0.25) for seed in range(12)]
    + [("er", seed, 22, 0.15) for seed in range(12, 24)]
    + [("er", seed, 18, 0.35) for seed in range(24, 32)]
    + [("ba", seed, 24, 2) for seed in range(32, 42)]
    + [("planted", seed, 10, 0.5) for seed in range(42, 50)]
)


def build_graph(spec):
    kind, seed, size, knob = spec
    if kind == "er":
        alphabet = ("A", "B", "C") if seed % 2 else ("A", "B", "C", "D")
        return random_labeled_graph(size, knob, alphabet=alphabet, seed=seed)
    if kind == "ba":
        return preferential_attachment_graph(
            size, knob, alphabet=("A", "B", "C", "D"), seed=seed, label_skew=0.3
        )
    return planted_pattern_graph(
        star_pattern("A", ["B", "C"]),
        num_copies=size,
        overlap_fraction=knob,
        background_vertices=4,
        background_edge_probability=0.3,
        seed=seed,
    )


@pytest.fixture(params=GRAPH_SPECS, ids=lambda spec: f"{spec[0]}-s{spec[1]}")
def graph(request):
    return build_graph(request.param)


class TestMatcherEquivalence:
    def test_occurrence_lists_identical(self, graph):
        for pattern in PATTERNS:
            brute = find_occurrences(pattern, graph, index=False)
            indexed = find_occurrences(pattern, graph)
            assert brute == indexed  # content AND order

    def test_generator_engine_agrees_with_collector(self, graph):
        pattern = PATTERNS[1]
        generated = [
            tuple(sorted(mapping.items(), key=lambda kv: repr(kv[0])))
            for mapping in find_subgraph_isomorphisms(pattern, graph, index=False)
        ]
        collected = [occ.mapping_items for occ in find_occurrences(pattern, graph)]
        assert generated == collected

    def test_limit_respected_identically(self, graph):
        pattern = PATTERNS[0]
        for limit in (0, 1, 5):
            brute = find_occurrences(pattern, graph, limit=limit, index=False)
            indexed = find_occurrences(pattern, graph, limit=limit)
            generator = list(
                find_subgraph_isomorphisms(pattern, graph, limit=limit, index=False)
            )
            assert brute == indexed
            assert len(brute) == len(generator)
            assert len(brute) <= limit


class TestAnchoredEquivalence:
    def test_valid_images_identical(self, graph):
        pattern = PATTERNS[1]
        for node in pattern.nodes():
            assert valid_images(pattern, graph, node, index=False) == valid_images(
                pattern, graph, node
            )

    def test_lazy_mni_identical_and_matches_eager(self, graph):
        for pattern in PATTERNS[:3]:
            brute = lazy_mni_support(pattern, graph, index=False)
            indexed = lazy_mni_support(pattern, graph)
            eager = mni_support_from_occurrences(
                pattern, find_occurrences(pattern, graph)
            )
            assert brute == indexed == eager
            for threshold in (1, 2, 4):
                assert mni_at_least(pattern, graph, threshold) == (eager >= threshold)
                assert mni_at_least(pattern, graph, threshold, index=False) == (
                    eager >= threshold
                )


class TestMinerEquivalence:
    def test_mining_results_identical(self, graph):
        kwargs = dict(
            measure="mni", min_support=2, max_pattern_nodes=4, max_pattern_edges=4
        )
        indexed = mine_frequent_patterns(graph, **kwargs)
        brute = mine_frequent_patterns(graph, use_index=False, **kwargs)
        assert indexed.certificates() == brute.certificates()
        assert [fp.support for fp in indexed.frequent] == [
            fp.support for fp in brute.frequent
        ]
        assert [fp.num_occurrences for fp in indexed.frequent] == [
            fp.num_occurrences for fp in brute.frequent
        ]
        assert indexed.stats.as_dict() == brute.stats.as_dict()

    def test_seed_generation_identical(self, graph):
        index = get_index(graph)
        brute_seeds = single_edge_patterns(graph)
        indexed_seeds = single_edge_patterns(graph, index=index)
        assert [p.graph.signature() for p in brute_seeds] == [
            p.graph.signature() for p in indexed_seeds
        ]
        assert adjacent_label_pairs(graph) == adjacent_label_pairs(graph, index=index)


class TestOverlapEquivalence:
    def test_overlap_graphs_match_pairwise_reference(self, graph):
        pattern = PATTERNS[1]
        occurrences = find_occurrences(pattern, graph, limit=40)
        for kind in OVERLAP_KINDS:
            built = occurrence_overlap_graph(pattern, occurrences, kind=kind)
            for i, first in enumerate(occurrences):
                for second in occurrences[i + 1:]:
                    expected = overlaps(kind, pattern, first, second)
                    assert built.has_edge(first.index, second.index) == expected

    def test_overlap_statistics_methods_agree(self, graph):
        pattern = PATTERNS[3]
        occurrences = find_occurrences(pattern, graph, limit=30)
        assert overlap_statistics(pattern, occurrences) == overlap_statistics(
            pattern, occurrences, method="brute"
        )

    def test_overlap_statistics_tolerates_duplicate_indices(self, graph):
        # Caller-built occurrence lists may carry the default index=0 on
        # every entry; both methods must still agree (position-keyed).
        from repro.isomorphism.matcher import Occurrence

        pattern = PATTERNS[0]
        occurrences = [
            Occurrence.from_mapping(occ.mapping)  # all index=0
            for occ in find_occurrences(pattern, graph, limit=12)
        ]
        assert overlap_statistics(pattern, occurrences) == overlap_statistics(
            pattern, occurrences, method="brute"
        )


class TestIndexLifecycle:
    def test_index_caches_and_invalidates(self, graph):
        first = get_index(graph)
        assert get_index(graph) is first  # cached while unmutated
        vertex = graph.vertices()[0]
        label = graph.label_of(vertex)
        graph.add_vertex("fresh-vertex", label)
        assert not first.is_current()
        rebuilt = get_index(graph)
        assert rebuilt is not first
        assert "fresh-vertex" in rebuilt.vertices_with_label(label)

    def test_results_correct_after_mutation(self, graph):
        pattern = PATTERNS[0]
        find_occurrences(pattern, graph)  # warm the cache
        u, v = None, None
        for edge in graph.edges():
            u, v = edge
            break
        if u is None:
            pytest.skip("graph has no edges")
        graph.remove_edge(u, v)
        assert find_occurrences(pattern, graph) == find_occurrences(
            pattern, graph, index=False
        )

    def test_inverted_lists_cover_graph(self, graph):
        index = GraphIndex.build(graph)
        seen = []
        for label in graph.label_alphabet():
            members = index.vertices_with_label(label)
            assert list(members) == sorted(graph.vertices_with_label(label), key=repr)
            seen.extend(members)
        assert sorted(seen, key=repr) == graph.vertices()
        for vertex in graph.vertices():
            assert index.degree_of(vertex) == graph.degree(vertex)
            for label in graph.label_alphabet():
                assert set(index.neighbors_with_label(vertex, label)) == (
                    graph.neighbors_with_label(vertex, label)
                )


class TestBackendEquivalence:
    """compact == dict == brute, byte-identical, on every seeded graph.

    The compact backend's int-id engines (vf2 collector/generator,
    anchored probes, lazy MNI) must reproduce the dict engines' results
    exactly — content AND order — which in turn must match brute force.
    Explicit index instances pin the backend per call, so this axis
    holds regardless of the process-default backend.
    """

    def test_occurrence_lists_identical(self, graph):
        dict_index = GraphIndex.build(graph)
        compact_index = CompactGraphIndex.build(graph)
        for pattern in PATTERNS:
            brute = find_occurrences(pattern, graph, index=False)
            assert find_occurrences(pattern, graph, index=dict_index) == brute
            assert find_occurrences(pattern, graph, index=compact_index) == brute

    def test_generator_streams_identical(self, graph):
        dict_index = GraphIndex.build(graph)
        compact_index = CompactGraphIndex.build(graph)
        for pattern in PATTERNS:
            brute = list(find_subgraph_isomorphisms(pattern, graph, index=False))
            assert (
                list(find_subgraph_isomorphisms(pattern, graph, index=dict_index))
                == brute
            )
            assert (
                list(
                    find_subgraph_isomorphisms(pattern, graph, index=compact_index)
                )
                == brute
            )

    def test_valid_images_identical(self, graph):
        dict_index = GraphIndex.build(graph)
        compact_index = CompactGraphIndex.build(graph)
        for pattern in PATTERNS[:3]:
            for node in pattern.nodes():
                brute = valid_images(pattern, graph, node, index=False)
                assert (
                    valid_images(pattern, graph, node, index=dict_index) == brute
                )
                assert (
                    valid_images(pattern, graph, node, index=compact_index)
                    == brute
                )
                for stop_after in (1, 2):
                    truncated = valid_images(
                        pattern, graph, node, stop_after=stop_after, index=False
                    )
                    assert (
                        valid_images(
                            pattern,
                            graph,
                            node,
                            stop_after=stop_after,
                            index=compact_index,
                        )
                        == truncated
                    )

    def test_mining_identical_across_backends(self, graph):
        kwargs = dict(
            measure="mni", min_support=2, max_pattern_nodes=3, max_pattern_edges=3
        )
        previous = index_backend()
        try:
            set_index_backend("dict")
            dict_result = mine_frequent_patterns(graph, **kwargs)
            set_index_backend("compact")
            compact_result = mine_frequent_patterns(graph, **kwargs)
        finally:
            set_index_backend(previous)
        assert compact_result.certificates() == dict_result.certificates()
        assert [fp.support for fp in compact_result.frequent] == [
            fp.support for fp in dict_result.frequent
        ]
        assert compact_result.stats.as_dict() == dict_result.stats.as_dict()


class TestMinerRobustness:
    def test_mutation_between_init_and_mine_is_respected(self):
        from repro.mining.miner import FrequentSubgraphMiner

        graph = build_graph(("er", 7, 14, 0.25))
        miner = FrequentSubgraphMiner(
            graph, measure="mni", min_support=2, max_pattern_nodes=3
        )
        # Mutate after construction: session state (index, label pairs,
        # histogram prune bounds) must re-sync inside mine().
        base = graph.vertices()[0]
        for i in range(5):
            graph.add_vertex(f"late-{i}", "Z")
            graph.add_edge(base, f"late-{i}")
        mutated = miner.mine()
        fresh = mine_frequent_patterns(
            graph, measure="mni", min_support=2, max_pattern_nodes=3
        )
        assert mutated.certificates() == fresh.certificates()
        assert [fp.support for fp in mutated.frequent] == [
            fp.support for fp in fresh.frequent
        ]

    def test_broken_pool_degrades_to_serial(self, monkeypatch):
        from concurrent.futures import BrokenExecutor

        from repro.mining.miner import FrequentSubgraphMiner

        class ExplodingPool:
            """Pool whose workers die on first use (spawn-refused stand-in)."""

            def map(self, *args, **kwargs):
                raise BrokenExecutor("no workers for you")

            def shutdown(self, *args, **kwargs):
                pass

        monkeypatch.setattr(
            FrequentSubgraphMiner, "_make_pool", lambda self: ExplodingPool()
        )
        graph = build_graph(("er", 11, 14, 0.25))
        kwargs = dict(measure="mni", min_support=2, max_pattern_nodes=3)
        broken = mine_frequent_patterns(graph, workers=4, **kwargs)
        monkeypatch.undo()
        serial = mine_frequent_patterns(graph, **kwargs)
        assert broken.certificates() == serial.certificates()
        assert broken.stats.as_dict() == serial.stats.as_dict()


@pytest.mark.parametrize("seed", [3, 17, 29])
def test_parallel_mining_identical_to_serial(seed):
    graph = build_graph(("er", seed, 16, 0.3))
    kwargs = dict(
        measure="mni", min_support=2, max_pattern_nodes=4, max_pattern_edges=4
    )
    serial = mine_frequent_patterns(graph, **kwargs)
    parallel = mine_frequent_patterns(graph, workers=2, **kwargs)
    assert parallel.certificates() == serial.certificates()
    assert [fp.support for fp in parallel.frequent] == [
        fp.support for fp in serial.frequent
    ]
    assert parallel.stats.as_dict() == serial.stats.as_dict()


@pytest.mark.parametrize("measure", ["mni", "mi", "mvc", "mis"])
def test_all_measures_mine_identically(measure):
    graph = build_graph(("planted", 45, 8, 0.6))
    kwargs = dict(
        measure=measure, min_support=2, max_pattern_nodes=4, max_pattern_edges=4
    )
    indexed = mine_frequent_patterns(graph, **kwargs)
    brute = mine_frequent_patterns(graph, use_index=False, **kwargs)
    assert indexed.certificates() == brute.certificates()
    assert [fp.support for fp in indexed.frequent] == [
        fp.support for fp in brute.frequent
    ]
