"""Unit tests for simple/harmful/structural overlap and overlap graphs.

The Figure 9 / Figure 10 relations are the paper's own test vectors for the
overlap semantics; they are asserted pairwise here.
"""

import pytest

from repro.datasets.paper_figures import load_figure
from repro.graph.builders import path_pattern
from repro.hypergraph.overlap import (
    OverlapGraph,
    edge_overlap,
    harmful_overlap,
    instance_overlap_graph,
    occurrence_overlap_graph,
    overlap_statistics,
    overlaps,
    simple_overlap,
    structural_overlap,
)
from repro.isomorphism.matcher import Occurrence, find_instances, find_occurrences


def occurrences_by_vertex_tuple(pattern, data):
    """Map (image of v1, image of v2, ...) -> occurrence, for assertions."""
    order = pattern.nodes()
    found = {}
    for occ in find_occurrences(pattern, data):
        mapping = occ.mapping
        found[tuple(mapping[node] for node in order)] = occ
    return found


class TestSimpleOverlap:
    def test_sharing_one_vertex(self):
        a = Occurrence.from_mapping({"v1": 1, "v2": 2}, 0)
        b = Occurrence.from_mapping({"v1": 2, "v2": 3}, 1)
        assert simple_overlap(a, b)

    def test_disjoint(self):
        a = Occurrence.from_mapping({"v1": 1, "v2": 2}, 0)
        b = Occurrence.from_mapping({"v1": 3, "v2": 4}, 1)
        assert not simple_overlap(a, b)


class TestEdgeOverlap:
    def test_shared_data_edge(self):
        p = path_pattern(["a", "a"])
        a = Occurrence.from_mapping({"v1": 1, "v2": 2}, 0)
        b = Occurrence.from_mapping({"v1": 2, "v2": 1}, 1)
        assert edge_overlap(p, a, b)

    def test_shared_vertex_but_no_shared_edge(self):
        p = path_pattern(["a", "a"])
        a = Occurrence.from_mapping({"v1": 1, "v2": 2}, 0)
        b = Occurrence.from_mapping({"v1": 2, "v2": 3}, 1)
        assert not edge_overlap(p, a, b)


class TestFigure9Relations:
    """g1=(1,2,3), g2=(5,3,4), g3=(5,3,2): SO without HO, and SO+HO."""

    @pytest.fixture()
    def setup(self):
        fig = load_figure("fig9")
        occs = occurrences_by_vertex_tuple(fig.pattern, fig.data_graph)
        return fig.pattern, occs[(1, 2, 3)], occs[(5, 3, 4)], occs[(5, 3, 2)]

    def test_exactly_three_occurrences(self):
        fig = load_figure("fig9")
        assert len(find_occurrences(fig.pattern, fig.data_graph)) == 3

    def test_g1_g2_structural_not_harmful(self, setup):
        pattern, g1, g2, _g3 = setup
        assert structural_overlap(pattern, g1, g2)
        assert not harmful_overlap(pattern, g1, g2)
        assert simple_overlap(g1, g2)

    def test_g1_g3_both(self, setup):
        pattern, g1, _g2, g3 = setup
        assert structural_overlap(pattern, g1, g3)
        assert harmful_overlap(pattern, g1, g3)

    def test_g2_g3_share_two_vertices(self, setup):
        pattern, _g1, g2, g3 = setup
        assert simple_overlap(g2, g3)
        # v1 -> 5 and v2 -> 3 are fixed shared images: harmful and structural.
        assert harmful_overlap(pattern, g2, g3)
        assert structural_overlap(pattern, g2, g3)


class TestFigure10Relations:
    """f1=(1,2,3,4), f2=(4,5,6,1), f3=(1,7,8,9): HO without SO; simple-only."""

    @pytest.fixture()
    def setup(self):
        fig = load_figure("fig10")
        occs = occurrences_by_vertex_tuple(fig.pattern, fig.data_graph)
        return (
            fig.pattern,
            occs[(1, 2, 3, 4)],
            occs[(4, 5, 6, 1)],
            occs[(1, 7, 8, 9)],
        )

    def test_exactly_three_occurrences(self):
        fig = load_figure("fig10")
        assert len(find_occurrences(fig.pattern, fig.data_graph)) == 3

    def test_f1_f2_harmful_not_structural(self, setup):
        pattern, f1, f2, _f3 = setup
        assert harmful_overlap(pattern, f1, f2)
        assert not structural_overlap(pattern, f1, f2)
        assert simple_overlap(f1, f2)

    def test_f2_f3_simple_only(self, setup):
        pattern, _f1, f2, f3 = setup
        assert simple_overlap(f2, f3)
        assert not harmful_overlap(pattern, f2, f3)
        assert not structural_overlap(pattern, f2, f3)

    def test_f1_f3_share_vertex_1_at_same_node(self, setup):
        pattern, f1, _f2, f3 = setup
        # f1(v1) = f3(v1) = 1: harmful, and structural via the identity pair.
        assert harmful_overlap(pattern, f1, f3)
        assert structural_overlap(pattern, f1, f3)


class TestContainmentTheorems:
    """HO => simple and SO => simple, on every figure example."""

    @pytest.mark.parametrize("figure_id", [f"fig{i}" for i in range(1, 11)])
    def test_containment(self, figure_id):
        fig = load_figure(figure_id)
        occurrences = find_occurrences(fig.pattern, fig.data_graph)
        stats = overlap_statistics(fig.pattern, occurrences)
        assert stats.harmful_pairs <= stats.simple_pairs
        assert stats.structural_pairs <= stats.simple_pairs
        assert stats.total_pairs >= stats.simple_pairs


class TestOverlapGraphs:
    def test_fig6_occurrence_overlap_graph(self, fig6):
        occurrences = find_occurrences(fig6.pattern, fig6.data_graph)
        graph = occurrence_overlap_graph(fig6.pattern, occurrences, kind="simple")
        assert graph.num_nodes == 7
        # Occurrences through vertex 1 form a K4, through vertex 8 a K4,
        # sharing the single occurrence (1, 8): 6 + 6 - counted shared edges.
        assert graph.num_edges == 12

    def test_instance_overlap_graph_matches_occurrence_semantics(self, fig6):
        occurrences = find_occurrences(fig6.pattern, fig6.data_graph)
        instances = find_instances(fig6.pattern, fig6.data_graph)
        occ_graph = occurrence_overlap_graph(fig6.pattern, occurrences)
        inst_graph = instance_overlap_graph(instances)
        assert occ_graph.num_nodes == inst_graph.num_nodes
        assert occ_graph.num_edges == inst_graph.num_edges

    def test_structural_graph_is_sparser(self):
        fig = load_figure("fig10")
        occurrences = find_occurrences(fig.pattern, fig.data_graph)
        simple_graph = occurrence_overlap_graph(fig.pattern, occurrences, "simple")
        structural_graph = occurrence_overlap_graph(
            fig.pattern, occurrences, "structural"
        )
        assert structural_graph.num_edges <= simple_graph.num_edges

    def test_unknown_kind_rejected(self, fig6):
        occurrences = find_occurrences(fig6.pattern, fig6.data_graph)
        with pytest.raises(ValueError):
            occurrence_overlap_graph(fig6.pattern, occurrences, kind="bogus")
        with pytest.raises(ValueError):
            overlaps("bogus", fig6.pattern, occurrences[0], occurrences[1])

    def test_density_and_complement(self, fig6):
        occurrences = find_occurrences(fig6.pattern, fig6.data_graph)
        graph = occurrence_overlap_graph(fig6.pattern, occurrences)
        assert 0.0 < graph.density() < 1.0
        complement = graph.complement_adjacency()
        for node in graph.nodes:
            assert complement[node] == (
                set(graph.nodes) - graph.adjacency[node] - {node}
            )

    def test_single_node_density_zero(self):
        graph = OverlapGraph(nodes=[0], adjacency={0: set()})
        assert graph.density() == 0.0
