"""The bounding chain (Section 4.4) on figures, zoo graphs, and random graphs.

These are the paper's headline theorems, checked with hypothesis on random
labeled graphs: for *every* pattern/graph pair,

    sigma_MIS = sigma_MIES <= nu_MIES = nu_MVC <= sigma_MVC <= sigma_MI <= sigma_MNI.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets.synthetic import random_labeled_graph
from repro.datasets.zoo import zoo_graph, zoo_names
from repro.graph.builders import path_pattern, triangle_pattern
from repro.graph.pattern import Pattern
from repro.measures.bounds import chain_values, verify_bounding_chain


class TestChainOnFigures:
    @pytest.mark.parametrize("figure_id", range(10))
    def test_chain_holds(self, all_figures, figure_id):
        fig = all_figures[figure_id]
        report = verify_bounding_chain(fig.pattern, fig.data_graph)
        assert report.holds, report.violations

    def test_report_rows_in_chain_order(self, all_figures):
        report = verify_bounding_chain(
            all_figures[5].pattern, all_figures[5].data_graph
        )
        keys = [key for key, _ in report.as_rows()]
        assert keys.index("mis") < keys.index("mvc") < keys.index("mni")


class TestChainOnZoo:
    @pytest.mark.parametrize("name", zoo_names())
    def test_chain_with_edge_pattern(self, name):
        graph = zoo_graph(name)
        label = graph.label_of(graph.vertices()[0])
        pattern = Pattern.single_edge(label, label)
        report = verify_bounding_chain(pattern, graph)
        assert report.holds, (name, report.violations)

    @pytest.mark.parametrize("name", ["triangle_fan", "disjoint_triangles", "clique"])
    def test_chain_with_triangle_pattern(self, name):
        graph = zoo_graph(name)
        report = verify_bounding_chain(triangle_pattern("a"), graph)
        assert report.holds, (name, report.violations)


PATTERNS = [
    Pattern.single_edge("A", "A"),
    Pattern.single_edge("A", "B"),
    path_pattern(["A", "A", "A"]),
    path_pattern(["A", "B", "A"]),
    triangle_pattern("A"),
]


class TestChainOnRandomGraphs:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=4, max_value=12),
        p=st.floats(min_value=0.1, max_value=0.5),
        pattern_index=st.integers(min_value=0, max_value=len(PATTERNS) - 1),
    )
    def test_chain_property(self, seed, n, p, pattern_index):
        graph = random_labeled_graph(
            n, p, alphabet=("A", "B"), seed=seed, label_skew=0.5
        )
        pattern = PATTERNS[pattern_index]
        report = verify_bounding_chain(pattern, graph, include_mcp=False)
        assert report.holds, report.violations

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1_000))
    def test_mis_mies_equal_on_random(self, seed):
        graph = random_labeled_graph(10, 0.3, alphabet=("A",), seed=seed)
        values = chain_values(
            triangle_pattern("A"), graph, include_mcp=False
        )
        assert values["mis"] == values["mies"]

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1_000))
    def test_duality_on_random(self, seed):
        graph = random_labeled_graph(9, 0.35, alphabet=("A", "B"), seed=seed)
        values = chain_values(
            path_pattern(["A", "B"]), graph, include_mcp=False
        )
        assert values["lp_mvc"] == pytest.approx(values["lp_mies"], abs=1e-5)


class TestChainValuesContents:
    def test_all_keys_present(self, fig6):
        values = chain_values(fig6.pattern, fig6.data_graph)
        for key in (
            "occurrences",
            "instances",
            "mni",
            "mi",
            "mvc",
            "mies",
            "mis",
            "mcp",
            "lp_mvc",
            "lp_mies",
        ):
            assert key in values

    def test_mcp_can_be_excluded(self, fig6):
        values = chain_values(fig6.pattern, fig6.data_graph, include_mcp=False)
        assert "mcp" not in values

    def test_zero_occurrence_chain(self):
        graph = random_labeled_graph(4, 0.0, alphabet=("A",), seed=1)
        report = verify_bounding_chain(triangle_pattern("A"), graph)
        assert report.holds
        assert report.values["mni"] == 0
        assert report.values["mis"] == 0
