"""Standing-query subscriptions: spec, lifecycle, routing, equivalence.

The correctness bar for the whole subsystem is the *reconstruction law*:
for any subscription, replaying its cumulative event stream over the
baseline answer must reproduce exactly the answer a one-shot evaluation
reports at the bracketing versions — whatever mix of insertions,
deletions, and window expiry the stream contains, and whichever path
(maintained cache adoption, incremental DynamicMiner refresh, or direct
pattern evaluation) produced the events.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.datasets.synthetic import random_labeled_graph
from repro.errors import MiningError, ServiceError
from repro.graph.builders import path_graph
from repro.graph.pattern import Pattern
from repro.mining.dynamic import StreamApplier, apply_update
from repro.mining.miner import mine_frequent_patterns
from repro.mining.spec import MiningSpec
from repro.mining.standing import (
    EVENT_TYPES,
    AnswerEntry,
    StandingSpec,
    answer_from_result,
    diff_answer,
    evaluate_standing,
    replay_answer,
)
from repro.obs import metrics as metrics_mod
from repro.obs.metrics import MetricsRegistry
from repro.service import (
    ClientSession,
    GraphService,
    ResultCache,
    handle_request,
)
from repro.service.subscriptions import SubscriptionRegistry


@pytest.fixture
def fresh_registry():
    """Swap in an empty metrics registry so counter asserts are exact."""
    registry = MetricsRegistry()
    previous = metrics_mod.set_registry(registry)
    yield registry
    metrics_mod.set_registry(previous)


def base_graph():
    return path_graph(["a", "b", "a", "b", "a", "b"])


AB = Pattern.single_edge("a", "b")
THRESHOLD = StandingSpec.from_kwargs(kind="threshold", min_support=2, max_nodes=3)
WATCH_AB = StandingSpec.from_kwargs(pattern=AB, min_support=2)


class TestStandingSpec:
    def test_kinds_and_validation(self):
        with pytest.raises(MiningError, match="unknown standing-query kind"):
            StandingSpec(kind="sometimes")
        with pytest.raises(MiningError, match="requires a pattern"):
            StandingSpec(kind="pattern")
        with pytest.raises(MiningError, match="does not take a pattern"):
            StandingSpec.from_kwargs(kind="threshold", pattern=AB)
        with pytest.raises(MiningError, match="min_support"):
            StandingSpec(min_support=0)
        with pytest.raises(MiningError, match="anti-monotonic"):
            StandingSpec(measure="occurrences")
        with pytest.raises(MiningError, match="lazy"):
            StandingSpec(measure="mis", lazy=True)
        with pytest.raises(MiningError, match="unknown event type"):
            StandingSpec(events=("became_popular",))
        with pytest.raises(MiningError, match="delivery"):
            StandingSpec(delivery="carrier_pigeon")
        with pytest.raises(MiningError, match="at least one edge"):
            StandingSpec.from_kwargs(pattern=Pattern.single_node("a"))

    def test_pattern_normalization_is_canonical(self):
        # The same motif, given in different orders and container types,
        # must serialize to one canonical wire form.
        a = StandingSpec.from_kwargs(pattern=AB)
        b = StandingSpec.from_kwargs(
            pattern={"nodes": [["v2", "b"], ["v1", "a"]], "edges": [["v2", "v1"]]}
        )
        assert a == b
        assert a.to_json() == b.to_json()
        assert StandingSpec.from_json(a.to_json()) == a

    def test_pattern_kwarg_implies_kind(self):
        assert StandingSpec.from_kwargs(pattern=AB).kind == "pattern"

    def test_aliases_match_mining_spec(self):
        spec = StandingSpec.from_kwargs(kind="threshold", max_nodes=4, max_edges=5)
        assert spec.max_pattern_nodes == 4
        assert spec.max_pattern_edges == 5
        with pytest.raises(MiningError, match="given twice"):
            StandingSpec.from_kwargs(max_nodes=4, max_pattern_nodes=4)
        with pytest.raises(MiningError, match="unknown standing-query parameter"):
            StandingSpec.from_kwargs(workers=4)

    def test_events_filter_canonicalized(self):
        spec = StandingSpec.from_kwargs(
            events=["support_changed", "became_frequent", "became_frequent"]
        )
        assert spec.events == ("became_frequent", "support_changed")
        assert [e for e in spec.events if e not in EVENT_TYPES] == []

    def test_events_filter_rejects_unknown_and_empty(self):
        # from_kwargs is the wire/CLI path: a typo must be a bad_request,
        # not a filter that silently suppresses every event.
        with pytest.raises(MiningError, match="unknown event type"):
            StandingSpec.from_kwargs(events=["became_popular"])
        with pytest.raises(MiningError, match="unknown event type"):
            StandingSpec.from_kwargs(events=["became_frequent", "oops"])
        with pytest.raises(MiningError, match="unknown event type"):
            StandingSpec.from_kwargs(events="became_popular")
        with pytest.raises(MiningError, match="must not be empty"):
            StandingSpec.from_kwargs(events=[])
        with pytest.raises(MiningError, match="must not be empty"):
            StandingSpec(events=())

    def test_threshold_cache_key_shared_with_mining_spec(self):
        # A threshold subscription asks exactly the mining question — it
        # must hit cache entries that plain mine requests populated.
        spec = StandingSpec.from_kwargs(kind="threshold", min_support=3, max_nodes=4)
        assert spec.cache_key() == MiningSpec(
            min_support=3, max_pattern_nodes=4
        ).cache_key()

    def test_pattern_cache_key_is_certificate_based(self):
        flipped = Pattern.single_edge("b", "a", nodes=("x9", "x1"))
        assert WATCH_AB.cache_key() == StandingSpec.from_kwargs(
            pattern=flipped, min_support=2
        ).cache_key()
        assert "certificate" in json.loads(WATCH_AB.cache_key())


class TestDiffReplay:
    def test_roundtrip_random_answers(self):
        rng = random.Random(7)
        certs = [f"c{i}" for i in range(12)]

        def random_answer():
            return {
                c: AnswerEntry(float(rng.randint(1, 6)), rng.randint(-1, 9), True)
                for c in certs
                if rng.random() < 0.5
            }

        state = random_answer()
        for version in range(30):
            target = random_answer()
            events, _ = diff_answer(state, target, version=version)
            assert replay_answer(state, events) == target
            # One event per certificate per version, certificate-sorted.
            assert [e.certificate for e in events] == sorted(
                {e.certificate for e in events}
            )
            state = target

    def test_event_types(self):
        old = {
            "gone": AnswerEntry(3.0, 3, True),
            "less": AnswerEntry(3.0, 4, True),
            "same": AnswerEntry(2.0, 2, True),
            "support": AnswerEntry(3.0, -1, True),
        }
        new = {
            "fresh": AnswerEntry(2.0, 2, True),
            "less": AnswerEntry(2.0, 2, True),
            "same": AnswerEntry(2.0, 2, True),
            "support": AnswerEntry(2.0, -1, True),
        }
        events, next_seq = diff_answer(old, new, version=9)
        kinds = {e.certificate: e.type for e in events}
        assert kinds == {
            "gone": "became_infrequent",
            "fresh": "became_frequent",
            "less": "occurrences_lost",
            "support": "support_changed",
        }
        assert next_seq == len(events)
        assert [e.seq for e in events] == list(range(len(events)))
        gone = next(e for e in events if e.certificate == "gone")
        assert gone.support is None and gone.num_occurrences is None

    def test_event_filter_suppresses_and_keeps_seq_dense(self):
        old = {"gone": AnswerEntry(3.0, 3, True)}
        new = {"fresh": AnswerEntry(2.0, 2, True)}
        events, next_seq = diff_answer(
            old, new, version=1, event_filter=("became_frequent",)
        )
        assert [e.type for e in events] == ["became_frequent"]
        assert next_seq == 1

    def test_payload_roundtrip(self):
        events, _ = diff_answer({}, {"c": AnswerEntry(2.0, 2, True)}, version=3)
        from repro.mining.standing import AnswerEvent

        assert [AnswerEvent.from_payload(e.payload()) for e in events] == events


class TestLifecycle:
    def test_register_duplicate_unsubscribe(self):
        with GraphService(base_graph()) as service:
            first = service.subscribe(THRESHOLD)
            second = service.subscribe(THRESHOLD)  # duplicates are distinct
            assert first.id != second.id
            assert first.answer_snapshot() == second.answer_snapshot()
            assert len(service.subscriptions) == 2
            assert service.unsubscribe(first) is True
            assert service.unsubscribe(first.id) is False  # already gone
            assert service.unsubscribe("s999") is False
            assert len(service.subscriptions) == 1
            assert service.unsubscribe(second) is True

    def test_observer_detaches_with_last_subscription(self):
        graph = base_graph()
        with GraphService(graph) as service:
            registry = service.subscriptions
            assert registry._observer is None  # zero subs -> zero hooks
            sub = service.subscribe(WATCH_AB)
            assert registry._observer is not None
            service.unsubscribe(sub)
            assert registry._observer is None

    def test_drop_owner_gc(self):
        with GraphService(base_graph()) as service:
            service.subscribe(THRESHOLD, owner="conn-1")
            service.subscribe(WATCH_AB, owner="conn-1")
            survivor = service.subscribe(WATCH_AB, owner="conn-2")
            assert service.drop_owner("conn-1") == 2
            assert service.drop_owner("conn-1") == 0
            assert [s.id for s in [survivor]] == [survivor.id]
            assert len(service.subscriptions) == 1

    def test_subscribe_after_stop_raises(self):
        service = GraphService(base_graph())
        service.stop()
        with pytest.raises(ServiceError, match="stopped"):
            service.subscribe(THRESHOLD)

    def test_subscribe_rejects_non_spec(self):
        with GraphService(base_graph()) as service:
            with pytest.raises(ServiceError, match="StandingSpec"):
                service.subscribe(MiningSpec())

    def test_push_delivery_in_process(self):
        pushed = []
        spec = THRESHOLD.replace(delivery="push")
        with GraphService(base_graph()) as service:
            with pytest.raises(ServiceError, match="push callback"):
                service.subscribe(spec)
            sub = service.subscribe(
                spec, push=lambda s, v, events: pushed.append((s.id, v, list(events)))
            )
            service.apply_updates([("v", 7, "a"), ("e", 6, 7)])
            polled = sub.poll()
        assert polled  # pushed events remain pollable (at-least-once)
        assert pushed == [(sub.id, sub.version, polled)]

    def test_pending_bound_drops_oldest(self, fresh_registry):
        graph = base_graph()
        registry = SubscriptionRegistry(graph, ResultCache(), max_pending=2)
        sub = registry.register(WATCH_AB, version=0)
        for step in range(3):
            apply_update(graph, ("v", 100 + step, "a"))
            apply_update(graph, ("e", 100 + step, 2))
            registry.dispatch(step + 1)
        assert sub.pending == 2
        assert sub.dropped == 1
        assert fresh_registry.snapshot()["repro_subs_events_dropped"] == 1
        events = sub.poll()
        # The *newest* events survive; their versions are the latest two.
        assert [e.version for e in events] == [2, 3]
        registry.close()


class TestFootprintRouting:
    def test_untouched_pairs_skip_every_subscription(self, fresh_registry):
        with GraphService(base_graph()) as service:
            service.subscribe(WATCH_AB)
            service.subscribe(THRESHOLD)
            # d-d edges: no subscribed pair, and cap(d,d) = 2*1 = 2 is
            # only promoted when it reaches min_support -- use min_support
            # 2 patterns? No: THRESHOLD.min_support == 2, so a d-d pair
            # *would* qualify.  Vertex-only batches touch no pair at all.
            service.apply_updates([("v", 50, "d"), ("v", 51, "d")])
            snap = fresh_registry.snapshot()
            assert snap["repro_subs_dispatch_skipped"] == 2
            assert snap["repro_subs_evaluations"] == 0

    def test_low_cap_insertion_skips_threshold_sub(self, fresh_registry):
        spec = StandingSpec.from_kwargs(kind="threshold", min_support=3, max_nodes=3)
        with GraphService(base_graph()) as service:
            sub = service.subscribe(spec)
            baseline = sub.answer_snapshot()
            # One d-d edge: cap = 2 * pairs(d,d) = 2 < min_support 3, and
            # (d,d) is not in any frequent pattern's footprint -> the
            # batch provably cannot change the answer; no re-evaluation.
            service.apply_updates([("v", 50, "d"), ("v", 51, "d"), ("e", 50, 51)])
            snap = fresh_registry.snapshot()
            assert snap["repro_subs_dispatch_skipped"] == 1
            assert snap["repro_subs_evaluations"] == 0
            assert sub.poll() == []
            assert sub.answer_snapshot() == baseline
            assert sub.version == service.version  # skipped but current

    def test_same_label_cap_doubles(self, fresh_registry):
        # MNI of the one-edge d-d pattern over a single d-d data edge is
        # 2 (both endpoints map both ways), so with min_support 2 the
        # insertion *must* be routed even though only one edge exists.
        spec = StandingSpec.from_kwargs(kind="threshold", min_support=2, max_nodes=3)
        with GraphService(base_graph()) as service:
            sub = service.subscribe(spec)
            service.apply_updates([("v", 50, "d"), ("v", 51, "d"), ("e", 50, 51)])
            events = sub.poll()
            assert [(e.type, e.support) for e in events] == [("became_frequent", 2.0)]
            snap = fresh_registry.snapshot()
            assert snap["repro_subs_evaluations"] == 1

    def test_pattern_footprint_routing(self, fresh_registry):
        with GraphService(base_graph()) as service:
            sub = service.subscribe(WATCH_AB)
            # b-b touch: disjoint from the a-b footprint.
            service.apply_updates([("e", 2, 4)])
            assert fresh_registry.snapshot()["repro_subs_dispatch_skipped"] == 1
            assert sub.poll() == []
            # a-b touch: must re-evaluate and report the gained occurrence.
            service.apply_updates([("v", 7, "a"), ("e", 7, 2)])
            events = sub.poll()
            assert [e.type for e in events] == ["occurrences_gained"]
            assert fresh_registry.snapshot()["repro_subs_evaluations"] == 1

    def test_shared_evaluator_routes_all_subs_on_watched_shrink(
        self, fresh_registry
    ):
        # Two subscriptions to the same threshold spec share one
        # evaluator.  When a deletion empties the frequent set, the first
        # sub's evaluate() advances the evaluator's watched set to the
        # (now empty) post-batch footprint — the second sub must still be
        # routed against the *pre-batch* watched set, or it silently
        # keeps the stale answer forever.
        with GraphService(base_graph()) as service:
            first = service.subscribe(THRESHOLD)
            second = service.subscribe(THRESHOLD)
            assert first.cache_key == second.cache_key  # one shared evaluator
            assert first.answer_snapshot()  # baseline has frequent patterns
            service.apply_updates(
                [("de", 1, 2), ("de", 2, 3), ("de", 3, 4), ("de", 4, 5)]
            )
            events_first = first.poll()
            events_second = second.poll()
            assert events_first and events_second
            assert [e.payload() for e in events_first] == [
                e.payload() for e in events_second
            ]
            assert all(e.type == "became_infrequent" for e in events_first)
            assert first.answer_snapshot() == second.answer_snapshot() == {}
            # The second evaluation was free (evaluator answer reused),
            # and nothing was mis-skipped.
            assert fresh_registry.snapshot()["repro_subs_dispatch_skipped"] == 0

    def test_shared_evaluator_skip_still_skips_every_sub(self, fresh_registry):
        # The memoized routing decision must preserve the skip counters:
        # an untouched batch skips *both* subs of a shared evaluator.
        with GraphService(base_graph()) as service:
            service.subscribe(THRESHOLD)
            service.subscribe(THRESHOLD)
            service.apply_updates([("v", 50, "d"), ("v", 51, "d")])
            snap = fresh_registry.snapshot()
            assert snap["repro_subs_dispatch_skipped"] == 2
            assert snap["repro_subs_evaluations"] == 0

    def test_maintained_spec_subscription_adopts_cache(self, fresh_registry):
        maintain = MiningSpec(min_support=2, max_pattern_nodes=3)
        spec = StandingSpec.from_kwargs(kind="threshold", min_support=2, max_nodes=3)
        with GraphService(base_graph(), maintain=maintain) as service:
            sub = service.subscribe(spec)
            for step in range(3):
                service.apply_updates([("v", 60 + step, "a"), ("e", 60 + step, 2)])
            assert sub.poll()
            snap = fresh_registry.snapshot()
            # Every dispatch evaluation was served by the writer's
            # pre-cached maintained result: one miner session per batch
            # (plus the baseline mine at subscribe time), not two.
            assert snap["repro_subs_evaluations"] == 3
            assert snap["repro_miner_sessions"] == 4


def _random_stream(rng, reference, num_updates, *, labels=("a", "b", "c")):
    """A valid mixed update stream, evolved against ``reference``."""
    updates = []
    next_vertex = 1000
    for _ in range(num_updates):
        vertices = list(reference.vertices())
        edges = list(reference.edges())
        roll = rng.random()
        if roll < 0.35 or len(vertices) < 4:
            update = ("v", next_vertex, rng.choice(labels))
            next_vertex += 1
        elif roll < 0.70:
            for _ in range(20):
                u, v = rng.sample(vertices, 2)
                if not reference.has_edge(u, v):
                    break
            else:
                continue
            update = ("e", u, v)
        elif roll < 0.90 and edges:
            update = ("de", *rng.choice(edges))
        elif vertices:
            update = ("dv", rng.choice(vertices))
        else:
            continue
        apply_update(reference, update)
        updates.append(update)
    return updates


def _batches(updates, size):
    return [updates[i : i + size] for i in range(0, len(updates), size)]


class TestEquivalence:
    """Event-stream == mine-diff, across measures, strategies, streams."""

    @pytest.mark.parametrize(
        "measure,lazy,maintain,window",
        [
            ("mni", False, None, None),
            ("mni", True, None, None),
            ("mni", False, "sharded", None),
            ("mni", False, "same", 25),
            ("mi", False, None, None),
            ("mis", False, None, None),
        ],
    )
    def test_replay_reconstructs_one_shot_diff(self, measure, lazy, maintain, window):
        rng = random.Random(hash((measure, lazy, maintain, window)) & 0xFFFF)
        small = measure in ("mi", "mis")  # NP-hard measures: keep tiny
        base = random_labeled_graph(
            10 if small else 16,
            0.22,
            alphabet=("a", "b", "c"),
            seed=rng.randint(0, 999),
        )
        min_support = 2.0
        threshold = StandingSpec.from_kwargs(
            kind="threshold",
            measure=measure,
            min_support=min_support,
            max_nodes=3,
            lazy=lazy,
        )
        watches = [
            StandingSpec.from_kwargs(
                pattern=Pattern.single_edge(lu, lv),
                measure=measure,
                min_support=min_support,
                lazy=lazy,
            )
            for lu, lv in (("a", "b"), ("c", "c"))
        ]
        maintain_spec = None
        if maintain == "sharded":
            maintain_spec = threshold.mining_spec().replace(shards=2)
        elif maintain == "same":
            maintain_spec = threshold.mining_spec()

        # The stream is generated against (and leaves behind) a evolving
        # scratch copy; the *reference* below replays it through its own
        # StreamApplier so window expiry matches the service exactly.
        scratch = base.copy()
        updates = _random_stream(rng, scratch, 16 if small else 30)

        service = GraphService(base.copy(), maintain=maintain_spec, window=window)
        try:
            subs = [service.subscribe(spec) for spec in [threshold, *watches]]
            reference = base.copy()
            applier = StreamApplier(reference, window)
            states = {}
            for sub in subs:
                states[sub.id] = sub.answer_snapshot()
                assert states[sub.id] == evaluate_standing(sub.spec, reference)
            for batch in _batches(updates, 5):
                service.apply_updates(batch)
                applier.apply_batch(batch)
                for sub in subs:
                    events = sub.poll()
                    states[sub.id] = replay_answer(states[sub.id], events)
                    assert states[sub.id] == evaluate_standing(sub.spec, reference), (
                        f"replayed events diverged for {sub.spec.kind} "
                        f"({measure}, lazy={lazy}, maintain={maintain})"
                    )
        finally:
            service.stop()

    def test_threshold_answer_matches_one_shot_mine(self):
        # The threshold answer is literally the one-shot mining result.
        with GraphService(base_graph()) as service:
            sub = service.subscribe(THRESHOLD)
            service.apply_updates([("v", 7, "a"), ("e", 6, 7), ("e", 7, 2)])
            sub.poll()
            expected = answer_from_result(
                mine_frequent_patterns(
                    service.registry.pin().graph, spec=THRESHOLD.mining_spec()
                )
            )
            assert sub.answer_snapshot() == expected

    def test_seq_numbers_are_dense_per_subscription(self):
        rng = random.Random(99)
        base = random_labeled_graph(12, 0.25, alphabet=("a", "b"), seed=3)
        scratch = base.copy()
        updates = _random_stream(rng, scratch, 24, labels=("a", "b"))
        with GraphService(base.copy()) as service:
            sub = service.subscribe(THRESHOLD)
            seen = []
            for batch in _batches(updates, 4):
                service.apply_updates(batch)
                seen.extend(sub.poll())
            assert [e.seq for e in seen] == list(range(len(seen)))
            versions = [e.version for e in seen]
            assert versions == sorted(versions)

    def test_event_filtered_subscription_only_sees_requested_types(self):
        spec = THRESHOLD.replace(events=("became_frequent", "became_infrequent"))
        rng = random.Random(5)
        base = random_labeled_graph(12, 0.25, alphabet=("a", "b"), seed=8)
        scratch = base.copy()
        updates = _random_stream(rng, scratch, 24, labels=("a", "b"))
        with GraphService(base.copy()) as service:
            sub = service.subscribe(spec)
            full = service.subscribe(THRESHOLD)
            kinds = set()
            membership_events = 0
            for batch in _batches(updates, 4):
                service.apply_updates(batch)
                kinds.update(e.type for e in sub.poll())
                membership_events += sum(
                    e.type in spec.events for e in full.poll()
                )
            assert kinds <= {"became_frequent", "became_infrequent"}
            assert membership_events > 0  # the filter had something to keep


class TestProtocolSurface:
    def request(self, service, payload, session=None):
        response, shutdown = handle_request(service, json.dumps(payload), session)
        return response

    def test_every_response_carries_protocol_version(self):
        with GraphService(base_graph()) as service:
            for payload in (
                {"op": "ping"},
                {"op": "version"},
                {"op": "nope"},
                "not json at all",
            ):
                line = payload if isinstance(payload, str) else json.dumps(payload)
                response, _ = handle_request(service, line)
                assert response["v"] == 1

    def test_unsupported_protocol_version_refused(self):
        with GraphService(base_graph()) as service:
            response = self.request(service, {"op": "ping", "v": 2})
            assert not response["ok"]
            assert response["code"] == "unsupported_protocol"
            assert self.request(service, {"op": "ping", "v": 1})["ok"]

    def test_error_codes_machine_readable(self):
        with GraphService(base_graph()) as service:
            assert self.request(service, {"op": "frob"})["code"] == "unknown_op"
            assert (
                self.request(service, {"op": "mine", "spec": []})["code"]
                == "bad_request"
            )
            assert (
                self.request(service, {"op": "poll_events", "subscription": "s9"})[
                    "code"
                ]
                == "unknown_subscription"
            )
            assert (
                self.request(service, {"op": "unsubscribe", "subscription": "s9"})[
                    "code"
                ]
                == "unknown_subscription"
            )

    def test_subscribe_poll_unsubscribe_roundtrip(self):
        with GraphService(base_graph()) as service:
            subscribed = self.request(
                service,
                {"op": "subscribe", "spec": {"min_support": 2, "max_nodes": 3}},
            )
            assert subscribed["ok"] and subscribed["kind"] == "threshold"
            sub_id = subscribed["subscription"]
            baseline = {
                entry["certificate"]: AnswerEntry(
                    entry["support"], entry["num_occurrences"], entry["frequent"]
                )
                for entry in subscribed["answer"]
            }
            self.request(
                service, {"op": "update", "updates": [["v", 7, "a"], ["e", 6, 7]]}
            )
            polled = self.request(
                service, {"op": "poll_events", "subscription": sub_id}
            )
            assert polled["ok"] and polled["events"]
            from repro.mining.standing import AnswerEvent

            events = [AnswerEvent.from_payload(p) for p in polled["events"]]
            replayed = replay_answer(baseline, events)
            with service.pin() as snap:
                expected = evaluate_standing(
                    StandingSpec.from_kwargs(
                        kind="threshold", min_support=2, max_nodes=3
                    ),
                    snap.graph,
                )
            assert replayed == expected
            done = self.request(
                service, {"op": "unsubscribe", "subscription": sub_id}
            )
            assert done["ok"]

    def test_push_requires_session(self):
        with GraphService(base_graph()) as service:
            response = self.request(
                service,
                {"op": "subscribe", "spec": {"min_support": 2, "delivery": "push"}},
            )
            assert not response["ok"] and response["code"] == "bad_request"

    def test_push_never_blocks_writer_on_slow_client(self):
        # A client whose socket stays full (write blocks, no exception)
        # must stall only its own sender thread: batch application keeps
        # going, and the bounded notify queue drops oldest frames.
        import threading

        with GraphService(base_graph()) as service:
            lines = []
            stalled = threading.Event()
            gate = threading.Event()

            def slow_write(line):
                stalled.set()
                assert gate.wait(10.0)
                lines.append(line)

            session = ClientSession(service, slow_write, max_queued_notifies=2)
            subscribed = self.request(
                service,
                {
                    "op": "subscribe",
                    "spec": {"min_support": 2, "max_nodes": 3, "delivery": "push"},
                },
                session,
            )
            assert subscribed["ok"]
            # First batch: the sender picks up its frame and blocks in
            # the (simulated full) socket write.
            done = self.request(
                service,
                {"op": "update", "updates": [["v", 70, "a"], ["e", 2, 70]]},
                session,
            )
            assert done["ok"]
            assert stalled.wait(10.0)
            # Three more batches while the sender is wedged: each must
            # apply promptly (a blocked writer would hang this loop), and
            # the two-deep queue drops the oldest overflowing frame.
            for step in range(1, 4):
                done = self.request(
                    service,
                    {
                        "op": "update",
                        "updates": [["v", 70 + step, "a"], ["e", 2, 70 + step]],
                    },
                    session,
                )
                assert done["ok"]
            assert session.notify_drops == 1
            gate.set()
            assert session.flush_notifies(timeout=10.0)
            notifies = [json.loads(line) for line in lines]
            assert all(n["event"] == "notify" for n in notifies)
            # 4 dispatched frames, 1 dropped: the in-flight one plus the
            # newest two survive.
            assert len(notifies) == 3
            session.close()

    def test_session_push_and_disconnect_gc(self):
        with GraphService(base_graph()) as service:
            lines = []
            session = ClientSession(service, lines.append)
            subscribed = self.request(
                service,
                {
                    "op": "subscribe",
                    "spec": {"min_support": 2, "max_nodes": 3, "delivery": "push"},
                },
                session,
            )
            assert subscribed["ok"]
            self.request(
                service,
                {"op": "update", "updates": [["v", 7, "a"], ["e", 6, 7]]},
                session,
            )
            # Push delivery is asynchronous (a per-session sender thread
            # drains the queue); wait for it before inspecting the wire.
            assert session.flush_notifies(timeout=10.0)
            notifies = [json.loads(line) for line in lines]
            notifies = [n for n in notifies if n.get("event") == "notify"]
            assert len(notifies) == 1
            assert notifies[0]["subscription"] == subscribed["subscription"]
            assert notifies[0]["v"] == 1
            assert notifies[0]["events"]
            assert len(service.subscriptions) == 1
            session.close()  # client drop => subscription GC'd
            assert len(service.subscriptions) == 0
