"""Shard-resident workers and the out-of-core shard pager.

The resident pool (:class:`repro.partition.ShardWorkerPool`) keeps one
long-lived worker per shard and ships each shard's halo-expanded slice
once, re-shipping only slices that deltas dirtied; the pager
(:class:`repro.partition.ShardPager`) bounds how many shards keep views
in memory, spilling cold shards to disk and re-hydrating (plus replaying
ball-safe pending deltas) on demand.  Everything here pins the same
contract as the rest of the partition suite: **byte-identical results**
— whatever the worker scheduling, whatever the eviction order — plus the
pool-lifecycle bugfixes (Ctrl-C shutdown, flat workers never building a
sharded index, pool failures degrading to serial).
"""

from __future__ import annotations

import random

import pytest

from repro.datasets.synthetic import random_labeled_graph
from repro.errors import MiningError
from repro.graph.builders import path_pattern
from repro.graph.labeled_graph import LabeledGraph
from repro.mining.dynamic import DynamicMiner, mine_stream
from repro.mining.miner import FrequentSubgraphMiner, mine_frequent_patterns
from repro.partition import (
    ShardedIndex,
    ShardPager,
    ShardWorkerPool,
    WorkerPoolError,
    load_shard_view,
    save_shard_views,
)
from repro.partition.workers import build_slice, restrict_view

# These suites deliberately exercise the legacy-kwarg entry points
# alongside spec=; the deprecation they trigger is the point, not noise.
pytestmark = pytest.mark.filterwarnings(
    "ignore:legacy mining kwargs:DeprecationWarning"
)

MINE_KWARGS = dict(
    measure="mni", min_support=2, max_pattern_nodes=4, max_pattern_edges=4
)


def long_path_graph(extra_chords: bool = True) -> LabeledGraph:
    """A large-diameter graph whose edgecut shards have non-alias balls."""
    graph = LabeledGraph(name="long-path")
    n = 60
    for i in range(n):
        graph.add_vertex(i, "ABC"[i % 3])
    for i in range(n - 1):
        graph.add_edge(i, i + 1)
    if extra_chords:
        for i in range(0, n - 6, 6):
            graph.add_edge(i, i + 5)
    return graph


def graph_content(graph: LabeledGraph):
    return (
        sorted((repr(v), graph.label_of(v)) for v in graph.vertices()),
        sorted(repr(edge) for edge in graph.edges()),
    )


def result_key(result):
    return [
        (fp.certificate, fp.support, fp.num_occurrences) for fp in result.frequent
    ]


def assert_mining_identical(left, right):
    assert result_key(left) == result_key(right)
    assert left.stats.as_dict() == right.stats.as_dict()


# ----------------------------------------------------------------------
# resident pool == flat serial
# ----------------------------------------------------------------------
class TestResidentPoolEquivalence:
    @pytest.mark.parametrize("seed", [2, 9])
    def test_resident_pool_identical_to_flat(self, seed):
        graph = random_labeled_graph(18, 0.22, alphabet=("A", "B", "C"), seed=seed)
        flat = mine_frequent_patterns(graph, **MINE_KWARGS)
        pooled = mine_frequent_patterns(graph, shards=3, workers=2, **MINE_KWARGS)
        assert_mining_identical(pooled, flat)

    def test_per_task_shipping_reference_identical(self):
        graph = random_labeled_graph(16, 0.25, alphabet=("A", "B", "C"), seed=5)
        flat = mine_frequent_patterns(graph, **MINE_KWARGS)
        shipped = mine_frequent_patterns(
            graph, shards=3, workers=2, resident_workers=False, **MINE_KWARGS
        )
        assert_mining_identical(shipped, flat)

    def test_out_of_core_pool_identical_and_pages(self):
        """max_resident < shards under the pool: identical, and it paged."""
        graph = long_path_graph()
        flat = mine_frequent_patterns(graph, **MINE_KWARGS)
        miner = FrequentSubgraphMiner(
            graph,
            shards=4,
            workers=2,
            max_resident=1,
            partition_method="edgecut",
            **MINE_KWARGS,
        )
        paged = miner.mine()
        assert_mining_identical(paged, flat)
        pager = miner._pager
        assert pager is not None
        assert pager.evictions > 0
        assert pager.rehydrations + pager.recomputes > 0

    def test_out_of_core_peak_weight_below_all_resident(self):
        """The acceptance gate in miniature: bounded residency uses less."""
        graph = long_path_graph()
        peaks = {}
        for max_resident in (1, 4):
            miner = FrequentSubgraphMiner(
                graph,
                shards=4,
                max_resident=max_resident,
                partition_method="edgecut",
                **MINE_KWARGS,
            )
            miner.mine()
            peaks[max_resident] = miner._pager.peak_resident_weight
        assert peaks[1] < peaks[4]


# ----------------------------------------------------------------------
# the pager in isolation: eviction order must not matter
# ----------------------------------------------------------------------
class TestShardPager:
    @pytest.mark.parametrize("seed", [0, 7, 13])
    def test_randomized_eviction_order_byte_identity(self, seed, tmp_path):
        """Any access order, any eviction order: views == pristine views."""
        graph = long_path_graph()
        pristine = ShardedIndex.build(graph, 4, "edgecut")
        paged_index = ShardedIndex.build(graph, 4, "edgecut")
        pager = ShardPager(paged_index, max_resident=2, cache_dir=str(tmp_path))
        rng = random.Random(seed)
        accesses = [
            (rng.randrange(4), rng.choice([0, 1, 2])) for _ in range(60)
        ]
        for shard_id, depth in accesses:
            got = paged_index.expanded_shard(shard_id, depth)
            want = pristine.expanded_shard(shard_id, depth)
            assert graph_content(got) == graph_content(want), (shard_id, depth)
        assert pager.evictions > 0
        assert pager.rehydrations > 0
        pager.close()

    def test_replay_and_stale_spills(self, tmp_path):
        """Isolated-vertex deltas replay onto spills; edge deltas poison them."""
        from repro.partition import ShardedIndexMaintainer

        graph = long_path_graph()
        maintainer = ShardedIndexMaintainer(graph, 4, "edgecut")
        index = maintainer.sharded()
        pager = ShardPager(index, max_resident=1, cache_dir=str(tmp_path))
        for shard_id in range(4):  # touch all shards; 3 spill
            index.expanded_shard(shard_id, 2)
        assert pager.evictions > 0
        # Ball-safe deltas: keep adding isolated vertices until one lands
        # in a *spilled* shard, then its re-hydrated view must replay it.
        home = None
        for i in range(8):
            vertex = 990 + i
            graph.add_vertex(vertex, "A")
            assert maintainer.sharded() is index  # patched, not rebuilt
            shard_id = index.partition.vertex_assignment.get(vertex)
            if shard_id is not None and shard_id in pager._on_disk:
                home = (vertex, shard_id)
                break
        assert home is not None, "router never hit a spilled shard"
        vertex, shard_id = home
        rehydrations_before = pager.rehydrations
        view = index.expanded_shard(shard_id, 2)
        assert view.has_vertex(vertex)
        assert pager.rehydrations > rehydrations_before
        assert pager.replayed_deltas > 0
        # An edge delta poisons the spills it touches: those shards must
        # recompute, and every view must match a from-scratch reference
        # built over the same partition.
        graph.add_edge(20, 45)
        assert maintainer.sharded() is index
        recomputes_before = pager.recomputes
        reference = ShardedIndex(graph, index.partition)
        for shard_id in range(4):
            assert graph_content(index.expanded_shard(shard_id, 2)) == graph_content(
                reference.expanded_shard(shard_id, 2)
            ), shard_id
        assert pager.recomputes > recomputes_before
        pager.close()

    def test_shard_view_roundtrip(self, tmp_path):
        graph = long_path_graph()
        index = ShardedIndex.build(graph, 4, "edgecut")
        views = {d: index.expanded_shard(1, d) for d in (0, 2)}
        save_shard_views(tmp_path, 1, views)
        for depth, view in views.items():
            loaded = load_shard_view(tmp_path, 1, depth)
            assert graph_content(loaded) == graph_content(view)
        assert load_shard_view(tmp_path, 1, 1) is None  # depth not spilled
        assert load_shard_view(tmp_path, 3, 0) is None  # shard not spilled

    def test_restrict_view_matches_expanded(self):
        """Workers derive shallow views from the max-depth slice."""
        graph = long_path_graph()
        index = ShardedIndex.build(graph, 4, "edgecut")
        for shard_id in range(4):
            slice_ = build_slice(index, shard_id, 2, generation=1)
            for depth in (0, 1, 2):
                derived = restrict_view(slice_, depth)
                want = index.expanded_shard(shard_id, depth)
                assert graph_content(derived) == graph_content(want)


# ----------------------------------------------------------------------
# pool-failure fallback (satellite: BrokenExecutor/OSError coverage)
# ----------------------------------------------------------------------
class TestPoolFailureFallback:
    def test_worker_pool_error_falls_back_to_serial(self, monkeypatch):
        """A pool that dies mid-level degrades to serial, byte-identical."""
        graph = random_labeled_graph(16, 0.25, alphabet=("A", "B", "C"), seed=3)
        serial = mine_frequent_patterns(graph, shards=3, **MINE_KWARGS)

        def broken_run(self, sharded, tasks):
            raise WorkerPoolError("worker killed mid-level (test)")

        monkeypatch.setattr(ShardWorkerPool, "run", broken_run)
        miner = FrequentSubgraphMiner(graph, shards=3, workers=2, **MINE_KWARGS)
        result = miner.mine()
        assert_mining_identical(result, serial)

    def test_killed_worker_raises_worker_pool_error(self):
        """A genuinely dead worker process surfaces as WorkerPoolError."""
        graph = long_path_graph()
        index = ShardedIndex.build(graph, 4, "edgecut")
        pool = ShardWorkerPool(
            2, measure="mni", lazy=False, lazy_cap=2, use_index=True, depth=2
        )
        try:
            pattern = path_pattern(["A", "B"])
            tasks = [
                ("part", pattern, shard_id, 0, False, None) for shard_id in range(4)
            ]
            assert len(pool.run(index, tasks)) == 4
            for process in pool._procs:
                process.terminate()
                process.join(timeout=5.0)
            with pytest.raises(WorkerPoolError):
                pool.run(index, tasks)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)


# ----------------------------------------------------------------------
# pool-lifecycle bugfixes
# ----------------------------------------------------------------------
class _RecordingPool:
    def __init__(self):
        self.calls = []

    def shutdown(self, wait=True, cancel_futures=False):
        self.calls.append(("shutdown", wait, cancel_futures))


class TestShutdownOnInterrupt:
    def test_interrupt_uses_non_waiting_shutdown(self, monkeypatch):
        """Ctrl-C mid-mine must not drain the pool (the hang bugfix)."""
        graph = random_labeled_graph(12, 0.3, alphabet=("A", "B"), seed=1)
        miner = FrequentSubgraphMiner(graph, shards=2, workers=2, **MINE_KWARGS)
        fake = _RecordingPool()
        monkeypatch.setattr(miner, "_make_pool", lambda: fake)

        def interrupted(level, stats, pool):
            raise KeyboardInterrupt

        monkeypatch.setattr(miner, "_evaluate_level", interrupted)
        with pytest.raises(KeyboardInterrupt):
            miner.mine()
        assert fake.calls == [("shutdown", False, True)]

    def test_clean_exit_uses_waiting_shutdown(self, monkeypatch):
        graph = random_labeled_graph(12, 0.3, alphabet=("A", "B"), seed=1)
        miner = FrequentSubgraphMiner(graph, **MINE_KWARGS)
        fake = _RecordingPool()
        monkeypatch.setattr(miner, "_make_pool", lambda: fake)
        monkeypatch.setattr(
            miner, "_evaluate_level", lambda level, stats, pool: ([], pool)
        )
        miner.mine()
        assert fake.calls == [("shutdown", True, False)]


class TestFlatWorkersStayFlat:
    def test_flat_worker_refuses_shard_tasks(self):
        """init_worker(partition=None) must never build a ShardedIndex."""
        from repro.mining import parallel

        graph = random_labeled_graph(10, 0.3, alphabet=("A", "B"), seed=0)
        parallel.init_worker(graph, "mni", False, 2, None, False, None, None)
        with pytest.raises(AssertionError, match="flat worker"):
            parallel.evaluate_shard_task(("solo", path_pattern(["A", "B"]), 0))

    def test_flat_pool_ships_no_partition(self):
        graph = random_labeled_graph(10, 0.3, alphabet=("A", "B"), seed=0)
        miner = FrequentSubgraphMiner(graph, workers=2, **MINE_KWARGS)
        miner._sync_session_state()
        pool = miner._make_pool()
        try:
            assert pool is None or pool._initargs[-1] is None
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)


# ----------------------------------------------------------------------
# streams: workers honored, never silently dropped
# ----------------------------------------------------------------------
def _stream_fixture():
    graph = LabeledGraph(name="stream")
    for i in range(12):
        graph.add_vertex(i, "AB"[i % 2])
    for i in range(11):
        graph.add_edge(i, i + 1)
    updates = [
        ("v", 100, "A"),
        ("e", 100, 0),
        ("e", 100, 3),
        ("de", 2, 3),
        ("v", 101, "B"),
        ("e", 101, 5),
        ("e", 100, 101),
        ("de", 0, 1),
    ]
    return graph, updates


class TestStreamWorkers:
    def _run(self, **kwargs):
        graph, updates = _stream_fixture()
        return [
            result_key(step.result)
            for step in mine_stream(
                graph,
                updates,
                batch_size=3,
                mode=kwargs.pop("mode", "delta"),
                min_support=2.0,
                max_pattern_nodes=4,
                **kwargs,
            )
        ]

    def test_stream_workers_identical_to_serial(self):
        serial = self._run()
        pooled = self._run(shards=3, workers=2)
        assert pooled == serial

    def test_stream_out_of_core_identical(self):
        serial = self._run()
        paged = self._run(shards=3, workers=2, max_resident=1)
        assert paged == serial

    def test_reference_modes_take_workers(self):
        serial = self._run()
        rebuilt = self._run(mode="rebuild", shards=2, workers=2)
        assert rebuilt == serial

    def test_delta_workers_require_shards(self):
        """workers must never be silently dropped: shards=1 delta raises."""
        graph, updates = _stream_fixture()
        with pytest.raises(MiningError, match="workers > 1 requires shards > 1"):
            list(mine_stream(graph, updates, mode="delta", workers=2))

    def test_dynamic_miner_persistent_pool_reused(self):
        """One pool across refreshes; slices re-ship only when dirtied."""
        graph, updates = _stream_fixture()
        miner = DynamicMiner(
            graph, min_support=2.0, max_pattern_nodes=4, shards=3, workers=2
        )
        try:
            miner.refresh()
            pool = miner._pool
            assert isinstance(pool, ShardWorkerPool)
            shipped_once = pool.slices_shipped
            assert shipped_once > 0
            miner.refresh()  # no mutations: nothing dispatched, same pool
            assert miner._pool is pool
            assert pool.slices_shipped == shipped_once
            for update in updates:
                from repro.mining.dynamic import apply_update

                apply_update(graph, update)
            miner.refresh()
            assert miner._pool is pool  # survived the delta refresh too
        finally:
            miner.detach()

    def test_dynamic_validation(self):
        graph, _ = _stream_fixture()
        with pytest.raises(MiningError):
            DynamicMiner(graph, workers=2)
        with pytest.raises(MiningError):
            DynamicMiner(graph, max_resident=2)
        with pytest.raises(MiningError):
            DynamicMiner(graph, shards=2, max_resident=0)
