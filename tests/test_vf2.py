"""Unit tests for the subgraph-isomorphism engine."""

from repro.graph.builders import (
    complete_graph,
    cycle_graph,
    path_graph,
    path_pattern,
    triangle_pattern,
)
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.pattern import Pattern
from repro.isomorphism.vf2 import (
    are_isomorphic,
    count_subgraph_isomorphisms,
    find_isomorphisms,
    find_subgraph_isomorphisms,
    has_subgraph_isomorphism,
)


class TestSubgraphIsomorphism:
    def test_single_node_pattern(self):
        g = path_graph(["a", "b", "a"])
        p = Pattern.single_node("a")
        maps = list(find_subgraph_isomorphisms(p, g))
        assert sorted(m["v1"] for m in maps) == [1, 3]

    def test_edge_pattern_counts_orientations(self):
        g = path_graph(["a", "a"])
        p = Pattern.single_edge("a", "a")
        # Same labels: both orientations are distinct isomorphisms.
        assert count_subgraph_isomorphisms(p, g) == 2

    def test_edge_pattern_distinct_labels_single_orientation(self):
        g = path_graph(["a", "b"])
        p = Pattern.single_edge("a", "b")
        assert count_subgraph_isomorphisms(p, g) == 1

    def test_labels_must_match(self):
        g = path_graph(["a", "a"])
        p = Pattern.single_edge("a", "b")
        assert count_subgraph_isomorphisms(p, g) == 0

    def test_triangle_in_k4(self):
        g = complete_graph(["a"] * 4)
        p = triangle_pattern("a")
        # 4 vertex triples x 6 automorphic maps each.
        assert count_subgraph_isomorphisms(p, g) == 24

    def test_no_occurrence_when_pattern_larger_than_graph(self):
        g = path_graph(["a"])
        p = path_pattern(["a", "a"])
        assert count_subgraph_isomorphisms(p, g) == 0

    def test_all_mappings_preserve_edges_and_labels(self):
        g = cycle_graph(["a", "b", "a", "b", "a", "b"])
        p = path_pattern(["a", "b", "a"])
        for mapping in find_subgraph_isomorphisms(p, g):
            for u, v in p.edges():
                assert g.has_edge(mapping[u], mapping[v])
            for node in p.nodes():
                assert g.label_of(mapping[node]) == p.label_of(node)

    def test_mappings_are_injective(self):
        g = complete_graph(["a"] * 4)
        p = triangle_pattern("a")
        for mapping in find_subgraph_isomorphisms(p, g):
            assert len(set(mapping.values())) == len(mapping)

    def test_limit_stops_enumeration(self):
        g = complete_graph(["a"] * 5)
        p = triangle_pattern("a")
        assert len(list(find_subgraph_isomorphisms(p, g, limit=7))) == 7

    def test_has_subgraph_isomorphism(self):
        g = cycle_graph(["a"] * 5)
        assert has_subgraph_isomorphism(path_pattern(["a", "a"]), g)
        assert not has_subgraph_isomorphism(triangle_pattern("a"), g)

    def test_induced_vs_non_induced(self):
        # Pattern: path of 3; data: triangle.  Non-induced matches exist,
        # induced matches don't (the missing chord is present in the data).
        g = cycle_graph(["a"] * 3)
        p = path_pattern(["a", "a", "a"])
        assert count_subgraph_isomorphisms(p, g) == 6
        induced = list(find_subgraph_isomorphisms(p, g, induced=True))
        assert induced == []

    def test_disconnected_pattern(self):
        g = path_graph(["a", "b", "a", "b"])
        p = Pattern(LabeledGraph(vertices=[("v1", "a"), ("v2", "a")]))
        # Two isolated 'a' nodes: injective pairs of {1, 3}.
        assert count_subgraph_isomorphisms(p, g) == 2

    def test_deterministic_order(self):
        g = complete_graph(["a"] * 4)
        p = triangle_pattern("a")
        first = [tuple(sorted(m.items())) for m in find_subgraph_isomorphisms(p, g)]
        second = [tuple(sorted(m.items())) for m in find_subgraph_isomorphisms(p, g)]
        assert first == second


class TestFullIsomorphism:
    def test_isomorphic_relabeled_graphs(self):
        g1 = cycle_graph(["a", "b", "a", "b"])
        g2 = g1.relabeled({1: 10, 2: 20, 3: 30, 4: 40})
        assert are_isomorphic(g1, g2)

    def test_non_isomorphic_different_sizes(self):
        assert not are_isomorphic(path_graph(["a"]), path_graph(["a", "a"]))

    def test_non_isomorphic_different_edge_counts(self):
        g1 = path_graph(["a", "a", "a"])
        g2 = cycle_graph(["a", "a", "a"])
        assert not are_isomorphic(g1, g2)

    def test_non_isomorphic_different_labels(self):
        g1 = path_graph(["a", "a"])
        g2 = path_graph(["a", "b"])
        assert not are_isomorphic(g1, g2)

    def test_same_degree_sequence_but_not_isomorphic(self):
        # C6 vs two disjoint C3s: both 2-regular on 6 vertices.
        c6 = cycle_graph(["a"] * 6)
        two_c3 = LabeledGraph(
            vertices=[(i, "a") for i in range(1, 7)],
            edges=[(1, 2), (2, 3), (1, 3), (4, 5), (5, 6), (4, 6)],
        )
        assert not are_isomorphic(c6, two_c3)

    def test_automorphism_count_of_triangle(self):
        g = cycle_graph(["a"] * 3)
        assert len(list(find_isomorphisms(g, g))) == 6

    def test_automorphism_count_of_labeled_triangle(self):
        g = cycle_graph(["a", "b", "c"])
        assert len(list(find_isomorphisms(g, g))) == 1

    def test_isomorphism_is_bijective_and_edge_preserving(self):
        g1 = cycle_graph(["a", "b", "a", "b"])
        g2 = g1.relabeled({1: "w", 2: "x", 3: "y", 4: "z"})
        for mapping in find_isomorphisms(g1, g2):
            assert len(set(mapping.values())) == g1.num_vertices
            for u, v in g1.edges():
                assert g2.has_edge(mapping[u], mapping[v])
