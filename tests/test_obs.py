"""Tests for the observability layer: metrics, spans, logging, profiling.

The regression class at the bottom pins ``DOCUMENTED_METRICS`` — every
documented instrument name must appear in a registry snapshot after an
end-to-end sharded / pooled / paged ``mine-stream`` run, so renaming or
dropping a metric is a visible, deliberate act.
"""

import io
import json
import logging
import threading

import pytest

from repro.graph.builders import path_graph
from repro.graph.labeled_graph import LabeledGraph
from repro.index.delta import IndexMaintainer
from repro.mining.dynamic import mine_stream
from repro.mining.miner import mine_frequent_patterns
from repro.obs import logs as logs_mod
from repro.obs import metrics as metrics_mod
from repro.obs import trace as trace_mod
from repro.obs.metrics import DOCUMENTED_METRICS, MetricsRegistry
from repro.obs.profile import coverage, format_profile
from repro.service import GraphService

# These suites deliberately exercise the legacy-kwarg entry points
# alongside spec=; the deprecation they trigger is the point, not noise.
pytestmark = pytest.mark.filterwarnings(
    "ignore:legacy mining kwargs:DeprecationWarning"
)

MINE_KWARGS = dict(
    measure="mni", min_support=2, max_pattern_nodes=4, max_pattern_edges=4
)


@pytest.fixture
def fresh_registry():
    """Swap in an empty registry so counts are exact, restore after."""
    registry = MetricsRegistry()
    previous = metrics_mod.set_registry(registry)
    yield registry
    metrics_mod.set_registry(previous)


@pytest.fixture
def tracing():
    """Enable span collection for one test, leaving no residue."""
    trace_mod.clear_traces()
    trace_mod.enable()
    yield
    trace_mod.disable()
    trace_mod.clear_traces()


def mining_graph() -> LabeledGraph:
    graph = LabeledGraph(name="obs-fixture")
    for i in range(24):
        graph.add_vertex(i, "AB"[i % 2])
    for i in range(23):
        graph.add_edge(i, i + 1)
    for i in range(0, 18, 6):
        graph.add_edge(i, i + 5)
    return graph


def result_key(result):
    return [
        (fp.certificate, fp.support, fp.num_occurrences) for fp in result.frequent
    ]


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_monotonic(self, fresh_registry):
        counter = fresh_registry.counter("repro_test_things")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_same_name_same_instrument(self, fresh_registry):
        assert fresh_registry.counter("repro_test_a") is fresh_registry.counter(
            "repro_test_a"
        )

    def test_kind_conflict_raises(self, fresh_registry):
        fresh_registry.counter("repro_test_a")
        with pytest.raises(TypeError):
            fresh_registry.gauge("repro_test_a")

    def test_gauge_moves_both_ways_and_ratchets(self, fresh_registry):
        gauge = fresh_registry.gauge("repro_test_weight")
        gauge.set(10)
        gauge.dec(3)
        assert gauge.value == 7
        gauge.set_max(5)
        assert gauge.value == 7  # never lowered
        gauge.set_max(11)
        assert gauge.value == 11

    def test_histogram_snapshot_shape(self, fresh_registry):
        histogram = fresh_registry.histogram("repro_test_depth")
        for value in (1, 3, 3, 300):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == 307
        assert snap["max"] == 300
        assert snap["le_1"] == 1
        assert snap["le_4"] == 2
        assert snap["inf"] == 1

    def test_snapshot_is_flat_and_sorted(self, fresh_registry):
        fresh_registry.counter("repro_test_b").inc()
        fresh_registry.gauge("repro_test_a").set(2)
        fresh_registry.histogram("repro_test_c").observe(1)
        snap = fresh_registry.snapshot()
        assert list(snap) == ["repro_test_a", "repro_test_b", "repro_test_c"]
        assert snap["repro_test_a"] == 2
        assert snap["repro_test_b"] == 1
        assert isinstance(snap["repro_test_c"], dict)

    def test_threaded_increments_lose_nothing(self, fresh_registry):
        counter = fresh_registry.counter("repro_test_contended")
        rounds, workers = 2000, 8

        def hammer():
            for _ in range(rounds):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == rounds * workers

    def test_set_registry_swaps_module_shorthands(self):
        registry = MetricsRegistry()
        previous = metrics_mod.set_registry(registry)
        try:
            metrics_mod.counter("repro_test_routed").inc()
            assert registry.counter("repro_test_routed").value == 1
            assert "repro_test_routed" not in previous.names()
        finally:
            metrics_mod.set_registry(previous)


# ----------------------------------------------------------------------
# spans
# ----------------------------------------------------------------------
class TestSpans:
    def test_disabled_is_shared_null_span(self):
        assert not trace_mod.enabled()
        first = trace_mod.span("anything", key="value")
        assert first is trace_mod.NULL_SPAN
        with first as entered:
            entered.set(more=1)
        assert trace_mod.last_trace_id() is None or isinstance(
            trace_mod.last_trace_id(), str
        )

    def test_nesting_parentage_and_attrs(self, tracing):
        with trace_mod.span("outer", kind="root") as outer:
            with trace_mod.span("inner", step=1) as inner:
                inner.set(result=7)
            assert trace_mod.current_trace_id() == outer.trace_id
        records = trace_mod.get_trace(outer.trace_id)
        assert records is not None
        by_name = {record.name: record for record in records}
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["outer"].parent_id is None
        assert by_name["inner"].trace_id == by_name["outer"].trace_id
        assert by_name["inner"].attrs == {"step": 1, "result": 7}
        assert by_name["outer"].attrs == {"kind": "root"}
        assert by_name["outer"].wall >= by_name["inner"].wall >= 0.0
        assert trace_mod.last_trace_id() == outer.trace_id

    def test_exception_is_recorded_and_stack_unwound(self, tracing):
        with pytest.raises(RuntimeError):
            with trace_mod.span("doomed") as doomed:
                raise RuntimeError("boom")
        assert trace_mod.current_trace_id() is None
        records = trace_mod.get_trace(doomed.trace_id)
        assert records[0].attrs["error"] == "RuntimeError"

    def test_sibling_spans_share_a_trace(self, tracing):
        with trace_mod.span("root") as root:
            with trace_mod.span("first"):
                pass
            with trace_mod.span("second"):
                pass
        records = trace_mod.get_trace(root.trace_id)
        assert len(records) == 3
        assert len({record.trace_id for record in records}) == 1
        assert len({record.span_id for record in records}) == 3

    def test_traced_decorator(self, tracing):
        @trace_mod.traced("wrapped")
        def work(x):
            return x + 1

        assert work(1) == 2
        last = trace_mod.get_trace(trace_mod.last_trace_id())
        assert last[0].name == "wrapped"

    def test_store_evicts_whole_oldest_traces(self):
        store = trace_mod.TraceStore(max_traces=2)
        for tid in ("t1", "t2", "t3"):
            store.add(
                trace_mod.SpanRecord(
                    trace_id=tid,
                    span_id=f"s-{tid}",
                    parent_id=None,
                    name="root",
                    start=0.0,
                    wall=0.0,
                    cpu=0.0,
                )
            )
        assert store.get("t1") is None
        assert store.get("t2") is not None
        assert store.get("t3") is not None


# ----------------------------------------------------------------------
# NDJSON export
# ----------------------------------------------------------------------
class TestNdjsonExport:
    def test_round_trip_through_file_object(self, tracing):
        with trace_mod.span("mine", level=1) as root:
            with trace_mod.span("evaluate"):
                pass
        buffer = io.StringIO()
        written = trace_mod.export_ndjson(buffer, trace_id=root.trace_id)
        lines = [line for line in buffer.getvalue().splitlines() if line]
        assert written == len(lines) == 2
        payloads = [json.loads(line) for line in lines]
        records = trace_mod.get_trace(root.trace_id)
        assert payloads == [record.payload() for record in records]

    def test_export_to_path_covers_all_traces(self, tracing, tmp_path):
        with trace_mod.span("one"):
            pass
        with trace_mod.span("two"):
            pass
        target = tmp_path / "spans.ndjson"
        written = trace_mod.export_ndjson(str(target))
        payloads = [
            json.loads(line)
            for line in target.read_text().splitlines()
            if line
        ]
        assert written == len(payloads) == 2
        assert {payload["name"] for payload in payloads} == {"one", "two"}
        assert len({payload["trace_id"] for payload in payloads}) == 2


# ----------------------------------------------------------------------
# logging
# ----------------------------------------------------------------------
class TestLogging:
    def test_hierarchy_and_null_handler(self):
        root = logs_mod.get_logger()
        assert root.name == "repro"
        assert any(
            isinstance(handler, logging.NullHandler) for handler in root.handlers
        )
        assert logs_mod.get_logger("mining.miner").name == "repro.mining.miner"
        assert logs_mod.get_logger("repro.obs").name == "repro.obs"

    def test_configure_logging_is_idempotent(self):
        root = logs_mod.get_logger()
        before = list(root.handlers)
        try:
            logs_mod.configure_logging("warning")
            logs_mod.configure_logging("debug")
            ours = [
                handler
                for handler in root.handlers
                if getattr(handler, "_repro_cli_handler", False)
            ]
            assert len(ours) == 1
            assert ours[0].level == logging.DEBUG
            with pytest.raises(ValueError):
                logs_mod.configure_logging("loud")
        finally:
            for handler in list(root.handlers):
                if handler not in before:
                    root.removeHandler(handler)
            root.setLevel(logging.NOTSET)

    def test_rebuild_demotion_logs_warning_with_reason(
        self, fresh_registry, caplog
    ):
        graph = path_graph(["a", "b", "a", "b"])
        maintainer = IndexMaintainer(graph, patch_limit=1)
        graph.add_vertex(10, "a")
        graph.add_vertex(11, "b")  # past the patch limit: coalesced rebuild
        with caplog.at_level(logging.WARNING, logger="repro"):
            maintainer.index()
        assert maintainer.rebuilds == 1
        assert any("patch-limit" in record.message for record in caplog.records)
        snap = fresh_registry.snapshot()
        assert snap["repro_index_rebuilds"] == 1
        assert snap["repro_index_rebuilds_patch_limit"] == 1
        assert snap["repro_index_deltas_coalesced"] >= 1


# ----------------------------------------------------------------------
# instrumented mining
# ----------------------------------------------------------------------
class TestInstrumentedMining:
    def test_disabled_tracing_results_identical(self, fresh_registry):
        graph_off = mining_graph()
        graph_on = mining_graph()
        assert not trace_mod.enabled()
        off = mine_frequent_patterns(graph_off, **MINE_KWARGS)
        trace_mod.enable()
        try:
            on = mine_frequent_patterns(graph_on, **MINE_KWARGS)
        finally:
            trace_mod.disable()
            trace_mod.clear_traces()
        assert result_key(off) == result_key(on)

    def test_session_flush_matches_stats(self, fresh_registry):
        result = mine_frequent_patterns(mining_graph(), **MINE_KWARGS)
        snap = fresh_registry.snapshot()
        assert snap["repro_miner_sessions"] == 1
        assert snap["repro_miner_levels"] >= 1
        for name, value in result.stats.as_dict().items():
            assert snap[f"repro_miner_{name}"] == value
        matcher_calls = (
            snap["repro_match_vf2_calls"] + snap["repro_match_anchored_searches"]
        )
        assert matcher_calls > 0

    def test_profile_coverage_and_rendering(self, fresh_registry, tracing):
        mine_frequent_patterns(mining_graph(), **MINE_KWARGS)
        records = trace_mod.get_trace(trace_mod.last_trace_id())
        assert records is not None
        names = {record.name for record in records}
        assert {"mine", "seeds", "level", "evaluate", "extend"} <= names
        # The acceptance gate: the phase rows explain >= 90% of the run.
        assert coverage(records) >= 0.90
        rendered = format_profile(records)
        assert "mining profile" in rendered
        assert "level 1" in rendered
        assert "span coverage:" in rendered
        assert "mine (total)" in rendered

    def test_format_profile_without_trace(self):
        assert "no trace recorded" in format_profile(None)
        assert "no trace recorded" in format_profile([])


# ----------------------------------------------------------------------
# the service surface
# ----------------------------------------------------------------------
class TestServiceMetrics:
    def test_stats_rebased_on_registry(self, fresh_registry):
        graph = path_graph(["a", "b", "a", "b", "a"])
        with GraphService(graph) as service:
            service.mine()  # miss
            service.mine()  # hit
            stats = service.stats()
            snap = service.metrics_snapshot()
        assert stats["hits"] == snap["repro_cache_hits"] == 1
        assert stats["misses"] == snap["repro_cache_misses"] == 1
        assert stats["entries"] == snap["repro_cache_entries"] == 1
        assert snap["repro_service_mine_requests"] == 2
        assert snap["repro_snapshots_pins"] >= 2

    def test_batches_and_publishes_counted(self, fresh_registry):
        graph = path_graph(["a", "b", "a"])
        with GraphService(graph) as service:
            service.apply_updates([("v", 10, "a"), ("e", 10, 1)])
            service.apply_updates([("v", 11, "b"), ("e", 11, 10)])
            snap = service.metrics_snapshot()
        assert snap["repro_service_batches_applied"] == 2
        assert snap["repro_snapshots_publishes"] == 2


# ----------------------------------------------------------------------
# the documented-names regression
# ----------------------------------------------------------------------
class TestDocumentedMetrics:
    def test_end_to_end_stream_registers_every_documented_name(
        self, fresh_registry
    ):
        """Sharded + pooled + paged mine-stream registers the full surface."""
        graph = mining_graph()
        updates = [
            ("v", 100, "A"),
            ("e", 100, 0),
            ("e", 100, 3),
            ("de", 2, 3),
            ("v", 101, "B"),
            ("e", 101, 5),
            ("e", 100, 101),
            ("de", 0, 1),
        ]
        steps = list(
            mine_stream(
                graph,
                updates,
                batch_size=3,
                mode="delta",
                shards=3,
                workers=2,
                max_resident=1,
                **MINE_KWARGS,
            )
        )
        assert steps  # the stream ran
        # The flat maintainer's names come from any flat delta session.
        flat_graph = mining_graph()
        list(
            mine_stream(
                flat_graph,
                updates[:2],
                batch_size=2,
                mode="delta",
                **MINE_KWARGS,
            )
        )
        snap = fresh_registry.snapshot()
        missing = [name for name in DOCUMENTED_METRICS if name not in snap]
        assert not missing, f"undocumented-in-snapshot metrics: {missing}"

    def test_core_counters_move(self, fresh_registry):
        """Beyond existing: the load-bearing counters actually count."""
        graph = mining_graph()
        updates = [("v", 100, "A"), ("e", 100, 0), ("de", 2, 3), ("e", 2, 3)]
        list(
            mine_stream(
                graph,
                updates,
                batch_size=2,
                mode="delta",
                shards=3,
                workers=2,
                max_resident=1,
                **MINE_KWARGS,
            )
        )
        snap = fresh_registry.snapshot()
        assert snap["repro_miner_sessions"] >= 2
        assert snap["repro_pool_tasks_dispatched"] > 0
        assert snap["repro_pool_slices_shipped"] > 0
        assert snap["repro_pager_recomputes"] > 0
        assert snap["repro_pager_evictions"] > 0
        assert snap["repro_sharded_index_patches_applied"] > 0
        assert snap["repro_snapshots_publishes"] >= 2
        assert snap["repro_cache_entries"] >= 1
        assert snap["repro_pool_queue_depth"]["count"] > 0
