"""Unit tests for synthetic generators and the zoo."""

import pytest

from repro.datasets.synthetic import (
    community_graph,
    graph_with_occurrence_count,
    planted_pattern_graph,
    preferential_attachment_graph,
    random_labeled_graph,
)
from repro.datasets.zoo import zoo_graph, zoo_names
from repro.errors import DatasetError
from repro.graph.builders import triangle_pattern
from repro.graph.pattern import Pattern
from repro.isomorphism.vf2 import count_subgraph_isomorphisms


class TestRandomLabeledGraph:
    def test_deterministic_by_seed(self):
        g1 = random_labeled_graph(20, 0.2, seed=7)
        g2 = random_labeled_graph(20, 0.2, seed=7)
        assert g1 == g2

    def test_different_seeds_differ(self):
        g1 = random_labeled_graph(20, 0.3, seed=1)
        g2 = random_labeled_graph(20, 0.3, seed=2)
        assert g1 != g2

    def test_extreme_probabilities(self):
        empty = random_labeled_graph(10, 0.0, seed=0)
        full = random_labeled_graph(10, 1.0, seed=0)
        assert empty.num_edges == 0
        assert full.num_edges == 45

    def test_labels_from_alphabet(self):
        g = random_labeled_graph(30, 0.1, alphabet=("X", "Y"), seed=3)
        assert set(g.label_alphabet()) <= {"X", "Y"}

    def test_label_skew_concentrates_mass(self):
        g = random_labeled_graph(300, 0.0, alphabet=("X", "Y"), seed=5, label_skew=3.0)
        histogram = g.label_histogram()
        assert histogram.get("X", 0) > histogram.get("Y", 0)

    def test_invalid_arguments(self):
        with pytest.raises(DatasetError):
            random_labeled_graph(-1, 0.5)
        with pytest.raises(DatasetError):
            random_labeled_graph(5, 1.5)


class TestPreferentialAttachment:
    def test_vertex_and_edge_counts(self):
        g = preferential_attachment_graph(30, 2, seed=0)
        assert g.num_vertices == 30
        # Seed K3 (3 edges) + 2 per newcomer.
        assert g.num_edges == 3 + 2 * 27

    def test_heavy_tail(self):
        g = preferential_attachment_graph(80, 1, seed=1)
        degrees = g.degree_sequence()
        assert degrees[0] >= 4  # a hub emerges

    def test_invalid_arguments(self):
        with pytest.raises(DatasetError):
            preferential_attachment_graph(3, 0)
        with pytest.raises(DatasetError):
            preferential_attachment_graph(2, 2)


class TestPlantedPattern:
    def test_disjoint_copies_give_exact_counts(self):
        pattern = triangle_pattern("A", "B", "C")
        g = planted_pattern_graph(pattern, num_copies=5, overlap_fraction=0.0, seed=0)
        assert g.num_vertices == 15
        assert count_subgraph_isomorphisms(pattern, g) == 5

    def test_welded_copies_share_vertices(self):
        pattern = triangle_pattern("A", "B", "C")
        g = planted_pattern_graph(pattern, num_copies=10, overlap_fraction=1.0, seed=3)
        assert g.num_vertices < 30

    def test_background_noise_does_not_disturb_counts(self):
        pattern = triangle_pattern("A", "B", "C")
        g = planted_pattern_graph(
            pattern,
            num_copies=4,
            background_vertices=20,
            background_edge_probability=0.3,
            seed=2,
        )
        assert count_subgraph_isomorphisms(pattern, g) == 4

    def test_invalid_arguments(self):
        pattern = triangle_pattern("A")
        with pytest.raises(DatasetError):
            planted_pattern_graph(pattern, num_copies=-1)
        with pytest.raises(DatasetError):
            planted_pattern_graph(pattern, num_copies=1, overlap_fraction=2.0)


class TestCommunityGraph:
    def test_shape(self):
        g = community_graph(3, 5, seed=0)
        assert g.num_vertices == 15

    def test_intra_denser_than_inter(self):
        g = community_graph(
            2, 10, intra_probability=0.8, inter_probability=0.02, seed=1
        )
        intra = sum(1 for u, v in g.edges() if (u // 10) == (v // 10))
        inter = g.num_edges - intra
        assert intra > inter

    def test_invalid(self):
        with pytest.raises(DatasetError):
            community_graph(0, 5)


class TestOccurrenceTargeting:
    def test_reaches_target(self):
        pattern = Pattern.single_edge("A", "B")
        g = graph_with_occurrence_count(pattern, target_occurrences=30, seed=0)
        assert count_subgraph_isomorphisms(pattern, g) >= 30


class TestZoo:
    def test_all_names_buildable(self):
        for name in zoo_names():
            graph = zoo_graph(name)
            assert graph.num_vertices > 0

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            zoo_graph("unicorn")

    def test_fan_structure(self):
        fan = zoo_graph("triangle_fan")
        assert fan.degree(0) == 8  # 4 triangles x 2 rim vertices

    def test_disjoint_triangles_structure(self):
        g = zoo_graph("disjoint_triangles")
        assert g.num_vertices == 9
        assert g.num_edges == 9
        assert len(g.connected_components()) == 3
