"""Randomized equivalence: delta-patched GraphIndex == rebuilt-from-scratch.

The delta layer (repro.index.delta) patches a cached GraphIndex in
O(delta) per insertion instead of rebuilding it.  A patched index must be
*structurally identical* to one rebuilt from scratch — same inverted
lists in the same canonical order, same label-pair edge lists, same
degree/neighbor-label signatures, same version — after every batch of a
randomized update sequence.  Removals, observation gaps, and detached
observers must fall back to a rebuild and still land on the identical
structure.  Style and scope mirror ``tests/test_index_equivalence.py``.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.datasets.synthetic import (
    preferential_attachment_graph,
    random_labeled_graph,
)
from repro.graph.builders import path_pattern
from repro.index import (
    EdgeAdded,
    EdgeRemoved,
    GraphIndex,
    IndexMaintainer,
    VertexAdded,
    VertexRemoved,
    get_index,
)
from repro.isomorphism.matcher import find_occurrences


def index_structure(index: GraphIndex, graph):
    """Every observable component of the index, via its public API."""
    pairs = index.distinct_edge_label_pairs()
    alphabet = graph.label_alphabet()
    return {
        "version": index.version,
        "inverted": {label: index.vertices_with_label(label) for label in alphabet},
        "histogram": dict(index.label_histogram()),
        "label_pairs": set(index.adjacent_label_pairs()),
        "pair_edges": {pair: index.edges_with_labels(*pair) for pair in pairs},
        "degrees": {vertex: index.degree_of(vertex) for vertex in graph.vertices()},
        "signatures": {
            vertex: dict(index.signature_of(vertex)) for vertex in graph.vertices()
        },
        "neighbors": {
            (vertex, label): index.neighbors_with_label(vertex, label)
            for vertex in graph.vertices()
            for label in alphabet
        },
    }


def assert_patched_equals_rebuilt(maintainer: IndexMaintainer, graph):
    patched = maintainer.index()
    rebuilt = GraphIndex.build(graph)
    assert index_structure(patched, graph) == index_structure(rebuilt, graph)
    return patched


def grow_randomly(graph, rng: random.Random, steps: int, alphabet, tag: str):
    """Apply ``steps`` random insertions (vertices and edges) to ``graph``."""
    added = 0
    serial = 0
    while added < steps:
        if rng.random() < 0.3:
            graph.add_vertex(f"{tag}-{serial}", rng.choice(alphabet))
            serial += 1
            added += 1
        else:
            u, v = rng.sample(graph.vertices(), 2)
            if not graph.has_edge(u, v):
                graph.add_edge(u, v)
                added += 1


#: Randomized update-sequence scenarios: (generator-kind, seed, size, knob).
SEQUENCE_SPECS = (
    [("er", seed, 12, 0.25) for seed in range(8)]
    + [("er", seed, 18, 0.15) for seed in range(8, 14)]
    + [("ba", seed, 20, 2) for seed in range(14, 20)]
)


def build_graph(spec):
    kind, seed, size, knob = spec
    if kind == "er":
        alphabet = ("A", "B", "C") if seed % 2 else ("A", "B", "C", "D")
        return random_labeled_graph(size, knob, alphabet=alphabet, seed=seed)
    return preferential_attachment_graph(
        size, knob, alphabet=("A", "B", "C", "D"), seed=seed, label_skew=0.3
    )


class TestRandomizedPatchEquivalence:
    @pytest.mark.parametrize(
        "spec", SEQUENCE_SPECS, ids=lambda spec: f"{spec[0]}-s{spec[1]}"
    )
    def test_patched_index_identical_after_every_batch(self, spec):
        graph = build_graph(spec)
        rng = random.Random(spec[1] * 101 + 7)
        maintainer = IndexMaintainer(graph)
        for batch in range(5):
            grow_randomly(graph, rng, steps=6, alphabet="ABCD", tag=f"b{batch}")
            assert_patched_equals_rebuilt(maintainer, graph)
        assert maintainer.rebuilds == 0
        assert maintainer.patches_applied >= 5

    def test_patched_index_is_adopted_by_get_index(self):
        graph = build_graph(("er", 1, 12, 0.25))
        maintainer = IndexMaintainer(graph)
        graph.add_vertex("late", "A")
        patched = maintainer.index()
        assert get_index(graph) is patched

    def test_matcher_results_through_patched_index(self):
        graph = build_graph(("er", 2, 14, 0.3))
        maintainer = IndexMaintainer(graph)
        rng = random.Random(33)
        pattern = path_pattern(["A", "B", "A"])
        for batch in range(4):
            grow_randomly(graph, rng, steps=5, alphabet="ABC", tag=f"m{batch}")
            maintainer.index()  # patch + re-cache; matching uses it below
            assert find_occurrences(pattern, graph) == find_occurrences(
                pattern, graph, index=False
            )
        assert maintainer.rebuilds == 0


class TestDeltaPublication:
    def test_one_typed_delta_per_mutation(self):
        graph = build_graph(("er", 4, 10, 0.2))
        received = []
        graph.subscribe(received.append)
        before = graph.mutation_version()
        graph.add_vertex("x", "A")
        graph.add_vertex("y", "B")
        graph.add_edge("x", "y")
        graph.remove_edge("x", "y")
        graph.remove_vertex("x")
        kinds = [type(delta) for delta in received]
        assert kinds == [VertexAdded, VertexAdded, EdgeAdded, EdgeRemoved, VertexRemoved]
        assert [delta.version for delta in received] == list(
            range(before + 1, before + 6)
        )
        edge_added = received[2]
        assert {edge_added.label_u, edge_added.label_v} == {"A", "B"}

    def test_idempotent_mutations_publish_nothing(self):
        graph = build_graph(("er", 5, 10, 0.2))
        graph.add_vertex("x", "A")
        graph.add_vertex("y", "B")
        graph.add_edge("x", "y")
        received = []
        graph.subscribe(received.append)
        graph.add_vertex("x", "A")  # re-add, same label
        graph.add_edge("x", "y")  # existing edge
        assert received == []

    def test_unsubscribe_and_has_observers(self):
        graph = build_graph(("er", 6, 10, 0.2))
        received = []
        token = graph.subscribe(received.append)
        assert graph.has_observers()
        graph.unsubscribe(token)
        graph.unsubscribe(token)  # second detach is a no-op
        assert not graph.has_observers()
        graph.add_vertex("quiet", "A")
        assert received == []

    def test_observers_dropped_from_pickles(self):
        graph = build_graph(("er", 7, 10, 0.2))
        graph.subscribe(lambda delta: None)
        clone = pickle.loads(pickle.dumps(graph))
        assert not clone.has_observers()
        assert clone == graph


class TestRebuildFallbacks:
    def test_edge_removal_falls_back_to_rebuild(self):
        graph = build_graph(("er", 8, 12, 0.3))
        maintainer = IndexMaintainer(graph)
        grow_randomly(graph, random.Random(1), steps=4, alphabet="ABC", tag="r")
        u, v = graph.edges()[0]
        graph.remove_edge(u, v)
        assert_patched_equals_rebuilt(maintainer, graph)
        assert maintainer.rebuilds == 1

    def test_vertex_removal_falls_back_to_rebuild(self):
        graph = build_graph(("er", 9, 12, 0.3))
        maintainer = IndexMaintainer(graph)
        graph.add_vertex("gone", "A")
        graph.remove_vertex(graph.vertices()[0])
        assert_patched_equals_rebuilt(maintainer, graph)
        assert maintainer.rebuilds == 1
        # Maintenance keeps working (patching again) after the rebuild.
        grow_randomly(graph, random.Random(2), steps=4, alphabet="ABC", tag="after")
        assert_patched_equals_rebuilt(maintainer, graph)
        assert maintainer.rebuilds == 1

    def test_interleaved_reads_between_deltas(self):
        """A get_index call mid-stream rebuilds; the maintainer adopts it."""
        graph = build_graph(("er", 10, 12, 0.25))
        maintainer = IndexMaintainer(graph)
        graph.add_vertex("mid", "B")
        interloper = get_index(graph)  # rebuilds + caches behind our back
        adopted = maintainer.index()
        assert adopted is interloper
        assert maintainer.rebuilds == 0
        # And patching continues from the adopted snapshot.
        anchor = graph.vertices()[0]
        target = "mid" if anchor != "mid" else graph.vertices()[1]
        graph.add_edge(anchor, target)
        patched = assert_patched_equals_rebuilt(maintainer, graph)
        assert patched is adopted
        assert maintainer.patches_applied == 1

    def test_detached_maintainer_goes_stale_then_rebuilds(self):
        graph = build_graph(("er", 11, 12, 0.25))
        maintainer = IndexMaintainer(graph)
        assert maintainer.attached
        maintainer.detach()
        assert not maintainer.attached
        graph.add_vertex("unseen", "C")
        assert_patched_equals_rebuilt(maintainer, graph)
        assert maintainer.rebuilds == 1
        maintainer.detach()  # second detach is a no-op

    def test_noop_refresh_clears_nothing_and_patches_nothing(self):
        graph = build_graph(("er", 12, 12, 0.25))
        maintainer = IndexMaintainer(graph)
        first = maintainer.index()
        second = maintainer.index()
        assert first is second
        assert maintainer.patches_applied == 0
        assert maintainer.rebuilds == 0


class TestRebuildCoalescing:
    def test_removal_burst_coalesces_into_one_rebuild(self):
        graph = build_graph(("er", 13, 14, 0.4))
        maintainer = IndexMaintainer(graph)
        removed = 0
        for u, v in list(graph.edges())[:10]:
            graph.remove_edge(u, v)
            removed += 1
            assert maintainer.rebuild_pending
            assert not maintainer._buffer  # O(1) state during the burst
        assert maintainer.deltas_coalesced == removed
        assert_patched_equals_rebuilt(maintainer, graph)
        assert maintainer.rebuilds == 1  # one deferred rebuild, not ten
        assert not maintainer.rebuild_pending

    def test_pending_rebuild_absorbs_interleaved_insertions(self):
        graph = build_graph(("er", 14, 12, 0.3))
        maintainer = IndexMaintainer(graph)
        graph.add_vertex("pre", "A")  # buffered insertion...
        u, v = graph.edges()[0]
        graph.remove_edge(u, v)  # ...superseded by the pending rebuild
        graph.add_vertex("post", "B")  # absorbed, not buffered
        graph.add_edge("pre", "post")
        assert not maintainer._buffer
        assert maintainer.deltas_coalesced == 4  # pre + removal + post + edge
        assert_patched_equals_rebuilt(maintainer, graph)
        assert maintainer.rebuilds == 1

    def test_patching_resumes_after_coalesced_rebuild(self):
        graph = build_graph(("er", 15, 12, 0.3))
        maintainer = IndexMaintainer(graph)
        for u, v in list(graph.edges())[:5]:
            graph.remove_edge(u, v)
        assert_patched_equals_rebuilt(maintainer, graph)
        grow_randomly(graph, random.Random(9), steps=6, alphabet="ABC", tag="c")
        assert_patched_equals_rebuilt(maintainer, graph)
        assert maintainer.rebuilds == 1
        assert maintainer.patches_applied == 6

    def test_adoption_clears_pending_rebuild(self):
        graph = build_graph(("er", 16, 12, 0.3))
        maintainer = IndexMaintainer(graph)
        u, v = graph.edges()[0]
        graph.remove_edge(u, v)
        assert maintainer.rebuild_pending
        interloper = get_index(graph)  # someone else pays for the rebuild
        adopted = maintainer.index()
        assert adopted is interloper
        assert maintainer.rebuilds == 0
        assert not maintainer.rebuild_pending
