"""Randomized equivalence: delta-patched GraphIndex == rebuilt-from-scratch.

The delta layer (repro.index.delta) patches a cached GraphIndex in
O(delta) per update — insertions *and* removals — instead of rebuilding
it.  A patched index must be *structurally identical* to one rebuilt
from scratch — same inverted lists in the same canonical order, same
label-pair edge lists, same degree/neighbor-label signatures, same
version — after every batch of a randomized update sequence, mixed
insert/delete churn included.  Observation gaps, detached observers, and
bursts past the patch limit must fall back to a (single) rebuild and
still land on the identical structure.  Style and scope mirror
``tests/test_index_equivalence.py``.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.datasets.synthetic import (
    preferential_attachment_graph,
    random_labeled_graph,
)
from repro.graph.builders import path_pattern
from repro.graph.labeled_graph import LabeledGraph
from repro.index import (
    EdgeAdded,
    EdgeRemoved,
    GraphIndex,
    IndexMaintainer,
    VertexAdded,
    VertexRemoved,
    get_index,
)
from repro.isomorphism.matcher import find_occurrences


def index_structure(index: GraphIndex, graph):
    """Every observable component of the index, via its public API."""
    pairs = index.distinct_edge_label_pairs()
    alphabet = graph.label_alphabet()
    return {
        "version": index.version,
        "inverted": {label: index.vertices_with_label(label) for label in alphabet},
        "histogram": dict(index.label_histogram()),
        "label_pairs": set(index.adjacent_label_pairs()),
        "pair_edges": {pair: index.edges_with_labels(*pair) for pair in pairs},
        "degrees": {vertex: index.degree_of(vertex) for vertex in graph.vertices()},
        "signatures": {
            vertex: dict(index.signature_of(vertex)) for vertex in graph.vertices()
        },
        "neighbors": {
            (vertex, label): index.neighbors_with_label(vertex, label)
            for vertex in graph.vertices()
            for label in alphabet
        },
    }


def assert_patched_equals_rebuilt(maintainer: IndexMaintainer, graph):
    patched = maintainer.index()
    rebuilt = GraphIndex.build(graph)
    assert index_structure(patched, graph) == index_structure(rebuilt, graph)
    return patched


def grow_randomly(graph, rng: random.Random, steps: int, alphabet, tag: str):
    """Apply ``steps`` random insertions (vertices and edges) to ``graph``."""
    added = 0
    serial = 0
    while added < steps:
        if rng.random() < 0.3:
            graph.add_vertex(f"{tag}-{serial}", rng.choice(alphabet))
            serial += 1
            added += 1
        else:
            u, v = rng.sample(graph.vertices(), 2)
            if not graph.has_edge(u, v):
                graph.add_edge(u, v)
                added += 1


def churn_randomly(graph, rng: random.Random, steps: int, alphabet, tag: str):
    """Apply ``steps`` random mixed mutations: inserts *and* deletes."""
    applied = 0
    serial = 0
    while applied < steps:
        roll = rng.random()
        if roll < 0.25:
            graph.add_vertex(f"{tag}-{serial}", rng.choice(alphabet))
            serial += 1
            applied += 1
        elif roll < 0.5 and graph.num_edges > 2:
            graph.remove_edge(*rng.choice(graph.edges()))
            applied += 1
        elif roll < 0.6 and graph.num_vertices > 4:
            # remove_vertex cascades: EdgeRemoved deltas then VertexRemoved.
            graph.remove_vertex(rng.choice(graph.vertices()))
            applied += 1
        else:
            u, v = rng.sample(graph.vertices(), 2)
            if not graph.has_edge(u, v):
                graph.add_edge(u, v)
                applied += 1


#: Randomized update-sequence scenarios: (generator-kind, seed, size, knob).
SEQUENCE_SPECS = (
    [("er", seed, 12, 0.25) for seed in range(8)]
    + [("er", seed, 18, 0.15) for seed in range(8, 14)]
    + [("ba", seed, 20, 2) for seed in range(14, 20)]
)


def build_graph(spec):
    kind, seed, size, knob = spec
    if kind == "er":
        alphabet = ("A", "B", "C") if seed % 2 else ("A", "B", "C", "D")
        return random_labeled_graph(size, knob, alphabet=alphabet, seed=seed)
    return preferential_attachment_graph(
        size, knob, alphabet=("A", "B", "C", "D"), seed=seed, label_skew=0.3
    )


class TestRandomizedPatchEquivalence:
    @pytest.mark.parametrize(
        "spec", SEQUENCE_SPECS, ids=lambda spec: f"{spec[0]}-s{spec[1]}"
    )
    def test_patched_index_identical_after_every_batch(self, spec):
        graph = build_graph(spec)
        rng = random.Random(spec[1] * 101 + 7)
        maintainer = IndexMaintainer(graph)
        for batch in range(5):
            grow_randomly(graph, rng, steps=6, alphabet="ABCD", tag=f"b{batch}")
            assert_patched_equals_rebuilt(maintainer, graph)
        assert maintainer.rebuilds == 0
        assert maintainer.patches_applied >= 5

    @pytest.mark.parametrize(
        "spec", SEQUENCE_SPECS, ids=lambda spec: f"{spec[0]}-s{spec[1]}"
    )
    def test_patched_index_identical_under_mixed_churn(self, spec):
        """Insertions and deletions interleave; every batch still patches."""
        graph = build_graph(spec)
        rng = random.Random(spec[1] * 211 + 13)
        maintainer = IndexMaintainer(graph)
        for batch in range(5):
            churn_randomly(graph, rng, steps=6, alphabet="ABCD", tag=f"c{batch}")
            assert_patched_equals_rebuilt(maintainer, graph)
        assert maintainer.rebuilds == 0
        assert maintainer.patches_applied >= 5

    def test_patched_index_is_adopted_by_get_index(self):
        graph = build_graph(("er", 1, 12, 0.25))
        maintainer = IndexMaintainer(graph)
        graph.add_vertex("late", "A")
        patched = maintainer.index()
        assert get_index(graph) is patched

    def test_matcher_results_through_patched_index(self):
        graph = build_graph(("er", 2, 14, 0.3))
        maintainer = IndexMaintainer(graph)
        rng = random.Random(33)
        pattern = path_pattern(["A", "B", "A"])
        for batch in range(4):
            grow_randomly(graph, rng, steps=5, alphabet="ABC", tag=f"m{batch}")
            maintainer.index()  # patch + re-cache; matching uses it below
            assert find_occurrences(pattern, graph) == find_occurrences(
                pattern, graph, index=False
            )
        assert maintainer.rebuilds == 0


class TestDeltaPublication:
    def test_one_typed_delta_per_mutation(self):
        graph = build_graph(("er", 4, 10, 0.2))
        received = []
        graph.subscribe(received.append)
        before = graph.mutation_version()
        graph.add_vertex("x", "A")
        graph.add_vertex("y", "B")
        graph.add_edge("x", "y")
        graph.remove_edge("x", "y")
        graph.remove_vertex("x")
        kinds = [type(delta) for delta in received]
        expected = [VertexAdded, VertexAdded, EdgeAdded, EdgeRemoved, VertexRemoved]
        assert kinds == expected
        assert [delta.version for delta in received] == list(
            range(before + 1, before + 6)
        )
        edge_added = received[2]
        assert {edge_added.label_u, edge_added.label_v} == {"A", "B"}

    def test_idempotent_mutations_publish_nothing(self):
        graph = build_graph(("er", 5, 10, 0.2))
        graph.add_vertex("x", "A")
        graph.add_vertex("y", "B")
        graph.add_edge("x", "y")
        received = []
        graph.subscribe(received.append)
        graph.add_vertex("x", "A")  # re-add, same label
        graph.add_edge("x", "y")  # existing edge
        assert received == []

    def test_unsubscribe_and_has_observers(self):
        graph = build_graph(("er", 6, 10, 0.2))
        received = []
        token = graph.subscribe(received.append)
        assert graph.has_observers()
        graph.unsubscribe(token)
        graph.unsubscribe(token)  # second detach is a no-op
        assert not graph.has_observers()
        graph.add_vertex("quiet", "A")
        assert received == []

    def test_observers_dropped_from_pickles(self):
        graph = build_graph(("er", 7, 10, 0.2))
        graph.subscribe(lambda delta: None)
        clone = pickle.loads(pickle.dumps(graph))
        assert not clone.has_observers()
        assert clone == graph


class TestRemovalPatching:
    def test_edge_removal_patches_in_place(self):
        graph = build_graph(("er", 8, 12, 0.3))
        maintainer = IndexMaintainer(graph)
        grow_randomly(graph, random.Random(1), steps=4, alphabet="ABC", tag="r")
        u, v = graph.edges()[0]
        graph.remove_edge(u, v)
        assert_patched_equals_rebuilt(maintainer, graph)
        assert maintainer.rebuilds == 0
        assert maintainer.patches_applied == 5  # 4 insertions + 1 removal

    def test_vertex_removal_patches_with_cascaded_edges(self):
        graph = build_graph(("er", 9, 12, 0.3))
        maintainer = IndexMaintainer(graph)
        graph.add_vertex("gone", "A")
        victim = graph.vertices()[0]
        degree = graph.degree(victim)
        graph.remove_vertex(victim)  # EdgeRemoved x degree, then VertexRemoved
        assert_patched_equals_rebuilt(maintainer, graph)
        assert maintainer.rebuilds == 0
        assert maintainer.patches_applied == degree + 2
        # Maintenance keeps patching afterwards.
        grow_randomly(graph, random.Random(2), steps=4, alphabet="ABC", tag="after")
        assert_patched_equals_rebuilt(maintainer, graph)
        assert maintainer.rebuilds == 0

    def test_label_and_pair_state_shrinks_like_a_rebuild(self):
        """Emptied inverted lists / pair lists vanish, as a rebuild never has them."""
        graph = LabeledGraph([(1, "A"), (2, "B"), (3, "Z")], [(1, 2), (2, 3)])
        maintainer = IndexMaintainer(graph)
        graph.remove_edge(2, 3)
        graph.remove_vertex(3)  # last Z vertex: the label leaves the alphabet
        patched = assert_patched_equals_rebuilt(maintainer, graph)
        assert maintainer.rebuilds == 0
        assert patched.label_histogram() == {"A": 1, "B": 1}
        assert patched.vertices_with_label("Z") == ()
        assert not patched.has_label_pair("B", "Z")
        assert patched.edges_with_labels("B", "Z") == ()

    def test_remove_then_reinsert_round_trips(self):
        graph = build_graph(("er", 17, 12, 0.3))
        maintainer = IndexMaintainer(graph)
        baseline = index_structure(maintainer.index(), graph)
        u, v = graph.edges()[0]
        graph.remove_edge(u, v)
        assert_patched_equals_rebuilt(maintainer, graph)
        graph.add_edge(u, v)
        restored = assert_patched_equals_rebuilt(maintainer, graph)
        roundtrip = dict(index_structure(restored, graph), version=baseline["version"])
        assert roundtrip == baseline
        assert maintainer.rebuilds == 0


class TestRebuildFallbacks:
    def test_interleaved_reads_between_deltas(self):
        """A get_index call mid-stream rebuilds; the maintainer adopts it."""
        graph = build_graph(("er", 10, 12, 0.25))
        maintainer = IndexMaintainer(graph)
        graph.add_vertex("mid", "B")
        interloper = get_index(graph)  # rebuilds + caches behind our back
        adopted = maintainer.index()
        assert adopted is interloper
        assert maintainer.rebuilds == 0
        # And patching continues from the adopted snapshot.
        anchor = graph.vertices()[0]
        target = "mid" if anchor != "mid" else graph.vertices()[1]
        graph.add_edge(anchor, target)
        patched = assert_patched_equals_rebuilt(maintainer, graph)
        assert patched is adopted
        assert maintainer.patches_applied == 1

    def test_detached_maintainer_goes_stale_then_rebuilds(self):
        graph = build_graph(("er", 11, 12, 0.25))
        maintainer = IndexMaintainer(graph)
        assert maintainer.attached
        maintainer.detach()
        assert not maintainer.attached
        graph.add_vertex("unseen", "C")
        assert_patched_equals_rebuilt(maintainer, graph)
        assert maintainer.rebuilds == 1
        maintainer.detach()  # second detach is a no-op

    def test_noop_refresh_clears_nothing_and_patches_nothing(self):
        graph = build_graph(("er", 12, 12, 0.25))
        maintainer = IndexMaintainer(graph)
        first = maintainer.index()
        second = maintainer.index()
        assert first is second
        assert maintainer.patches_applied == 0
        assert maintainer.rebuilds == 0


class TestPatchLimitCoalescing:
    def test_oversized_burst_coalesces_into_one_rebuild(self):
        graph = build_graph(("er", 13, 14, 0.4))
        maintainer = IndexMaintainer(graph, patch_limit=4)
        mutated = 0
        for u, v in list(graph.edges())[:10]:
            graph.remove_edge(u, v)
            mutated += 1
            if mutated > 4:
                assert maintainer.rebuild_pending
                assert not maintainer._buffer  # O(1) state past the limit
        assert maintainer.deltas_coalesced == mutated
        assert_patched_equals_rebuilt(maintainer, graph)
        assert maintainer.rebuilds == 1  # one deferred rebuild, not ten
        assert not maintainer.rebuild_pending

    def test_burst_within_limit_patches(self):
        graph = build_graph(("er", 14, 12, 0.3))
        maintainer = IndexMaintainer(graph, patch_limit=4)
        graph.add_vertex("pre", "A")
        u, v = graph.edges()[0]
        graph.remove_edge(u, v)
        graph.add_vertex("post", "B")
        graph.add_edge("pre", "post")
        assert not maintainer.rebuild_pending
        assert_patched_equals_rebuilt(maintainer, graph)
        assert maintainer.rebuilds == 0
        assert maintainer.patches_applied == 4

    def test_patching_resumes_after_coalesced_rebuild(self):
        graph = build_graph(("er", 15, 12, 0.3))
        maintainer = IndexMaintainer(graph, patch_limit=3)
        for u, v in list(graph.edges())[:5]:
            graph.remove_edge(u, v)
        assert_patched_equals_rebuilt(maintainer, graph)
        grow_randomly(graph, random.Random(9), steps=3, alphabet="ABC", tag="c")
        assert_patched_equals_rebuilt(maintainer, graph)
        assert maintainer.rebuilds == 1
        assert maintainer.patches_applied == 3
        assert maintainer.deltas_coalesced == 5

    def test_adoption_clears_pending_rebuild(self):
        graph = build_graph(("er", 16, 12, 0.3))
        maintainer = IndexMaintainer(graph, patch_limit=1)
        u, v = graph.edges()[0]
        graph.remove_edge(u, v)
        w, x = graph.edges()[0]
        graph.remove_edge(w, x)
        assert maintainer.rebuild_pending
        interloper = get_index(graph)  # someone else pays for the rebuild
        adopted = maintainer.index()
        assert adopted is interloper
        assert maintainer.rebuilds == 0
        assert not maintainer.rebuild_pending

    def test_default_limit_scales_with_graph_size(self):
        graph = build_graph(("er", 18, 12, 0.3))
        maintainer = IndexMaintainer(graph)
        # Well under max(64, |V|+|E|): a long-ish run still patches.
        grow_randomly(graph, random.Random(4), steps=30, alphabet="ABC", tag="d")
        assert_patched_equals_rebuilt(maintainer, graph)
        assert maintainer.rebuilds == 0
        assert maintainer.patches_applied == 30

    def test_rejects_non_positive_patch_limit(self):
        graph = build_graph(("er", 19, 10, 0.3))
        with pytest.raises(ValueError):
            IndexMaintainer(graph, patch_limit=0)


class TestMaintainerRemovalStats:
    """patches_applied vs rebuilds bookkeeping across deletion-shaped streams."""

    def test_pure_deletion_stream_is_all_patches(self):
        graph = build_graph(("er", 20, 14, 0.4))
        maintainer = IndexMaintainer(graph)
        served = 0
        for u, v in list(graph.edges())[:6]:
            graph.remove_edge(u, v)
            assert_patched_equals_rebuilt(maintainer, graph)
            served += 1
        assert maintainer.patches_applied == served
        assert maintainer.rebuilds == 0
        assert maintainer.deltas_coalesced == 0

    def test_mixed_stream_is_all_patches(self):
        graph = build_graph(("er", 21, 14, 0.3))
        maintainer = IndexMaintainer(graph)
        rng = random.Random(31)
        for batch in range(4):
            churn_randomly(graph, rng, steps=5, alphabet="ABC", tag=f"mx{batch}")
            assert_patched_equals_rebuilt(maintainer, graph)
        assert maintainer.rebuilds == 0
        assert maintainer.patches_applied >= 20  # cascades may add more

    def test_gap_then_delete_rebuilds_then_patches(self):
        graph = build_graph(("er", 22, 14, 0.3))
        unobserved = IndexMaintainer(graph)
        unobserved.detach()
        graph.add_vertex("gap", "A")  # mutation the maintainer never saw
        assert_patched_equals_rebuilt(unobserved, graph)
        assert (unobserved.patches_applied, unobserved.rebuilds) == (0, 1)
        # A maintainer observing from here patches the deletions that follow.
        maintainer = IndexMaintainer(graph)
        for u, v in list(graph.edges())[:4]:
            graph.remove_edge(u, v)
        assert_patched_equals_rebuilt(maintainer, graph)
        assert (maintainer.patches_applied, maintainer.rebuilds) == (4, 0)
        # The detached one keeps rebuilding: the gap never heals.  (Drop
        # the cached index first or it would adopt the patcher's work.)
        graph.remove_edge(*graph.edges()[0])
        graph.cache_index(None)
        assert_patched_equals_rebuilt(unobserved, graph)
        assert (unobserved.patches_applied, unobserved.rebuilds) == (0, 2)
