"""Tests for the error hierarchy and the CLI chain command."""

import pytest

from repro.cli import main
from repro.errors import (
    BudgetExceededError,
    DatasetError,
    EdgeNotFoundError,
    GraphError,
    HypergraphError,
    InfeasibleLPError,
    LPError,
    MeasureError,
    MiningError,
    PatternError,
    ReproError,
    SelfLoopError,
    UnboundedLPError,
    VertexNotFoundError,
)
from repro.graph.builders import path_graph
from repro.graph.io import save_graph


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error_class",
        [
            GraphError,
            HypergraphError,
            PatternError,
            MeasureError,
            LPError,
            MiningError,
            DatasetError,
        ],
    )
    def test_all_derive_from_repro_error(self, error_class):
        assert issubclass(error_class, ReproError)

    def test_specialized_graph_errors(self):
        assert issubclass(VertexNotFoundError, GraphError)
        assert issubclass(EdgeNotFoundError, GraphError)
        assert issubclass(SelfLoopError, GraphError)

    def test_specialized_lp_errors(self):
        assert issubclass(InfeasibleLPError, LPError)
        assert issubclass(UnboundedLPError, LPError)

    def test_budget_error_carries_budget(self):
        error = BudgetExceededError(123)
        assert error.budget == 123
        assert "123" in str(error)

    def test_vertex_error_carries_vertex(self):
        error = VertexNotFoundError("ghost")
        assert error.vertex == "ghost"

    def test_edge_error_carries_edge(self):
        error = EdgeNotFoundError(1, 2)
        assert error.edge == (1, 2)

    def test_catching_base_class(self):
        from repro.graph.labeled_graph import LabeledGraph

        g = LabeledGraph(vertices=[(1, "a")])
        with pytest.raises(ReproError):
            g.add_edge(1, 1)


class TestChainCommand:
    def test_chain_holds_and_prints(self, tmp_path, capsys):
        graph_path = tmp_path / "g.lg"
        pattern_path = tmp_path / "p.lg"
        save_graph(path_graph(["a", "b", "a", "b"]), graph_path)
        save_graph(path_graph(["a", "b"]), pattern_path)
        assert main(["chain", str(graph_path), str(pattern_path)]) == 0
        out = capsys.readouterr().out
        assert "all chain relations hold" in out
        assert "mis" in out and "mni" in out


class TestOverlapCommand:
    def test_overlap_classification_prints(self, tmp_path, capsys):
        from repro.datasets.paper_figures import load_figure
        from repro.graph.io import save_graph, save_pattern

        fig = load_figure("fig9")
        graph_path = tmp_path / "g.lg"
        pattern_path = tmp_path / "p.lg"
        save_graph(fig.data_graph, graph_path)
        save_pattern(fig.pattern, pattern_path)
        assert main(["overlap", str(graph_path), str(pattern_path)]) == 0
        out = capsys.readouterr().out
        assert "harmful" in out and "structural" in out
        assert "MIS" in out
