"""Tests for the graph service: MVCC snapshots, result cache, protocol."""

import json
import threading

import pytest

from repro.errors import ServiceError
from repro.graph.builders import path_graph
from repro.mining.dynamic import StreamApplier
from repro.mining.miner import mine_frequent_patterns
from repro.mining.spec import MiningSpec
from repro.service import (
    GraphService,
    ResultCache,
    SnapshotRegistry,
    handle_request,
    parse_updates,
    result_bytes,
)

SPEC = MiningSpec(min_support=2)

UPDATES = [
    ("v", 6, "b"),
    ("e", 5, 6),
    ("v", 7, "a"),
    ("e", 6, 7),
    ("de", 1, 2),
    ("e", 1, 2),
]


def base_graph():
    return path_graph(["a", "b", "a", "b", "a"])


def graph_after(n_updates):
    """The base graph with the first ``n_updates`` applied directly."""
    graph = base_graph()
    StreamApplier(graph, window=None).apply_batch(UPDATES[:n_updates])
    return graph


class TestSnapshotRegistry:
    def test_pin_tip_then_advance_preserves_frozen_view(self):
        graph = base_graph()
        registry = SnapshotRegistry(graph)
        snap = registry.pin()
        edges_before = snap.graph.num_edges
        graph.add_vertex(6, "b")
        graph.add_edge(5, 6)
        registry.publish()
        assert registry.tip > snap.version
        assert snap.graph.num_edges == edges_before  # frozen, not live
        with registry.pin() as tip_snap:
            assert tip_snap.graph.num_edges == edges_before + 1
        snap.release()
        registry.close()

    def test_unpinned_old_version_is_garbage_collected(self):
        graph = base_graph()
        registry = SnapshotRegistry(graph)
        old_tip = registry.tip
        graph.add_vertex(6, "b")
        registry.publish()
        with pytest.raises(ServiceError, match="not materialized"):
            registry.pin(old_tip)
        registry.close()

    def test_refcount_gc(self):
        graph = base_graph()
        registry = SnapshotRegistry(graph)
        evicted = []
        registry.on_evict(evicted.append)
        first = registry.pin()
        second = registry.pin()
        version = first.version
        graph.add_vertex(6, "b")
        registry.publish()
        first.release()
        assert evicted == []  # still pinned by `second`
        assert registry.pin(version).graph is second.graph  # re-pinnable
        registry._release(version)
        second.release()
        assert evicted == [version]
        with pytest.raises(ServiceError, match="not materialized"):
            registry.pin(version)
        registry.close()

    def test_double_release_raises(self):
        registry = SnapshotRegistry(base_graph())
        snap = registry.pin()
        snap.release()
        with pytest.raises(ServiceError, match="already released"):
            snap.release()
        registry.close()

    def test_pinned_snapshot_graph_is_immutable(self):
        graph = base_graph()
        registry = SnapshotRegistry(graph)
        with registry.pin() as snap:
            with pytest.raises(ServiceError, match="immutable"):
                snap.graph.add_vertex(99, "z")
        registry.close()

    def test_publish_replays_deletions(self):
        graph = base_graph()
        registry = SnapshotRegistry(graph)
        graph.remove_edge(1, 2)
        graph.add_vertex(6, "b")
        graph.add_edge(5, 6)
        registry.publish()
        with registry.pin() as snap:
            assert not snap.graph.has_edge(1, 2)
            assert snap.graph.has_edge(5, 6)
            assert snap.graph.num_edges == graph.num_edges
        registry.close()

    def test_close_detaches_observer(self):
        graph = base_graph()
        registry = SnapshotRegistry(graph)
        registry.close()
        assert not graph.has_observers()
        registry.close()  # idempotent


class TestResultCache:
    def test_hit_miss_accounting(self):
        cache = ResultCache()
        assert cache.get(1, "k") is None
        cache.put(1, "k", "value")
        assert cache.get(1, "k") == "value"
        assert cache.stats() == {
            "hits": 1,
            "misses": 1,
            "evictions": 0,
            "entries": 1,
        }

    def test_peek_does_not_count(self):
        cache = ResultCache()
        cache.put(1, "k", "value")
        assert cache.peek(1, "k") == "value"
        assert cache.peek(1, "other") is None
        assert cache.stats()["hits"] == 0
        assert cache.stats()["misses"] == 0

    def test_lru_eviction(self):
        cache = ResultCache(max_entries=2)
        cache.put(1, "a", "A")
        cache.put(1, "b", "B")
        cache.get(1, "a")  # refresh a: b is now the LRU entry
        cache.put(1, "c", "C")
        assert cache.peek(1, "b") is None
        assert cache.peek(1, "a") == "A"
        assert cache.stats()["evictions"] == 1

    def test_drop_version_and_retain(self):
        cache = ResultCache()
        cache.put(1, "a", "A")
        cache.put(2, "a", "B")
        cache.put(3, "a", "C")
        cache.drop_version(2)
        assert cache.peek(2, "a") is None
        cache.retain(lambda v: v == 3)
        assert cache.peek(1, "a") is None
        assert cache.peek(3, "a") == "C"
        assert len(cache) == 1


class TestGraphService:
    def test_updates_advance_versions_and_counts(self):
        with GraphService(base_graph()) as service:
            v0 = service.version
            info = service.apply_updates(UPDATES[:2])
            assert info.version > v0
            assert info.applied == 2
            assert info.num_vertices == 6
            assert info.num_edges == 5

    def test_mine_matches_one_shot_at_each_version(self):
        with GraphService(base_graph()) as service:
            for n in (2, 4, 6):
                service.apply_updates(UPDATES[n - 2 : n])
                served = service.mine(SPEC)
                direct = mine_frequent_patterns(graph_after(n), spec=SPEC)
                assert result_bytes(served) == result_bytes(direct)

    def test_pinned_reader_unaffected_by_writer_advance(self):
        with GraphService(base_graph()) as service:
            service.apply_updates(UPDATES[:2])
            snap = service.pin()
            service.apply_updates(UPDATES[2:])  # writer moves on
            served = service.mine(SPEC, snapshot=snap)
            direct = mine_frequent_patterns(graph_after(2), spec=SPEC)
            assert result_bytes(served) == result_bytes(direct)
            snap.release()

    def test_concurrent_readers_pin_older_snapshots(self):
        # The acceptance scenario: the writer advances through the stream
        # while threaded readers hold snapshots of *older* versions; every
        # reader's result must be byte-identical to a one-shot mine of the
        # graph at its pinned version.
        expected = {
            n: result_bytes(mine_frequent_patterns(graph_after(n), spec=SPEC))
            for n in (0, 2, 4, 6)
        }
        with GraphService(base_graph()) as service:
            snaps = {0: service.pin()}
            for n in (2, 4, 6):
                service.apply_updates(UPDATES[n - 2 : n])
                snaps[n] = service.pin()

            results = {}
            errors = []

            def read(n, snap):
                try:
                    results[n] = result_bytes(service.mine(SPEC, snapshot=snap))
                except BaseException as exc:  # pragma: no cover - fail loudly
                    errors.append(exc)

            threads = [
                threading.Thread(target=read, args=(n, snap))
                for n, snap in snaps.items()
            ]
            for t in threads:
                t.start()
            # Keep writing while the readers mine their pinned versions.
            service.apply_updates([("v", 8, "b"), ("e", 7, 8)])
            for t in threads:
                t.join()
            assert errors == []
            assert results == expected
            for snap in snaps.values():
                snap.release()

    def test_repeated_requests_hit_the_cache(self):
        with GraphService(base_graph()) as service:
            service.mine(SPEC)
            before = service.stats()
            service.mine(SPEC)
            service.mine(SPEC)
            after = service.stats()
            assert after["hits"] == before["hits"] + 2
            assert after["misses"] == before["misses"]

    def test_version_advance_invalidates_only_unpinned_versions(self):
        with GraphService(base_graph()) as service:
            service.mine(SPEC)  # cached at v0
            v0 = service.version
            pinned = service.pin()  # keep v0 alive
            service.apply_updates(UPDATES[:2])
            # v0 is pinned: its entry must survive the advance.
            assert service.cache.peek(v0, SPEC.cache_key()) is not None
            service.mine(SPEC, snapshot=pinned)  # still a hit
            assert service.stats()["hits"] >= 1
            pinned.release()
            # Last pin gone and v0 is no longer the tip: entry evicted.
            assert service.cache.peek(v0, SPEC.cache_key()) is None

    def test_maintained_service_precaches_each_version(self):
        with GraphService(base_graph(), maintain=SPEC) as service:
            service.apply_updates(UPDATES[:2])
            stats_before = service.stats()
            result = service.mine()  # spec-less → the maintained spec
            assert service.stats()["hits"] == stats_before["hits"] + 1
            direct = mine_frequent_patterns(graph_after(2), spec=SPEC)
            assert result_bytes(result) == result_bytes(direct)

    def test_async_submit_tickets(self):
        with GraphService(base_graph()) as service:
            ticket = service.submit(SPEC)
            result = ticket.wait(timeout=120)
            assert ticket.done
            assert ticket.poll() is not None
            direct = mine_frequent_patterns(graph_after(0), spec=SPEC)
            assert result_bytes(result) == result_bytes(direct)

    def test_submit_after_stop_raises(self):
        service = GraphService(base_graph())
        service.stop()
        service.stop()  # idempotent
        with pytest.raises(ServiceError, match="stopped"):
            service.submit_updates([("v", 6, "b")])

    def test_stop_releases_graph_observers(self):
        graph = base_graph()
        service = GraphService(graph, maintain=SPEC)
        service.apply_updates(UPDATES[:2])
        service.stop()
        assert not graph.has_observers()

    def test_bad_update_fails_the_ticket_not_the_writer(self):
        with GraphService(base_graph()) as service:
            with pytest.raises(Exception):
                service.apply_updates([("e", 98, 99)])  # unknown endpoints
            # The writer thread survives and keeps serving.
            info = service.apply_updates(UPDATES[:2])
            assert info.applied == 2


class TestProtocol:
    def test_parse_updates_validates(self):
        assert parse_updates([["v", 6, "b"], ["de", 1, 2], ["dv", 3]]) == [
            ("v", 6, "b"),
            ("de", 1, 2),
            ("dv", 3),
        ]
        with pytest.raises(ServiceError, match="unknown update kind"):
            parse_updates([["x", 1]])
        with pytest.raises(ServiceError, match="must have"):
            parse_updates([["e", 1]])
        with pytest.raises(ServiceError, match="array"):
            parse_updates("e 1 2")

    def request(self, service, payload):
        response, shutdown = handle_request(service, json.dumps(payload))
        return response, shutdown

    def test_full_conversation(self):
        with GraphService(base_graph(), maintain=SPEC) as service:
            ping, _ = self.request(service, {"op": "ping", "id": 1})
            assert ping == {"ok": True, "op": "ping", "v": 1, "id": 1}

            version, _ = self.request(service, {"op": "version"})
            assert version["ok"] and version["num_vertices"] == 5

            update, _ = self.request(
                service, {"op": "update", "updates": [["v", 6, "b"], ["e", 5, 6]]}
            )
            assert update["ok"] and update["applied"] == 2

            mined, _ = self.request(service, {"op": "mine"})
            assert mined["ok"]
            assert mined["cached"] is True  # writer pre-cached this version
            direct = mine_frequent_patterns(graph_after(2), spec=SPEC)
            assert mined["result"] == json.loads(result_bytes(direct))

            stats, _ = self.request(service, {"op": "stats"})
            assert stats["ok"] and stats["maintained"] is True

            bye, shutdown = self.request(service, {"op": "shutdown", "id": 9})
            assert shutdown and bye["id"] == 9

    def test_mine_with_inline_spec_fields(self):
        with GraphService(base_graph()) as service:
            first, _ = self.request(service, {"op": "mine", "spec": {"min_support": 2}})
            assert first["ok"] and first["cached"] is False
            again, _ = self.request(service, {"op": "mine", "spec": {"min_support": 2}})
            assert again["cached"] is True
            assert again["result"] == first["result"]

    def test_error_shapes(self):
        with GraphService(base_graph()) as service:
            bad_json, _ = self.request_raw(service, "{not json")
            assert bad_json["ok"] is False and bad_json["type"] == "ServiceError"

            unknown, _ = self.request(service, {"op": "teleport", "id": 3})
            assert unknown["ok"] is False and unknown["id"] == 3

            bad_spec, _ = self.request(
                service, {"op": "mine", "spec": {"min_support": -1}}
            )
            assert bad_spec["ok"] is False
            assert bad_spec["type"] == "MiningError"

            bad_version, _ = self.request(service, {"op": "mine", "version": 10**9})
            assert bad_version["ok"] is False
            assert "not materialized" in bad_version["error"]

    def request_raw(self, service, line):
        return handle_request(service, line)
