"""Unit tests for the MCP baseline and the LP relaxations (Section 4.3)."""

import pytest

from repro.datasets.paper_figures import load_figure
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.construction import HypergraphBundle
from repro.hypergraph.overlap import OverlapGraph, instance_overlap_graph
from repro.measures.base import compute_support
from repro.measures.mcp import (
    greedy_clique_partition,
    mcp_support_of,
    minimum_clique_partition,
)
from repro.measures.mis import mis_support_of
from repro.measures.mvc import mvc_support_of
from repro.measures.mies import mies_support_of
from repro.measures.relaxations import (
    fractional_solutions,
    lp_mies_support_of,
    lp_mvc_support_of,
)


def path_overlap_graph() -> OverlapGraph:
    return OverlapGraph(
        nodes=[0, 1, 2, 3],
        adjacency={0: {1}, 1: {0, 2}, 2: {1, 3}, 3: {2}},
    )


class TestMCP:
    def test_p4_needs_two_cliques(self):
        assert mcp_support_of(path_overlap_graph()) == 2

    def test_complete_graph_is_one_clique(self):
        nodes = [0, 1, 2]
        adjacency = {n: set(nodes) - {n} for n in nodes}
        assert mcp_support_of(OverlapGraph(nodes=nodes, adjacency=adjacency)) == 1

    def test_edgeless_graph_needs_n(self):
        graph = OverlapGraph(nodes=[0, 1, 2], adjacency={0: set(), 1: set(), 2: set()})
        assert mcp_support_of(graph) == 3

    def test_empty_graph(self):
        assert mcp_support_of(OverlapGraph(nodes=[], adjacency={})) == 0

    def test_partition_is_valid(self):
        graph = path_overlap_graph()
        partition = minimum_clique_partition(graph)
        covered = sorted(v for part in partition for v in part)
        assert covered == graph.nodes
        for part in partition:
            members = sorted(part)
            for i, u in enumerate(members):
                for v in members[i + 1:]:
                    assert graph.has_edge(u, v)

    def test_greedy_partition_valid_and_not_smaller(self):
        graph = path_overlap_graph()
        greedy = greedy_clique_partition(graph)
        exact = minimum_clique_partition(graph)
        assert len(greedy) >= len(exact)

    def test_mcp_upper_bounds_mis(self):
        for figure_id in ("fig2", "fig6", "fig8"):
            fig = load_figure(figure_id)
            bundle = HypergraphBundle.build(fig.pattern, fig.data_graph)
            overlap = instance_overlap_graph(bundle.instances)
            assert mis_support_of(overlap) <= mcp_support_of(overlap)

    def test_registry_entry(self, fig6):
        assert compute_support("mcp", fig6.pattern, fig6.data_graph) >= 2.0


class TestRelaxations:
    def fig6_hypergraph(self):
        return Hypergraph.from_edge_sets(
            [[1, 5], [1, 6], [1, 7], [1, 8], [2, 8], [3, 8], [4, 8]]
        )

    def test_duality_equality(self):
        h = self.fig6_hypergraph()
        assert lp_mvc_support_of(h) == pytest.approx(lp_mies_support_of(h), abs=1e-6)

    def test_relaxation_sandwich(self):
        h = self.fig6_hypergraph()
        nu = lp_mvc_support_of(h)
        assert mies_support_of(h) <= nu + 1e-9
        assert nu <= mvc_support_of(h) + 1e-9

    def test_fractional_triangle_gap(self):
        # 2-uniform triangle: integral cover 2, fractional 1.5.
        h = Hypergraph.from_edge_sets([[1, 2], [2, 3], [1, 3]])
        assert mvc_support_of(h) == 2
        assert lp_mvc_support_of(h) == pytest.approx(1.5)
        assert mies_support_of(h) == 1

    def test_empty_hypergraph_relaxations(self):
        assert lp_mvc_support_of(Hypergraph()) == 0.0
        assert lp_mies_support_of(Hypergraph()) == 0.0

    def test_backends_agree(self):
        h = self.fig6_hypergraph()
        pytest.importorskip("scipy")
        assert lp_mvc_support_of(h, backend="scipy") == pytest.approx(
            lp_mvc_support_of(h, backend="simplex"), abs=1e-6
        )
        assert lp_mies_support_of(h, backend="scipy") == pytest.approx(
            lp_mies_support_of(h, backend="simplex"), abs=1e-6
        )

    def test_fractional_solutions_feasible(self):
        h = self.fig6_hypergraph()
        cover, packing = fractional_solutions(h)
        # Cover feasibility: every edge weight >= 1.
        for edge in h.edges():
            assert sum(cover[v] for v in edge.vertices) >= 1 - 1e-6
        # Packing feasibility: every vertex load <= 1.
        for vertex in h.vertices():
            load = sum(packing[e.label] for e in h.edges_containing(vertex))
            assert load <= 1 + 1e-6

    def test_registry_entries(self, fig6):
        nu_mvc = compute_support("lp_mvc", fig6.pattern, fig6.data_graph)
        nu_mies = compute_support("lp_mies", fig6.pattern, fig6.data_graph)
        assert nu_mvc == pytest.approx(nu_mies, abs=1e-6)
        assert nu_mvc == pytest.approx(2.0, abs=1e-6)
