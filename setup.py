"""Setuptools shim for offline / legacy editable installs.

All real packaging metadata lives in ``pyproject.toml`` (package
discovery under ``src/``, ``python_requires>=3.10``, and the ``repro`` /
``repro-graph`` console scripts); this file only keeps
``pip install -e .`` working in environments without PEP 660 support.
"""

from setuptools import setup

setup()
