"""Hierarchical tracing: nested spans, wall + CPU time, NDJSON export.

A *span* brackets one phase of work (``with trace.span("level",
level=3):``).  Spans nest per thread: the first span opened on a thread
mints a new trace id, children inherit it, and each completed span
records its parent — so one mining request becomes one tree
(``mine`` → ``seeds`` / ``level`` → ``evaluate`` / ``extend``).

Tracing is **off by default and a true no-op when off**: a single
module-level switch (:func:`set_enabled`) gates :func:`span`, which
returns one shared :data:`NULL_SPAN` whose enter/exit/``set`` do
nothing — no allocation, no clock reads, no lock.  That is the whole
disabled-mode cost, which is how the instrumented miner stays inside
the ≤2% ``bench_mining`` overhead budget (see the Observability section
of ``docs/architecture.md`` before adding span sites).

Completed spans land in a bounded in-process ring buffer keyed by trace
id (oldest whole traces evicted past :data:`TraceStore.max_traces`);
``repro serve`` echoes the trace id on mine responses and replays the
tree via the ``trace`` verb, and :func:`export_ndjson` writes spans one
JSON object per line for offline analysis (``repro mine --trace-out``).

Wall time is :func:`time.perf_counter`; CPU time is
:func:`time.thread_time` — per-thread on purpose, so a span that blocks
on the writer or a worker pipe shows wall >> cpu.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from functools import wraps
from typing import Callable, Dict, List, Optional

_enabled = False
_trace_ids = itertools.count(1)
_span_ids = itertools.count(1)
_tls = threading.local()


def enabled() -> bool:
    """True while span collection is on (the module-level switch)."""
    return _enabled


def set_enabled(on: bool) -> bool:
    """Flip the switch; returns the previous state."""
    global _enabled
    previous = _enabled
    _enabled = bool(on)
    return previous


def enable() -> None:
    set_enabled(True)


def disable() -> None:
    set_enabled(False)


def _stack() -> List["Span"]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = []
        _tls.stack = stack
    return stack


@dataclass
class SpanRecord:
    """One completed span (children are recorded before their parent)."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    start: float  # perf_counter at entry (process-relative, ordering only)
    wall: float  # seconds
    cpu: float  # thread CPU seconds
    attrs: Dict[str, object] = field(default_factory=dict)

    def payload(self) -> Dict[str, object]:
        """The JSON-ready shape NDJSON export and the trace verb ship."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "wall": self.wall,
            "cpu": self.cpu,
            "attrs": self.attrs,
        }


class _NullSpan:
    """The disabled-mode span: every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


#: The one shared instance :func:`span` returns while tracing is off.
NULL_SPAN = _NullSpan()


class Span:
    """A live (entered, not yet exited) span.  Use via :func:`span`."""

    __slots__ = ("name", "attrs", "trace_id", "span_id", "parent_id", "_t0", "_c0")

    def __init__(self, name: str, attrs: Dict[str, object]) -> None:
        self.name = name
        self.attrs = attrs
        self.trace_id: Optional[str] = None
        self.span_id: Optional[str] = None
        self.parent_id: Optional[str] = None

    def set(self, **attrs) -> "Span":
        """Attach attributes to the span (merged into any given at open)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        stack = _stack()
        if stack:
            parent = stack[-1]
            self.trace_id = parent.trace_id
            self.parent_id = parent.span_id
        else:
            self.trace_id = f"t{next(_trace_ids):06d}"
        self.span_id = f"s{next(_span_ids):06d}"
        stack.append(self)
        self._c0 = time.thread_time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall = time.perf_counter() - self._t0
        cpu = time.thread_time() - self._c0
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        _STORE.add(
            SpanRecord(
                trace_id=self.trace_id,  # type: ignore[arg-type]
                span_id=self.span_id,  # type: ignore[arg-type]
                parent_id=self.parent_id,
                name=self.name,
                start=self._t0,
                wall=wall,
                cpu=cpu,
                attrs=self.attrs,
            )
        )
        return False


def span(name: str, **attrs):
    """Open a span (context manager).  A shared no-op while disabled."""
    if not _enabled:
        return NULL_SPAN
    return Span(name, attrs)


def traced(name: Optional[str] = None) -> Callable:
    """Decorator form: wrap every call of the function in a span."""

    def decorate(func: Callable) -> Callable:
        span_name = name or func.__qualname__

        @wraps(func)
        def wrapper(*args, **kwargs):
            if not _enabled:
                return func(*args, **kwargs)
            with Span(span_name, {}):
                return func(*args, **kwargs)

        return wrapper

    return decorate


def current_trace_id() -> Optional[str]:
    """The trace id of the innermost open span on this thread, or None."""
    stack = getattr(_tls, "stack", None)
    if stack:
        return stack[-1].trace_id
    return None


class TraceStore:
    """Bounded retention of completed spans, grouped by trace id.

    Whole traces are the eviction unit: once more than ``max_traces``
    distinct trace ids are held, the oldest trace's spans go together.
    ``last_trace_id`` tracks the most recently *completed root* span —
    what ``repro mine --profile`` renders.
    """

    def __init__(self, max_traces: int = 128) -> None:
        self.max_traces = max(1, int(max_traces))
        self._lock = threading.Lock()
        self._traces: "OrderedDict[str, List[SpanRecord]]" = OrderedDict()
        self.last_trace_id: Optional[str] = None

    def add(self, record: SpanRecord) -> None:
        with self._lock:
            bucket = self._traces.get(record.trace_id)
            if bucket is None:
                bucket = []
                self._traces[record.trace_id] = bucket
                while len(self._traces) > self.max_traces:
                    self._traces.popitem(last=False)
            bucket.append(record)
            if record.parent_id is None:
                self.last_trace_id = record.trace_id

    def get(self, trace_id: Optional[str]) -> Optional[List[SpanRecord]]:
        if trace_id is None:
            return None
        with self._lock:
            bucket = self._traces.get(trace_id)
            return list(bucket) if bucket else None

    def trace_ids(self) -> List[str]:
        with self._lock:
            return list(self._traces)

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()
            self.last_trace_id = None


_STORE = TraceStore()


def get_trace(trace_id: Optional[str]) -> Optional[List[SpanRecord]]:
    """All retained spans of one trace (children precede parents)."""
    return _STORE.get(trace_id)


def last_trace_id() -> Optional[str]:
    """The id of the most recently completed root span, if retained."""
    return _STORE.last_trace_id


def clear_traces() -> None:
    """Drop every retained span (tests; never required in operation)."""
    _STORE.clear()


def export_ndjson(target, trace_id: Optional[str] = None) -> int:
    """Write retained spans as NDJSON; returns how many were written.

    ``target`` is a path or an open text file.  With ``trace_id`` only
    that trace is exported, otherwise every retained trace in retention
    order.  One JSON object per line, the :meth:`SpanRecord.payload`
    shape — round-trippable with ``json.loads`` per line.
    """
    if trace_id is not None:
        records = _STORE.get(trace_id) or []
    else:
        records = []
        for tid in _STORE.trace_ids():
            records.extend(_STORE.get(tid) or [])
    if hasattr(target, "write"):
        for record in records:
            target.write(json.dumps(record.payload(), sort_keys=True) + "\n")
        return len(records)
    with open(target, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record.payload(), sort_keys=True) + "\n")
    return len(records)
