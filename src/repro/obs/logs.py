"""The ``repro.*`` logger hierarchy over stdlib :mod:`logging`.

Library code logs through :func:`get_logger` and stays silent by
default: the ``repro`` root logger carries a :class:`logging.NullHandler`
so importing the package never configures global logging or prints
anything — the stdlib-recommended library posture.  The CLI (and
``repro serve``) opt into output with ``--log-level``, which routes
through :func:`configure_logging`.

What gets logged where is deliberately sparse: silent fallback paths
that change *how* (never *what*) the system computes log a WARNING with
the reason — a worker pool dying into serial re-evaluation, a delta
maintainer demoting to a full rebuild — so "why was this batch slow"
is answerable from the log instead of a debugger.
"""

from __future__ import annotations

import logging
import sys
from typing import IO, Optional, Union

ROOT_NAME = "repro"

_root = logging.getLogger(ROOT_NAME)
_root.addHandler(logging.NullHandler())


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro.`` hierarchy (``get_logger("mining")``)."""
    if not name or name == ROOT_NAME:
        return _root
    if name.startswith(ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_NAME}.{name}")


def configure_logging(
    level: Union[int, str], stream: Optional[IO[str]] = None
) -> logging.Logger:
    """Attach (or retune) one stderr handler on the ``repro`` root.

    Idempotent: repeated calls adjust the existing handler's level
    instead of stacking handlers.  Logs go to stderr by default so they
    never contaminate stdout payloads (JSON results, the serve
    protocol).  Returns the root logger.
    """
    if isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level {level!r}")
        level = resolved
    handler = next(
        (h for h in _root.handlers if getattr(h, "_repro_cli_handler", False)),
        None,
    )
    if handler is None:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler._repro_cli_handler = True  # type: ignore[attr-defined]
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)s %(name)s: %(message)s")
        )
        _root.addHandler(handler)
    handler.setLevel(level)
    _root.setLevel(level)
    return _root
