"""Unified observability: metrics registry, span tracing, logging.

Dependency-free (stdlib only) and deliberately small:

* :mod:`repro.obs.metrics` — process-wide :class:`MetricsRegistry` of
  monotonic counters, gauges, and fixed-bucket histograms under the
  ``repro_<subsystem>_<name>`` naming convention.  Increments are
  always-on, thread-safe, and cheap; tests inject a fresh registry via
  :func:`set_registry` for exact counts.
* :mod:`repro.obs.trace` — nested spans with wall + CPU time and
  attributes, a bounded per-trace ring buffer, NDJSON export.  Off by
  default; a single module-level switch makes the disabled path a true
  no-op (one shared null span, no clocks, no allocation).
* :mod:`repro.obs.logs` — the ``repro.*`` stdlib-logging hierarchy,
  silent by default (null handler); the CLI's ``--log-level`` opts in.

Surfaces: the ``metrics`` / ``trace`` verbs of ``repro serve``,
``repro mine --profile`` (per-phase breakdown via
:mod:`repro.obs.profile`), and ``repro mine --trace-out FILE``.
"""

from .logs import configure_logging, get_logger
from .metrics import (
    DOCUMENTED_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    get_registry,
    histogram,
    set_registry,
)
from .profile import coverage, format_profile
from .trace import (
    NULL_SPAN,
    SpanRecord,
    clear_traces,
    current_trace_id,
    disable,
    enable,
    enabled,
    export_ndjson,
    get_trace,
    last_trace_id,
    set_enabled,
    span,
    traced,
)

__all__ = [
    "DOCUMENTED_METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "gauge",
    "get_registry",
    "histogram",
    "set_registry",
    "configure_logging",
    "get_logger",
    "coverage",
    "format_profile",
    "NULL_SPAN",
    "SpanRecord",
    "clear_traces",
    "current_trace_id",
    "disable",
    "enable",
    "enabled",
    "export_ndjson",
    "get_trace",
    "last_trace_id",
    "set_enabled",
    "span",
    "traced",
]
