"""Render one mining trace as a per-phase profile table.

``repro mine --profile`` mines with tracing enabled and hands the
resulting span tree here: the root ``mine`` span, its ``seeds`` child,
and one ``level`` span per lattice level (each with ``evaluate`` /
``extend`` children and candidate/frequent/pruned attributes) become a
wall/CPU breakdown table plus a coverage line — the share of the root's
wall time its direct children account for (the acceptance gate demands
>= 90% on the medium benchmark graph, i.e. the phases explain the run).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .trace import SpanRecord


def _tree(records: Sequence[SpanRecord]):
    """(root, children-by-parent) for one trace's records."""
    children: Dict[str, List[SpanRecord]] = {}
    root: Optional[SpanRecord] = None
    for record in records:
        if record.parent_id is None:
            root = record
        else:
            children.setdefault(record.parent_id, []).append(record)
    for bucket in children.values():
        bucket.sort(key=lambda r: r.start)
    return root, children


def coverage(records: Sequence[SpanRecord]) -> float:
    """Fraction of the root span's wall time its direct children cover."""
    root, children = _tree(records)
    if root is None or root.wall <= 0:
        return 0.0
    covered = sum(child.wall for child in children.get(root.span_id, ()))
    return covered / root.wall


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1000:.2f}"


def _detail(record: SpanRecord) -> str:
    keys = ("candidates", "frequent", "pruned", "generated", "seeds")
    parts = [f"{key}={record.attrs[key]}" for key in keys if key in record.attrs]
    return " ".join(parts)


def profile_rows(records: Sequence[SpanRecord]) -> List[List[str]]:
    """Table rows: phase, wall ms, cpu ms, detail — children indented."""
    root, children = _tree(records)
    rows: List[List[str]] = []
    if root is None:
        return rows

    def label(record: SpanRecord) -> str:
        if record.name == "level":
            return f"level {record.attrs.get('level', '?')}"
        return record.name

    for phase in children.get(root.span_id, []):
        rows.append(
            [label(phase), _fmt_ms(phase.wall), _fmt_ms(phase.cpu), _detail(phase)]
        )
        for sub in children.get(phase.span_id, []):
            rows.append(
                ["  " + label(sub), _fmt_ms(sub.wall), _fmt_ms(sub.cpu), _detail(sub)]
            )
    rows.append([label(root) + " (total)", _fmt_ms(root.wall), _fmt_ms(root.cpu), ""])
    return rows


def format_profile(records: Optional[Sequence[SpanRecord]]) -> str:
    """The whole ``--profile`` block: table + span-coverage line."""
    from ..analysis.report import format_table

    if not records:
        return "no trace recorded (was tracing enabled?)"
    table = format_table(
        ["phase", "wall ms", "cpu ms", "detail"],
        profile_rows(records),
        title="mining profile (per-phase breakdown)",
    )
    pct = coverage(records) * 100
    return f"{table}\n\nspan coverage: {pct:.1f}% of total wall time"
