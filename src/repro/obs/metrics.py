"""Process-wide metrics: counters, gauges, fixed-bucket histograms.

One :class:`MetricsRegistry` holds every instrument, keyed by name under
the ``repro_<subsystem>_<name>`` convention (see
``docs/architecture.md``).  Instruments are created on first use and
never removed, so a snapshot taken after a subsystem constructed itself
lists that subsystem's full metric surface — at zero, if nothing
happened yet.  Components *declare* their instruments in ``__init__``
for exactly this reason: "which metrics exist" must not depend on which
rare code paths ran.

Increments are always-on (there is no disable switch for counters —
only the :mod:`repro.obs.trace` span API has one) and cheap: one dict
lookup on a cached reference plus a per-instrument lock.  ``+=`` is not
atomic under CPython threading, and the service daemon increments from
writer, reader, and handler threads concurrently, so every instrument
carries its own :class:`threading.Lock`.

A process-global default registry serves normal operation;
:func:`set_registry` swaps in a fresh one for tests that need exact
counts (components capture the *active* registry at construction, so
swap before constructing).
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Sequence, Tuple, Union

Number = Union[int, float]


class Counter:
    """A monotonic counter.  ``inc`` only; never decremented or reset."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> Number:
        with self._lock:
            return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A point-in-time value that can move both ways (e.g. resident weight)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: Number = 0
        self._lock = threading.Lock()

    def set(self, value: Number) -> None:
        with self._lock:
            self._value = value

    def set_max(self, value: Number) -> None:
        """Ratchet upward — for peaks (never lowered by this call)."""
        with self._lock:
            if value > self._value:
                self._value = value

    def inc(self, amount: Number = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: Number = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> Number:
        with self._lock:
            return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """Fixed-bucket histogram: cumulative-style counts per upper bound.

    Buckets are fixed at construction (first use); observations land in
    the first bucket whose bound is >= the value, with an implicit
    ``inf`` bucket catching the rest.  The snapshot carries count / sum /
    max plus per-bucket counts — enough for queue-depth style
    distributions without any quantile machinery.
    """

    DEFAULT_BUCKETS: Tuple[Number, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)

    __slots__ = ("name", "buckets", "_counts", "_count", "_sum", "_max", "_lock")

    def __init__(self, name: str, buckets: Optional[Sequence[Number]] = None) -> None:
        self.name = name
        self.buckets = tuple(sorted(buckets or self.DEFAULT_BUCKETS))
        self._counts = [0] * (len(self.buckets) + 1)  # +1: the inf bucket
        self._count = 0
        self._sum: Number = 0
        self._max: Number = 0
        self._lock = threading.Lock()

    def observe(self, value: Number) -> None:
        slot = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                slot = i
                break
        with self._lock:
            self._counts[slot] += 1
            self._count += 1
            self._sum += value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def snapshot(self) -> Dict[str, Number]:
        with self._lock:
            payload: Dict[str, Number] = {
                "count": self._count,
                "sum": self._sum,
                "max": self._max,
            }
            for bound, count in zip(self.buckets, self._counts):
                payload[f"le_{bound:g}"] = count
            payload["inf"] = self._counts[-1]
            return payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram {self.name} n={self.count}>"


class MetricsRegistry:
    """Name -> instrument map with create-on-first-use semantics.

    Asking for an existing name returns the existing instrument; asking
    with a conflicting kind raises.  ``snapshot()`` returns a flat
    JSON-ready dict: counters and gauges as numbers, histograms as
    sub-dicts — the exact payload the ``metrics`` protocol verb ships.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, object] = {}

    def _get_or_create(self, name: str, kind: type, *args):
        instrument = self._instruments.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.get(name)
                if instrument is None:
                    instrument = kind(name, *args)
                    self._instruments[name] = instrument
        if not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(
        self, name: str, buckets: Optional[Sequence[Number]] = None
    ) -> Histogram:
        if buckets is None:
            return self._get_or_create(name, Histogram)
        return self._get_or_create(name, Histogram, buckets)

    def names(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._instruments))

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            instruments = list(self._instruments.items())
        payload: Dict[str, object] = {}
        for name, instrument in sorted(instruments):
            if isinstance(instrument, Histogram):
                payload[name] = instrument.snapshot()
            else:
                payload[name] = instrument.value  # type: ignore[union-attr]
        return payload


#: The process-global default registry — what every component uses
#: unless a test swapped in its own via :func:`set_registry`.
_DEFAULT_REGISTRY = MetricsRegistry()
_active = _DEFAULT_REGISTRY


def get_registry() -> MetricsRegistry:
    """The currently active registry (process-global)."""
    return _active


def set_registry(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Swap the active registry; returns the previous one.

    ``None`` restores the process default.  Components capture the
    active registry when *they* are constructed — swap first, construct
    after.
    """
    global _active
    previous = _active
    _active = _DEFAULT_REGISTRY if registry is None else registry
    return previous


def counter(name: str) -> Counter:
    """Shorthand for ``get_registry().counter(name)``."""
    return _active.counter(name)


def gauge(name: str) -> Gauge:
    """Shorthand for ``get_registry().gauge(name)``."""
    return _active.gauge(name)


def histogram(name: str, buckets: Optional[Sequence[Number]] = None) -> Histogram:
    """Shorthand for ``get_registry().histogram(name)``."""
    return _active.histogram(name, buckets)


#: Every metric name the instrumented stack is guaranteed to register
#: during an end-to-end sharded, pooled, paged ``mine-stream`` run (the
#: regression in ``tests/test_obs.py`` pins this).  Names follow
#: ``repro_<subsystem>_<name>``; adding an instrument to a subsystem
#: means declaring it in that subsystem's constructor *and* listing it
#: here.
DOCUMENTED_METRICS: Tuple[str, ...] = (
    # miner (flat + dynamic lattice walks; flushed once per session)
    "repro_miner_sessions",
    "repro_miner_levels",
    "repro_miner_patterns_generated",
    "repro_miner_patterns_evaluated",
    "repro_miner_patterns_frequent",
    "repro_miner_patterns_pruned",
    "repro_miner_duplicates_skipped",
    "repro_miner_support_calls",
    "repro_miner_occurrence_enumerations",
    "repro_miner_patterns_reused",
    "repro_miner_patterns_skipped_unaffected",
    "repro_miner_patterns_revived",
    # isomorphism engines (per-process: pool workers count their own)
    "repro_match_vf2_calls",
    "repro_match_anchored_searches",
    # flat index maintainer
    "repro_index_patches_applied",
    "repro_index_rebuilds",
    "repro_index_deltas_coalesced",
    # index footprint (gauges set on every fresh build by get_index)
    "repro_index_bytes",
    "repro_index_intern_entries",
    # sharded index maintainer
    "repro_sharded_index_patches_applied",
    "repro_sharded_index_rebuilds",
    "repro_sharded_index_deltas_coalesced",
    "repro_sharded_index_rebalances",
    "repro_sharded_index_edges_moved",
    "repro_sharded_index_full_repartitions",
    # shard worker pool (parent-side dispatch accounting)
    "repro_pool_tasks_dispatched",
    "repro_pool_slices_shipped",
    "repro_pool_slices_reshipped",
    "repro_pool_serial_fallbacks",
    "repro_pool_queue_depth",
    # out-of-core pager
    "repro_pager_evictions",
    "repro_pager_spills",
    "repro_pager_rehydrations",
    "repro_pager_recomputes",
    "repro_pager_replayed_deltas",
    "repro_pager_resident_weight",
    "repro_pager_peak_resident_weight",
    # snapshot registry (MVCC)
    "repro_snapshots_pins",
    "repro_snapshots_publishes",
    "repro_snapshots_cow_splits",
    "repro_snapshots_gc_versions",
    # result cache
    "repro_cache_hits",
    "repro_cache_misses",
    "repro_cache_evictions",
    "repro_cache_entries",
    # service
    "repro_service_batches_applied",
    "repro_service_mine_requests",
    # standing-query subscriptions
    "repro_subs_active",
    "repro_subs_registered",
    "repro_subs_unregistered",
    "repro_subs_dispatches",
    "repro_subs_dispatch_skipped",
    "repro_subs_evaluations",
    "repro_subs_events_emitted",
    "repro_subs_events_dropped",
)
