"""Subgraph-isomorphism engine: occurrences, instances, automorphisms."""

from .vf2 import (
    are_isomorphic,
    count_subgraph_isomorphisms,
    find_isomorphisms,
    find_subgraph_isomorphisms,
    has_subgraph_isomorphism,
)
from .anchored import (
    find_anchored_isomorphisms,
    has_occurrence_with,
    valid_images,
)
from .matcher import (
    Instance,
    MatchSummary,
    Occurrence,
    find_instances,
    find_occurrences,
    group_into_instances,
    summarize_matches,
)

__all__ = [
    "are_isomorphic",
    "count_subgraph_isomorphisms",
    "find_isomorphisms",
    "find_subgraph_isomorphisms",
    "has_subgraph_isomorphism",
    "Instance",
    "MatchSummary",
    "Occurrence",
    "find_instances",
    "find_occurrences",
    "group_into_instances",
    "summarize_matches",
    "find_anchored_isomorphisms",
    "has_occurrence_with",
    "valid_images",
]
