"""High-level occurrence / instance enumeration (Definitions 2.1.8–2.1.9).

The matcher turns raw isomorphism maps into the two first-class objects of
the paper:

* :class:`Occurrence` — an isomorphism ``f`` from the pattern into the data
  graph, with convenience accessors ``f.image_of(node)`` and ``f.vertex_set``;
* :class:`Instance` — a subgraph of the data graph isomorphic to the pattern;
  several occurrences can share one instance when the pattern has
  non-trivial automorphisms (Fig. 2: six occurrences, one instance).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..graph.labeled_graph import LabeledGraph, Vertex, normalize_edge
from ..graph.pattern import Pattern
from ..index.graph_index import IndexArg
from .vf2 import collect_subgraph_isomorphism_items

Mapping = Dict[Vertex, Vertex]


@dataclass(frozen=True)
class Occurrence:
    """One occurrence ``f_i`` of a pattern in a data graph.

    Attributes
    ----------
    mapping:
        The isomorphism as a pattern-node -> data-vertex dict (stored as a
        sorted tuple of pairs so occurrences are hashable and orderable).
    index:
        Position in the deterministic enumeration order (``f_1`` is 0).
    """

    mapping_items: Tuple[Tuple[Vertex, Vertex], ...]
    index: int = 0

    @classmethod
    def from_mapping(cls, mapping: Mapping, index: int = 0) -> "Occurrence":
        items = tuple(sorted(mapping.items(), key=lambda kv: repr(kv[0])))
        return cls(mapping_items=items, index=index)

    @property
    def mapping(self) -> Mapping:
        """The occurrence as a plain dict (fresh copy)."""
        return dict(self.mapping_items)

    def image_of(self, node: Vertex) -> Vertex:
        """``f(node)`` — the data vertex hosting a pattern node."""
        for pattern_node, data_vertex in self.mapping_items:
            if pattern_node == node:
                return data_vertex
        raise KeyError(node)

    def image_of_set(self, nodes: Iterable[Vertex]) -> FrozenSet[Vertex]:
        """``f(W)`` for a node subset ``W`` — a set, order-insensitive."""
        wanted = set(nodes)
        return frozenset(v for k, v in self.mapping_items if k in wanted)

    @property
    def vertex_set(self) -> FrozenSet[Vertex]:
        """``f(V_P)`` — all data vertices touched by this occurrence."""
        return frozenset(v for _, v in self.mapping_items)

    def edge_set(self, pattern: Pattern) -> FrozenSet[Tuple[Vertex, Vertex]]:
        """``f(E_P)`` — the data edges used by this occurrence."""
        mapping = self.mapping
        return frozenset(
            normalize_edge(mapping[u], mapping[v]) for u, v in pattern.edges()
        )

    def label(self) -> str:
        """Human-readable name, matching the paper's ``f_1, f_2, ...``."""
        return f"f{self.index + 1}"

    def __repr__(self) -> str:
        pairs = ", ".join(f"{k!r}->{v!r}" for k, v in self.mapping_items)
        return f"<Occurrence {self.label()} {{{pairs}}}>"


@dataclass(frozen=True)
class Instance:
    """One instance of a pattern: a concrete subgraph of the data graph.

    Two occurrences that touch the same vertices *and* the same edges map to
    the same instance.  ``occurrence_indices`` records which occurrences
    project onto this instance.
    """

    vertex_set: FrozenSet[Vertex]
    edge_set: FrozenSet[Tuple[Vertex, Vertex]]
    index: int = 0
    occurrence_indices: Tuple[int, ...] = field(default_factory=tuple)

    def label(self) -> str:
        return f"S{self.index + 1}"

    def subgraph(self, data: LabeledGraph) -> LabeledGraph:
        """Materialize the instance as a labeled graph."""
        return data.edge_subgraph(self.edge_set)

    def __repr__(self) -> str:
        vertices = ", ".join(sorted(map(repr, self.vertex_set)))
        return f"<Instance {self.label()} {{{vertices}}}>"


def find_occurrences(
    pattern: Pattern,
    data: LabeledGraph,
    limit: Optional[int] = None,
    index: IndexArg = None,
) -> List[Occurrence]:
    """Enumerate all occurrences of ``pattern`` in ``data``, deterministically.

    The result order is stable across runs (sorted candidate exploration in
    the engine), so occurrence indices are reproducible.  ``index`` selects
    the engine's acceleration mode (default: the graph's cached index);
    indexed and brute-force enumeration return identical lists.
    """
    items_list = collect_subgraph_isomorphism_items(
        pattern, data, limit=limit, index=index
    )
    return [
        Occurrence(mapping_items=items, index=i)
        for i, items in enumerate(items_list)
    ]


def group_into_instances(
    pattern: Pattern, occurrences: Iterable[Occurrence]
) -> List[Instance]:
    """Group occurrences into the distinct instances they project onto.

    Instances are distinguished by (vertex set, edge set): with non-trivial
    pattern automorphisms many occurrences share an instance.
    """
    groups: Dict[
        Tuple[FrozenSet[Vertex], FrozenSet[Tuple[Vertex, Vertex]]], List[int]
    ] = {}
    for occurrence in occurrences:
        key = (occurrence.vertex_set, occurrence.edge_set(pattern))
        groups.setdefault(key, []).append(occurrence.index)
    instances = []
    ordered = sorted(groups.items(), key=lambda kv: sorted(map(repr, kv[0][0])))
    for i, ((vertex_set, edge_set), indices) in enumerate(ordered):
        instances.append(
            Instance(
                vertex_set=vertex_set,
                edge_set=edge_set,
                index=i,
                occurrence_indices=tuple(sorted(indices)),
            )
        )
    return instances


def find_instances(
    pattern: Pattern,
    data: LabeledGraph,
    limit: Optional[int] = None,
    index: IndexArg = None,
) -> List[Instance]:
    """Enumerate the distinct instances of ``pattern`` in ``data``."""
    return group_into_instances(
        pattern, find_occurrences(pattern, data, limit=limit, index=index)
    )


@dataclass(frozen=True)
class MatchSummary:
    """Occurrence and instance counts for a (pattern, graph) pair."""

    num_occurrences: int
    num_instances: int

    @property
    def occurrences_per_instance(self) -> float:
        if self.num_instances == 0:
            return 0.0
        return self.num_occurrences / self.num_instances


def summarize_matches(
    pattern: Pattern, data: LabeledGraph, index: IndexArg = None
) -> MatchSummary:
    """Count occurrences and instances in one enumeration pass."""
    occurrences = find_occurrences(pattern, data, index=index)
    instances = group_into_instances(pattern, occurrences)
    return MatchSummary(num_occurrences=len(occurrences), num_instances=len(instances))
