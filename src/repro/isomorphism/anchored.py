"""Anchored subgraph-isomorphism queries.

The lazy MNI evaluation strategy (GraMi, Elseidy et al. — the paper's
reference [4]) never enumerates all occurrences.  Instead it asks, per
pattern node ``v`` and data vertex ``u``: *does any occurrence map v to
u?*  Each such question is a subgraph-isomorphism search with one
assignment pinned in advance, which this module provides.

The search reuses the VF2 engine's feasibility logic but fixes the anchor
before exploring, and stops at the first witness.  Candidate vertices for
anchoring are seeded from the graph index's pre-sorted inverted lists when
an index is in play (the default), which also accelerates every inner
anchored search via label-filtered adjacency and signature filtering.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from ..graph.labeled_graph import LabeledGraph, Vertex
from ..index.compact import CompactGraphIndex
from ..index.graph_index import IndexArg, resolve_index
from ..obs import metrics as _metrics
from .vf2 import (
    Mapping,
    _candidate_data_vertices,
    _is_feasible,
    _matching_order,
    _node_requirements,
)
from ..graph.pattern import Pattern


class _AnchoredPlan:
    """Static int-id probe plan for one set of anchored pattern nodes.

    Mirrors :class:`repro.isomorphism.vf2._CompactPlan`, except that the
    mapped pattern neighbors at each depth may also be anchors: prior
    references ``>= 0`` index the sub-order depth, references ``< 0``
    index the anchor tuple as ``-(i + 1)``.  Anchor images vary per
    probe, so the plan is cached per anchor *key set* and the vints are
    supplied at probe time.
    """

    __slots__ = (
        "anchor_nodes",
        "suborder",
        "lints",
        "prior",
        "min_deg",
        "reqs",
        "anchor_reqs",
        "empty",
        "req_memo",
        "anchor_req_memo",
    )

    def __init__(
        self,
        pattern: Pattern,
        ci: CompactGraphIndex,
        order: List[Vertex],
        anchor_nodes: Tuple[Vertex, ...],
    ) -> None:
        pattern_graph = pattern.graph
        lint_of = ci.table._lint_of
        inv = ci._inv
        self.anchor_nodes = anchor_nodes
        anchor_index = {node: i for i, node in enumerate(anchor_nodes)}
        suborder = [node for node in order if node not in anchor_index]
        self.suborder = suborder
        self.empty = False
        lints: List[int] = []
        for node in suborder:
            li = lint_of.get(pattern_graph.label_of(node))
            if li is None or li not in inv:
                self.empty = True
            lints.append(-1 if li is None else li)
        self.lints = lints
        self.prior: List[tuple] = []
        self.min_deg: List[int] = []
        self.reqs: List[Optional[tuple]] = []
        self.anchor_reqs: List[tuple] = []
        # Requirement verdicts are branch- and probe-independent, so the
        # memo tables live on the plan and survive whole probe bursts
        # (lazy MNI asks about thousands of candidates per node).
        # 0 = unknown, 1 = pass, 2 = fail, indexed by vint.
        vertex_count = len(ci.table.vertex_of)
        self.anchor_req_memo = [bytearray(vertex_count) for _ in anchor_nodes]
        self.req_memo: List[Optional[bytearray]] = []
        if self.empty:
            return
        requirements = _node_requirements(pattern)

        def encode_requirement(node: Vertex) -> tuple:
            return tuple(
                (lint_of.get(label, -1), count)
                for label, count in requirements[node].items()
            )

        self.anchor_reqs = [encode_requirement(node) for node in anchor_nodes]
        position = {node: depth for depth, node in enumerate(suborder)}
        for depth, node in enumerate(suborder):
            neighbors = pattern_graph.neighbors(node)
            refs: List[int] = []
            for neighbor in neighbors:
                anchor_pos = anchor_index.get(neighbor)
                if anchor_pos is not None:
                    refs.append(-(anchor_pos + 1))
                elif position.get(neighbor, depth) < depth:
                    refs.append(position[neighbor])
            self.prior.append(tuple(refs))
            self.min_deg.append(len(neighbors))
            if len(refs) < len(neighbors):
                self.reqs.append(encode_requirement(node))
            else:
                self.reqs.append(None)
        self.req_memo = [
            bytearray(vertex_count) if req is not None else None
            for req in self.reqs
        ]


class AnchoredSearch:
    """Reusable anchored-search context for one (pattern, data) pair.

    Anchored probes come in bursts — lazy MNI asks "does any occurrence
    map v to u?" once per candidate data vertex — so the per-pattern setup
    (index resolution, matching order, node signature requirements) is
    computed once here and shared across every probe.  With a compact
    index the probes additionally run entirely over interned ids
    (:class:`_AnchoredPlan`), decoding only yielded mappings.
    """

    __slots__ = (
        "pattern",
        "data",
        "resolved",
        "requirements",
        "order",
        "_compact",
        "_plans",
        "_scratch",
    )

    def __init__(
        self, pattern: Pattern, data: LabeledGraph, index: IndexArg = None
    ) -> None:
        # One search context serves a burst of probes; counting contexts
        # (not probes) keeps the hot path free of instrumentation.
        _metrics.counter("repro_match_anchored_searches").inc()
        self.pattern = pattern
        self.data = data
        self.resolved = resolve_index(data, index)
        self.requirements = (
            _node_requirements(pattern) if self.resolved is not None else None
        )
        self.order = _matching_order(pattern, data)
        self._compact = (
            self.resolved
            if isinstance(self.resolved, CompactGraphIndex)
            else None
        )
        self._plans: Dict[FrozenSet[Vertex], _AnchoredPlan] = {}
        self._scratch: Optional[bytearray] = None

    # -- compact probe machinery ---------------------------------------
    def _plan_for(self, anchor_nodes: Tuple[Vertex, ...]) -> _AnchoredPlan:
        key = frozenset(anchor_nodes)
        plan = self._plans.get(key)
        if plan is None:
            plan = _AnchoredPlan(self.pattern, self._compact, self.order, anchor_nodes)
            self._plans[key] = plan
        return plan

    def _compact_domain(self, plan: _AnchoredPlan, depth, images, anchor_vints):
        ci = self._compact
        li = plan.lints[depth]
        refs = plan.prior[depth]
        if not refs:
            arr = ci._inv[li]
            return arr, 0, len(arr), None
        imgs = [
            images[r] if r >= 0 else anchor_vints[-r - 1] for r in refs
        ]
        row, start, stop = ci._segment(imgs[0], li)
        if len(imgs) == 1:
            return row, start, stop, None
        best = 0
        best_len = stop - start
        for i in range(1, len(imgs)):
            other_row, other_start, other_stop = ci._segment(imgs[i], li)
            if other_stop - other_start < best_len:
                row, start, stop = other_row, other_start, other_stop
                best_len = other_stop - other_start
                best = i
        other_sets = [
            ci._segment_set(img, li)
            for i, img in enumerate(imgs)
            if i != best
        ]
        return row, start, stop, other_sets

    def _witness_from_vint(self, node: Vertex, vint: int) -> bool:
        """True when some occurrence maps ``node`` to the vertex at ``vint``.

        The caller guarantees the anchor's label matches; degree and
        signature feasibility are checked here, then the plan's sub-order
        is explored depth-first over interned ids with an early exit at
        the first witness.
        """
        ci = self._compact
        plan = self._plan_for((node,))
        if plan.empty:
            return False
        anchor_memo = plan.anchor_req_memo[0]
        state = anchor_memo[vint]
        if state == 2:
            return False
        if state == 0:
            ok = ci._deg[vint] >= self.pattern.graph.degree(node)
            if ok:
                seg_len = ci._segment_len
                for req_lint, count in plan.anchor_reqs[0]:
                    if req_lint < 0 or seg_len(vint, req_lint) < count:
                        ok = False
                        break
            if not ok:
                anchor_memo[vint] = 2
                return False
            anchor_memo[vint] = 1
        suborder_count = len(plan.suborder)
        if suborder_count == 0:
            return True
        decode = ci.table.vertex_of
        used = self._scratch
        if used is None or len(used) < len(decode):
            used = self._scratch = bytearray(len(decode))
        used[vint] = 1
        deg = ci._deg
        rows = ci._rows
        inv = ci._inv
        seg_set = ci._segment_set
        lints = plan.lints
        priors = plan.prior
        min_degrees = plan.min_deg
        requirement_items = plan.reqs
        req_memo = plan.req_memo
        images = [0] * suborder_count

        def rec(depth: int) -> bool:
            if depth == suborder_count:
                return True
            li = lints[depth]
            refs = priors[depth]
            others = None
            if not refs:
                seg = inv[li]
                start = 0
                stop = len(seg)
            else:
                imgs = [
                    images[r] if r >= 0 else vint for r in refs
                ]
                seg = rows[imgs[0]]
                body = 1 + 2 * seg[0]
                cnt = 0
                j = 1
                while j < body:
                    gl = seg[j]
                    if gl >= li:
                        if gl == li:
                            cnt = seg[j + 1]
                        break
                    body += seg[j + 1]
                    j += 2
                start = body
                stop = body + cnt
                if len(imgs) > 1:
                    best = 0
                    best_len = cnt
                    sets = [None] * len(imgs)
                    for a in range(1, len(imgs)):
                        members = seg_set(imgs[a], li)
                        sets[a] = members
                        if len(members) < best_len:
                            best = a
                            best_len = len(members)
                    if best:
                        seg = rows[imgs[best]]
                        body = 1 + 2 * seg[0]
                        cnt = 0
                        j = 1
                        while j < body:
                            gl = seg[j]
                            if gl >= li:
                                if gl == li:
                                    cnt = seg[j + 1]
                                break
                            body += seg[j + 1]
                            j += 2
                        start = body
                        stop = body + cnt
                        sets[best] = None
                        sets[0] = seg_set(imgs[0], li)
                    others = [s for s in sets if s is not None]
            requirement = requirement_items[depth]
            if requirement is None:
                for i in range(start, stop):
                    w = seg[i]
                    if used[w]:
                        continue
                    if others is not None:
                        ok = True
                        for members in others:
                            if w not in members:
                                ok = False
                                break
                        if not ok:
                            continue
                    images[depth] = w
                    used[w] = 1
                    found = rec(depth + 1)
                    used[w] = 0
                    if found:
                        return True
            else:
                memo = req_memo[depth]
                min_degree = min_degrees[depth]
                for i in range(start, stop):
                    w = seg[i]
                    if used[w] or deg[w] < min_degree:
                        continue
                    state = memo[w]
                    if state == 2:
                        continue
                    if state == 0:
                        wrow = rows[w]
                        dir_end = 1 + 2 * wrow[0]
                        ok = True
                        for req_li, count in requirement:
                            c = 0
                            j = 1
                            while j < dir_end:
                                gl = wrow[j]
                                if gl >= req_li:
                                    if gl == req_li:
                                        c = wrow[j + 1]
                                    break
                                j += 2
                            if c < count:
                                ok = False
                                break
                        if not ok:
                            memo[w] = 2
                            continue
                        memo[w] = 1
                    if others is not None:
                        ok = True
                        for members in others:
                            if w not in members:
                                ok = False
                                break
                        if not ok:
                            continue
                    images[depth] = w
                    used[w] = 1
                    found = rec(depth + 1)
                    used[w] = 0
                    if found:
                        return True
            return False

        try:
            return rec(0)
        finally:
            used[vint] = 0

    def _iter_from_compact(
        self, anchors: Mapping, limit: Optional[int]
    ) -> Iterator[Mapping]:
        """Compact backtracking for validated anchors (decoded yields)."""
        ci = self._compact
        anchor_nodes = tuple(anchors)
        plan = self._plan_for(anchor_nodes)
        if plan.empty:
            return
        vint_of = ci.table._vint_of
        anchor_vints = tuple(vint_of[anchors[node]] for node in plan.anchor_nodes)
        seg_len = ci._segment_len
        suborder = plan.suborder
        suborder_count = len(suborder)
        decode = ci.table.vertex_of
        deg = ci._deg
        min_degrees = plan.min_deg
        requirement_items = plan.reqs
        req_memo = plan.req_memo
        used = bytearray(len(decode))
        for vint in anchor_vints:
            used[vint] = 1
        images = [0] * suborder_count
        yielded = 0

        def backtrack(depth: int) -> Iterator[Mapping]:
            nonlocal yielded
            if limit is not None and yielded >= limit:
                return
            if depth == suborder_count:
                yielded += 1
                mapping = dict(anchors)
                for d in range(suborder_count):
                    mapping[suborder[d]] = decode[images[d]]
                yield mapping
                return
            row, start, stop, other_sets = self._compact_domain(
                plan, depth, images, anchor_vints
            )
            requirement = requirement_items[depth]
            min_degree = min_degrees[depth]
            memo = req_memo[depth]
            for i in range(start, stop):
                w = row[i]
                if used[w]:
                    continue
                if requirement is not None:
                    if deg[w] < min_degree:
                        continue
                    state = memo[w]
                    if state == 2:
                        continue
                    if state == 0:
                        ok = True
                        for req_lint, count in requirement:
                            if seg_len(w, req_lint) < count:
                                ok = False
                                break
                        memo[w] = 1 if ok else 2
                        if not ok:
                            continue
                if other_sets is not None:
                    ok = True
                    for members in other_sets:
                        if w not in members:
                            ok = False
                            break
                    if not ok:
                        continue
                images[depth] = w
                used[w] = 1
                yield from backtrack(depth + 1)
                used[w] = 0
                if limit is not None and yielded >= limit:
                    return

        yield from backtrack(0)

    def iter_from(
        self, anchors: Mapping, limit: Optional[int] = None
    ) -> Iterator[Mapping]:
        """Yield occurrences extending the partial assignment ``anchors``.

        ``anchors`` maps pattern nodes to data vertices; assignments must
        be label-consistent and injective or nothing is yielded.
        """
        pattern, data = self.pattern, self.data
        resolved, requirements = self.resolved, self.requirements
        # Validate the anchors up front (cheap rejections).
        if len(set(anchors.values())) != len(anchors):
            return
        for node, vertex in anchors.items():
            if not pattern.graph.has_vertex(node) or not data.has_vertex(vertex):
                return
            if pattern.label_of(node) != data.label_of(vertex):
                return
            if data.degree(vertex) < pattern.graph.degree(node):
                return
        # Anchored pattern edges must exist between anchored images.
        for u, v in pattern.edges():
            if u in anchors and v in anchors:
                if not data.has_edge(anchors[u], anchors[v]):
                    return
        if resolved is not None and requirements is not None:
            # The signature filter applies to anchors too: an anchor whose
            # neighborhood cannot host its pattern neighbors has no witness.
            for node, vertex in anchors.items():
                if not resolved.dominates(vertex, requirements[node]):
                    return

        if self._compact is not None:
            yield from self._iter_from_compact(anchors, limit)
            return

        order = [node for node in self.order if node not in anchors]
        mapping: Dict[Vertex, Vertex] = dict(anchors)
        used: Set[Vertex] = set(anchors.values())
        yielded = 0

        def backtrack(depth: int) -> Iterator[Mapping]:
            nonlocal yielded
            if limit is not None and yielded >= limit:
                return
            if depth == len(order):
                yielded += 1
                yield dict(mapping)
                return
            node = order[depth]
            for vertex in _candidate_data_vertices(
                pattern, data, node, mapping, resolved
            ):
                if not _is_feasible(
                    pattern, data, node, vertex, mapping, used, False,
                    resolved, requirements,
                ):
                    continue
                mapping[node] = vertex
                used.add(vertex)
                yield from backtrack(depth + 1)
                del mapping[node]
                used.discard(vertex)
                if limit is not None and yielded >= limit:
                    return

        yield from backtrack(0)

    def has_witness(self, node: Vertex, vertex: Vertex) -> bool:
        """True when some occurrence maps pattern ``node`` to ``vertex``."""
        ci = self._compact
        if ci is not None and self.pattern.graph.has_vertex(node):
            try:
                vint = ci._live_vint(vertex)
            except KeyError:
                return False
            li = ci.table._lint_of.get(self.pattern.label_of(node))
            if li is None or ci._lab[vint] != li:
                return False
            return self._witness_from_vint(node, vint)
        return next(self.iter_from({node: vertex}, limit=1), None) is not None


def find_anchored_isomorphisms(
    pattern: Pattern,
    data: LabeledGraph,
    anchors: Mapping,
    limit: Optional[int] = None,
    index: IndexArg = None,
) -> Iterator[Mapping]:
    """Yield occurrences extending the partial assignment ``anchors``.

    One-shot convenience over :class:`AnchoredSearch`; build the context
    yourself when probing the same pattern repeatedly.
    """
    yield from AnchoredSearch(pattern, data, index=index).iter_from(anchors, limit)


def has_occurrence_with(
    pattern: Pattern,
    data: LabeledGraph,
    node: Vertex,
    vertex: Vertex,
    index: IndexArg = None,
) -> bool:
    """True when some occurrence maps pattern ``node`` to data ``vertex``."""
    return AnchoredSearch(pattern, data, index=index).has_witness(node, vertex)


def valid_images(
    pattern: Pattern,
    data: LabeledGraph,
    node: Vertex,
    stop_after: Optional[int] = None,
    index: IndexArg = None,
) -> List[Vertex]:
    """Data vertices that host ``node`` in at least one occurrence.

    ``stop_after`` truncates the scan once that many images are confirmed —
    the heart of lazy MNI: deciding "support >= t" needs only t images per
    node, not the full occurrence set.  Candidates come straight from the
    index's pre-sorted inverted list (or a sorted set copy in brute mode);
    either way the scan order is the canonical one.  One shared
    :class:`AnchoredSearch` context serves every probe in the scan.
    """
    label = pattern.label_of(node)
    search = AnchoredSearch(pattern, data, index=index)
    ci = search._compact
    if ci is not None:
        # Probe straight off the interned inverted list: the label match
        # is implied by list membership, so each candidate goes directly
        # to the int-id witness search and only images are decoded.
        li = ci.table._lint_of.get(label)
        arr = ci._inv.get(li) if li is not None else None
        if not arr:
            return []
        decode = ci.table.vertex_of
        witness = search._witness_from_vint
        images: List[Vertex] = []
        for vint in arr:
            if witness(node, vint):
                images.append(decode[vint])
                if stop_after is not None and len(images) >= stop_after:
                    break
        return images
    if search.resolved is not None:
        candidates = search.resolved.vertices_with_label(label)
    else:
        candidates = sorted(data.vertices_with_label(label), key=repr)
    images: List[Vertex] = []
    for vertex in candidates:
        if search.has_witness(node, vertex):
            images.append(vertex)
            if stop_after is not None and len(images) >= stop_after:
                break
    return images
