"""Anchored subgraph-isomorphism queries.

The lazy MNI evaluation strategy (GraMi, Elseidy et al. — the paper's
reference [4]) never enumerates all occurrences.  Instead it asks, per
pattern node ``v`` and data vertex ``u``: *does any occurrence map v to
u?*  Each such question is a subgraph-isomorphism search with one
assignment pinned in advance, which this module provides.

The search reuses the VF2 engine's feasibility logic but fixes the anchor
before exploring, and stops at the first witness.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set

from ..graph.labeled_graph import LabeledGraph, Vertex
from ..graph.pattern import Pattern
from .vf2 import Mapping, _candidate_data_vertices, _is_feasible, _matching_order


def find_anchored_isomorphisms(
    pattern: Pattern,
    data: LabeledGraph,
    anchors: Mapping,
    limit: Optional[int] = None,
) -> Iterator[Mapping]:
    """Yield occurrences extending the partial assignment ``anchors``.

    ``anchors`` maps pattern nodes to data vertices; assignments must be
    label-consistent and injective or nothing is yielded.
    """
    # Validate the anchors up front (cheap rejections).
    if len(set(anchors.values())) != len(anchors):
        return
    for node, vertex in anchors.items():
        if not pattern.graph.has_vertex(node) or not data.has_vertex(vertex):
            return
        if pattern.label_of(node) != data.label_of(vertex):
            return
        if data.degree(vertex) < pattern.graph.degree(node):
            return
    # Anchored pattern edges must exist between anchored images.
    for u, v in pattern.edges():
        if u in anchors and v in anchors:
            if not data.has_edge(anchors[u], anchors[v]):
                return

    order = [node for node in _matching_order(pattern, data) if node not in anchors]
    mapping: Dict[Vertex, Vertex] = dict(anchors)
    used: Set[Vertex] = set(anchors.values())
    yielded = 0

    def backtrack(depth: int) -> Iterator[Mapping]:
        nonlocal yielded
        if limit is not None and yielded >= limit:
            return
        if depth == len(order):
            yielded += 1
            yield dict(mapping)
            return
        node = order[depth]
        for vertex in _candidate_data_vertices(pattern, data, node, mapping):
            if not _is_feasible(pattern, data, node, vertex, mapping, used, False):
                continue
            mapping[node] = vertex
            used.add(vertex)
            yield from backtrack(depth + 1)
            del mapping[node]
            used.discard(vertex)
            if limit is not None and yielded >= limit:
                return

    yield from backtrack(0)


def has_occurrence_with(
    pattern: Pattern, data: LabeledGraph, node: Vertex, vertex: Vertex
) -> bool:
    """True when some occurrence maps pattern ``node`` to data ``vertex``."""
    return (
        next(
            find_anchored_isomorphisms(pattern, data, {node: vertex}, limit=1), None
        )
        is not None
    )


def valid_images(
    pattern: Pattern,
    data: LabeledGraph,
    node: Vertex,
    stop_after: Optional[int] = None,
) -> List[Vertex]:
    """Data vertices that host ``node`` in at least one occurrence.

    ``stop_after`` truncates the scan once that many images are confirmed —
    the heart of lazy MNI: deciding "support >= t" needs only t images per
    node, not the full occurrence set.
    """
    label = pattern.label_of(node)
    images: List[Vertex] = []
    for vertex in sorted(data.vertices_with_label(label), key=repr):
        if has_occurrence_with(pattern, data, node, vertex):
            images.append(vertex)
            if stop_after is not None and len(images) >= stop_after:
                break
    return images
