"""Anchored subgraph-isomorphism queries.

The lazy MNI evaluation strategy (GraMi, Elseidy et al. — the paper's
reference [4]) never enumerates all occurrences.  Instead it asks, per
pattern node ``v`` and data vertex ``u``: *does any occurrence map v to
u?*  Each such question is a subgraph-isomorphism search with one
assignment pinned in advance, which this module provides.

The search reuses the VF2 engine's feasibility logic but fixes the anchor
before exploring, and stops at the first witness.  Candidate vertices for
anchoring are seeded from the graph index's pre-sorted inverted lists when
an index is in play (the default), which also accelerates every inner
anchored search via label-filtered adjacency and signature filtering.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set

from ..graph.labeled_graph import LabeledGraph, Vertex
from ..index.graph_index import IndexArg, resolve_index
from ..obs import metrics as _metrics
from .vf2 import (
    Mapping,
    _candidate_data_vertices,
    _is_feasible,
    _matching_order,
    _node_requirements,
)
from ..graph.pattern import Pattern


class AnchoredSearch:
    """Reusable anchored-search context for one (pattern, data) pair.

    Anchored probes come in bursts — lazy MNI asks "does any occurrence
    map v to u?" once per candidate data vertex — so the per-pattern setup
    (index resolution, matching order, node signature requirements) is
    computed once here and shared across every probe.
    """

    __slots__ = ("pattern", "data", "resolved", "requirements", "order")

    def __init__(
        self, pattern: Pattern, data: LabeledGraph, index: IndexArg = None
    ) -> None:
        # One search context serves a burst of probes; counting contexts
        # (not probes) keeps the hot path free of instrumentation.
        _metrics.counter("repro_match_anchored_searches").inc()
        self.pattern = pattern
        self.data = data
        self.resolved = resolve_index(data, index)
        self.requirements = (
            _node_requirements(pattern) if self.resolved is not None else None
        )
        self.order = _matching_order(pattern, data)

    def iter_from(
        self, anchors: Mapping, limit: Optional[int] = None
    ) -> Iterator[Mapping]:
        """Yield occurrences extending the partial assignment ``anchors``.

        ``anchors`` maps pattern nodes to data vertices; assignments must
        be label-consistent and injective or nothing is yielded.
        """
        pattern, data = self.pattern, self.data
        resolved, requirements = self.resolved, self.requirements
        # Validate the anchors up front (cheap rejections).
        if len(set(anchors.values())) != len(anchors):
            return
        for node, vertex in anchors.items():
            if not pattern.graph.has_vertex(node) or not data.has_vertex(vertex):
                return
            if pattern.label_of(node) != data.label_of(vertex):
                return
            if data.degree(vertex) < pattern.graph.degree(node):
                return
        # Anchored pattern edges must exist between anchored images.
        for u, v in pattern.edges():
            if u in anchors and v in anchors:
                if not data.has_edge(anchors[u], anchors[v]):
                    return
        if resolved is not None and requirements is not None:
            # The signature filter applies to anchors too: an anchor whose
            # neighborhood cannot host its pattern neighbors has no witness.
            for node, vertex in anchors.items():
                if not resolved.dominates(vertex, requirements[node]):
                    return

        order = [node for node in self.order if node not in anchors]
        mapping: Dict[Vertex, Vertex] = dict(anchors)
        used: Set[Vertex] = set(anchors.values())
        yielded = 0

        def backtrack(depth: int) -> Iterator[Mapping]:
            nonlocal yielded
            if limit is not None and yielded >= limit:
                return
            if depth == len(order):
                yielded += 1
                yield dict(mapping)
                return
            node = order[depth]
            for vertex in _candidate_data_vertices(
                pattern, data, node, mapping, resolved
            ):
                if not _is_feasible(
                    pattern, data, node, vertex, mapping, used, False,
                    resolved, requirements,
                ):
                    continue
                mapping[node] = vertex
                used.add(vertex)
                yield from backtrack(depth + 1)
                del mapping[node]
                used.discard(vertex)
                if limit is not None and yielded >= limit:
                    return

        yield from backtrack(0)

    def has_witness(self, node: Vertex, vertex: Vertex) -> bool:
        """True when some occurrence maps pattern ``node`` to ``vertex``."""
        return next(self.iter_from({node: vertex}, limit=1), None) is not None


def find_anchored_isomorphisms(
    pattern: Pattern,
    data: LabeledGraph,
    anchors: Mapping,
    limit: Optional[int] = None,
    index: IndexArg = None,
) -> Iterator[Mapping]:
    """Yield occurrences extending the partial assignment ``anchors``.

    One-shot convenience over :class:`AnchoredSearch`; build the context
    yourself when probing the same pattern repeatedly.
    """
    yield from AnchoredSearch(pattern, data, index=index).iter_from(anchors, limit)


def has_occurrence_with(
    pattern: Pattern,
    data: LabeledGraph,
    node: Vertex,
    vertex: Vertex,
    index: IndexArg = None,
) -> bool:
    """True when some occurrence maps pattern ``node`` to data ``vertex``."""
    return AnchoredSearch(pattern, data, index=index).has_witness(node, vertex)


def valid_images(
    pattern: Pattern,
    data: LabeledGraph,
    node: Vertex,
    stop_after: Optional[int] = None,
    index: IndexArg = None,
) -> List[Vertex]:
    """Data vertices that host ``node`` in at least one occurrence.

    ``stop_after`` truncates the scan once that many images are confirmed —
    the heart of lazy MNI: deciding "support >= t" needs only t images per
    node, not the full occurrence set.  Candidates come straight from the
    index's pre-sorted inverted list (or a sorted set copy in brute mode);
    either way the scan order is the canonical one.  One shared
    :class:`AnchoredSearch` context serves every probe in the scan.
    """
    label = pattern.label_of(node)
    search = AnchoredSearch(pattern, data, index=index)
    if search.resolved is not None:
        candidates = search.resolved.vertices_with_label(label)
    else:
        candidates = sorted(data.vertices_with_label(label), key=repr)
    images: List[Vertex] = []
    for vertex in candidates:
        if search.has_witness(node, vertex):
            images.append(vertex)
            if stop_after is not None and len(images) >= stop_after:
                break
    return images
