"""Backtracking (sub)graph-isomorphism engine.

This is the matcher behind every occurrence enumeration in the library
(Definitions 2.1.5–2.1.9).  It is a VF2-flavored depth-first search with:

* a static matching order that starts from the rarest-label pattern node and
  grows along pattern connectivity (so partial maps are always connected when
  the pattern is connected);
* label and degree feasibility filters;
* full adjacency consistency checks against already-mapped nodes.

Two entry points:

* :func:`find_subgraph_isomorphisms` — injective label/edge-preserving maps
  from a pattern into a data graph (the paper's *occurrences*);
* :func:`find_isomorphisms` — bijections between two graphs (used for
  automorphism groups and instance-level isomorphism tests).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set

from ..graph.labeled_graph import LabeledGraph, Vertex
from ..graph.pattern import Pattern

Mapping = Dict[Vertex, Vertex]


def _matching_order(pattern: Pattern, data: Optional[LabeledGraph]) -> List[Vertex]:
    """A static node order: rarest label first, then connectivity-first growth.

    When the pattern is disconnected the order simply chains components.
    """
    graph = pattern.graph
    if data is not None:
        histogram = data.label_histogram()
        rarity = {node: histogram.get(graph.label_of(node), 0) for node in graph.vertices()}
    else:
        rarity = {node: 0 for node in graph.vertices()}

    remaining: Set[Vertex] = set(graph.vertices())
    order: List[Vertex] = []
    while remaining:
        # Prefer a node adjacent to the already-ordered prefix; tie-break on
        # label rarity in the data graph, then high degree, then repr.
        adjacent = {
            node
            for node in remaining
            if any(nbr in set(order) for nbr in graph.neighbors(node))
        }
        pool = adjacent if adjacent else remaining
        chosen = min(
            pool,
            key=lambda node: (rarity[node], -graph.degree(node), repr(node)),
        )
        order.append(chosen)
        remaining.discard(chosen)
    return order


def _candidate_data_vertices(
    pattern: Pattern,
    data: LabeledGraph,
    node: Vertex,
    mapping: Mapping,
) -> Iterator[Vertex]:
    """Data vertices that could host ``node`` given the partial ``mapping``.

    If ``node`` has a mapped pattern neighbor, candidates come from that
    neighbor's image's adjacency (cheap); otherwise from the label index.
    """
    label = pattern.label_of(node)
    mapped_neighbors = [n for n in pattern.graph.neighbors(node) if n in mapping]
    if mapped_neighbors:
        anchor = mapping[mapped_neighbors[0]]
        candidates: Set[Vertex] = data.neighbors_with_label(anchor, label)
    else:
        candidates = data.vertices_with_label(label)
    return iter(sorted(candidates, key=repr))


def _is_feasible(
    pattern: Pattern,
    data: LabeledGraph,
    node: Vertex,
    vertex: Vertex,
    mapping: Mapping,
    used: Set[Vertex],
    induced: bool,
) -> bool:
    """Check injectivity, degree, and adjacency consistency for node→vertex."""
    if vertex in used:
        return False
    if data.degree(vertex) < pattern.graph.degree(node):
        return False
    data_neighbors = data.neighbors(vertex)
    for pattern_neighbor in pattern.graph.neighbors(node):
        image = mapping.get(pattern_neighbor)
        if image is not None and image not in data_neighbors:
            return False
    if induced:
        # For induced matching, non-adjacent pattern nodes must map to
        # non-adjacent data vertices.
        for other_node, other_vertex in mapping.items():
            if other_node in pattern.graph.neighbors(node):
                continue
            if other_vertex in data_neighbors:
                return False
    return True


def find_subgraph_isomorphisms(
    pattern: Pattern,
    data: LabeledGraph,
    induced: bool = False,
    limit: Optional[int] = None,
) -> Iterator[Mapping]:
    """Yield every occurrence of ``pattern`` in ``data``.

    An occurrence is an injective map ``f: V_P -> V_G`` that preserves labels
    and edges (Def. 2.1.8).  With ``induced=True`` non-edges must also be
    preserved (rarely needed; the paper uses non-induced semantics).

    Parameters
    ----------
    limit:
        Stop after yielding this many occurrences (None = unlimited).

    Yields
    ------
    dict mapping pattern node -> data vertex, a fresh dict per occurrence.
    """
    if pattern.num_nodes > data.num_vertices:
        return
    order = _matching_order(pattern, data)
    mapping: Mapping = {}
    used: Set[Vertex] = set()
    yielded = 0

    def backtrack(depth: int) -> Iterator[Mapping]:
        nonlocal yielded
        if limit is not None and yielded >= limit:
            return
        if depth == len(order):
            yielded += 1
            yield dict(mapping)
            return
        node = order[depth]
        for vertex in _candidate_data_vertices(pattern, data, node, mapping):
            if not _is_feasible(pattern, data, node, vertex, mapping, used, induced):
                continue
            mapping[node] = vertex
            used.add(vertex)
            yield from backtrack(depth + 1)
            del mapping[node]
            used.discard(vertex)
            if limit is not None and yielded >= limit:
                return

    yield from backtrack(0)


def count_subgraph_isomorphisms(pattern: Pattern, data: LabeledGraph) -> int:
    """The number of occurrences of ``pattern`` in ``data``."""
    return sum(1 for _ in find_subgraph_isomorphisms(pattern, data))


def has_subgraph_isomorphism(pattern: Pattern, data: LabeledGraph) -> bool:
    """True when ``pattern`` occurs at least once in ``data``."""
    return next(find_subgraph_isomorphisms(pattern, data, limit=1), None) is not None


def find_isomorphisms(
    first: LabeledGraph, second: LabeledGraph, limit: Optional[int] = None
) -> Iterator[Mapping]:
    """Yield every isomorphism between two graphs (Def. 2.1.5).

    An isomorphism must be a bijection that preserves labels, edges, and
    non-edges; this is subgraph isomorphism plus equal sizes plus induced
    matching.
    """
    if first.num_vertices != second.num_vertices:
        return
    if first.num_edges != second.num_edges:
        return
    if first.label_histogram() != second.label_histogram():
        return
    if first.degree_sequence() != second.degree_sequence():
        return
    yield from find_subgraph_isomorphisms(
        Pattern(first), second, induced=True, limit=limit
    )


def are_isomorphic(first: LabeledGraph, second: LabeledGraph) -> bool:
    """True when the two labeled graphs are isomorphic."""
    return next(find_isomorphisms(first, second, limit=1), None) is not None
