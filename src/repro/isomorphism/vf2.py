"""Backtracking (sub)graph-isomorphism engine.

This is the matcher behind every occurrence enumeration in the library
(Definitions 2.1.5–2.1.9).  It is a VF2-flavored depth-first search with:

* a static matching order that starts from the rarest-label pattern node and
  grows along pattern connectivity (so partial maps are always connected when
  the pattern is connected);
* label and degree feasibility filters;
* full adjacency consistency checks against already-mapped nodes.

When a :class:`~repro.index.GraphIndex` is available (the default — see the
``index`` parameter) the search additionally uses:

* pre-sorted inverted lists and per-vertex label-filtered adjacency for
  candidate domains (no per-call set copies or ``repr`` sorts);
* intersection over *all* mapped pattern neighbors, anchored at the one
  with the smallest compatible adjacency list;
* neighbor-label signature dominance filtering (a data vertex must carry,
  per label, at least as many neighbors as the pattern node requires).

Both modes explore candidates in the same canonical order and the extra
filters only cut subtrees that cannot complete, so indexed and brute-force
enumeration yield byte-identical occurrence sequences (asserted by
``tests/test_index_equivalence.py``).

Two entry points:

* :func:`find_subgraph_isomorphisms` — injective label/edge-preserving maps
  from a pattern into a data graph (the paper's *occurrences*);
* :func:`find_isomorphisms` — bijections between two graphs (used for
  automorphism groups and instance-level isomorphism tests).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set

from ..graph.labeled_graph import Label, LabeledGraph, Vertex
from ..graph.pattern import Pattern
from ..index.compact import CompactGraphIndex
from ..index.graph_index import GraphIndex, IndexArg, resolve_index
from ..obs import metrics as _metrics

Mapping = Dict[Vertex, Vertex]


def _matching_order(pattern: Pattern, data: Optional[LabeledGraph]) -> List[Vertex]:
    """A static node order: rarest label first, then connectivity-first growth.

    When the pattern is disconnected the order simply chains components.
    """
    graph = pattern.graph
    if data is not None:
        histogram = data.label_histogram()
        rarity = {
            node: histogram.get(graph.label_of(node), 0) for node in graph.vertices()
        }
    else:
        rarity = {node: 0 for node in graph.vertices()}

    remaining: Set[Vertex] = set(graph.vertices())
    ordered: Set[Vertex] = set()
    order: List[Vertex] = []
    while remaining:
        # Prefer a node adjacent to the already-ordered prefix; tie-break on
        # label rarity in the data graph, then high degree, then repr.
        adjacent = {
            node
            for node in remaining
            if any(nbr in ordered for nbr in graph.neighbors(node))
        }
        pool = adjacent if adjacent else remaining
        chosen = min(
            pool,
            key=lambda node: (rarity[node], -graph.degree(node), repr(node)),
        )
        order.append(chosen)
        ordered.add(chosen)
        remaining.discard(chosen)
    return order


def _node_requirements(pattern: Pattern) -> Dict[Vertex, Dict[Label, int]]:
    """Per pattern node: multiset of its neighbors' labels.

    Used with :meth:`GraphIndex.dominates` — pattern neighbors with one
    label must map injectively into same-label data neighbors, so a data
    vertex whose signature does not dominate the requirement can never
    host the node.
    """
    graph = pattern.graph
    requirements: Dict[Vertex, Dict[Label, int]] = {}
    for node in graph.vertices():
        counts: Dict[Label, int] = {}
        for neighbor in graph.neighbors(node):
            label = graph.label_of(neighbor)
            counts[label] = counts.get(label, 0) + 1
        requirements[node] = counts
    return requirements


class _CompactPlan:
    """Static search plan over interned ids for one (pattern, data) pair.

    Precomputes, per depth of the matching order: the pattern node's
    interned label, the depths of its already-mapped pattern neighbors,
    its degree requirement, and its neighbor-label signature requirement
    as ``(lint, count)`` pairs.  Shared by the compact collector and
    generator drivers (and mirrored by the anchored engine) so the
    engines can never diverge on domain computation.

    ``empty`` is set when some pattern label has no live data vertex —
    every domain at that depth would be empty, so the search has no
    results.
    """

    __slots__ = ("order", "lints", "prior", "min_deg", "reqs", "empty")

    def __init__(
        self, pattern: Pattern, ci: CompactGraphIndex, order: List[Vertex]
    ) -> None:
        pattern_graph = pattern.graph
        lint_of = ci.table._lint_of
        inv = ci._inv
        self.order = order
        self.empty = False
        lints: List[int] = []
        for node in order:
            li = lint_of.get(pattern_graph.label_of(node))
            if li is None or li not in inv:
                self.empty = True
            lints.append(-1 if li is None else li)
        self.lints = lints
        position = {node: depth for depth, node in enumerate(order)}
        self.prior: List[tuple] = []
        self.min_deg: List[int] = []
        self.reqs: List[Optional[tuple]] = []
        if self.empty:
            return
        requirements = _node_requirements(pattern)
        for depth, node in enumerate(order):
            neighbors = pattern_graph.neighbors(node)
            prior = tuple(
                position[n] for n in neighbors if position[n] < depth
            )
            self.prior.append(prior)
            self.min_deg.append(len(neighbors))
            if len(prior) < len(neighbors):
                # Signature requirements only help while some pattern
                # neighbor is still unmapped (same rule as the dict
                # collector); requirement labels all label order nodes,
                # so their lints exist when the plan is non-empty.
                self.reqs.append(
                    tuple(
                        (lint_of[label], count)
                        for label, count in requirements[node].items()
                    )
                )
            else:
                self.reqs.append(None)


def _compact_domain(ci: CompactGraphIndex, plan: _CompactPlan, depth: int, images):
    """Candidate domain at ``depth``: ``(row, start, stop, other_sets)``.

    The domain is the smallest label-filtered CSR segment among the
    mapped pattern neighbors' images (ties resolved to the earliest
    anchor, as in :func:`_indexed_candidate_domain`), with the other
    anchors' segments returned as membership sets; with no anchors it is
    the inverted list.  Iterating ``row[start:stop]`` filtered by
    ``other_sets`` visits exactly the dict engine's candidates in the
    same canonical order.  The hot engines below inline this logic; this
    helper is the readable reference (and serves the anchored engine's
    generator path).
    """
    li = plan.lints[depth]
    anchors = plan.prior[depth]
    if not anchors:
        arr = ci._inv[li]
        return arr, 0, len(arr), None
    row, start, stop = ci._segment(images[anchors[0]], li)
    if len(anchors) == 1:
        return row, start, stop, None
    best = anchors[0]
    best_len = stop - start
    for anchor in anchors[1:]:
        other_row, other_start, other_stop = ci._segment(images[anchor], li)
        if other_stop - other_start < best_len:
            row, start, stop = other_row, other_start, other_stop
            best_len = other_stop - other_start
            best = anchor
    other_sets = [
        ci._segment_set(images[anchor], li)
        for anchor in anchors
        if anchor != best
    ]
    return row, start, stop, other_sets


def _collect_items_compact(
    pattern: Pattern,
    data: LabeledGraph,
    ci: CompactGraphIndex,
    limit: Optional[int],
):
    """Compact twin of the collector engine: int-id search, decoded results.

    The recursion inlines the CSR directory scans (segment lookup and
    signature-requirement counting) rather than calling the index
    helpers — this loop runs once per candidate expansion and the call
    overhead dominated the win otherwise.  Two extra prunes are free
    here and byte-identity-safe (monotone filters only shrink doomed
    subtrees): when every pattern neighbor is already mapped the degree
    and requirement checks are implied by segment membership and are
    skipped, and requirement verdicts are memoized per (depth, vint)
    since they are branch-independent.
    """
    order = _matching_order(pattern, data)
    plan = _CompactPlan(pattern, ci, order)
    if plan.empty:
        return []
    depth_count = len(order)
    position = {node: depth for depth, node in enumerate(order)}
    item_nodes = sorted(order, key=repr)
    item_pos = [position[node] for node in item_nodes]
    decode = ci.table.vertex_of
    deg = ci._deg
    rows = ci._rows
    inv = ci._inv
    seg_set = ci._segment_set
    lints = plan.lints
    priors = plan.prior
    min_degrees = plan.min_deg
    requirement_items = plan.reqs
    vertex_count = len(decode)
    used = bytearray(vertex_count)
    req_memo = [
        bytearray(vertex_count) if requirement_items[d] is not None else None
        for d in range(depth_count)
    ]
    images = [0] * depth_count
    results: List[tuple] = []

    def rec(depth: int) -> bool:
        if depth == depth_count:
            results.append(
                tuple(zip(item_nodes, [decode[images[p]] for p in item_pos]))
            )
            return limit is None or len(results) < limit
        li = lints[depth]
        anchors = priors[depth]
        others = None
        if not anchors:
            seg = inv[li]
            start = 0
            stop = len(seg)
        else:
            seg = rows[images[anchors[0]]]
            body = 1 + 2 * seg[0]
            cnt = 0
            j = 1
            while j < body:
                gl = seg[j]
                if gl >= li:
                    if gl == li:
                        cnt = seg[j + 1]
                    break
                body += seg[j + 1]
                j += 2
            start = body
            stop = body + cnt
            if len(anchors) > 1:
                # Smallest segment wins (strict <, earliest anchor on
                # ties); the rest probe as memoized frozensets.
                best = 0
                best_len = cnt
                sets = [None] * len(anchors)
                for a in range(1, len(anchors)):
                    members = seg_set(images[anchors[a]], li)
                    sets[a] = members
                    if len(members) < best_len:
                        best = a
                        best_len = len(members)
                if best:
                    seg = rows[images[anchors[best]]]
                    body = 1 + 2 * seg[0]
                    cnt = 0
                    j = 1
                    while j < body:
                        gl = seg[j]
                        if gl >= li:
                            if gl == li:
                                cnt = seg[j + 1]
                            break
                        body += seg[j + 1]
                        j += 2
                    start = body
                    stop = body + cnt
                    sets[best] = None
                    sets[0] = seg_set(images[anchors[0]], li)
                others = [s for s in sets if s is not None]
        requirement = requirement_items[depth]
        if requirement is None:
            # All pattern neighbors mapped: adjacency to each mapped
            # image (segment + set membership) implies the degree bound.
            for i in range(start, stop):
                w = seg[i]
                if used[w]:
                    continue
                if others is not None:
                    ok = True
                    for members in others:
                        if w not in members:
                            ok = False
                            break
                    if not ok:
                        continue
                images[depth] = w
                used[w] = 1
                keep_going = rec(depth + 1)
                used[w] = 0
                if not keep_going:
                    return False
        else:
            memo = req_memo[depth]
            min_degree = min_degrees[depth]
            for i in range(start, stop):
                w = seg[i]
                if used[w] or deg[w] < min_degree:
                    continue
                state = memo[w]
                if state == 2:
                    continue
                if state == 0:
                    wrow = rows[w]
                    dir_end = 1 + 2 * wrow[0]
                    ok = True
                    for req_li, count in requirement:
                        c = 0
                        j = 1
                        while j < dir_end:
                            gl = wrow[j]
                            if gl >= req_li:
                                if gl == req_li:
                                    c = wrow[j + 1]
                                break
                            j += 2
                        if c < count:
                            ok = False
                            break
                    if not ok:
                        memo[w] = 2
                        continue
                    memo[w] = 1
                if others is not None:
                    ok = True
                    for members in others:
                        if w not in members:
                            ok = False
                            break
                    if not ok:
                        continue
                images[depth] = w
                used[w] = 1
                keep_going = rec(depth + 1)
                used[w] = 0
                if not keep_going:
                    return False
        return True

    rec(0)
    return results


def _iter_mappings_compact(
    pattern: Pattern,
    data: LabeledGraph,
    ci: CompactGraphIndex,
    limit: Optional[int],
) -> Iterator[Mapping]:
    """Compact twin of the generator engine (non-induced matching only).

    Shares the collector's pruning structure: requirement verdicts are
    memoized per (depth, vint), and the degree/requirement checks are
    skipped entirely when every pattern neighbor is already mapped
    (segment membership implies them — monotone filters, so
    byte-identity-safe).
    """
    order = _matching_order(pattern, data)
    plan = _CompactPlan(pattern, ci, order)
    if plan.empty:
        return
    depth_count = len(order)
    decode = ci.table.vertex_of
    deg = ci._deg
    seg_len = ci._segment_len
    min_degrees = plan.min_deg
    requirement_items = plan.reqs
    vertex_count = len(decode)
    used = bytearray(vertex_count)
    req_memo = [
        bytearray(vertex_count) if requirement_items[d] is not None else None
        for d in range(depth_count)
    ]
    images = [0] * depth_count
    yielded = 0

    def backtrack(depth: int) -> Iterator[Mapping]:
        nonlocal yielded
        if limit is not None and yielded >= limit:
            return
        if depth == depth_count:
            yielded += 1
            yield {
                order[d]: decode[images[d]] for d in range(depth_count)
            }
            return
        row, start, stop, other_sets = _compact_domain(ci, plan, depth, images)
        requirement = requirement_items[depth]
        min_degree = min_degrees[depth]
        memo = req_memo[depth]
        for i in range(start, stop):
            w = row[i]
            if used[w]:
                continue
            if requirement is not None:
                if deg[w] < min_degree:
                    continue
                state = memo[w]
                if state == 2:
                    continue
                if state == 0:
                    ok = True
                    for req_lint, count in requirement:
                        if seg_len(w, req_lint) < count:
                            ok = False
                            break
                    memo[w] = 1 if ok else 2
                    if not ok:
                        continue
            if other_sets is not None:
                ok = True
                for members in other_sets:
                    if w not in members:
                        ok = False
                        break
                if not ok:
                    continue
            images[depth] = w
            used[w] = 1
            yield from backtrack(depth + 1)
            used[w] = 0
            if limit is not None and yielded >= limit:
                return

    yield from backtrack(0)


def _indexed_candidate_domain(
    index: GraphIndex,
    data: LabeledGraph,
    label: Label,
    anchor_images: List[Vertex],
) -> Iterable[Vertex]:
    """Candidate domain from the index, in canonical order.

    ``anchor_images`` are the (already distinct) images of the node's
    mapped pattern neighbors.  The domain is the smallest label-filtered
    adjacency list among them, intersected with the other anchors'
    adjacency; with no anchors it is the inverted list.  This single
    helper serves both the generator and collector engines so the two can
    never diverge on domain computation.
    """
    if not anchor_images:
        return index.vertices_with_label(label)
    best_image = anchor_images[0]
    best = index.neighbors_with_label(best_image, label)
    for image in anchor_images[1:]:
        narrowed = index.neighbors_with_label(image, label)
        if len(narrowed) < len(best):
            best, best_image = narrowed, image
    if len(anchor_images) == 1:
        return best
    other_sets = [
        data.neighbors(image) for image in anchor_images if image != best_image
    ]
    return [v for v in best if all(v in nbrs for nbrs in other_sets)]


def _candidate_data_vertices(
    pattern: Pattern,
    data: LabeledGraph,
    node: Vertex,
    mapping: Mapping,
    index: Optional[GraphIndex] = None,
) -> Iterable[Vertex]:
    """Data vertices that could host ``node`` given the partial ``mapping``.

    If ``node`` has a mapped pattern neighbor, candidates come from that
    neighbor's image's adjacency (cheap); otherwise from the label index.
    With an index, the adjacency lists are pre-sorted and the domain is
    intersected over every mapped neighbor.
    """
    label = pattern.label_of(node)
    mapped_neighbors = [n for n in pattern.graph.neighbors(node) if n in mapping]
    if index is not None:
        return _indexed_candidate_domain(
            index, data, label, [mapping[n] for n in mapped_neighbors]
        )
    if mapped_neighbors:
        anchor = mapping[mapped_neighbors[0]]
        candidates: Set[Vertex] = data.neighbors_with_label(anchor, label)
    else:
        candidates = data.vertices_with_label(label)
    return sorted(candidates, key=repr)


def _is_feasible(
    pattern: Pattern,
    data: LabeledGraph,
    node: Vertex,
    vertex: Vertex,
    mapping: Mapping,
    used: Set[Vertex],
    induced: bool,
    index: Optional[GraphIndex] = None,
    requirements: Optional[Dict[Vertex, Dict[Label, int]]] = None,
) -> bool:
    """Check injectivity, degree, and adjacency consistency for node→vertex."""
    if vertex in used:
        return False
    if data.degree(vertex) < pattern.graph.degree(node):
        return False
    if index is not None and requirements is not None:
        if not index.dominates(vertex, requirements[node]):
            return False
    data_neighbors = data.neighbors(vertex)
    for pattern_neighbor in pattern.graph.neighbors(node):
        image = mapping.get(pattern_neighbor)
        if image is not None and image not in data_neighbors:
            return False
    if induced:
        # For induced matching, non-adjacent pattern nodes must map to
        # non-adjacent data vertices.
        for other_node, other_vertex in mapping.items():
            if other_node in pattern.graph.neighbors(node):
                continue
            if other_vertex in data_neighbors:
                return False
    return True


def find_subgraph_isomorphisms(
    pattern: Pattern,
    data: LabeledGraph,
    induced: bool = False,
    limit: Optional[int] = None,
    index: IndexArg = None,
) -> Iterator[Mapping]:
    """Yield every occurrence of ``pattern`` in ``data``.

    An occurrence is an injective map ``f: V_P -> V_G`` that preserves labels
    and edges (Def. 2.1.8).  With ``induced=True`` non-edges must also be
    preserved (rarely needed; the paper uses non-induced semantics).

    Parameters
    ----------
    limit:
        Stop after yielding this many occurrences (None = unlimited).
    index:
        ``None`` (default) uses the data graph's cached
        :class:`~repro.index.GraphIndex` (built on first use); ``False``
        forces the brute-force reference path; a ``GraphIndex`` instance
        is used when it is current for this data graph, and silently
        replaced by a fresh cached index otherwise (staleness safety
        net).  All modes yield identical occurrence sequences.

    Yields
    ------
    dict mapping pattern node -> data vertex, a fresh dict per occurrence.
    """
    _metrics.counter("repro_match_vf2_calls").inc()
    if pattern.num_nodes > data.num_vertices:
        return
    resolved = resolve_index(data, index)
    if isinstance(resolved, CompactGraphIndex) and not induced:
        # Int-id fast path (induced matching stays on the generic path,
        # which works against the compact index's decoded API).
        yield from _iter_mappings_compact(pattern, data, resolved, limit)
        return
    requirements = _node_requirements(pattern) if resolved is not None else None
    order = _matching_order(pattern, data)
    mapping: Mapping = {}
    used: Set[Vertex] = set()
    yielded = 0

    def backtrack(depth: int) -> Iterator[Mapping]:
        nonlocal yielded
        if limit is not None and yielded >= limit:
            return
        if depth == len(order):
            yielded += 1
            yield dict(mapping)
            return
        node = order[depth]
        for vertex in _candidate_data_vertices(pattern, data, node, mapping, resolved):
            if not _is_feasible(
                pattern, data, node, vertex, mapping, used, induced,
                resolved, requirements,
            ):
                continue
            mapping[node] = vertex
            used.add(vertex)
            yield from backtrack(depth + 1)
            del mapping[node]
            used.discard(vertex)
            if limit is not None and yielded >= limit:
                return

    yield from backtrack(0)


def collect_subgraph_isomorphism_items(
    pattern: Pattern,
    data: LabeledGraph,
    limit: Optional[int] = None,
    index: IndexArg = None,
):
    """All (non-induced) occurrences as sorted ``(node, vertex)`` item tuples.

    This is the hot-path twin of :func:`find_subgraph_isomorphisms`: the
    same search in the same exploration order, but collecting into a list
    with per-depth static precomputation (anchor neighbors, prior-neighbor
    adjacency checks, degree requirements, signature requirements) instead
    of resuming a generator chain per node.  Items come back pre-sorted in
    the canonical ``repr`` node order — exactly what
    :meth:`Occurrence.from_mapping` would produce — so occurrence
    construction skips its per-occurrence sort.

    The equivalence suite pins this against the generator engine in both
    indexed and brute modes.
    """
    _metrics.counter("repro_match_vf2_calls").inc()
    if pattern.num_nodes > data.num_vertices:
        return []
    if limit is not None and limit <= 0:
        return []  # mirror the generator engine: limit=0 yields nothing
    resolved = resolve_index(data, index)
    if isinstance(resolved, CompactGraphIndex):
        return _collect_items_compact(pattern, data, resolved, limit)
    order = _matching_order(pattern, data)
    pattern_graph = pattern.graph

    depth_count = len(order)
    position = {node: depth for depth, node in enumerate(order)}
    item_nodes = sorted(order, key=repr)
    labels = [pattern_graph.label_of(node) for node in order]
    # Static per-depth structure: pattern neighbors mapped before this
    # depth (the only ones adjacency checks can bind against), and the
    # degree each candidate must meet.
    prior_neighbors: List[List[Vertex]] = []
    min_degrees: List[int] = []
    for depth, node in enumerate(order):
        neighbors = pattern_graph.neighbors(node)
        prior_neighbors.append([n for n in neighbors if position[n] < depth])
        min_degrees.append(len(neighbors))
    # Signature requirements only help while some pattern neighbor is
    # still unmapped: once every neighbor is mapped and adjacent, the
    # vertex trivially dominates its requirement.
    requirement_items: List[Optional[tuple]] = [None] * depth_count
    if resolved is not None:
        requirements = _node_requirements(pattern)
        for depth, node in enumerate(order):
            if len(prior_neighbors[depth]) < min_degrees[depth]:
                requirement_items[depth] = tuple(requirements[node].items())

    if resolved is not None:
        degree_get = resolved.degree_map().__getitem__
        signature_map = resolved.signature_map()
    else:
        degree_get = data.degree
        signature_map = None

    data_neighbors = data.neighbors
    results: List[tuple] = []
    mapping: Mapping = {}
    used: Set[Vertex] = set()
    image_of = mapping.__getitem__

    def rec(depth: int) -> bool:
        """Explore one depth; False aborts the whole search (limit hit)."""
        if depth == depth_count:
            results.append(tuple(zip(item_nodes, map(image_of, item_nodes))))
            return limit is None or len(results) < limit
        node = order[depth]
        label = labels[depth]
        anchors = prior_neighbors[depth]
        if resolved is not None:
            candidates = _indexed_candidate_domain(
                resolved, data, label, [mapping[n] for n in anchors]
            )
        else:
            if anchors:
                pool = data.neighbors_with_label(mapping[anchors[0]], label)
            else:
                pool = data.vertices_with_label(label)
            candidates = sorted(pool, key=repr)
        min_degree = min_degrees[depth]
        requirement = requirement_items[depth]
        # Indexed candidates are drawn from (and intersected over) every
        # anchor's adjacency, so the per-candidate adjacency loop is only
        # needed on the brute path, where candidates come from one anchor.
        check_neighbors = anchors[1:] if resolved is None else ()
        for vertex in candidates:
            if vertex in used:
                continue
            if degree_get(vertex) < min_degree:
                continue
            if requirement is not None:
                signature = signature_map[vertex]
                ok = True
                for req_label, count in requirement:
                    if signature.get(req_label, 0) < count:
                        ok = False
                        break
                if not ok:
                    continue
            if check_neighbors:
                nbrs = data_neighbors(vertex)
                ok = True
                for prior in check_neighbors:
                    if mapping[prior] not in nbrs:
                        ok = False
                        break
                if not ok:
                    continue
            mapping[node] = vertex
            used.add(vertex)
            keep_going = rec(depth + 1)
            del mapping[node]
            used.discard(vertex)
            if not keep_going:
                return False
        return True

    rec(0)
    return results


def count_subgraph_isomorphisms(
    pattern: Pattern, data: LabeledGraph, index: IndexArg = None
) -> int:
    """The number of occurrences of ``pattern`` in ``data``."""
    return sum(1 for _ in find_subgraph_isomorphisms(pattern, data, index=index))


def has_subgraph_isomorphism(
    pattern: Pattern, data: LabeledGraph, index: IndexArg = None
) -> bool:
    """True when ``pattern`` occurs at least once in ``data``."""
    return (
        next(find_subgraph_isomorphisms(pattern, data, limit=1, index=index), None)
        is not None
    )


def find_isomorphisms(
    first: LabeledGraph, second: LabeledGraph, limit: Optional[int] = None
) -> Iterator[Mapping]:
    """Yield every isomorphism between two graphs (Def. 2.1.5).

    An isomorphism must be a bijection that preserves labels, edges, and
    non-edges; this is subgraph isomorphism plus equal sizes plus induced
    matching.  Isomorphism checks are mostly run on tiny pattern-sized
    graphs, so the brute-force path is used (no index build).
    """
    if first.num_vertices != second.num_vertices:
        return
    if first.num_edges != second.num_edges:
        return
    if first.label_histogram() != second.label_histogram():
        return
    if first.degree_sequence() != second.degree_sequence():
        return
    yield from find_subgraph_isomorphisms(
        Pattern(first), second, induced=True, limit=limit, index=False
    )


def are_isomorphic(first: LabeledGraph, second: LabeledGraph) -> bool:
    """True when the two labeled graphs are isomorphic."""
    return next(find_isomorphisms(first, second, limit=1), None) is not None
