"""repro — support measures for frequent pattern mining in a single large graph.

A full reproduction of *"Flexible and Feasible Support Measures for Mining
Frequent Patterns in Large Labeled Graphs"* (SIGMOD '17): the
occurrence/instance hypergraph framework, the MI and MVC support measures,
the MIS/MIES equivalence, LP relaxations, overlap semantics, and a
pattern-growth miner that uses any of the measures.

Quickstart
----------
>>> from repro import LabeledGraph, Pattern, chain_values
>>> g = LabeledGraph(vertices=[(1, "a"), (2, "b"), (3, "b"), (4, "a")],
...                  edges=[(1, 2), (2, 3), (3, 4)])
>>> p = Pattern.from_edges([("v1", "a"), ("v2", "b"), ("v3", "b")],
...                        [("v1", "v2"), ("v2", "v3")])
>>> values = chain_values(p, g)
>>> int(values["mni"]), int(values["mi"])
(2, 1)
"""

from .errors import (
    BudgetExceededError,
    DatasetError,
    GraphError,
    HypergraphError,
    InfeasibleLPError,
    LPError,
    MeasureError,
    MiningError,
    PatternError,
    ReproError,
    UnboundedLPError,
)
from .graph import (
    LabeledGraph,
    Pattern,
    automorphisms,
    canonical_certificate,
    load_graph,
    load_pattern,
    path_pattern,
    save_graph,
    transitive_node_subsets,
    triangle_pattern,
    vertex_orbits,
)
from .isomorphism import (
    Instance,
    Occurrence,
    are_isomorphic,
    find_instances,
    find_occurrences,
    summarize_matches,
)
from .hypergraph import (
    Hypergraph,
    HypergraphBundle,
    dual_hypergraph,
    instance_hypergraph,
    occurrence_hypergraph,
    occurrence_overlap_graph,
)
from .index import GraphIndex, get_index
from .measures import (
    available_measures,
    chain_values,
    compute_support,
    measure_info,
    verify_bounding_chain,
)

__version__ = "1.0.0"

__all__ = [
    "BudgetExceededError",
    "DatasetError",
    "GraphError",
    "HypergraphError",
    "InfeasibleLPError",
    "LPError",
    "MeasureError",
    "MiningError",
    "PatternError",
    "ReproError",
    "UnboundedLPError",
    "LabeledGraph",
    "Pattern",
    "automorphisms",
    "canonical_certificate",
    "load_graph",
    "load_pattern",
    "path_pattern",
    "save_graph",
    "transitive_node_subsets",
    "triangle_pattern",
    "vertex_orbits",
    "Instance",
    "Occurrence",
    "are_isomorphic",
    "find_instances",
    "find_occurrences",
    "summarize_matches",
    "Hypergraph",
    "HypergraphBundle",
    "dual_hypergraph",
    "instance_hypergraph",
    "occurrence_hypergraph",
    "occurrence_overlap_graph",
    "GraphIndex",
    "get_index",
    "available_measures",
    "chain_values",
    "compute_support",
    "measure_info",
    "verify_bounding_chain",
    "__version__",
]
