"""Automorphism groups, vertex orbits, and transitive node subsets.

These are the ingredients of the MI measure (Section 3.2):

* Definition 3.2.2 — a pair ``(u, v)`` is *transitive* in a graph when some
  automorphism maps ``u`` to ``v``.  Transitivity is an equivalence relation
  (Theorem 3.1), so its classes are exactly the **orbits** of the
  automorphism group.
* Definition 3.2.3 — a *transitive node subset* of a pattern is a node set
  in which every pair is transitive, i.e. a subset of one orbit.
* The MI measure minimizes over transitive node subsets of **subpatterns**
  of ``P`` (Definition 3.2.4).  Following the paper's own examples (Figs. 4,
  9, 10) we enumerate orbits of *connected* subpatterns; see DESIGN.md for
  why edgeless subpatterns must be excluded (they would collapse structural
  overlap onto simple overlap and break Figure 10).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..isomorphism.vf2 import Mapping, find_isomorphisms
from .labeled_graph import LabeledGraph, Vertex
from .pattern import Pattern


def automorphisms(graph: LabeledGraph) -> List[Mapping]:
    """All automorphisms of ``graph`` (Def. 2.1.6), identity included."""
    return list(find_isomorphisms(graph, graph))


def automorphism_group_size(graph: LabeledGraph) -> int:
    """``|Aut(G)|``."""
    return sum(1 for _ in find_isomorphisms(graph, graph))


def is_transitive_pair(graph: LabeledGraph, u: Vertex, v: Vertex) -> bool:
    """True when some automorphism of ``graph`` maps ``u`` to ``v``.

    ``u == v`` is always transitive via the identity (the paper notes the
    pair may be equal).
    """
    if u == v:
        return graph.has_vertex(u)
    if graph.label_of(u) != graph.label_of(v):
        return False
    if graph.degree(u) != graph.degree(v):
        return False
    return any(auto[u] == v for auto in find_isomorphisms(graph, graph))


def vertex_orbits(graph: LabeledGraph) -> List[FrozenSet[Vertex]]:
    """The orbits of ``Aut(graph)`` acting on the vertex set.

    By Theorem 3.1 transitivity is transitive, so the maximal transitive
    node subsets are exactly these orbits.
    """
    parent: Dict[Vertex, Vertex] = {v: v for v in graph.vertices()}

    def find(x: Vertex) -> Vertex:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: Vertex, b: Vertex) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    for auto in find_isomorphisms(graph, graph):
        for u, v in auto.items():
            union(u, v)

    groups: Dict[Vertex, Set[Vertex]] = {}
    for v in graph.vertices():
        groups.setdefault(find(v), set()).add(v)
    return sorted(
        (frozenset(g) for g in groups.values()),
        key=lambda s: sorted(map(repr, s)),
    )


def transitive_node_subsets(
    pattern: Pattern,
    max_subpattern_size: Optional[int] = None,
    induced: bool = True,
    include_partial: bool = False,
) -> List[FrozenSet[Vertex]]:
    """Every transitive node subset of every connected subpattern of ``pattern``.

    This is the collection ``T`` of Definition 3.2.4.  For each connected
    subpattern ``p`` of ``pattern`` we compute the orbits of ``Aut(p)``;
    each orbit is a transitive node subset.  All singletons are always
    present (they are orbits of one-node subpatterns), which is what makes
    ``sigma_MI <= sigma_MNI`` (Theorem 3.4).

    Parameters
    ----------
    max_subpattern_size:
        Cap on the subpattern node count to bound work on larger patterns;
        ``None`` enumerates everything.
    induced:
        Restrict to induced connected subpatterns (default, sufficient for
        every example in the paper).  With ``False``, all connected edge
        subsets are considered as well — strictly more subsets, strictly
        smaller (or equal) MI, still anti-monotonic.
    include_partial:
        Also include every sub-subset of each orbit (any subset of an orbit
        is itself transitive).  The minimum image count is always achieved
        on a full orbit or a singleton, so this defaults to off; it exists
        for the structural-overlap machinery which asks about *pairs*.

    Returns
    -------
    Deterministically ordered list of frozensets of pattern nodes.
    """
    subsets: Set[FrozenSet[Vertex]] = set()
    for node in pattern.nodes():
        subsets.add(frozenset([node]))
    for subpattern in pattern.connected_subpatterns(
        max_size=max_subpattern_size, induced=induced
    ):
        for orbit in vertex_orbits(subpattern.graph):
            subsets.add(orbit)
            if include_partial and len(orbit) > 2:
                # All 2-subsets of an orbit; enough for pairwise queries.
                members = sorted(orbit, key=repr)
                for i in range(len(members)):
                    for j in range(i + 1, len(members)):
                        subsets.add(frozenset((members[i], members[j])))
    return sorted(subsets, key=lambda s: (len(s), sorted(map(repr, s))))


def transitive_pairs(
    pattern: Pattern, max_subpattern_size: Optional[int] = None
) -> Set[Tuple[Vertex, Vertex]]:
    """All ordered pairs ``(u, w)`` transitive in some connected subpattern.

    Used by the structural-overlap test (Definition 4.5.2).  The result is
    symmetric and includes the diagonal ``(u, u)``.
    """
    pairs: Set[Tuple[Vertex, Vertex]] = set()
    for node in pattern.nodes():
        pairs.add((node, node))
    for subset in transitive_node_subsets(
        pattern, max_subpattern_size=max_subpattern_size
    ):
        members = sorted(subset, key=repr)
        for u in members:
            for w in members:
                pairs.add((u, w))
    return pairs
