"""Patterns — labeled graphs used as queries (paper Definition 2.1.3).

A :class:`Pattern` wraps a :class:`~repro.graph.labeled_graph.LabeledGraph`
and adds the pattern-specific vocabulary of the paper: *nodes* (pattern
vertices, to distinguish them from data-graph vertices), subpattern /
superpattern relations (Def. 2.1.4), and the enumeration of connected
subpatterns needed by the MI measure's transitive node subsets.
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from ..errors import PatternError
from .labeled_graph import Edge, Label, LabeledGraph, Vertex


class Pattern:
    """A query pattern ``P = (V_P, E_P, lambda_P)``.

    Pattern nodes are ordered deterministically (:meth:`nodes`), and the
    class exposes the subpattern machinery used by MI / structural overlap.

    Examples
    --------
    >>> p = Pattern.from_edges([("v1", "a"), ("v2", "b")], [("v1", "v2")])
    >>> p.num_nodes
    2
    """

    __slots__ = ("graph",)

    def __init__(self, graph: LabeledGraph) -> None:
        if graph.num_vertices == 0:
            raise PatternError("a pattern must have at least one node")
        self.graph = graph

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        nodes: Iterable[Tuple[Vertex, Label]],
        edges: Iterable[Edge],
        name: str = "",
    ) -> "Pattern":
        """Build a pattern from ``(node, label)`` pairs and an edge list."""
        return cls(LabeledGraph(vertices=nodes, edges=edges, name=name))

    @classmethod
    def single_node(cls, label: Label, node: Vertex = "v1") -> "Pattern":
        """The one-node pattern with the given label."""
        return cls(LabeledGraph(vertices=[(node, label)]))

    @classmethod
    def single_edge(
        cls, label_u: Label, label_v: Label, nodes: Tuple[Vertex, Vertex] = ("v1", "v2")
    ) -> "Pattern":
        """The one-edge pattern with endpoint labels ``label_u``, ``label_v``."""
        u, v = nodes
        return cls.from_edges([(u, label_u), (v, label_v)], [(u, v)])

    # ------------------------------------------------------------------
    # basic views
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.graph.num_vertices

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    @property
    def name(self) -> str:
        return self.graph.name

    def nodes(self) -> List[Vertex]:
        """Pattern nodes in deterministic order."""
        return self.graph.vertices()

    def edges(self) -> List[Edge]:
        return self.graph.edges()

    def label_of(self, node: Vertex) -> Label:
        return self.graph.label_of(node)

    def is_connected(self) -> bool:
        return self.graph.is_connected()

    def __len__(self) -> int:
        return self.num_nodes

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self.nodes())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pattern):
            return NotImplemented
        return self.graph == other.graph

    def __hash__(self) -> int:
        return hash(self.graph.signature())

    def __repr__(self) -> str:
        name = f" {self.name!r}" if self.name else ""
        return f"<Pattern{name} nodes={self.num_nodes} edges={self.num_edges}>"

    # ------------------------------------------------------------------
    # subpattern machinery
    # ------------------------------------------------------------------
    def is_subpattern_of(self, other: "Pattern") -> bool:
        """Literal containment on shared node ids (Def. 2.1.4)."""
        return self.graph.is_subgraph_of(other.graph)

    def induced_subpattern(self, nodes: Iterable[Vertex]) -> "Pattern":
        """The subpattern induced by ``nodes``."""
        return Pattern(self.graph.subgraph(nodes))

    def edge_subpattern(self, edges: Iterable[Edge]) -> "Pattern":
        """The subpattern consisting of exactly ``edges``."""
        return Pattern(self.graph.edge_subgraph(edges))

    def connected_node_subsets(
        self, max_size: Optional[int] = None
    ) -> List[FrozenSet[Vertex]]:
        """All node subsets that induce a connected subpattern.

        Enumerated by BFS-style growth from each node so the cost is
        proportional to the number of connected subsets, not ``2^|V_P|``.
        Singletons are always included.  Results are deterministic.
        """
        limit = self.num_nodes if max_size is None else max_size
        found: Set[FrozenSet[Vertex]] = set()
        order = self.nodes()
        rank = {node: i for i, node in enumerate(order)}

        def grow(current: FrozenSet[Vertex], frontier: Set[Vertex]) -> None:
            found.add(current)
            if len(current) >= limit:
                return
            # Only extend with neighbors ranked above the minimum member to
            # avoid enumerating the same subset from several seeds.
            for candidate in sorted(frontier, key=repr):
                if rank[candidate] <= min(rank[v] for v in current):
                    continue
                nxt = current | {candidate}
                if nxt in found:
                    continue
                new_frontier = (frontier | self.graph.neighbors(candidate)) - nxt
                grow(nxt, new_frontier)

        for seed in order:
            grow(frozenset([seed]), set(self.graph.neighbors(seed)))
        return sorted(found, key=lambda s: (len(s), sorted(map(repr, s))))

    def connected_subpatterns(
        self, max_size: Optional[int] = None, induced: bool = True
    ) -> List["Pattern"]:
        """All connected subpatterns of this pattern.

        With ``induced=True`` (the default, and the semantics used by the MI
        measure) one subpattern per connected node subset — the induced one.
        With ``induced=False``, additionally every connected spanning edge
        subset of each induced subpattern is enumerated; this is exponential
        in the subpattern edge count and intended only for small patterns.
        """
        subsets = self.connected_node_subsets(max_size=max_size)
        result: List[Pattern] = []
        seen_signatures = set()
        for subset in subsets:
            induced_sub = self.induced_subpattern(subset)
            signature = induced_sub.graph.signature()
            if signature not in seen_signatures:
                seen_signatures.add(signature)
                result.append(induced_sub)
            if induced or induced_sub.num_edges <= 1:
                continue
            edges = induced_sub.edges()
            for keep in range(len(subset) - 1, len(edges)):
                for edge_combo in combinations(edges, keep):
                    candidate = self.graph.edge_subgraph(edge_combo)
                    if candidate.num_vertices != len(subset):
                        continue
                    if not candidate.is_connected():
                        continue
                    signature = candidate.signature()
                    if signature not in seen_signatures:
                        seen_signatures.add(signature)
                        result.append(Pattern(candidate))
        return result

    def remove_edge_pattern(self, u: Vertex, v: Vertex) -> "Pattern":
        """A copy of this pattern with one edge removed (nodes kept)."""
        clone = self.graph.copy()
        clone.remove_edge(u, v)
        return Pattern(clone)

    def extend_with_edge(self, u: Vertex, v: Vertex) -> "Pattern":
        """A copy with an extra edge between existing nodes ``u`` and ``v``."""
        clone = self.graph.copy()
        clone.add_edge(u, v)
        return Pattern(clone)

    def extend_with_node(
        self, anchor: Vertex, new_node: Vertex, label: Label
    ) -> "Pattern":
        """A copy with a new node attached to ``anchor`` by one edge."""
        clone = self.graph.copy()
        clone.add_vertex(new_node, label)
        clone.add_edge(anchor, new_node)
        return Pattern(clone)
