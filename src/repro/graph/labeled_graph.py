"""Undirected vertex-labeled graphs (paper Definition 2.1.1).

A :class:`LabeledGraph` is the data-graph substrate every other subsystem is
built on: the subgraph-isomorphism engine enumerates occurrences in it, the
hypergraph framework is constructed from those occurrences, and the miner
grows patterns against it.

The implementation keeps an adjacency map (``dict[vertex, set[vertex]]``),
a label map, and per-label vertex indexes so candidate filtering during
subgraph matching is O(1) per lookup.  Vertices are arbitrary hashable,
orderable ids (ints and strings in practice).
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from ..errors import EdgeNotFoundError, GraphError, SelfLoopError, VertexNotFoundError

Vertex = Hashable
Label = Hashable
Edge = Tuple[Vertex, Vertex]


def normalize_edge(u: Vertex, v: Vertex) -> Edge:
    """Return the canonical (sorted) form of an undirected edge.

    Sorting is by ``repr`` when the two endpoints are not mutually orderable
    (mixed-type vertex ids), so the canonical form is always well defined.
    """
    try:
        return (u, v) if u <= v else (v, u)  # type: ignore[operator]
    except TypeError:
        return (u, v) if repr(u) <= repr(v) else (v, u)


class LabeledGraph:
    """An undirected labeled graph ``G = (V, E, lambda)``.

    Parameters
    ----------
    vertices:
        Optional iterable of ``(vertex, label)`` pairs to add up front.
    edges:
        Optional iterable of ``(u, v)`` pairs; endpoints must already be in
        ``vertices`` (or added before the edge).

    Examples
    --------
    >>> g = LabeledGraph()
    >>> g.add_vertex(1, "A"); g.add_vertex(2, "B")
    >>> g.add_edge(1, 2)
    >>> g.num_vertices, g.num_edges
    (2, 1)
    >>> g.label_of(1)
    'A'
    """

    __slots__ = (
        "_adj",
        "_labels",
        "_by_label",
        "_num_edges",
        "_version",
        "_index",
        "_observers",
        "_vertices_cache",
        "_edges_cache",
        "name",
    )

    def __init__(
        self,
        vertices: Optional[Iterable[Tuple[Vertex, Label]]] = None,
        edges: Optional[Iterable[Edge]] = None,
        name: str = "",
    ) -> None:
        self._adj: Dict[Vertex, Set[Vertex]] = {}
        self._labels: Dict[Vertex, Label] = {}
        self._by_label: Dict[Label, Set[Vertex]] = {}
        self._num_edges = 0
        self._version = 0
        self._index: Optional[object] = None
        self._observers: List[Callable[[object], None]] = []
        self._vertices_cache: Optional[Tuple[int, List[Vertex]]] = None
        self._edges_cache: Optional[Tuple[int, List[Edge]]] = None
        self.name = name
        if vertices is not None:
            for vertex, label in vertices:
                self.add_vertex(vertex, label)
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_vertex(self, vertex: Vertex, label: Label) -> None:
        """Add ``vertex`` with ``label``; re-adding must keep the same label."""
        if vertex in self._labels:
            if self._labels[vertex] != label:
                raise GraphError(
                    f"vertex {vertex!r} already has label "
                    f"{self._labels[vertex]!r}, cannot relabel to {label!r}"
                )
            return
        self._adj[vertex] = set()
        self._labels[vertex] = label
        self._by_label.setdefault(label, set()).add(vertex)
        self._version += 1
        if self._observers:
            from ..index.delta import VertexAdded

            self._publish(
                VertexAdded(version=self._version, vertex=vertex, label=label)
            )

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add the undirected edge ``(u, v)``.  Idempotent for existing edges."""
        if u == v:
            raise SelfLoopError(u)
        if u not in self._adj:
            raise VertexNotFoundError(u)
        if v not in self._adj:
            raise VertexNotFoundError(v)
        if v in self._adj[u]:
            return
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._num_edges += 1
        self._version += 1
        if self._observers:
            from ..index.delta import EdgeAdded

            self._publish(
                EdgeAdded(
                    version=self._version,
                    u=u,
                    v=v,
                    label_u=self._labels[u],
                    label_v=self._labels[v],
                )
            )

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the undirected edge ``(u, v)``."""
        if u not in self._adj or v not in self._adj[u]:
            raise EdgeNotFoundError(u, v)
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._num_edges -= 1
        self._version += 1
        if self._observers:
            from ..index.delta import EdgeRemoved

            self._publish(
                EdgeRemoved(
                    version=self._version,
                    u=u,
                    v=v,
                    label_u=self._labels[u],
                    label_v=self._labels[v],
                )
            )

    def remove_vertex(self, vertex: Vertex) -> None:
        """Remove ``vertex`` and all its incident edges."""
        if vertex not in self._adj:
            raise VertexNotFoundError(vertex)
        for neighbor in list(self._adj[vertex]):
            self.remove_edge(vertex, neighbor)
        label = self._labels.pop(vertex)
        self._by_label[label].discard(vertex)
        if not self._by_label[label]:
            del self._by_label[label]
        del self._adj[vertex]
        self._version += 1
        if self._observers:
            from ..index.delta import VertexRemoved

            self._publish(
                VertexRemoved(version=self._version, vertex=vertex, label=label)
            )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def vertices(self) -> List[Vertex]:
        """All vertex ids in a deterministic (sorted-by-repr) order.

        The sorted order is cached against the mutation version (``repr``
        sorting is a hot cost for pattern-sized graphs churned by the
        miner); a fresh copy is returned so callers may mutate it.
        """
        cached = self._vertices_cache
        if cached is None or cached[0] != self._version:
            cached = (self._version, sorted(self._adj, key=repr))
            self._vertices_cache = cached
        return list(cached[1])

    def edges(self) -> List[Edge]:
        """All edges, each once, in canonical form and deterministic order.

        Cached against the mutation version, like :meth:`vertices`.
        """
        cached = self._edges_cache
        if cached is None or cached[0] != self._version:
            seen = set()
            for u in self._adj:
                for v in self._adj[u]:
                    seen.add(normalize_edge(u, v))
            cached = (self._version, sorted(seen, key=repr))
            self._edges_cache = cached
        return list(cached[1])

    def has_vertex(self, vertex: Vertex) -> bool:
        return vertex in self._adj

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        return u in self._adj and v in self._adj[u]

    def neighbors(self, vertex: Vertex) -> Set[Vertex]:
        """The (live) neighbor set of ``vertex``; do not mutate it."""
        if vertex not in self._adj:
            raise VertexNotFoundError(vertex)
        return self._adj[vertex]

    def degree(self, vertex: Vertex) -> int:
        if vertex not in self._adj:
            raise VertexNotFoundError(vertex)
        return len(self._adj[vertex])

    def label_of(self, vertex: Vertex) -> Label:
        if vertex not in self._labels:
            raise VertexNotFoundError(vertex)
        return self._labels[vertex]

    def labels(self) -> Dict[Vertex, Label]:
        """A copy of the vertex -> label map."""
        return dict(self._labels)

    def label_alphabet(self) -> List[Label]:
        """Distinct labels present, deterministically ordered."""
        return sorted(self._by_label, key=repr)

    def vertices_with_label(self, label: Label) -> Set[Vertex]:
        """Vertices carrying ``label`` (empty set when the label is absent)."""
        return set(self._by_label.get(label, ()))

    def label_histogram(self) -> Dict[Label, int]:
        """Number of vertices per label."""
        return {label: len(vs) for label, vs in self._by_label.items()}

    def neighbors_with_label(self, vertex: Vertex, label: Label) -> Set[Vertex]:
        """Neighbors of ``vertex`` that carry ``label``.

        Intersects from the smaller side: a hub vertex with a rare label
        filter scans the label class, not the whole adjacency set.
        Indexed callers should prefer
        :meth:`repro.index.graph_index.GraphIndex.neighbors_with_label`,
        whose per-label lists are pre-sorted in canonical order.
        """
        adjacency = self._adj.get(vertex)
        if adjacency is None:
            raise VertexNotFoundError(vertex)
        labeled = self._by_label.get(label)
        if labeled is None:
            return set()
        if len(labeled) < len(adjacency):
            return labeled & adjacency
        labels = self._labels
        return {w for w in adjacency if labels[w] == label}

    # ------------------------------------------------------------------
    # structure helpers
    # ------------------------------------------------------------------
    def subgraph(self, vertices: Iterable[Vertex]) -> "LabeledGraph":
        """The vertex-induced subgraph on ``vertices``."""
        keep = set(vertices)
        for vertex in keep:
            if vertex not in self._adj:
                raise VertexNotFoundError(vertex)
        sub = LabeledGraph(name=f"{self.name}[induced]" if self.name else "")
        for vertex in keep:
            sub.add_vertex(vertex, self._labels[vertex])
        for vertex in keep:
            for neighbor in self._adj[vertex]:
                if neighbor in keep:
                    sub.add_edge(vertex, neighbor)
        return sub

    def edge_subgraph(self, edges: Iterable[Edge]) -> "LabeledGraph":
        """The subgraph made of exactly ``edges`` and their endpoints."""
        sub = LabeledGraph(name=f"{self.name}[edges]" if self.name else "")
        for u, v in edges:
            if not self.has_edge(u, v):
                raise EdgeNotFoundError(u, v)
            sub.add_vertex(u, self._labels[u])
            sub.add_vertex(v, self._labels[v])
            sub.add_edge(u, v)
        return sub

    def copy(self) -> "LabeledGraph":
        """An independent deep copy of this graph."""
        clone = LabeledGraph(name=self.name)
        for vertex, label in self._labels.items():
            clone.add_vertex(vertex, label)
        for u, v in self.edges():
            clone.add_edge(u, v)
        return clone

    def relabeled(self, mapping: Dict[Vertex, Vertex]) -> "LabeledGraph":
        """A copy with vertex ids renamed through ``mapping`` (must be injective)."""
        if len(set(mapping.values())) != len(mapping):
            raise GraphError("relabeling map is not injective")
        clone = LabeledGraph(name=self.name)
        for vertex, label in self._labels.items():
            clone.add_vertex(mapping.get(vertex, vertex), label)
        for u, v in self.edges():
            clone.add_edge(mapping.get(u, u), mapping.get(v, v))
        return clone

    def connected_components(self) -> List[Set[Vertex]]:
        """Connected components as vertex sets, deterministically ordered."""
        seen: Set[Vertex] = set()
        components: List[Set[Vertex]] = []
        for start in self.vertices():
            if start in seen:
                continue
            component = {start}
            stack = [start]
            while stack:
                vertex = stack.pop()
                for neighbor in self._adj[vertex]:
                    if neighbor not in component:
                        component.add(neighbor)
                        stack.append(neighbor)
            seen |= component
            components.append(component)
        return components

    def is_connected(self) -> bool:
        """True when the graph is non-empty and has one component."""
        if not self._adj:
            return False
        return len(self.connected_components()) == 1

    def degree_sequence(self) -> List[int]:
        """Sorted non-increasing degree sequence."""
        return sorted((len(nbrs) for nbrs in self._adj.values()), reverse=True)

    def is_subgraph_of(self, other: "LabeledGraph") -> bool:
        """True when this graph is literally contained in ``other``

        (same vertex ids, same labels, edge subset) — Definition 2.1.2.
        """
        for vertex, label in self._labels.items():
            if not other.has_vertex(vertex) or other.label_of(vertex) != label:
                return False
        return all(other.has_edge(u, v) for u, v in self.edges())

    # ------------------------------------------------------------------
    # acceleration-index hooks (see repro.index.graph_index)
    # ------------------------------------------------------------------
    def mutation_version(self) -> int:
        """Monotone counter bumped on every structural mutation.

        The acceleration index snapshots this value at build time and uses
        it to detect staleness, so cached indexes never serve a mutated
        graph.
        """
        return self._version

    def cached_index(self) -> Optional[object]:
        """The index cached by :func:`repro.index.get_index` (opaque here)."""
        return self._index

    def cache_index(self, index: Optional[object]) -> None:
        """Attach (or clear, with ``None``) the cached acceleration index."""
        self._index = index

    # ------------------------------------------------------------------
    # mutation-observer hook (see repro.index.delta)
    # ------------------------------------------------------------------
    def subscribe(self, observer: Callable[[object], None]) -> Callable[[object], None]:
        """Register ``observer`` to receive one typed delta per mutation.

        Each structural mutation (``add_vertex`` / ``add_edge`` /
        ``remove_edge`` / ``remove_vertex``) that actually changes the graph
        publishes exactly one delta from :mod:`repro.index.delta`, carrying
        the post-mutation :meth:`mutation_version` — idempotent no-ops
        (re-adding a vertex or edge) publish nothing.  Observers must not
        mutate the graph or raise.  Returns ``observer`` for use as the
        :meth:`unsubscribe` token.
        """
        self._observers.append(observer)
        return observer

    def unsubscribe(self, observer: Callable[[object], None]) -> None:
        """Detach ``observer``; detaching one that is not attached is a no-op."""
        try:
            self._observers.remove(observer)
        except ValueError:
            pass

    def has_observers(self) -> bool:
        """True when at least one mutation observer is attached."""
        return bool(self._observers)

    def _publish(self, delta: object) -> None:
        for observer in tuple(self._observers):
            observer(delta)

    def __getstate__(self):
        # Cached indexes and observers are per-process acceleration state;
        # drop them so pickles stay small (process-pool workers rebuild on
        # first use, and an observer in another process would go stale).
        return {
            "_adj": self._adj,
            "_labels": self._labels,
            "_by_label": self._by_label,
            "_num_edges": self._num_edges,
            "_version": self._version,
            "name": self.name,
        }

    def __setstate__(self, state) -> None:
        for key, value in state.items():
            setattr(self, key, value)
        self._index = None
        self._observers = []
        self._vertices_cache = None
        self._edges_cache = None

    # ------------------------------------------------------------------
    # dunder protocol
    # ------------------------------------------------------------------
    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self.vertices())

    def __eq__(self, other: object) -> bool:
        """Structural equality on the same vertex ids (not isomorphism)."""
        if not isinstance(other, LabeledGraph):
            return NotImplemented
        return (
            self._labels == other._labels
            and self._num_edges == other._num_edges
            and all(self._adj[v] == other._adj[v] for v in self._adj)
        )

    def __hash__(self) -> int:  # pragma: no cover - graphs are mutable
        raise TypeError("LabeledGraph is mutable and unhashable; use signature()")

    def signature(self) -> Tuple[FrozenSet[Tuple[Vertex, Label]], FrozenSet[Edge]]:
        """A hashable structural snapshot (vertex/label pairs + edge set)."""
        return (
            frozenset(self._labels.items()),
            frozenset(normalize_edge(u, v) for u, v in self.edges()),
        )

    def __repr__(self) -> str:
        name = f" {self.name!r}" if self.name else ""
        return (
            f"<LabeledGraph{name} |V|={self.num_vertices} "
            f"|E|={self.num_edges} labels={len(self._by_label)}>"
        )
