"""Canonical forms for small labeled graphs.

The miner needs to recognize when two grown patterns are isomorphic so each
pattern is counted once.  We compute a **canonical certificate**: a string
that is identical for two graphs iff they are isomorphic.  The certificate
is the lexicographically smallest serialization over all vertex orderings,
with the permutation search pruned by an equitable-partition refinement
(label + degree + neighborhood classes), which keeps it fast for the
pattern sizes frequent-subgraph miners actually visit (<= ~10 nodes).
"""

from __future__ import annotations

from itertools import permutations
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import GraphError
from .labeled_graph import LabeledGraph, Vertex


def _initial_classes(graph: LabeledGraph) -> Dict[Vertex, Tuple]:
    """Per-vertex invariant: (label, degree)."""
    return {v: (repr(graph.label_of(v)), graph.degree(v)) for v in graph.vertices()}


def _refine_classes(
    graph: LabeledGraph, classes: Dict[Vertex, Tuple]
) -> Dict[Vertex, Tuple]:
    """Iteratively refine vertex classes by multiset of neighbor classes.

    This is 1-dimensional Weisfeiler-Leman color refinement; it converges in
    at most ``|V|`` rounds and never merges distinguishable vertices.
    """
    current = dict(classes)
    for _ in range(graph.num_vertices):
        refined = {}
        for v in graph.vertices():
            neighbor_signature = tuple(
                sorted(repr(current[n]) for n in graph.neighbors(v))
            )
            refined[v] = (current[v], neighbor_signature)
        if len(set(refined.values())) == len(set(current.values())):
            # No new splits; compress back to stable ranks.
            ranks = {
                sig: i
                for i, sig in enumerate(sorted(set(map(repr, current.values()))))
            }
            return {v: (ranks[repr(current[v])],) for v in graph.vertices()}
        current = refined
    ranks = {sig: i for i, sig in enumerate(sorted(set(map(repr, current.values()))))}
    return {v: (ranks[repr(current[v])],) for v in graph.vertices()}


def _encode(graph: LabeledGraph, order: Sequence[Vertex]) -> str:
    """Serialize ``graph`` under a fixed vertex order."""
    position = {v: i for i, v in enumerate(order)}
    labels = ",".join(repr(graph.label_of(v)) for v in order)
    edges = sorted(
        (min(position[u], position[v]), max(position[u], position[v]))
        for u, v in graph.edges()
    )
    edge_text = ";".join(f"{a}-{b}" for a, b in edges)
    return f"L[{labels}]E[{edge_text}]"


def canonical_certificate(graph: LabeledGraph, max_vertices: int = 12) -> str:
    """The canonical certificate of ``graph``.

    Two labeled graphs have equal certificates iff they are isomorphic.
    The search permutes vertices *within* refinement classes only, so the
    worst case is the product of class-size factorials rather than ``n!``.

    Raises
    ------
    GraphError
        If the graph exceeds ``max_vertices`` (certificates are meant for
        pattern-sized graphs; raise the cap explicitly if you need more).
    """
    n = graph.num_vertices
    if n == 0:
        return "L[]E[]"
    if n > max_vertices:
        raise GraphError(
            f"canonical_certificate supports up to {max_vertices} vertices; "
            f"got {n} (pass a larger max_vertices to override)"
        )
    classes = _refine_classes(graph, _initial_classes(graph))
    # Group vertices by refined class, classes ordered by their rank.
    by_class: Dict[Tuple, List[Vertex]] = {}
    for v in graph.vertices():
        by_class.setdefault(classes[v], []).append(v)
    class_order = sorted(by_class, key=repr)
    groups = [sorted(by_class[c], key=repr) for c in class_order]

    best: Optional[str] = None

    def search(prefix: List[Vertex], remaining_groups: List[List[Vertex]]) -> None:
        nonlocal best
        if not remaining_groups:
            encoded = _encode(graph, prefix)
            if best is None or encoded < best:
                best = encoded
            return
        head, *tail = remaining_groups
        for perm in permutations(head):
            search(prefix + list(perm), tail)

    search([], groups)
    assert best is not None
    return best


def canonical_form(graph: LabeledGraph, max_vertices: int = 12) -> LabeledGraph:
    """A canonically relabeled copy of ``graph`` (vertices ``0..n-1``).

    Isomorphic inputs produce structurally equal outputs.
    """
    certificate = canonical_certificate(graph, max_vertices=max_vertices)
    # Recover the winning order by re-running the encoding search; since the
    # certificate is the minimum encoding, re-derive the order that achieves
    # it.  For simplicity we search again (same cost class as certifying).
    classes = _refine_classes(graph, _initial_classes(graph))
    by_class: Dict[Tuple, List[Vertex]] = {}
    for v in graph.vertices():
        by_class.setdefault(classes[v], []).append(v)
    class_order = sorted(by_class, key=repr)
    groups = [sorted(by_class[c], key=repr) for c in class_order]

    winning: Optional[List[Vertex]] = None

    def search(prefix: List[Vertex], remaining_groups: List[List[Vertex]]) -> None:
        nonlocal winning
        if not remaining_groups:
            if _encode(graph, prefix) == certificate:
                if winning is None:
                    winning = list(prefix)
            return
        head, *tail = remaining_groups
        for perm in permutations(head):
            if winning is not None:
                return
            search(prefix + list(perm), tail)

    search([], groups)
    assert winning is not None
    mapping = {v: i for i, v in enumerate(winning)}
    return graph.relabeled(mapping)
