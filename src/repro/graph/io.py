"""Reading and writing labeled graphs in the ``.lg`` text format.

The ``.lg`` ("labeled graph") format is the de-facto interchange format of
single-graph miners such as GraMi:

    # t 1                 (optional graph header / comment)
    v <vertex-id> <label>
    e <vertex-id> <vertex-id> [edge-label-ignored]

Vertex ids are parsed as ints when possible, otherwise kept as strings.
Labels are kept as strings.  Blank lines and ``#`` comments are skipped.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, List, TextIO, Union

from ..errors import DatasetError
from .labeled_graph import LabeledGraph, normalize_edge
from .pattern import Pattern

PathLike = Union[str, Path]


def _parse_vertex_id(token: str):
    try:
        return int(token)
    except ValueError:
        return token


def parse_lg(text: str, name: str = "") -> LabeledGraph:
    """Parse a graph from ``.lg``-formatted text.

    Raises
    ------
    DatasetError
        On malformed lines or edges referencing unknown vertices.
    """
    graph = LabeledGraph(name=name)
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#") or line.startswith("t "):
            continue
        parts = line.split()
        kind = parts[0]
        if kind == "v":
            if len(parts) < 3:
                raise DatasetError(f"line {line_number}: vertex line needs 'v id label'")
            graph.add_vertex(_parse_vertex_id(parts[1]), parts[2])
        elif kind == "e":
            if len(parts) < 3:
                raise DatasetError(f"line {line_number}: edge line needs 'e u v'")
            u = _parse_vertex_id(parts[1])
            v = _parse_vertex_id(parts[2])
            try:
                graph.add_edge(u, v)
            except Exception as exc:
                raise DatasetError(f"line {line_number}: {exc}") from exc
        else:
            raise DatasetError(
                f"line {line_number}: unknown record kind {kind!r} (expected v/e)"
            )
    return graph


def format_lg(graph: LabeledGraph, header: bool = True) -> str:
    """Serialize ``graph`` to ``.lg`` text."""
    out = io.StringIO()
    if header:
        name = graph.name or "g"
        out.write(f"# t {name}\n")
    for vertex in graph.vertices():
        out.write(f"v {vertex} {graph.label_of(vertex)}\n")
    for u, v in graph.edges():
        out.write(f"e {u} {v}\n")
    return out.getvalue()


def load_graph(path: PathLike) -> LabeledGraph:
    """Load one graph from an ``.lg`` file."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"graph file not found: {path}")
    return parse_lg(path.read_text(), name=path.stem)


def save_graph(graph: LabeledGraph, path: PathLike) -> None:
    """Write one graph to an ``.lg`` file."""
    Path(path).write_text(format_lg(graph))


def load_pattern(path: PathLike) -> Pattern:
    """Load a pattern from an ``.lg`` file."""
    return Pattern(load_graph(path))


def save_pattern(pattern: Pattern, path: PathLike) -> None:
    """Write a pattern to an ``.lg`` file."""
    save_graph(pattern.graph, path)


def parse_update_stream(text: str) -> List[tuple]:
    """Parse a graph-update stream (``.lg``-style ``v`` / ``e`` lines).

    Each line is one update op, applied in file order by the dynamic
    mining layer (:mod:`repro.mining.dynamic`):

        v <vertex-id> <label>     -> ("v", vertex, label)
        e <vertex-id> <vertex-id> -> ("e", u, v)

    Blank lines, ``#`` comments and ``t`` headers are skipped, exactly as
    in :func:`parse_lg` — so any well-formed ``.lg`` file is also a valid
    update stream that replays the graph it describes.

    The stream is validated eagerly, so malformed input fails here with a
    line-numbered :class:`~repro.errors.DatasetError` instead of a raw
    exception (or silent no-op) halfway through replay:

    * malformed records — missing tokens, unknown record kinds;
    * self-loop edge insertions (``e x x`` — outside the graph model);
    * duplicate edge insertions (``e u v`` twice, in either endpoint
      order — the stream protocol is insertion-only, so the second
      insertion can only be a mistake);
    * conflicting re-declarations of a vertex with a different label
      (re-declaring with the *same* label stays legal, so concatenated
      ``.lg`` fragments that repeat their vertex preamble still parse).
    """
    updates: List[tuple] = []
    declared_labels: dict = {}
    inserted_edges: dict = {}
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#") or line.startswith("t "):
            continue
        parts = line.split()
        kind = parts[0]
        if kind == "v":
            if len(parts) < 3:
                raise DatasetError(f"line {line_number}: vertex line needs 'v id label'")
            vertex, label = _parse_vertex_id(parts[1]), parts[2]
            previous = declared_labels.get(vertex)
            if previous is not None and previous != label:
                raise DatasetError(
                    f"line {line_number}: vertex {vertex!r} re-declared with "
                    f"label {label!r} (was {previous!r})"
                )
            declared_labels[vertex] = label
            updates.append(("v", vertex, label))
        elif kind == "e":
            if len(parts) < 3:
                raise DatasetError(f"line {line_number}: edge line needs 'e u v'")
            u = _parse_vertex_id(parts[1])
            v = _parse_vertex_id(parts[2])
            if u == v:
                raise DatasetError(
                    f"line {line_number}: self loop on vertex {u!r} "
                    "(the graph model requires u != v)"
                )
            edge = normalize_edge(u, v)
            first = inserted_edges.get(edge)
            if first is not None:
                raise DatasetError(
                    f"line {line_number}: duplicate insertion of edge "
                    f"({u!r}, {v!r}) (first inserted at line {first})"
                )
            inserted_edges[edge] = line_number
            updates.append(("e", u, v))
        else:
            raise DatasetError(
                f"line {line_number}: unknown update kind {kind!r} (expected v/e)"
            )
    return updates


def load_update_stream(path: PathLike) -> List[tuple]:
    """Load an update stream from a ``v``/``e`` line file."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"update stream file not found: {path}")
    return parse_update_stream(path.read_text())


def parse_edge_list(
    lines: Iterable[str], default_label: str = "A", name: str = ""
) -> LabeledGraph:
    """Parse a bare ``u v`` edge list, giving every vertex ``default_label``.

    Useful for importing unlabeled benchmark graphs (SNAP-style files).
    """
    graph = LabeledGraph(name=name)
    for raw in lines:
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) < 2:
            raise DatasetError(f"edge-list line needs two tokens: {line!r}")
        u = _parse_vertex_id(parts[0])
        v = _parse_vertex_id(parts[1])
        for vertex in (u, v):
            if not graph.has_vertex(vertex):
                graph.add_vertex(vertex, default_label)
        if u != v:
            graph.add_edge(u, v)
    return graph


def write_lg_stream(graphs: Iterable[LabeledGraph], stream: TextIO) -> int:
    """Write several graphs to one stream (transaction-style); returns count."""
    count = 0
    for i, graph in enumerate(graphs):
        stream.write(f"# t {i}\n")
        stream.write(format_lg(graph, header=False))
        count += 1
    return count


def read_lg_stream(text: str) -> List[LabeledGraph]:
    """Read a multi-graph ``.lg`` stream split on ``# t`` headers."""
    chunks: List[List[str]] = []
    current: List[str] = []
    for raw in text.splitlines():
        if raw.strip().startswith("# t") or raw.strip().startswith("t "):
            if current:
                chunks.append(current)
            current = []
        else:
            current.append(raw)
    if current:
        chunks.append(current)
    return [parse_lg("\n".join(chunk), name=f"g{i}") for i, chunk in enumerate(chunks)]
