"""Reading and writing labeled graphs in the ``.lg`` text format.

The ``.lg`` ("labeled graph") format is the de-facto interchange format of
single-graph miners such as GraMi:

    # t 1                 (optional graph header / comment)
    v <vertex-id> <label>
    e <vertex-id> <vertex-id> [edge-label-ignored]

Vertex ids are parsed as ints when possible, otherwise kept as strings.
Labels are kept as strings.  Blank lines and ``#`` comments are skipped.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, List, TextIO, Union

from ..errors import DatasetError
from .labeled_graph import LabeledGraph, normalize_edge
from .pattern import Pattern

PathLike = Union[str, Path]


def _parse_vertex_id(token: str):
    try:
        return int(token)
    except ValueError:
        return token


def parse_lg(text: str, name: str = "") -> LabeledGraph:
    """Parse a graph from ``.lg``-formatted text.

    Raises
    ------
    DatasetError
        On malformed lines or edges referencing unknown vertices.
    """
    graph = LabeledGraph(name=name)
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#") or line.startswith("t "):
            continue
        parts = line.split()
        kind = parts[0]
        if kind == "v":
            if len(parts) < 3:
                raise DatasetError(
                    f"line {line_number}: vertex line needs 'v id label'"
                )
            graph.add_vertex(_parse_vertex_id(parts[1]), parts[2])
        elif kind == "e":
            if len(parts) < 3:
                raise DatasetError(f"line {line_number}: edge line needs 'e u v'")
            u = _parse_vertex_id(parts[1])
            v = _parse_vertex_id(parts[2])
            try:
                graph.add_edge(u, v)
            except Exception as exc:
                raise DatasetError(f"line {line_number}: {exc}") from exc
        else:
            raise DatasetError(
                f"line {line_number}: unknown record kind {kind!r} (expected v/e)"
            )
    return graph


def format_lg(graph: LabeledGraph, header: bool = True) -> str:
    """Serialize ``graph`` to ``.lg`` text."""
    out = io.StringIO()
    if header:
        name = graph.name or "g"
        out.write(f"# t {name}\n")
    for vertex in graph.vertices():
        out.write(f"v {vertex} {graph.label_of(vertex)}\n")
    for u, v in graph.edges():
        out.write(f"e {u} {v}\n")
    return out.getvalue()


def load_graph(path: PathLike) -> LabeledGraph:
    """Load one graph from an ``.lg`` file."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"graph file not found: {path}")
    return parse_lg(path.read_text(), name=path.stem)


def save_graph(graph: LabeledGraph, path: PathLike) -> None:
    """Write one graph to an ``.lg`` file."""
    Path(path).write_text(format_lg(graph))


def load_pattern(path: PathLike) -> Pattern:
    """Load a pattern from an ``.lg`` file."""
    return Pattern(load_graph(path))


def save_pattern(pattern: Pattern, path: PathLike) -> None:
    """Write a pattern to an ``.lg`` file."""
    save_graph(pattern.graph, path)


class _StreamState:
    """Simulated graph state while validating an update stream.

    Without a ``base`` graph the simulation has partial knowledge: a
    vertex or edge the stream never mentioned *may* exist in whatever
    base graph the stream will be applied to, so first mentions are
    trusted ("assumed from base") and only stream-internal contradictions
    are rejected.  With ``base`` provided the initial state is known
    exactly and every check becomes strict.
    """

    def __init__(self, base) -> None:
        self.strict = base is not None
        # vertex -> label for known-present vertices.
        self.labels: dict = {}
        # edge -> True (known present) / False (known absent).
        self.edges: dict = {}
        # vertex -> set of known-present incident edges.
        self.incident: dict = {}
        # Vertices known absent (deleted and not re-added).
        self.absent: set = set()
        # edge -> line of the insertion / deletion that set its state.
        self.edge_line: dict = {}
        # Edges the base graph owns (a sliding window never expires these).
        self.base_edges: frozenset = frozenset()
        if base is not None:
            for vertex in base.vertices():
                self.labels[vertex] = base.label_of(vertex)
                self.incident[vertex] = set()
            for u, v in base.edges():
                edge = normalize_edge(u, v)
                self.edges[edge] = True
                self.incident[u].add(edge)
                self.incident[v].add(edge)
            self.base_edges = frozenset(self.edges)

    def set_edge(self, edge, present: bool, line: int) -> None:
        self.edges[edge] = present
        self.edge_line[edge] = line
        for endpoint in edge:
            bucket = self.incident.setdefault(endpoint, set())
            if present:
                bucket.add(edge)
            else:
                bucket.discard(edge)


def parse_update_stream(text: str, base=None, window: bool = False) -> List[tuple]:
    """Parse a graph-update stream (``.lg``-style mutation lines).

    Each line is one update op, applied in file order by the dynamic
    mining layer (:mod:`repro.mining.dynamic`):

        v <vertex-id> <label>      -> ("v", vertex, label)    insert vertex
        e <vertex-id> <vertex-id>  -> ("e", u, v)             insert edge
        de <vertex-id> <vertex-id> -> ("de", u, v)            delete edge
        dv <vertex-id>             -> ("dv", vertex)          delete vertex

    Blank lines, ``#`` comments and ``t`` headers are skipped, exactly as
    in :func:`parse_lg` — so any well-formed ``.lg`` file is also a valid
    update stream that replays the graph it describes.

    The stream is validated eagerly by simulating the graph state it
    implies, so malformed input fails here with a line-numbered
    :class:`~repro.errors.DatasetError` instead of a raw exception (or
    silent no-op) halfway through replay:

    * malformed records — missing tokens, unknown record kinds;
    * self-loop edges (``e x x`` / ``de x x`` — outside the graph model);
    * duplicate insertions of a live edge (either endpoint order — legal
      again once the edge has been deleted in between);
    * conflicting re-declarations of a vertex with a different label
      (re-declaring with the *same* label stays legal, so concatenated
      ``.lg`` fragments that repeat their vertex preamble still parse);
    * deleting an edge or vertex the stream knows to be absent, touching
      a deleted vertex, and **vertex deletion with live incident edges**
      (the stream protocol requires the explicit ``de`` records first).

    Pass the ``base`` graph the stream will be applied to and the
    simulation starts from its exact vertex/edge state, upgrading every
    check to strict: inserting an edge the base already has, deleting
    anything the base never had, or referencing an unknown vertex all
    fail with the offending line.  Without ``base``, facts the stream
    never established are trusted (assumed to come from the base graph).

    ``window=True`` declares that the replay runs under a sliding window
    (:func:`repro.mining.dynamic.mine_stream` with ``window=N``), which
    may expire stream-inserted edges at any point the static simulation
    cannot see.  Exactly the checks expiry can falsify are relaxed:
    re-inserting a present edge (it may have expired) and deleting a
    vertex whose only live incident edges are stream-inserted (they may
    have expired; base-graph edges never expire, so those still block).
    Everything window-independent — unknown vertices, relabels, deleting
    an edge that never existed, double deletions — stays enforced.
    """
    updates: List[tuple] = []
    state = _StreamState(base)

    def fail(line_number: int, message: str) -> None:
        raise DatasetError(f"line {line_number}: {message}")

    def endpoint_check(line_number: int, vertex) -> None:
        if vertex in state.absent:
            fail(line_number, f"vertex {vertex!r} was deleted earlier in the stream")
        if state.strict and vertex not in state.labels:
            fail(line_number, f"unknown vertex {vertex!r} (not in the base graph)")

    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#") or line.startswith("t "):
            continue
        parts = line.split()
        kind = parts[0]
        if kind == "v":
            if len(parts) < 3:
                fail(line_number, "vertex line needs 'v id label'")
            vertex, label = _parse_vertex_id(parts[1]), parts[2]
            previous = state.labels.get(vertex)
            if previous is not None and previous != label:
                fail(
                    line_number,
                    f"vertex {vertex!r} re-declared with label {label!r} "
                    f"(was {previous!r})",
                )
            state.labels[vertex] = label
            state.absent.discard(vertex)  # re-adding a deleted vertex is legal
            updates.append(("v", vertex, label))
        elif kind in ("e", "de"):
            if len(parts) < 3:
                fail(line_number, f"edge line needs '{kind} u v'")
            u = _parse_vertex_id(parts[1])
            v = _parse_vertex_id(parts[2])
            if u == v:
                fail(
                    line_number,
                    f"self loop on vertex {u!r} (the graph model requires u != v)",
                )
            endpoint_check(line_number, u)
            endpoint_check(line_number, v)
            edge = normalize_edge(u, v)
            present = state.edges.get(edge)
            if kind == "e":
                if present is True and not window:
                    where = state.edge_line.get(edge)
                    origin = f"at line {where}" if where else "in the base graph"
                    fail(
                        line_number,
                        f"duplicate insertion of edge ({u!r}, {v!r}) "
                        f"(already present {origin})",
                    )
                state.set_edge(edge, True, line_number)
                updates.append(("e", u, v))
            else:
                if present is False or (present is None and state.strict):
                    where = state.edge_line.get(edge)
                    origin = f"deleted at line {where}" if where else "never inserted"
                    fail(
                        line_number,
                        f"deletion of absent edge ({u!r}, {v!r}) ({origin})",
                    )
                state.set_edge(edge, False, line_number)
                updates.append(("de", u, v))
        elif kind == "dv":
            if len(parts) < 2:
                fail(line_number, "vertex deletion line needs 'dv id'")
            vertex = _parse_vertex_id(parts[1])
            if vertex in state.absent:
                fail(line_number, f"vertex {vertex!r} was already deleted")
            if state.strict and vertex not in state.labels:
                fail(line_number, f"unknown vertex {vertex!r} (not in the base graph)")
            live = state.incident.get(vertex) or set()
            if window:
                # Stream-inserted edges may have expired by now; only
                # base-graph edges (which never expire) still block.
                live = {e for e in live if e in state.base_edges}
            if live:
                edge = sorted(live, key=repr)[0]
                fail(
                    line_number,
                    f"vertex {vertex!r} still has {len(live)} live incident "
                    f"edge(s), e.g. {edge!r}; delete them first with 'de'",
                )
            state.labels.pop(vertex, None)
            state.absent.add(vertex)
            updates.append(("dv", vertex))
        else:
            fail(line_number, f"unknown update kind {kind!r} (expected v/e/de/dv)")
    return updates


def load_update_stream(path: PathLike, base=None, window: bool = False) -> List[tuple]:
    """Load an update stream from a mutation-line file.

    ``base`` (a :class:`LabeledGraph`) enables strict validation against
    the graph the stream will be applied to; ``window`` relaxes exactly
    the checks a sliding-window replay can falsify — see
    :func:`parse_update_stream`.
    """
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"update stream file not found: {path}")
    return parse_update_stream(path.read_text(), base=base, window=window)


def parse_edge_list(
    lines: Iterable[str], default_label: str = "A", name: str = ""
) -> LabeledGraph:
    """Parse a bare ``u v`` edge list, giving every vertex ``default_label``.

    Useful for importing unlabeled benchmark graphs (SNAP-style files).
    """
    graph = LabeledGraph(name=name)
    for raw in lines:
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) < 2:
            raise DatasetError(f"edge-list line needs two tokens: {line!r}")
        u = _parse_vertex_id(parts[0])
        v = _parse_vertex_id(parts[1])
        for vertex in (u, v):
            if not graph.has_vertex(vertex):
                graph.add_vertex(vertex, default_label)
        if u != v:
            graph.add_edge(u, v)
    return graph


def write_lg_stream(graphs: Iterable[LabeledGraph], stream: TextIO) -> int:
    """Write several graphs to one stream (transaction-style); returns count."""
    count = 0
    for i, graph in enumerate(graphs):
        stream.write(f"# t {i}\n")
        stream.write(format_lg(graph, header=False))
        count += 1
    return count


def read_lg_stream(text: str) -> List[LabeledGraph]:
    """Read a multi-graph ``.lg`` stream split on ``# t`` headers."""
    chunks: List[List[str]] = []
    current: List[str] = []
    for raw in text.splitlines():
        if raw.strip().startswith("# t") or raw.strip().startswith("t "):
            if current:
                chunks.append(current)
            current = []
        else:
            current.append(raw)
    if current:
        chunks.append(current)
    return [parse_lg("\n".join(chunk), name=f"g{i}") for i, chunk in enumerate(chunks)]
