"""Labeled-graph substrate: graphs, patterns, builders, automorphisms, I/O."""

from .labeled_graph import Edge, Label, LabeledGraph, Vertex, normalize_edge
from .pattern import Pattern
from .builders import (
    binary_tree_graph,
    clique_pattern,
    complete_graph,
    cycle_graph,
    cycle_pattern,
    grid_graph,
    path_graph,
    path_pattern,
    star_graph,
    star_pattern,
    triangle_pattern,
)
from .automorphism import (
    automorphism_group_size,
    automorphisms,
    is_transitive_pair,
    transitive_node_subsets,
    transitive_pairs,
    vertex_orbits,
)
from .canonical import canonical_certificate, canonical_form
from .matching import is_matching, maximum_matching, maximum_matching_size
from .io import (
    format_lg,
    load_graph,
    load_pattern,
    parse_edge_list,
    parse_lg,
    save_graph,
    save_pattern,
)

__all__ = [
    "Edge",
    "Label",
    "LabeledGraph",
    "Pattern",
    "Vertex",
    "normalize_edge",
    "binary_tree_graph",
    "clique_pattern",
    "complete_graph",
    "cycle_graph",
    "cycle_pattern",
    "grid_graph",
    "path_graph",
    "path_pattern",
    "star_graph",
    "star_pattern",
    "triangle_pattern",
    "automorphism_group_size",
    "automorphisms",
    "is_transitive_pair",
    "transitive_node_subsets",
    "transitive_pairs",
    "vertex_orbits",
    "canonical_certificate",
    "canonical_form",
    "is_matching",
    "maximum_matching",
    "maximum_matching_size",
    "format_lg",
    "load_graph",
    "load_pattern",
    "parse_edge_list",
    "parse_lg",
    "save_graph",
    "save_pattern",
]
