"""Maximum matching in general graphs — Edmonds' blossom algorithm.

Why this lives here: for **one-edge patterns** the instance hypergraph is
2-uniform and its edges are just data-graph edges, so

    sigma_MIES = sigma_MIS = maximum matching of the instance edges,

which Edmonds computes in polynomial time (O(V^3) here).  This turns the
"NP-hard" MIS/MIES measures into exact polynomial computations for the
single-edge patterns every mining run starts from — without it, the
branch-and-bound solvers choke on the very first seed patterns of a large
graph.

The implementation is the classic array-based blossom algorithm: BFS for an
augmenting path from each free vertex, contracting odd cycles (blossoms)
found when two even-level vertices meet.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Sequence, Set, Tuple

Node = Hashable


def _maximum_matching_indexed(n: int, adjacency: List[List[int]]) -> List[int]:
    """Blossom algorithm on vertices ``0..n-1``; returns match[] with -1 = free."""
    match = [-1] * n
    parent = [0] * n
    base = [0] * n
    queue: List[int] = []
    used = [False] * n
    blossom = [False] * n

    def lowest_common_ancestor(a: int, b: int) -> int:
        visited = [False] * n
        while True:
            a = base[a]
            visited[a] = True
            if match[a] == -1:
                break
            a = parent[match[a]]
        while True:
            b = base[b]
            if visited[b]:
                return b
            b = parent[match[b]]

    def mark_path(v: int, ancestor: int, child: int) -> None:
        while base[v] != ancestor:
            blossom[base[v]] = True
            blossom[base[match[v]]] = True
            parent[v] = child
            child = match[v]
            v = parent[match[v]]

    def find_augmenting_path(root: int) -> int:
        for i in range(n):
            used[i] = False
            parent[i] = -1
            base[i] = i
        used[root] = True
        queue.clear()
        queue.append(root)
        head = 0
        while head < len(queue):
            v = queue[head]
            head += 1
            for to in adjacency[v]:
                if base[v] == base[to] or match[v] == to:
                    continue
                if to == root or (match[to] != -1 and parent[match[to]] != -1):
                    # Found a blossom: contract it.
                    current_base = lowest_common_ancestor(v, to)
                    for i in range(n):
                        blossom[i] = False
                    mark_path(v, current_base, to)
                    mark_path(to, current_base, v)
                    for i in range(n):
                        if blossom[base[i]]:
                            base[i] = current_base
                            if not used[i]:
                                used[i] = True
                                queue.append(i)
                elif parent[to] == -1:
                    parent[to] = v
                    if match[to] == -1:
                        return to  # augmenting path found
                    used[match[to]] = True
                    queue.append(match[to])
        return -1

    for vertex in range(n):
        if match[vertex] != -1:
            continue
        finish = find_augmenting_path(vertex)
        if finish == -1:
            continue
        # Augment along the found path.
        while finish != -1:
            previous = parent[finish]
            previous_match = match[previous]
            match[finish] = previous
            match[previous] = finish
            finish = previous_match
    return match


def maximum_matching(
    edges: Iterable[Tuple[Node, Node]]
) -> Dict[Node, Node]:
    """Maximum-cardinality matching of an undirected edge list.

    Returns a symmetric dict: ``result[u] == v`` iff ``result[v] == u``.
    Self loops and duplicate edges are ignored.

    Examples
    --------
    >>> m = maximum_matching([(1, 2), (2, 3), (3, 4)])
    >>> len(m) // 2
    2
    """
    index: Dict[Node, int] = {}
    nodes: List[Node] = []
    pair_set: Set[Tuple[int, int]] = set()
    for u, v in edges:
        if u == v:
            continue
        for node in (u, v):
            if node not in index:
                index[node] = len(nodes)
                nodes.append(node)
        a, b = index[u], index[v]
        pair_set.add((min(a, b), max(a, b)))

    n = len(nodes)
    adjacency: List[List[int]] = [[] for _ in range(n)]
    for a, b in sorted(pair_set):
        adjacency[a].append(b)
        adjacency[b].append(a)

    match = _maximum_matching_indexed(n, adjacency)
    result: Dict[Node, Node] = {}
    for i, partner in enumerate(match):
        if partner != -1:
            result[nodes[i]] = nodes[partner]
    return result


def maximum_matching_size(edges: Iterable[Tuple[Node, Node]]) -> int:
    """The size (number of matched pairs) of a maximum matching."""
    return len(maximum_matching(edges)) // 2


def is_matching(
    edges: Sequence[Tuple[Node, Node]], matched_pairs: Iterable[Tuple[Node, Node]]
) -> bool:
    """Check that ``matched_pairs`` are disjoint edges of the graph."""
    edge_set = set()
    for u, v in edges:
        edge_set.add((u, v))
        edge_set.add((v, u))
    used: Set[Node] = set()
    for u, v in matched_pairs:
        if (u, v) not in edge_set:
            return False
        if u in used or v in used:
            return False
        used.add(u)
        used.add(v)
    return True
