"""Constructors for common graph and pattern shapes.

These are the shapes used throughout the paper's examples (paths, triangles,
stars) and by the benchmark workload generators (cycles, cliques, trees,
grids).  Every builder is deterministic.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..errors import GraphError
from .labeled_graph import Label, LabeledGraph
from .pattern import Pattern


def _cycle_labels(labels: Sequence[Label], count: int) -> List[Label]:
    """Repeat ``labels`` cyclically to cover ``count`` positions."""
    if not labels:
        raise GraphError("at least one label is required")
    return [labels[i % len(labels)] for i in range(count)]


def path_graph(labels: Sequence[Label], name: str = "") -> LabeledGraph:
    """A path ``1 - 2 - ... - n`` with the given per-vertex labels."""
    n = len(labels)
    if n == 0:
        raise GraphError("a path needs at least one vertex")
    graph = LabeledGraph(name=name or f"path{n}")
    for i, label in enumerate(labels, start=1):
        graph.add_vertex(i, label)
    for i in range(1, n):
        graph.add_edge(i, i + 1)
    return graph


def cycle_graph(labels: Sequence[Label], name: str = "") -> LabeledGraph:
    """A cycle on ``len(labels)`` vertices (needs >= 3)."""
    n = len(labels)
    if n < 3:
        raise GraphError("a cycle needs at least three vertices")
    graph = path_graph(labels, name=name or f"cycle{n}")
    graph.add_edge(n, 1)
    return graph


def star_graph(
    center_label: Label, leaf_labels: Sequence[Label], name: str = ""
) -> LabeledGraph:
    """A star: vertex ``0`` is the center; leaves are ``1..k``."""
    graph = LabeledGraph(name=name or f"star{len(leaf_labels)}")
    graph.add_vertex(0, center_label)
    for i, label in enumerate(leaf_labels, start=1):
        graph.add_vertex(i, label)
        graph.add_edge(0, i)
    return graph


def complete_graph(labels: Sequence[Label], name: str = "") -> LabeledGraph:
    """The complete graph on ``len(labels)`` vertices."""
    n = len(labels)
    if n == 0:
        raise GraphError("a complete graph needs at least one vertex")
    graph = LabeledGraph(name=name or f"K{n}")
    for i, label in enumerate(labels, start=1):
        graph.add_vertex(i, label)
    for i in range(1, n + 1):
        for j in range(i + 1, n + 1):
            graph.add_edge(i, j)
    return graph


def grid_graph(
    rows: int, cols: int, labels: Sequence[Label], name: str = ""
) -> LabeledGraph:
    """A ``rows x cols`` grid; vertex ``(r, c)`` is id ``r * cols + c``.

    Labels are assigned cyclically in row-major order.
    """
    if rows < 1 or cols < 1:
        raise GraphError("grid dimensions must be positive")
    all_labels = _cycle_labels(labels, rows * cols)
    graph = LabeledGraph(name=name or f"grid{rows}x{cols}")
    for r in range(rows):
        for c in range(cols):
            graph.add_vertex(r * cols + c, all_labels[r * cols + c])
    for r in range(rows):
        for c in range(cols):
            vertex = r * cols + c
            if c + 1 < cols:
                graph.add_edge(vertex, vertex + 1)
            if r + 1 < rows:
                graph.add_edge(vertex, vertex + cols)
    return graph


def binary_tree_graph(
    depth: int, labels: Sequence[Label], name: str = ""
) -> LabeledGraph:
    """A complete binary tree of the given depth (root depth 0)."""
    if depth < 0:
        raise GraphError("depth must be non-negative")
    count = 2 ** (depth + 1) - 1
    all_labels = _cycle_labels(labels, count)
    graph = LabeledGraph(name=name or f"btree{depth}")
    for i in range(count):
        graph.add_vertex(i, all_labels[i])
    for i in range(count):
        for child in (2 * i + 1, 2 * i + 2):
            if child < count:
                graph.add_edge(i, child)
    return graph


# ----------------------------------------------------------------------
# pattern builders (nodes named v1, v2, ... like the paper figures)
# ----------------------------------------------------------------------
def _node_names(count: int) -> List[str]:
    return [f"v{i}" for i in range(1, count + 1)]


def path_pattern(labels: Sequence[Label], name: str = "") -> Pattern:
    """The path pattern ``v1 - v2 - ... - vk``."""
    names = _node_names(len(labels))
    edges = [(names[i], names[i + 1]) for i in range(len(names) - 1)]
    return Pattern.from_edges(
        list(zip(names, labels)), edges, name=name or f"path{len(labels)}"
    )


def cycle_pattern(labels: Sequence[Label], name: str = "") -> Pattern:
    """The cycle pattern on ``len(labels)`` nodes (>= 3)."""
    if len(labels) < 3:
        raise GraphError("a cycle pattern needs at least three nodes")
    names = _node_names(len(labels))
    edges = [(names[i], names[(i + 1) % len(names)]) for i in range(len(names))]
    return Pattern.from_edges(
        list(zip(names, labels)), edges, name=name or f"cycle{len(labels)}"
    )


def triangle_pattern(
    label_a: Label, label_b: Optional[Label] = None, label_c: Optional[Label] = None
) -> Pattern:
    """The triangle pattern; defaults to all three nodes sharing one label."""
    label_b = label_a if label_b is None else label_b
    label_c = label_a if label_c is None else label_c
    return cycle_pattern([label_a, label_b, label_c], name="triangle")


def star_pattern(
    center_label: Label, leaf_labels: Sequence[Label], name: str = ""
) -> Pattern:
    """A star pattern: ``v1`` is the center, leaves ``v2..``."""
    names = _node_names(len(leaf_labels) + 1)
    nodes = [(names[0], center_label)] + list(zip(names[1:], leaf_labels))
    edges = [(names[0], leaf) for leaf in names[1:]]
    return Pattern.from_edges(nodes, edges, name=name or f"star{len(leaf_labels)}")


def clique_pattern(labels: Sequence[Label], name: str = "") -> Pattern:
    """The complete pattern on ``len(labels)`` nodes."""
    names = _node_names(len(labels))
    edges = [
        (names[i], names[j])
        for i in range(len(names))
        for j in range(i + 1, len(names))
    ]
    return Pattern.from_edges(
        list(zip(names, labels)), edges, name=name or f"clique{len(labels)}"
    )
