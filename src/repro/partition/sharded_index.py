"""ShardedIndex — the index layer over a partitioned data graph.

This is the architectural seam the ROADMAP's sharding item asked for: a
:class:`ShardedIndex` splits one :class:`LabeledGraph` into k edge-disjoint
:class:`~repro.partition.shard.GraphShard` cells (via a configurable
:func:`~repro.partition.partitioner.partition_edges` method), replicates
boundary vertices into per-shard halos, and exposes the merged global
views evaluation needs:

* a **global label histogram** — merged over shard vertex sets with
  replicated boundary vertices counted once, so it is identical to the
  unpartitioned graph's histogram (the miner's label-frequency prune
  bound stays exact);
* a **label-pair directory** — canonical label pair → the shard ids whose
  *core* edges realize it.  A pattern can only have occurrences anchored
  in shards sharing its footprint, so the directory prunes whole shards
  per candidate;
* per-shard :class:`~repro.index.GraphIndex` instances (built lazily,
  cached on each shard's core graph, and delta-patched through a
  per-shard :class:`~repro.index.delta.IndexMaintainer` — the PR 2
  splice machinery applied shard-by-shard);
* **halo-expanded shard views** — the induced subgraph within ``depth``
  hops of a shard's vertices, cached per (shard, depth).  Depth
  ``n - 2`` is exactly what makes per-shard enumeration of an n-node
  connected pattern exhaustive for occurrences using a core edge (see
  :mod:`repro.partition.evaluate`).

Like :class:`~repro.index.GraphIndex`, a ShardedIndex is a snapshot of
one graph version — but no longer a *static* one: it implements the
:class:`~repro.index.maintainable.MaintainableIndex` protocol, absorbing
typed graph deltas in O(delta) through :meth:`apply_delta` instead of
forcing a re-partition + rebuild.  Each delta is routed to its owning
shard by the partition's persisted assignment function
(:class:`~repro.partition.partitioner.EdgeRouter`), halo replicas are
patched in every incident shard, and the merged histogram, label-pair
directory, and cached halo expansions are updated (or, for expansions
whose ball a delta touched, invalidated) incrementally.
:class:`~repro.partition.maintainer.ShardedIndexMaintainer` drives this
from the graph's mutation-observer hook; un-maintained callers keep the
old behavior — :meth:`is_current` reports staleness and the miner
re-partitions per session exactly as before.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

from ..errors import PartitionError
from ..graph.labeled_graph import (
    Edge,
    Label,
    LabeledGraph,
    Vertex,
    normalize_edge,
)
from ..index.graph_index import GraphIndex, _label_pair_key
from ..index.maintainable import MaintainableIndex
from .partitioner import EdgeRouter, Partition, partition_edges
from .shard import GraphShard

LabelPair = Tuple[Label, Label]


class ShardedIndex(MaintainableIndex):
    """k edge-disjoint shards of one data graph, plus merged global views.

    Build with :meth:`build` (partitioning included) or directly from a
    pre-computed :class:`~repro.partition.partitioner.Partition`.  The
    source graph is retained: halo expansion and global-exactness
    guarantees both need it, and a one-shard index degenerates to the
    ordinary single-graph path.
    """

    __slots__ = (
        "graph",
        "partition",
        "version",
        "shards",
        "_pair_shards",
        "_pair_counts",
        "_edge_counts",
        "_owners",
        "_histogram",
        "_router",
        "_maintainers",
        "_expanded",
        "_listeners",
        "_pager",
        "_active_delta",
    )

    def __init__(self, graph: LabeledGraph, partition: Partition) -> None:
        self.graph = graph
        self.partition = partition
        self.version = graph.mutation_version()
        self._expanded: Dict[Tuple[int, int], LabeledGraph] = {}
        self._router: Optional[EdgeRouter] = None
        self._maintainers: Dict[int, object] = {}
        self._listeners: List = []
        self._pager = None
        self._active_delta = None

        members: List[Dict[Vertex, Label]] = [{} for _ in range(partition.num_shards)]
        core_edges: List[List] = [[] for _ in range(partition.num_shards)]
        owners: Dict[Vertex, Set[int]] = {}
        edge_counts: Dict[Vertex, Dict[int, int]] = {}
        for edge in graph.edges():
            owner = partition.assignment.get(edge)
            if owner is None:
                raise PartitionError(
                    f"edge {edge!r} is not covered by the partition "
                    "(was the graph mutated after partitioning?)"
                )
            core_edges[owner].append(edge)
            for vertex in edge:
                members[owner][vertex] = graph.label_of(vertex)
                owners.setdefault(vertex, set()).add(owner)
                counts = edge_counts.setdefault(vertex, {})
                counts[owner] = counts.get(owner, 0) + 1
        for vertex, owner in partition.vertex_assignment.items():
            members[owner][vertex] = graph.label_of(vertex)
            owners.setdefault(vertex, set()).add(owner)
        self._owners = owners
        self._edge_counts = edge_counts

        pair_counts: Dict[LabelPair, Dict[int, int]] = {}
        shards: List[GraphShard] = []
        for shard_id in range(partition.num_shards):
            shard_graph = LabeledGraph(
                name=f"{graph.name or 'graph'}[shard {shard_id}]"
            )
            for vertex in sorted(members[shard_id], key=repr):
                shard_graph.add_vertex(vertex, members[shard_id][vertex])
            for u, v in core_edges[shard_id]:
                shard_graph.add_edge(u, v)
                pair = _label_pair_key(graph.label_of(u), graph.label_of(v))
                counts = pair_counts.setdefault(pair, {})
                counts[shard_id] = counts.get(shard_id, 0) + 1
            halo = frozenset(
                vertex for vertex in members[shard_id] if len(owners[vertex]) > 1
            )
            shards.append(
                GraphShard(
                    shard_id=shard_id,
                    graph=shard_graph,
                    core_edges=tuple(sorted(core_edges[shard_id], key=repr)),
                    halo_vertices=halo,
                )
            )
        self.shards = tuple(shards)
        self._pair_counts = pair_counts
        self._pair_shards = {
            pair: tuple(sorted(ids)) for pair, ids in pair_counts.items()
        }
        self._histogram: Dict[Label, int] = dict(graph.label_histogram())

    # ------------------------------------------------------------------
    # factory / freshness
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls, graph: LabeledGraph, num_shards: int, method: str = "hash"
    ) -> "ShardedIndex":
        """Partition ``graph`` and build the sharded index in one call."""
        return cls(graph, partition_edges(graph, num_shards, method))

    def rebuilt(self) -> "ShardedIndex":
        """Re-partition + re-index the graph's current state from scratch,
        preserving the shard count and partition method."""
        return ShardedIndex.build(self.graph, self.num_shards, self.partition.method)

    def router(self) -> EdgeRouter:
        """The partition's online assignment function (delta routing).

        Built lazily from the index's own maintained state — never from
        the live source graph, which may have drifted ahead mid-replay —
        and kept current by the delta handlers; a loaded partition gets
        its persisted router installed by ``repro.partition.io``.
        """
        if self._router is None:
            self._router = EdgeRouter.for_sharded(self)
        return self._router

    # ------------------------------------------------------------------
    # delta maintenance (the MaintainableIndex protocol)
    # ------------------------------------------------------------------
    def apply_delta(self, delta) -> bool:
        """Patch the sharded index in place for one typed graph delta.

        Routing rules (each delta touches O(delta) maintained state plus
        the invalidation scan over cached expansions):

        * ``VertexAdded`` — the isolated vertex is routed to its stable
          bucket shard, recorded in ``vertex_assignment``, added to that
          shard's graph, and counted in the merged histogram;
        * ``EdgeAdded`` — the edge is routed by :meth:`router` (sticky
          pairs / affinity / hash, per the partition method), becomes a
          core edge of its owner shard, both endpoints are replicated
          into the owner shard (halos re-derived from the owner sets),
          stale isolated assignments are retired, and the label-pair
          directory gains the owner;
        * ``EdgeRemoved`` — the inverse: the core edge leaves its owner
          shard, endpoints whose last edge there vanished leave the
          shard (or, having lost their last edge anywhere, are
          re-assigned as isolated vertices), and emptied directory
          entries are deleted exactly as a rebuild would never create
          them;
        * ``VertexRemoved`` — sound only once isolated (the publisher
          emits the incident ``EdgeRemoved`` deltas first): the vertex
          leaves its assigned shard and the histogram.

        Cached halo expansions whose ball a delta could touch are
        invalidated (membership-changed shards, views containing a
        touched vertex, and whole-graph aliases); untouched views — and
        their cached per-view indexes — survive, which is what makes
        localized streams cheap.  The index version advances to the
        delta's version; apply deltas contiguously
        (:class:`~repro.partition.maintainer.ShardedIndexMaintainer`
        enforces this).  Returns ``False`` for unknown delta kinds.
        """
        from ..index.delta import EdgeAdded, EdgeRemoved, VertexAdded, VertexRemoved

        # Materialize the router from the *pre-delta* state: building it
        # lazily mid-splice (after an attach/detach already moved shard
        # state) would double- or under-count the moved edge in its loads.
        self.router()
        self._active_delta = delta
        try:
            if isinstance(delta, VertexAdded):
                self._apply_vertex_added(delta.vertex, delta.label)
            elif isinstance(delta, EdgeAdded):
                self._apply_edge_added(delta.u, delta.v, delta.label_u, delta.label_v)
            elif isinstance(delta, EdgeRemoved):
                self._apply_edge_removed(delta.u, delta.v, delta.label_u, delta.label_v)
            elif isinstance(delta, VertexRemoved):
                self._apply_vertex_removed(delta.vertex, delta.label)
            else:
                return False
        finally:
            self._active_delta = None
        self.version = delta.version
        return True

    # -- membership / halo helpers -------------------------------------
    def _add_member(self, shard_id: int, vertex: Vertex, label: Label) -> None:
        shard = self.shards[shard_id]
        if not shard.graph.has_vertex(vertex):
            shard.graph.add_vertex(vertex, label)
        self._owners.setdefault(vertex, set()).add(shard_id)

    def _drop_member(self, shard_id: int, vertex: Vertex) -> None:
        shard = self.shards[shard_id]
        if shard.graph.has_vertex(vertex):
            shard.graph.remove_vertex(vertex)
        shard.halo_vertices.discard(vertex)
        owners = self._owners.get(vertex)
        if owners is not None:
            owners.discard(shard_id)
            if not owners:
                del self._owners[vertex]

    def _refresh_halo(self, vertex: Vertex) -> None:
        """Re-derive the boundary status of one vertex in every incident shard."""
        owners = self._owners.get(vertex, ())
        boundary = len(owners) > 1
        for shard_id in owners:
            halo = self.shards[shard_id].halo_vertices
            if boundary:
                halo.add(vertex)
            else:
                halo.discard(vertex)

    # -- core-edge attach/detach (shared by deltas and rebalancing) ----
    def _attach_edge(self, edge: Edge, lu: Label, lv: Label, shard_id: int) -> None:
        u, v = edge
        self.partition.assignment[edge] = shard_id
        for w, lw in ((u, lu), (v, lv)):
            counts = self._edge_counts.setdefault(w, {})
            counts[shard_id] = counts.get(shard_id, 0) + 1
            self._add_member(shard_id, w, lw)
        shard = self.shards[shard_id]
        shard.graph.add_edge(u, v)
        shard._add_core_edge(edge)
        pair = _label_pair_key(lu, lv)
        pair_counts = self._pair_counts.setdefault(pair, {})
        if shard_id not in pair_counts:
            pair_counts[shard_id] = 0
            self._pair_shards[pair] = tuple(sorted(pair_counts))
        pair_counts[shard_id] += 1
        self.router().edge_assigned(u, v, lu, lv, shard_id)

    def _detach_edge(self, edge: Edge, lu: Label, lv: Label, shard_id: int) -> None:
        """Remove a core edge from its shard (membership handled by callers)."""
        u, v = edge
        shard = self.shards[shard_id]
        shard.graph.remove_edge(u, v)
        shard._remove_core_edge(edge)
        pair = _label_pair_key(lu, lv)
        pair_counts = self._pair_counts[pair]
        pair_counts[shard_id] -= 1
        if pair_counts[shard_id] == 0:
            del pair_counts[shard_id]
            if pair_counts:
                self._pair_shards[pair] = tuple(sorted(pair_counts))
            else:
                # A rebuild never materializes empty directory entries.
                del self._pair_counts[pair]
                del self._pair_shards[pair]
        for w in (u, v):
            counts = self._edge_counts[w]
            counts[shard_id] -= 1
            if counts[shard_id] == 0:
                del counts[shard_id]
            if not counts:
                del self._edge_counts[w]
        self.router().edge_removed(shard_id)

    def _invalidate_expansions(self, shard_ids: Set[int], vertices) -> None:
        """Drop cached halo expansions a delta could have changed.

        A view survives only when its base shard's membership is
        untouched, it is not a whole-graph alias, and no touched vertex
        lies inside it — in which case neither its vertex ball nor its
        induced edges can have moved (a touched edge with both endpoints
        outside a ball cannot shorten any path into it).

        Subscribed invalidation listeners (the shard-resident worker pool
        and the out-of-core pager track slice/spill staleness through
        them) are notified *before* the cache scan — they hold their own
        copies of view state and must hear about every touched region
        even when nothing is cached here.  ``delta`` is the typed graph
        delta being applied, or ``None`` for structural invalidations
        (rebalance moves) a replay cannot reproduce.
        """
        if self._listeners:
            delta = self._active_delta
            touched = tuple(vertices)
            for listener in tuple(self._listeners):
                listener(shard_ids, touched, delta)
        if not self._expanded:
            return
        graph = self.graph
        dead = [
            key
            for key, view in self._expanded.items()
            if key[0] in shard_ids
            or view is graph
            or any(view.has_vertex(vertex) for vertex in vertices)
        ]
        for key in dead:
            del self._expanded[key]

    def subscribe_invalidations(self, listener) -> None:
        """Register ``listener(shard_ids, vertices, delta)`` for every
        expansion invalidation (deltas and rebalance moves alike)."""
        self._listeners.append(listener)

    def unsubscribe_invalidations(self, listener) -> None:
        """Remove a listener; unknown listeners are ignored."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    # -- per-kind handlers ---------------------------------------------
    def _apply_vertex_added(self, vertex: Vertex, label: Label) -> None:
        shard_id = self.router().route_vertex(vertex)
        self.partition.vertex_assignment[vertex] = shard_id
        self._add_member(shard_id, vertex, label)
        self._histogram[label] = self._histogram.get(label, 0) + 1
        self._invalidate_expansions({shard_id}, (vertex,))

    def _apply_edge_added(self, u: Vertex, v: Vertex, lu: Label, lv: Label) -> None:
        edge = normalize_edge(u, v)
        if edge in self.partition.assignment:
            raise PartitionError(
                f"EdgeAdded({edge!r}) patched twice; deltas must replay "
                "the mutation stream contiguously"
            )
        shard_id = self.router().route_edge(u, v, lu, lv)
        touched = {shard_id}
        for w in (u, v):
            stale = self.partition.vertex_assignment.pop(w, None)
            if stale is not None and stale != shard_id:
                # The endpoint is no longer isolated; its only reason to
                # live in the stale shard is gone.
                self._drop_member(stale, w)
                touched.add(stale)
        self._attach_edge(edge, lu, lv, shard_id)
        self._refresh_halo(u)
        self._refresh_halo(v)
        self._invalidate_expansions(touched, (u, v))

    def _apply_edge_removed(self, u: Vertex, v: Vertex, lu: Label, lv: Label) -> None:
        edge = normalize_edge(u, v)
        shard_id = self.partition.assignment.pop(edge, None)
        if shard_id is None:
            raise PartitionError(
                f"EdgeRemoved({edge!r}) for an edge the partition does not "
                "cover; deltas must replay the mutation stream contiguously"
            )
        self._detach_edge(edge, lu, lv, shard_id)
        touched = {shard_id}
        for w, lw in ((u, lu), (v, lv)):
            counts = self._edge_counts.get(w)
            if counts is None:
                # Last edge anywhere: w is isolated again; give it the
                # stable-bucket home a from-scratch partition would.
                if w not in self.partition.vertex_assignment:
                    home = self.router().route_vertex(w)
                    self.partition.vertex_assignment[w] = home
                    if home != shard_id:
                        self._drop_member(shard_id, w)
                        touched.add(home)
                    self._add_member(home, w, lw)
            elif (
                counts.get(shard_id, 0) == 0
                and self.partition.vertex_assignment.get(w) != shard_id
            ):
                self._drop_member(shard_id, w)
            self._refresh_halo(w)
        self._invalidate_expansions(touched, (u, v))

    def _apply_vertex_removed(self, vertex: Vertex, label: Label) -> None:
        if vertex in self._edge_counts:
            raise PartitionError(
                f"VertexRemoved({vertex!r}) patched while the vertex still "
                "has core edges; the publisher must emit the incident "
                "EdgeRemoved deltas first"
            )
        shard_id = self.partition.vertex_assignment.pop(vertex, None)
        if shard_id is None:
            raise PartitionError(
                f"VertexRemoved({vertex!r}) for a vertex the partition does "
                "not cover; deltas must replay the mutation stream contiguously"
            )
        self._drop_member(shard_id, vertex)
        self._histogram[label] -= 1
        if self._histogram[label] == 0:
            del self._histogram[label]
        self._invalidate_expansions({shard_id}, (vertex,))

    # ------------------------------------------------------------------
    # rebalancing
    # ------------------------------------------------------------------
    def rebalance(self, max_load_factor: float = 1.5) -> int:
        """Move core edges off overflowing shards; returns edges moved.

        A shard overflows when its core-edge count exceeds
        ``ceil(max_load_factor * |E| / k)``.  Overflowing shards shed
        their canonically-last core edges onto the open shard with the
        most endpoint affinity (fewest new replicas), load and id as
        tie-breaks — deterministic, and touching **only** the shards
        involved (per-shard indexes and expansions elsewhere survive).
        The graph itself is never mutated, so the index version is
        unchanged and exactness is preserved for any resulting partition.
        """
        if max_load_factor < 1.0:
            raise PartitionError(
                f"max_load_factor must be >= 1.0, got {max_load_factor}"
            )
        if self.num_shards == 1:
            return 0
        # As in apply_delta: the router must exist before the first move
        # splices shard state, or its reconstructed loads double-count.
        self.router()
        loads = [shard.num_core_edges for shard in self.shards]
        total = sum(loads)
        if total == 0:
            return 0
        capacity = max(1, math.ceil(max_load_factor * total / self.num_shards))
        moved = 0
        for src in range(self.num_shards):
            while loads[src] > capacity:
                targets = [
                    s
                    for s in range(self.num_shards)
                    if s != src and loads[s] < capacity
                ]
                if not targets:  # pragma: no cover - capacity covers total
                    break
                edge = self.shards[src].core_edges[-1]
                u, v = edge
                shard_graph = self.shards[src].graph
                lu, lv = shard_graph.label_of(u), shard_graph.label_of(v)
                owners_u = self._owners.get(u, ())
                owners_v = self._owners.get(v, ())
                dst = min(
                    targets,
                    key=lambda s: (
                        -((s in owners_u) + (s in owners_v)),
                        loads[s],
                        s,
                    ),
                )
                self._move_edge(edge, lu, lv, src, dst)
                loads[src] -= 1
                loads[dst] += 1
                moved += 1
        return moved

    def _move_edge(self, edge: Edge, lu: Label, lv: Label, src: int, dst: int) -> None:
        """Reassign one core edge from shard ``src`` to shard ``dst``."""
        u, v = edge
        # Attach first so neither endpoint transiently loses its last
        # membership reason.
        self._attach_edge(edge, lu, lv, dst)
        self._detach_edge(edge, lu, lv, src)
        for w in (u, v):
            counts = self._edge_counts.get(w, {})
            if (
                counts.get(src, 0) == 0
                and self.partition.vertex_assignment.get(w) != src
            ):
                self._drop_member(src, w)
            self._refresh_halo(w)
        self._invalidate_expansions({src, dst}, (u, v))

    # ------------------------------------------------------------------
    # merged global views
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return self.partition.num_shards

    def label_histogram(self) -> Dict[Label, int]:
        """Global vertex count per label (boundary vertices counted once).

        Maintained incrementally under deltas — equal to the source
        graph's histogram at the index version, which keeps every
        histogram-derived prune bound exact under sharding.  Do not
        mutate the returned dict.
        """
        return self._histogram

    def shards_for_pair(self, lu: Label, lv: Label) -> Tuple[int, ...]:
        """Shard ids whose core edges realize the unordered label pair."""
        return self._pair_shards.get(_label_pair_key(lu, lv), ())

    def label_pair_directory(self) -> Dict[LabelPair, Tuple[int, ...]]:
        """Canonical label pair -> shard ids (do not mutate)."""
        return self._pair_shards

    def shard_index(self, shard_id: int) -> GraphIndex:
        """The (cached) :class:`GraphIndex` of one shard's core graph.

        Each shard graph rides its own
        :class:`~repro.index.delta.IndexMaintainer` (attached lazily on
        first use), so shard-graph mutations made by :meth:`apply_delta`
        are absorbed by the existing O(delta) splice machinery instead of
        triggering per-shard rebuilds.
        """
        maintainer = self._maintainers.get(shard_id)
        if maintainer is None:
            from ..index.delta import IndexMaintainer

            maintainer = IndexMaintainer(self.shards[shard_id].graph)
            self._maintainers[shard_id] = maintainer
        return maintainer.index()  # type: ignore[union-attr]

    def boundary_vertices(self) -> Set[Vertex]:
        """All vertices replicated into more than one shard."""
        boundary: Set[Vertex] = set()
        for shard in self.shards:
            boundary |= shard.halo_vertices
        return boundary

    def replication_factor(self) -> float:
        """``sum_i |V_i| / |V|`` — 1.0 means no vertex is replicated.

        ``|V|`` is the member count at the index version (every graph
        vertex lives in exactly the shards owning one of its edges, or
        its isolated-assignment shard), so the ratio stays meaningful
        mid-maintenance even while the source graph has drifted ahead.
        """
        total = sum(shard.num_vertices for shard in self.shards)
        return total / max(1, len(self._owners))

    # ------------------------------------------------------------------
    # halo-expanded views
    # ------------------------------------------------------------------
    def attach_pager(self, pager) -> None:
        """Route view caching through an out-of-core pager.

        With a pager attached, :meth:`expanded_shard` delegates to
        ``pager.view`` (LRU residency + disk spill,
        :class:`repro.partition.workers.ShardPager`) instead of the
        unbounded in-memory ``_expanded`` cache, which is cleared — the
        pager owns every cached view from here on.
        """
        self._pager = pager
        self._expanded.clear()

    def detach_pager(self) -> None:
        """Return to the plain in-memory view cache."""
        self._pager = None

    @property
    def pager(self):
        """The attached out-of-core pager, or ``None``."""
        return self._pager

    def expanded_shard(self, shard_id: int, depth: int) -> LabeledGraph:
        """The induced subgraph within ``depth`` hops of a shard's vertices.

        Depth 0 is the induced subgraph on the shard's own vertex set
        (which may pick up non-core edges between boundary vertices —
        exactly the cross-shard edges halo-aware evaluation must see).
        Views are cached per (shard, depth); when the ball swallows the
        whole graph the source graph itself is returned, so its cached
        global index is reused instead of duplicated.  Delta maintenance
        invalidates exactly the views a delta could have changed.  With a
        pager attached (:meth:`attach_pager`) residency is bounded and
        cold views page to disk instead of living here.
        """
        if self._pager is not None:
            return self._pager.view(shard_id, depth)
        key = (shard_id, depth)
        cached = self._expanded.get(key)
        if cached is not None:
            return cached
        return self._compute_expansion(shard_id, depth, cache=True)

    def _compute_expansion(
        self, shard_id: int, depth: int, cache: bool = False
    ) -> LabeledGraph:
        """Compute one halo-expanded view from scratch (no cache lookup).

        When the source graph carries a current compact index, the BFS
        runs over the CSR rows with interned ids (one list index per
        neighbor instead of a hash probe per visit) and the kept set is
        decoded once at the end.
        """
        from ..index.compact import CompactGraphIndex

        cached_index = self.graph.cached_index()
        if (
            depth > 0
            and isinstance(cached_index, CompactGraphIndex)
            and cached_index.is_current()
        ):
            ci = cached_index
            vint_of = ci.table._vint_of
            rows = ci._rows
            seen = bytearray(len(ci.table.vertex_of))
            frontier_ints = []
            for vertex in self.shards[shard_id].graph.vertices():
                vi = vint_of[vertex]
                seen[vi] = 1
                frontier_ints.append(vi)
            kept_ints = list(frontier_ints)
            for _ in range(depth):
                if not frontier_ints:
                    break
                next_frontier = []
                for vi in frontier_ints:
                    row = rows[vi]
                    for j in range(1 + 2 * row[0], len(row)):
                        w = row[j]
                        if not seen[w]:
                            seen[w] = 1
                            next_frontier.append(w)
                frontier_ints = next_frontier
                kept_ints.extend(next_frontier)
            decode = ci.table.vertex_of
            keep = {decode[vi] for vi in kept_ints}
        else:
            frontier = set(self.shards[shard_id].graph.vertices())
            keep = set(frontier)
            for _ in range(depth):
                if not frontier:
                    break
                frontier = {
                    neighbor
                    for vertex in frontier
                    for neighbor in self.graph.neighbors(vertex)
                    if neighbor not in keep
                }
                keep |= frontier
        if len(keep) == self.graph.num_vertices:
            expanded = self.graph
        else:
            expanded = self.graph.subgraph(keep)
            expanded.name = f"{self.graph.name or 'graph'}[shard {shard_id}+{depth}]"
        if cache:
            self._expanded[(shard_id, depth)] = expanded
        return expanded

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ShardedIndex shards={self.num_shards} "
            f"method={self.partition.method!r} |V|={self.graph.num_vertices} "
            f"|E|={self.graph.num_edges} "
            f"replication={self.replication_factor():.2f} v{self.version}>"
        )
