"""ShardedIndex — the index layer over a partitioned data graph.

This is the architectural seam the ROADMAP's sharding item asked for: a
:class:`ShardedIndex` splits one :class:`LabeledGraph` into k edge-disjoint
:class:`~repro.partition.shard.GraphShard` cells (via a configurable
:func:`~repro.partition.partitioner.partition_edges` method), replicates
boundary vertices into per-shard halos, and exposes the merged global
views evaluation needs:

* a **global label histogram** — merged over shard vertex sets with
  replicated boundary vertices counted once, so it is identical to the
  unpartitioned graph's histogram (the miner's label-frequency prune
  bound stays exact);
* a **label-pair directory** — canonical label pair → the shard ids whose
  *core* edges realize it.  A pattern can only have occurrences anchored
  in shards sharing its footprint, so the directory prunes whole shards
  per candidate;
* per-shard :class:`~repro.index.GraphIndex` instances (built lazily and
  cached on each shard's core graph through the ordinary ``get_index``
  path, so the PR 2 delta protocol applies shard-by-shard);
* **halo-expanded shard views** — the induced subgraph within ``depth``
  hops of a shard's vertices, cached per (shard, depth).  Depth
  ``n - 2`` is exactly what makes per-shard enumeration of an n-node
  connected pattern exhaustive for occurrences using a core edge (see
  :mod:`repro.partition.evaluate`).

Like :class:`~repro.index.GraphIndex`, a ShardedIndex is a snapshot: it
records the source graph's mutation version and :meth:`is_current`
reports staleness; the miner re-syncs per session exactly as it does for
the flat index.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..errors import PartitionError
from ..graph.labeled_graph import Label, LabeledGraph, Vertex
from ..index.graph_index import GraphIndex, _label_pair_key, get_index
from .partitioner import Partition, partition_edges
from .shard import GraphShard

LabelPair = Tuple[Label, Label]


class ShardedIndex:
    """k edge-disjoint shards of one data graph, plus merged global views.

    Build with :meth:`build` (partitioning included) or directly from a
    pre-computed :class:`~repro.partition.partitioner.Partition`.  The
    source graph is retained: halo expansion and global-exactness
    guarantees both need it, and a one-shard index degenerates to the
    ordinary single-graph path.
    """

    __slots__ = ("graph", "partition", "version", "shards", "_pair_shards", "_expanded")

    def __init__(self, graph: LabeledGraph, partition: Partition) -> None:
        self.graph = graph
        self.partition = partition
        self.version = graph.mutation_version()
        self._expanded: Dict[Tuple[int, int], LabeledGraph] = {}

        members: List[Dict[Vertex, Label]] = [{} for _ in range(partition.num_shards)]
        core_edges: List[List] = [[] for _ in range(partition.num_shards)]
        owners: Dict[Vertex, Set[int]] = {}
        for edge in graph.edges():
            owner = partition.assignment.get(edge)
            if owner is None:
                raise PartitionError(
                    f"edge {edge!r} is not covered by the partition "
                    "(was the graph mutated after partitioning?)"
                )
            core_edges[owner].append(edge)
            for vertex in edge:
                members[owner][vertex] = graph.label_of(vertex)
                owners.setdefault(vertex, set()).add(owner)
        for vertex, owner in partition.vertex_assignment.items():
            members[owner][vertex] = graph.label_of(vertex)
            owners.setdefault(vertex, set()).add(owner)

        pair_shards: Dict[LabelPair, Set[int]] = {}
        shards: List[GraphShard] = []
        for shard_id in range(partition.num_shards):
            shard_graph = LabeledGraph(
                name=f"{graph.name or 'graph'}[shard {shard_id}]"
            )
            for vertex in sorted(members[shard_id], key=repr):
                shard_graph.add_vertex(vertex, members[shard_id][vertex])
            for u, v in core_edges[shard_id]:
                shard_graph.add_edge(u, v)
                pair = _label_pair_key(graph.label_of(u), graph.label_of(v))
                pair_shards.setdefault(pair, set()).add(shard_id)
            halo = frozenset(
                vertex for vertex in members[shard_id] if len(owners[vertex]) > 1
            )
            shards.append(
                GraphShard(
                    shard_id=shard_id,
                    graph=shard_graph,
                    core_edges=tuple(sorted(core_edges[shard_id], key=repr)),
                    halo_vertices=halo,
                )
            )
        self.shards = tuple(shards)
        self._pair_shards = {
            pair: tuple(sorted(ids)) for pair, ids in pair_shards.items()
        }

    # ------------------------------------------------------------------
    # factory / freshness
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls, graph: LabeledGraph, num_shards: int, method: str = "hash"
    ) -> "ShardedIndex":
        """Partition ``graph`` and build the sharded index in one call."""
        return cls(graph, partition_edges(graph, num_shards, method))

    def is_current(self) -> bool:
        """True while the source graph has not been mutated."""
        return self.graph.mutation_version() == self.version

    # ------------------------------------------------------------------
    # merged global views
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return self.partition.num_shards

    def label_histogram(self) -> Dict[Label, int]:
        """Global vertex count per label (boundary vertices counted once).

        Merged from the shard vertex sets, deduplicated by vertex id —
        equal to the source graph's histogram, which keeps every
        histogram-derived prune bound exact under sharding.
        """
        counted: Set[Vertex] = set()
        histogram: Dict[Label, int] = {}
        for shard in self.shards:
            graph = shard.graph
            for vertex in graph.vertices():
                if vertex in counted:
                    continue
                counted.add(vertex)
                label = graph.label_of(vertex)
                histogram[label] = histogram.get(label, 0) + 1
        return histogram

    def shards_for_pair(self, lu: Label, lv: Label) -> Tuple[int, ...]:
        """Shard ids whose core edges realize the unordered label pair."""
        return self._pair_shards.get(_label_pair_key(lu, lv), ())

    def label_pair_directory(self) -> Dict[LabelPair, Tuple[int, ...]]:
        """Canonical label pair -> shard ids (do not mutate)."""
        return self._pair_shards

    def shard_index(self, shard_id: int) -> GraphIndex:
        """The (cached) :class:`GraphIndex` of one shard's core graph."""
        return get_index(self.shards[shard_id].graph)

    def boundary_vertices(self) -> Set[Vertex]:
        """All vertices replicated into more than one shard."""
        boundary: Set[Vertex] = set()
        for shard in self.shards:
            boundary |= shard.halo_vertices
        return boundary

    def replication_factor(self) -> float:
        """``sum_i |V_i| / |V|`` — 1.0 means no vertex is replicated."""
        total = sum(shard.num_vertices for shard in self.shards)
        return total / max(1, self.graph.num_vertices)

    # ------------------------------------------------------------------
    # halo-expanded views
    # ------------------------------------------------------------------
    def expanded_shard(self, shard_id: int, depth: int) -> LabeledGraph:
        """The induced subgraph within ``depth`` hops of a shard's vertices.

        Depth 0 is the induced subgraph on the shard's own vertex set
        (which may pick up non-core edges between boundary vertices —
        exactly the cross-shard edges halo-aware evaluation must see).
        Views are cached per (shard, depth); when the ball swallows the
        whole graph the source graph itself is returned, so its cached
        global index is reused instead of duplicated.
        """
        key = (shard_id, depth)
        cached = self._expanded.get(key)
        if cached is not None:
            return cached
        frontier = set(self.shards[shard_id].graph.vertices())
        keep = set(frontier)
        for _ in range(depth):
            if not frontier:
                break
            frontier = {
                neighbor
                for vertex in frontier
                for neighbor in self.graph.neighbors(vertex)
                if neighbor not in keep
            }
            keep |= frontier
        if len(keep) == self.graph.num_vertices:
            expanded = self.graph
        else:
            expanded = self.graph.subgraph(keep)
            expanded.name = f"{self.graph.name or 'graph'}[shard {shard_id}+{depth}]"
        self._expanded[key] = expanded
        return expanded

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ShardedIndex shards={self.num_shards} "
            f"method={self.partition.method!r} |V|={self.graph.num_vertices} "
            f"|E|={self.graph.num_edges} "
            f"replication={self.replication_factor():.2f} v{self.version}>"
        )
