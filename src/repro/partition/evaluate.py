"""Halo-aware support evaluation over a :class:`ShardedIndex`.

Per-shard enumeration is made **exhaustive** by one geometric fact: an
occurrence of a connected n-node pattern that uses a core edge ``(u, v)``
of shard ``s`` lies entirely within ``n - 2`` hops of ``{u, v}`` (the
worst case is a path with the anchoring edge at one end).  So enumerating
the pattern in :meth:`ShardedIndex.expanded_shard`\\ ``(s, n - 2)`` — the
induced halo expansion of the shard — finds *every* occurrence anchored
in ``s``, through the ordinary indexed VF2 engine.

Each shard keeps only the occurrences that actually use one of its core
edges (its *anchored* occurrences); an occurrence whose edges span
several shards is anchored in each of them and is deduplicated by its
canonical image key (the sorted ``(node, vertex)`` item tuple).  Because
the shards' core edges partition ``E``, the deduplicated union over
shards is exactly the global occurrence set — support values, occurrence
counts, and (after canonical re-sorting) the derived MNI domains and
overlap structures are **identical** to unsharded evaluation, which
``tests/test_partition_equivalence.py`` pins measure by measure.

Shard pruning: a pattern's occurrences can only be anchored in shards
whose core label-pair directory intersects the pattern's footprint, so
the other shards are skipped outright.  Lazy (threshold-capped) MNI
unions per-shard anchored image scans instead of occurrence lists; a
shard that confirms ``cap`` images for a node short-circuits the scan.

Patterns the per-shard argument does not cover (disconnected, or
edge-free) fall back to flat evaluation on the source graph — exactness
over micro-optimization.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..graph.labeled_graph import LabeledGraph, Vertex, normalize_edge
from ..graph.pattern import Pattern
from ..hypergraph.construction import HypergraphBundle
from ..index.graph_index import IndexArg, _label_pair_key
from ..isomorphism.anchored import valid_images
from ..isomorphism.matcher import Occurrence
from ..isomorphism.vf2 import collect_subgraph_isomorphism_items
from ..measures.base import compute_support
from ..mining.parallel import LABEL_FREQUENCY_BOUNDED, label_frequency_bound
from .sharded_index import ShardedIndex

#: One occurrence as its canonical image key: the repr-sorted
#: ``(pattern node, data vertex)`` item tuple (see ``Occurrence.mapping_items``).
OccurrenceItems = Tuple[Tuple[Vertex, Vertex], ...]


def required_depth(pattern: Pattern) -> int:
    """Halo depth that makes per-shard enumeration of ``pattern`` exhaustive."""
    return max(0, pattern.num_nodes - 2)


def pattern_shardable(pattern: Pattern) -> bool:
    """True when the anchored-occurrence argument covers ``pattern``.

    It needs at least one pattern edge to anchor on and connectivity for
    the ``n - 2`` hop bound; anything else routes through the flat path.
    """
    return pattern.num_edges > 0 and pattern.graph.is_connected()


def pattern_label_pairs(pattern: Pattern) -> Set[Tuple]:
    """The canonical label pairs realized by ``pattern``'s edges."""
    graph = pattern.graph
    return {
        _label_pair_key(graph.label_of(u), graph.label_of(v))
        for u, v in graph.edges()
    }


def relevant_shards(pattern: Pattern, sharded: ShardedIndex) -> List[int]:
    """Shard ids that can anchor an occurrence of ``pattern``.

    An anchored occurrence maps some pattern edge onto a shard core edge,
    so the shard's core label pairs must intersect the pattern's
    label-pair footprint.
    """
    ids: Set[int] = set()
    for pair in pattern_label_pairs(pattern):
        ids.update(sharded.shards_for_pair(*pair))
    return sorted(ids)


def plan_candidate(
    pattern: Pattern,
    sharded: ShardedIndex,
    measure: str,
    *,
    lazy: bool,
    histogram: Optional[Dict] = None,
    prune_below: Optional[float] = None,
) -> Tuple[str, object]:
    """The per-candidate decision ladder shared by every sharded evaluator.

    Returns one of:

    * ``("flat", None)`` — single shard or a pattern the anchored
      argument does not cover; evaluate on the source graph;
    * ``("pruned", (bound, -1))`` — the global label-frequency bound
      already sits below the threshold (eager mode only), a finished
      outcome;
    * ``("shards", shard_ids)`` — evaluate on these relevant shards and
      merge.

    Both the serial path (:func:`sharded_evaluate_support`) and the
    process-pool planner consume this one function, so their decisions
    cannot drift apart.
    """
    if sharded.num_shards == 1 or not pattern_shardable(pattern):
        return "flat", None
    if (
        not lazy
        and prune_below is not None
        and histogram is not None
        and measure in LABEL_FREQUENCY_BOUNDED
    ):
        bound = label_frequency_bound(pattern, histogram)
        if bound < prune_below:
            return "pruned", (float(bound), -1)
    return "shards", relevant_shards(pattern, sharded)


def shard_exclusive(pattern: Pattern, sharded: ShardedIndex, shard_id: int) -> bool:
    """True when ``shard_id`` exclusively owns the pattern's whole footprint.

    Every data edge an occurrence could use is then a core edge of this
    shard, so the per-occurrence core-edge filter can be skipped (the
    common case under footprint-aligned ``label`` partitioning).  The
    parent computes this flag when planning shard-resident work, so a
    worker holding only its own slice makes the identical decision.
    """
    return all(
        sharded.shards_for_pair(*pair) == (shard_id,)
        for pair in pattern_label_pairs(pattern)
    )


def anchored_occurrence_items(
    pattern: Pattern,
    expanded: LabeledGraph,
    core: frozenset,
    *,
    exclusive: bool,
    index: IndexArg = None,
    limit: Optional[int] = None,
) -> List[OccurrenceItems]:
    """Occurrences of ``pattern`` anchored on ``core`` edges, in one view.

    The view-level core of :func:`shard_occurrence_items`, shared verbatim
    by the shard-resident workers (which hold a shipped slice of the
    expanded view instead of a :class:`ShardedIndex`): identical inputs —
    view content, core-edge set, ``exclusive`` flag, ``limit`` — produce
    identical item tuples wherever the enumeration runs, because the VF2
    engine explores candidates in canonical (content-determined) order.
    """
    if exclusive:
        return collect_subgraph_isomorphism_items(
            pattern, expanded, limit=limit, index=index
        )
    # Pattern nodes arrive repr-sorted inside each item tuple, so an edge
    # image can be read by position instead of building a dict per
    # occurrence.
    position = {node: i for i, node in enumerate(sorted(pattern.nodes(), key=repr))}
    edge_positions = [(position[a], position[b]) for a, b in pattern.edges()]
    kept: List[OccurrenceItems] = []
    if limit is not None:
        # Enumerate through the generator engine so the search stops as
        # soon as `limit` *anchored* occurrences are confirmed, instead of
        # materializing the expanded view's full occurrence list first.
        from ..isomorphism.vf2 import find_subgraph_isomorphisms

        if limit <= 0:
            return kept
        for mapping in find_subgraph_isomorphisms(pattern, expanded, index=index):
            items = tuple(sorted(mapping.items(), key=lambda kv: repr(kv[0])))
            if any(
                normalize_edge(items[pa][1], items[pb][1]) in core
                for pa, pb in edge_positions
            ):
                kept.append(items)
                if len(kept) >= limit:
                    break
        return kept
    for items in collect_subgraph_isomorphism_items(pattern, expanded, index=index):
        if any(
            normalize_edge(items[pa][1], items[pb][1]) in core
            for pa, pb in edge_positions
        ):
            kept.append(items)
    return kept


def shard_occurrence_items(
    pattern: Pattern,
    sharded: ShardedIndex,
    shard_id: int,
    index: IndexArg = None,
    limit: Optional[int] = None,
) -> List[OccurrenceItems]:
    """Occurrences of ``pattern`` anchored in one shard, as item tuples.

    Enumerates the halo-expanded shard view through the ordinary engine
    (``index=False`` keeps the brute reference path alive shard-by-shard)
    and keeps the occurrences using at least one core edge of the shard
    (:func:`anchored_occurrence_items`; when the shard exclusively owns
    the pattern's footprint the filter is skipped outright).
    """
    return anchored_occurrence_items(
        pattern,
        sharded.expanded_shard(shard_id, required_depth(pattern)),
        sharded.shards[shard_id].core_edge_set,
        exclusive=shard_exclusive(pattern, sharded, shard_id),
        index=index,
        limit=limit,
    )


def merge_shard_items(
    item_lists: Sequence[Sequence[OccurrenceItems]],
) -> List[Occurrence]:
    """Deduplicate per-shard occurrence items into the global occurrence list.

    Cross-halo duplicates (occurrences anchored in several shards)
    collapse on the canonical image key; the merged list is re-sorted
    into canonical order and re-indexed, so every measure computed from
    it is a pure function of the global occurrence *set* — identical to
    unsharded evaluation.
    """
    non_empty = [items_list for items_list in item_lists if items_list]
    if len(non_empty) <= 1:
        # One contributing shard: occurrences are already distinct and in
        # canonical enumeration order — no dedup or re-sort to pay for.
        return [
            Occurrence(mapping_items=items, index=i)
            for i, items in enumerate(non_empty[0] if non_empty else ())
        ]
    seen: Set[OccurrenceItems] = set()
    for items_list in non_empty:
        seen.update(items_list)
    return [
        Occurrence(mapping_items=items, index=i)
        for i, items in enumerate(sorted(seen, key=repr))
    ]


def sharded_occurrences(
    pattern: Pattern,
    sharded: ShardedIndex,
    index: IndexArg = None,
    limit: Optional[int] = None,
) -> List[Occurrence]:
    """The global occurrence list of ``pattern``, via per-shard enumeration.

    With ``limit`` set, each shard stops after ``limit`` anchored
    occurrences and the merged list is truncated to ``limit`` — a
    deterministic safety valve, though not the same prefix the unsharded
    enumeration order would keep (equivalence holds for ``limit=None``).
    """
    item_lists = [
        shard_occurrence_items(pattern, sharded, shard_id, index=index, limit=limit)
        for shard_id in relevant_shards(pattern, sharded)
    ]
    merged = merge_shard_items(item_lists)
    if limit is not None:
        merged = merged[:limit]
    return merged


def support_from_shard_items(
    pattern: Pattern,
    data: LabeledGraph,
    item_lists: Sequence[Sequence[OccurrenceItems]],
    measure: str,
    max_occurrences: Optional[int] = None,
) -> Tuple[float, int]:
    """Merge per-shard occurrence items and compute one measure exactly.

    The single merge + measure path shared by the serial sharded
    evaluator and the process-pool outcome loop (the pool ships each
    shard's items back and merges here, in the parent), so the two modes
    cannot drift apart.
    """
    merged = merge_shard_items(item_lists)
    if max_occurrences is not None:
        merged = merged[:max_occurrences]
    bundle = HypergraphBundle(pattern=pattern, data=data, occurrences=merged)
    support = compute_support(measure, pattern, data, bundle=bundle)
    return support, bundle.num_occurrences


def merge_lazy_partials(
    partials: Sequence[Dict[Vertex, Tuple[Tuple[Vertex, ...], bool]]],
    cap: Optional[int],
) -> int:
    """Fold per-shard anchored image scans into the capped global MNI.

    Each partial maps pattern node -> (images found in that shard,
    hit-cap flag).  A capped shard already proves the node has >= ``cap``
    global images; otherwise the shard scan was exhaustive and the union
    over shards is the node's exact global image set.
    """
    best: Optional[int] = None
    nodes = partials[0].keys() if partials else ()
    for node in nodes:
        images: Set[Vertex] = set()
        capped = False
        for partial in partials:
            found, hit_cap = partial[node]
            if hit_cap:
                capped = True
                break
            images.update(found)
        count = cap if capped else len(images)
        if cap is not None:
            count = min(count, cap)
        if best is None or count < best:
            best = count
        if best == 0:
            return 0
    return best or 0


def node_image_partial(
    pattern: Pattern,
    expanded: LabeledGraph,
    cap: Optional[int],
    index: IndexArg = None,
) -> Dict[Vertex, Tuple[Tuple[Vertex, ...], bool]]:
    """Per-node anchored image scan of one expanded view (lazy MNI).

    The view-level core of :func:`shard_node_images`, shared by the
    shard-resident workers: pattern node -> (images found, hit-cap flag).
    """
    partial: Dict[Vertex, Tuple[Tuple[Vertex, ...], bool]] = {}
    for node in pattern.nodes():
        found = valid_images(pattern, expanded, node, stop_after=cap, index=index)
        partial[node] = (
            tuple(found),
            cap is not None and len(found) >= cap,
        )
    return partial


def shard_node_images(
    pattern: Pattern,
    sharded: ShardedIndex,
    shard_id: int,
    cap: Optional[int],
    index: IndexArg = None,
) -> Dict[Vertex, Tuple[Tuple[Vertex, ...], bool]]:
    """Per-node anchored image scan of one halo-expanded shard (lazy MNI).

    Every image found in the expanded view is a genuine global image (the
    view is a subgraph), and every anchored occurrence is contained in
    it, so unioning these partials across relevant shards reconstructs
    the exact global image set per node (see :func:`merge_lazy_partials`).
    """
    return node_image_partial(
        pattern,
        sharded.expanded_shard(shard_id, required_depth(pattern)),
        cap,
        index=index,
    )


def sharded_lazy_mni(
    pattern: Pattern,
    sharded: ShardedIndex,
    cap: Optional[int],
    index: IndexArg = None,
    shard_ids: Optional[List[int]] = None,
) -> int:
    """``min(sigma_MNI, cap)`` via per-shard anchored scans (no enumeration)."""
    if shard_ids is None:
        shard_ids = relevant_shards(pattern, sharded)
    if not shard_ids:
        return 0
    best: Optional[int] = None
    for node in pattern.nodes():
        images: Set[Vertex] = set()
        capped = False
        for shard_id in shard_ids:
            expanded = sharded.expanded_shard(shard_id, required_depth(pattern))
            found = valid_images(pattern, expanded, node, stop_after=cap, index=index)
            if cap is not None and len(found) >= cap:
                capped = True
                break
            images.update(found)
        count = cap if capped else len(images)
        if cap is not None:
            count = min(count, cap)
        if best is None or count < best:
            best = count
        if best == 0:
            return 0
    assert best is not None
    return best


def sharded_evaluate_support(
    pattern: Pattern,
    sharded: ShardedIndex,
    measure: str,
    *,
    lazy: bool,
    lazy_cap: int,
    max_occurrences: Optional[int],
    index_arg: IndexArg,
    histogram: Optional[Dict] = None,
    prune_below: Optional[float] = None,
) -> Tuple[float, int]:
    """Shard-parallel twin of :func:`repro.mining.parallel.evaluate_support`.

    Same contract: ``(support, num_occurrences)`` with ``-1`` when
    occurrences were never enumerated (lazy mode or a label-frequency
    prune).  The prune bound uses the merged **global** histogram, so the
    sharded and flat evaluators make byte-identical pruning decisions;
    unpruned candidates evaluate per shard and merge exactly.
    """
    kind, payload = plan_candidate(
        pattern,
        sharded,
        measure,
        lazy=lazy,
        histogram=histogram,
        prune_below=prune_below,
    )
    if kind == "flat":
        from ..mining.parallel import evaluate_support

        return evaluate_support(
            pattern,
            sharded.graph,
            measure,
            lazy=lazy,
            lazy_cap=lazy_cap,
            max_occurrences=max_occurrences,
            index_arg=index_arg,
            histogram=histogram,
            prune_below=prune_below,
        )
    if kind == "pruned":
        return payload  # type: ignore[return-value]
    shard_ids: List[int] = payload  # type: ignore[assignment]
    if lazy:
        support = float(
            sharded_lazy_mni(
                pattern, sharded, cap=lazy_cap, index=index_arg, shard_ids=shard_ids
            )
        )
        return support, -1
    item_lists = [
        shard_occurrence_items(
            pattern, sharded, shard_id, index=index_arg, limit=max_occurrences
        )
        for shard_id in shard_ids
    ]
    return support_from_shard_items(
        pattern, sharded.graph, item_lists, measure, max_occurrences=max_occurrences
    )
