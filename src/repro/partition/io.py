"""Saving and loading partitioned data graphs as shard directories.

A partitioned graph is a directory of per-shard ``.lg`` files plus a
``manifest.json``:

    out/
      manifest.json       format version, name, method, shard summary,
                          assignment state (isolated vertices + router)
      shard-0000.lg       shard 0's core vertices (incl. halo copies) + core edges
      shard-0001.lg       ...

Each shard file is a self-contained ``.lg`` graph — any GraMi-style tool
can read one shard in isolation.  Boundary vertices are replicated into
every incident shard's file (with consistent labels), edges appear in
exactly one file, and isolated vertices in their assigned shard's file —
so the union of the shard files reconstructs the original graph exactly,
and the file an edge appears in *is* its shard assignment (no separate
assignment table to drift out of sync).

Format 2 manifests additionally persist the partition's **assignment
state**: the explicit isolated-vertex assignments and the online
router's state (per-shard loads plus the label method's sticky
pair → shard map — including pairs whose edges have all been deleted,
which shard files alone cannot express).  A loaded partition therefore
keeps absorbing deltas *exactly* like the one that was saved: same
method, same routing decisions, same shard for a re-inserted edge.
Format 1 directories (pre-dynamic-partitions) still load; their router
state is reconstructed from the shard files.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path
from typing import Dict, Optional, Union

from ..errors import DatasetError, PartitionError
from ..graph.io import format_lg, parse_lg
from ..graph.labeled_graph import LabeledGraph
from .partitioner import PARTITION_METHODS, EdgeRouter, Partition
from .sharded_index import ShardedIndex

PathLike = Union[str, Path]

MANIFEST_NAME = "manifest.json"
MANIFEST_FORMAT = 2
#: Manifest versions :func:`load_partition` understands.
SUPPORTED_FORMATS = (1, MANIFEST_FORMAT)


def _shard_filename(shard_id: int) -> str:
    return f"shard-{shard_id:04d}.lg"


def save_partition(sharded: ShardedIndex, directory: PathLike) -> Path:
    """Write ``sharded`` as a shard directory; returns the manifest path.

    The directory is created if missing; existing shard files of the same
    names are overwritten.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest = {
        "format": MANIFEST_FORMAT,
        "name": sharded.graph.name,
        "method": sharded.partition.method,
        "num_shards": sharded.num_shards,
        "num_vertices": sharded.graph.num_vertices,
        "num_edges": sharded.graph.num_edges,
        "shards": [],
        "vertex_assignment": sorted(
            (
                [vertex, shard]
                for vertex, shard in sharded.partition.vertex_assignment.items()
            ),
            key=repr,
        ),
        "router": sharded.router().state_dict(),
    }
    for shard in sharded.shards:
        filename = _shard_filename(shard.shard_id)
        (directory / filename).write_text(format_lg(shard.graph))
        manifest["shards"].append(
            {
                "file": filename,
                "vertices": shard.num_vertices,
                "core_edges": shard.num_core_edges,
                "halo": len(shard.halo_vertices),
            }
        )
    manifest_path = directory / MANIFEST_NAME
    manifest_path.write_text(json.dumps(manifest, indent=2) + "\n")
    return manifest_path


def _shard_cache_dirname(shard_id: int) -> str:
    return f"shard-{shard_id:04d}"


def save_shard_views(
    directory: PathLike, shard_id: int, views: Dict[int, "LabeledGraph"]
) -> Path:
    """Spill one shard's halo-expanded views as a shard cache directory.

    The out-of-core pager's disk format: a manifest-format-2 style shard
    directory — one self-contained ``.lg`` file per cached expansion
    depth plus a ``manifest.json`` recording depth, file, and size of
    each view.  Existing contents for the shard are replaced atomically
    enough for a single-process pager (removed, then rewritten), so the
    directory always reflects exactly one spill generation.

    Vertex ids and labels must round-trip the ``.lg`` text format — the
    same contract :func:`save_partition` already relies on — which keeps
    a rehydrated view *content-identical* to the evicted one, and hence
    every evaluation over it byte-identical.
    """
    shard_dir = Path(directory) / _shard_cache_dirname(shard_id)
    if shard_dir.exists():
        shutil.rmtree(shard_dir)
    shard_dir.mkdir(parents=True)
    manifest = {
        "format": MANIFEST_FORMAT,
        "shard_id": shard_id,
        "views": [],
    }
    for depth in sorted(views):
        view = views[depth]
        filename = f"view-d{depth:02d}.lg"
        (shard_dir / filename).write_text(format_lg(view))
        manifest["views"].append(
            {
                "depth": depth,
                "file": filename,
                "vertices": view.num_vertices,
                "edges": view.num_edges,
            }
        )
    (shard_dir / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2) + "\n")
    return shard_dir


def load_shard_view(
    directory: PathLike, shard_id: int, depth: int
) -> Optional[LabeledGraph]:
    """Re-hydrate one spilled expansion view, or ``None`` if not on disk.

    Returns ``None`` both for a missing shard cache directory and for a
    depth the last spill did not include — the pager then recomputes the
    view from the live index instead.

    Raises
    ------
    DatasetError
        When the cache directory exists but is malformed (unreadable
        manifest, missing view file, or a view whose size contradicts
        its manifest entry — e.g. a truncated write).
    """
    shard_dir = Path(directory) / _shard_cache_dirname(shard_id)
    manifest_path = shard_dir / MANIFEST_NAME
    if not manifest_path.exists():
        return None
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise DatasetError(f"malformed shard cache manifest {manifest_path}: {exc}")
    if (
        manifest.get("format") != MANIFEST_FORMAT
        or manifest.get("shard_id") != shard_id
    ):
        raise DatasetError(
            f"shard cache manifest {manifest_path} does not describe shard "
            f"{shard_id} in format {MANIFEST_FORMAT}"
        )
    for entry in manifest.get("views", ()):
        if not isinstance(entry, dict) or entry.get("depth") != depth:
            continue
        path = shard_dir / entry.get("file", "")
        if not path.is_file():
            raise DatasetError(f"shard cache view file not found: {path}")
        view = parse_lg(path.read_text(), name=path.stem)
        if (
            view.num_vertices != entry.get("vertices")
            or view.num_edges != entry.get("edges")
        ):
            raise DatasetError(
                f"shard cache view {path} does not match its manifest entry "
                f"({view.num_vertices} vertices / {view.num_edges} edges on "
                f"disk vs {entry.get('vertices')}/{entry.get('edges')} recorded)"
            )
        return view
    return None


def load_partition(directory: PathLike) -> ShardedIndex:
    """Load a shard directory back into a :class:`ShardedIndex`.

    The data graph is reconstructed as the union of the shard files
    (edge-disjoint by construction; replicated boundary vertices collapse
    on their consistent labels), each edge's shard assignment is
    recovered from the file it appears in, and — for format 2 manifests —
    the isolated-vertex assignments and online router state are restored
    verbatim, so the loaded partition routes future deltas exactly like
    the saved one.

    Raises
    ------
    DatasetError
        When the directory or its manifest is missing or malformed.
    PartitionError
        When the shard files contradict the manifest (duplicate edge
        ownership, unknown method, wrong shard count, unknown assigned
        vertices).
    """
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        raise DatasetError(f"partition manifest not found: {manifest_path}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise DatasetError(f"malformed partition manifest {manifest_path}: {exc}")
    manifest_format = manifest.get("format")
    if manifest_format not in SUPPORTED_FORMATS:
        raise DatasetError(f"unsupported partition manifest format {manifest_format!r}")
    method = manifest.get("method")
    if method not in PARTITION_METHODS:
        raise PartitionError(f"manifest names unknown partition method {method!r}")
    entries = manifest.get("shards", [])
    num_shards = manifest.get("num_shards")
    if not isinstance(num_shards, int) or num_shards != len(entries):
        raise PartitionError(
            f"manifest shard count {num_shards!r} does not match "
            f"{len(entries)} shard entries"
        )

    graph = LabeledGraph(name=manifest.get("name") or "")
    assignment = {}
    vertex_assignment = {}
    shard_graphs = []
    for shard_id, entry in enumerate(entries):
        filename = entry.get("file") if isinstance(entry, dict) else None
        if not filename:
            raise DatasetError(
                f"manifest shard entry {shard_id} has no 'file' field"
            )
        path = directory / filename
        if not path.exists():
            raise DatasetError(f"shard file not found: {path}")
        shard_graph = parse_lg(path.read_text(), name=path.stem)
        shard_graphs.append(shard_graph)
        for vertex in shard_graph.vertices():
            label = shard_graph.label_of(vertex)
            if graph.has_vertex(vertex) and graph.label_of(vertex) != label:
                raise PartitionError(
                    f"shard file {filename} re-declares boundary vertex "
                    f"{vertex!r} with label {label!r} "
                    f"(was {graph.label_of(vertex)!r}); replicas must agree"
                )
            graph.add_vertex(vertex, label)
        for edge in shard_graph.edges():
            if edge in assignment:
                raise PartitionError(
                    f"edge {edge!r} appears in shards {assignment[edge]} "
                    f"and {shard_id}; shard files must be edge-disjoint"
                )
            assignment[edge] = shard_id
            graph.add_edge(*edge)
    saved_assignment = manifest.get("vertex_assignment")
    if manifest_format >= 2 and isinstance(saved_assignment, list):
        # Explicit isolated-vertex assignments survive the round trip.
        for vertex, shard_id in saved_assignment:
            if not graph.has_vertex(vertex):
                raise PartitionError(
                    f"manifest assigns unknown vertex {vertex!r} to shard "
                    f"{shard_id}; it appears in no shard file"
                )
            if not isinstance(shard_id, int) or not 0 <= shard_id < num_shards:
                raise PartitionError(
                    f"manifest assigns vertex {vertex!r} to shard "
                    f"{shard_id!r}, outside the {num_shards} declared shards"
                )
            vertex_assignment[vertex] = shard_id
    else:
        # Format 1: isolated vertices are the ones no edge carried in;
        # their file is their assignment.
        for shard_id, shard_graph in enumerate(shard_graphs):
            for vertex in shard_graph.vertices():
                if graph.degree(vertex) == 0:
                    vertex_assignment[vertex] = shard_id
    partition = Partition(
        num_shards=num_shards,
        method=method,
        assignment=assignment,
        vertex_assignment=vertex_assignment,
    )
    sharded = ShardedIndex(graph, partition)
    router_state = manifest.get("router")
    if manifest_format >= 2 and isinstance(router_state, dict):
        sharded._router = EdgeRouter.from_state(
            method,
            num_shards,
            router_state,
            homes=(
                (vertex, shard_id)
                for shard_id, shard_graph in enumerate(shard_graphs)
                for vertex in shard_graph.vertices()
            ),
        )
    return sharded
