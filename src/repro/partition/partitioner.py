"""Edge partitioners: split a data graph into k edge-disjoint shards.

The partition layer's contract is simple and the rest of the subsystem
depends on nothing else:

* every data edge is assigned to **exactly one** shard (edge-disjoint
  cover — the per-shard core edge sets reconstruct ``E`` exactly);
* every isolated vertex is assigned to exactly one shard (so a saved
  partition loses nothing);
* assignments are **deterministic** — same graph, same method, same shard
  count, same partition, in every process (the parallel miner rebuilds
  the shard layout inside worker processes and the two must agree).

Three methods are provided:

``hash``
    CRC32 of the canonical edge key, modulo the shard count.  No locality,
    perfectly deterministic, O(|E|); the reference method.
``label``
    Group edges by their canonical label-pair footprint and bin-pack the
    groups (largest first) onto the least-loaded shard.  Label-pair
    locality means a pattern's relevant shards (the ones sharing its
    footprint) stay few, which is what the sharded evaluator prunes on.
``edgecut``
    Greedy replication minimizer: edges are placed, in canonical order,
    on the shard already holding the most of their endpoints (load-aware
    tie-breaking, soft capacity cap).  Minimizing re-placed endpoints
    minimizes boundary-vertex replication — the halo the evaluator pays
    for.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..errors import PartitionError
from ..graph.labeled_graph import Edge, Label, LabeledGraph, Vertex, normalize_edge
from ..index.graph_index import _label_pair_key

#: The partition methods accepted everywhere a method name is taken
#: (library, CLI ``--partition``, saved manifests).
PARTITION_METHODS: Tuple[str, ...] = ("hash", "label", "edgecut")


def _stable_bucket(item: object, buckets: int) -> int:
    """Deterministic bucket for ``item`` (CRC32 of its repr — not ``hash()``,
    which is salted per process for strings)."""
    return zlib.crc32(repr(item).encode("utf-8")) % buckets


@dataclass(frozen=True)
class Partition:
    """An edge-disjoint assignment of one graph's edges to ``num_shards`` shards.

    ``assignment`` maps every canonical edge to its shard id;
    ``vertex_assignment`` maps every *isolated* vertex (degree 0 — no edge
    carries it into a shard) to a shard so partitions cover the whole
    graph.  Built by :func:`partition_edges`; consumed by
    :class:`~repro.partition.sharded_index.ShardedIndex`.
    """

    num_shards: int
    method: str
    assignment: Dict[Edge, int] = field(repr=False)
    vertex_assignment: Dict[Vertex, int] = field(repr=False, default_factory=dict)

    def shard_of(self, u: Vertex, v: Vertex) -> int:
        """The shard owning the edge ``(u, v)``."""
        edge = normalize_edge(u, v)
        if edge not in self.assignment:
            raise PartitionError(f"edge {edge!r} is not covered by this partition")
        return self.assignment[edge]

    def edges_of(self, shard_id: int) -> List[Edge]:
        """The core edges of one shard, in canonical order."""
        return sorted(
            (edge for edge, owner in self.assignment.items() if owner == shard_id),
            key=repr,
        )

    def shard_sizes(self) -> List[int]:
        """Core-edge count per shard (length ``num_shards``)."""
        sizes = [0] * self.num_shards
        for owner in self.assignment.values():
            sizes[owner] += 1
        return sizes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Partition method={self.method!r} shards={self.num_shards} "
            f"|E|={len(self.assignment)}>"
        )


def _hash_assignment(edges: List[Edge], num_shards: int) -> Dict[Edge, int]:
    return {edge: _stable_bucket(edge, num_shards) for edge in edges}


def _label_assignment(
    graph: LabeledGraph, edges: List[Edge], num_shards: int
) -> Dict[Edge, int]:
    groups: Dict[Tuple, List[Edge]] = {}
    for edge in edges:
        pair = _label_pair_key(graph.label_of(edge[0]), graph.label_of(edge[1]))
        groups.setdefault(pair, []).append(edge)
    # Pairs are placed whole, largest first, preferring the shard whose
    # already-placed pairs share a label (a grown pattern's footprint only
    # ever adds label-adjacent pairs, so label affinity is footprint
    # affinity: the candidate's relevant-shard set stays small — the
    # sharded evaluator's best case), with a soft capacity (25% slack over
    # the perfect split) keeping shards balanced.  All tie-breaks are
    # deterministic: size desc, then pair repr, then lowest shard id.
    capacity = max(1, -(-len(edges) * 5 // (4 * num_shards)))
    loads = [0] * num_shards
    label_sets: List[set] = [set() for _ in range(num_shards)]
    assignment: Dict[Edge, int] = {}
    for pair in sorted(groups, key=lambda p: (-len(groups[p]), repr(p))):
        open_shards = [s for s in range(num_shards) if loads[s] < capacity]
        if not open_shards:  # pragma: no cover - capacity covers |E|
            open_shards = list(range(num_shards))
        labels = set(pair)
        shard = min(
            open_shards,
            key=lambda s: (-len(label_sets[s] & labels), loads[s], s),
        )
        for edge in groups[pair]:
            assignment[edge] = shard
        loads[shard] += len(groups[pair])
        label_sets[shard] |= labels
    return assignment


def _edgecut_assignment(edges: List[Edge], num_shards: int) -> Dict[Edge, int]:
    # Soft capacity keeps the greedy affinity rule from collapsing a
    # connected graph onto one shard; 5% slack over the perfect split.
    capacity = max(1, -(-len(edges) * 21 // (20 * num_shards)))
    loads = [0] * num_shards
    homes: List[set] = [set() for _ in range(num_shards)]
    assignment: Dict[Edge, int] = {}
    for u, v in edges:
        open_shards = [s for s in range(num_shards) if loads[s] < capacity]
        if not open_shards:  # pragma: no cover - capacity covers |E|
            open_shards = list(range(num_shards))
        shard = min(
            open_shards,
            key=lambda s: (-((u in homes[s]) + (v in homes[s])), loads[s], s),
        )
        assignment[(u, v)] = shard
        loads[shard] += 1
        homes[shard].add(u)
        homes[shard].add(v)
    return assignment


def partition_edges(
    graph: LabeledGraph, num_shards: int, method: str = "hash"
) -> Partition:
    """Partition ``graph``'s edges into ``num_shards`` edge-disjoint shards.

    Every edge lands in exactly one shard and every isolated vertex is
    assigned to a shard; shards may be empty when the graph is smaller
    than the requested shard count.  The assignment is deterministic for
    a given (graph, method, num_shards) triple.

    Raises
    ------
    PartitionError
        For a non-positive shard count or an unknown method.
    """
    if num_shards < 1:
        raise PartitionError(f"num_shards must be >= 1, got {num_shards}")
    if method not in PARTITION_METHODS:
        raise PartitionError(
            f"unknown partition method {method!r}; "
            f"available: {', '.join(PARTITION_METHODS)}"
        )
    edges = graph.edges()
    if method == "hash":
        assignment = _hash_assignment(edges, num_shards)
    elif method == "label":
        assignment = _label_assignment(graph, edges, num_shards)
    else:
        assignment = _edgecut_assignment(edges, num_shards)
    vertex_assignment = {
        vertex: _stable_bucket(vertex, num_shards)
        for vertex in graph.vertices()
        if graph.degree(vertex) == 0
    }
    return Partition(
        num_shards=num_shards,
        method=method,
        assignment=assignment,
        vertex_assignment=vertex_assignment,
    )


class EdgeRouter:
    """Online continuation of an edge partitioner: route *new* edges to shards.

    :func:`partition_edges` places a static edge set; under an update
    stream new edges keep arriving and each must be assigned to a shard
    without re-partitioning.  A router extends each method's placement
    discipline one edge at a time:

    ``hash``
        the same CRC32 bucket as the static partitioner — a routed edge
        lands exactly where a from-scratch partition would put it;
    ``label``
        **sticky pairs**: a pair that already has a home shard keeps it
        (the whole-pair invariant the static bin-packing establishes); a
        brand-new pair is placed by the same label-affinity rule, against
        the router's live loads and a soft capacity recomputed from the
        current edge total;
    ``edgecut``
        the same endpoint-home affinity rule, against live homes/loads.

    Routing is deterministic given the router's state, and the state is
    reconstructible from a live :class:`~repro.partition.sharded_index.ShardedIndex`
    (:meth:`for_sharded`) or a persisted manifest (:meth:`from_state` /
    :meth:`state_dict`) — so freshly built, delta-patched, and
    loaded-from-disk partitions all route future deltas identically.
    Isolated vertices route through :meth:`route_vertex`, matching the
    static partitioner's stable bucket.
    """

    __slots__ = (
        "method",
        "num_shards",
        "loads",
        "_pair_shard",
        "_label_sets",
        "_homes",
    )

    def __init__(self, method: str, num_shards: int) -> None:
        if method not in PARTITION_METHODS:
            raise PartitionError(
                f"unknown partition method {method!r}; "
                f"available: {', '.join(PARTITION_METHODS)}"
            )
        if num_shards < 1:
            raise PartitionError(f"num_shards must be >= 1, got {num_shards}")
        self.method = method
        self.num_shards = num_shards
        #: Core-edge count per shard (maintained, O(1) to read).
        self.loads: List[int] = [0] * num_shards
        # label method: canonical pair -> its sticky home shard.
        self._pair_shard: Dict[Tuple[Label, Label], int] = {}
        # label method: labels whose pairs live on each shard (affinity).
        self._label_sets: List[Set[Label]] = [set() for _ in range(num_shards)]
        # edgecut method: vertices already present on each shard (affinity).
        self._homes: List[Set[Vertex]] = [set() for _ in range(num_shards)]

    # ------------------------------------------------------------------
    # construction from existing state
    # ------------------------------------------------------------------
    @classmethod
    def for_sharded(cls, sharded) -> "EdgeRouter":
        """Reconstruct a router from a :class:`ShardedIndex`'s maintained state.

        Reads only the sharded index's own structures (never the live
        source graph, which may have drifted ahead of the index version),
        so reconstruction is sound mid-maintenance.
        """
        router = cls(sharded.partition.method, sharded.num_shards)
        for shard in sharded.shards:
            router.loads[shard.shard_id] = shard.num_core_edges
            graph = shard.graph
            for vertex in graph.vertices():
                router._homes[shard.shard_id].add(vertex)
            for u, v in shard.core_edges:
                pair = _label_pair_key(graph.label_of(u), graph.label_of(v))
                router._pair_shard.setdefault(pair, shard.shard_id)
                router._label_sets[shard.shard_id].update(pair)
        for vertex, shard_id in sharded.partition.vertex_assignment.items():
            router._homes[shard_id].add(vertex)
        return router

    @classmethod
    def from_state(
        cls,
        method: str,
        num_shards: int,
        state: Dict,
        homes: Optional[Iterable[Tuple[Vertex, int]]] = None,
    ) -> "EdgeRouter":
        """Rebuild a router from :meth:`state_dict` output (+ shard membership).

        Raises
        ------
        PartitionError
            For a persisted shard id outside ``range(num_shards)``.
        """
        router = cls(method, num_shards)
        loads = state.get("loads")
        if isinstance(loads, list) and len(loads) == num_shards:
            router.loads = [int(load) for load in loads]
        for lu, lv, shard_id in state.get("pair_shards", ()):
            if not isinstance(shard_id, int) or not 0 <= shard_id < num_shards:
                raise PartitionError(
                    f"router state maps pair ({lu!r}, {lv!r}) to shard "
                    f"{shard_id!r}, outside the {num_shards} declared shards"
                )
            pair = _label_pair_key(lu, lv)
            router._pair_shard[pair] = shard_id
            router._label_sets[shard_id].update(pair)
        if homes is not None:
            for vertex, shard_id in homes:
                router._homes[shard_id].add(vertex)
        return router

    def state_dict(self) -> Dict:
        """JSON-serializable routing state (see ``repro.partition.io``).

        Homes are *not* included — they are shard membership, which the
        shard files already persist; :meth:`from_state` takes them
        separately.
        """
        return {
            "loads": list(self.loads),
            "pair_shards": sorted(
                ([lu, lv, shard] for (lu, lv), shard in self._pair_shard.items()),
                key=repr,
            ),
        }

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _open_shards(self, slack_num: int, slack_den: int) -> List[int]:
        """Shards under the soft capacity for the *next* edge (never empty)."""
        total = sum(self.loads) + 1
        capacity = max(1, -(-total * slack_num // (slack_den * self.num_shards)))
        open_shards = [s for s in range(self.num_shards) if self.loads[s] < capacity]
        return open_shards or list(range(self.num_shards))

    def route_edge(self, u: Vertex, v: Vertex, lu: Label, lv: Label) -> int:
        """The shard a newly inserted edge ``(u, v)`` should own."""
        if self.num_shards == 1:
            return 0
        if self.method == "hash":
            return _stable_bucket(normalize_edge(u, v), self.num_shards)
        if self.method == "label":
            pair = _label_pair_key(lu, lv)
            sticky = self._pair_shard.get(pair)
            if sticky is not None:
                return sticky
            labels = set(pair)
            return min(
                self._open_shards(5, 4),
                key=lambda s: (-len(self._label_sets[s] & labels), self.loads[s], s),
            )
        return min(
            self._open_shards(21, 20),
            key=lambda s: (
                -((u in self._homes[s]) + (v in self._homes[s])),
                self.loads[s],
                s,
            ),
        )

    def route_vertex(self, vertex: Vertex) -> int:
        """The shard a newly inserted *isolated* vertex should live in."""
        return _stable_bucket(vertex, self.num_shards)

    # ------------------------------------------------------------------
    # bookkeeping mirrors of applied deltas
    # ------------------------------------------------------------------
    def edge_assigned(self, u: Vertex, v: Vertex, lu: Label, lv: Label, shard: int):
        """Record that the edge now lives on ``shard`` (routed or moved)."""
        self.loads[shard] += 1
        self._homes[shard].add(u)
        self._homes[shard].add(v)
        pair = _label_pair_key(lu, lv)
        self._pair_shard.setdefault(pair, shard)
        self._label_sets[shard].update(pair)

    def edge_removed(self, shard: int) -> None:
        """Record that one of ``shard``'s core edges left the graph.

        Sticky pairs, label sets, and homes are affinity hints, not
        invariants — they deliberately survive removals so a re-inserted
        edge goes back where its footprint lives.
        """
        self.loads[shard] -= 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<EdgeRouter method={self.method!r} shards={self.num_shards} "
            f"loads={self.loads}>"
        )
