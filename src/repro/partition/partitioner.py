"""Edge partitioners: split a data graph into k edge-disjoint shards.

The partition layer's contract is simple and the rest of the subsystem
depends on nothing else:

* every data edge is assigned to **exactly one** shard (edge-disjoint
  cover — the per-shard core edge sets reconstruct ``E`` exactly);
* every isolated vertex is assigned to exactly one shard (so a saved
  partition loses nothing);
* assignments are **deterministic** — same graph, same method, same shard
  count, same partition, in every process (the parallel miner rebuilds
  the shard layout inside worker processes and the two must agree).

Three methods are provided:

``hash``
    CRC32 of the canonical edge key, modulo the shard count.  No locality,
    perfectly deterministic, O(|E|); the reference method.
``label``
    Group edges by their canonical label-pair footprint and bin-pack the
    groups (largest first) onto the least-loaded shard.  Label-pair
    locality means a pattern's relevant shards (the ones sharing its
    footprint) stay few, which is what the sharded evaluator prunes on.
``edgecut``
    Greedy replication minimizer: edges are placed, in canonical order,
    on the shard already holding the most of their endpoints (load-aware
    tie-breaking, soft capacity cap).  Minimizing re-placed endpoints
    minimizes boundary-vertex replication — the halo the evaluator pays
    for.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..errors import PartitionError
from ..graph.labeled_graph import Edge, LabeledGraph, Vertex, normalize_edge
from ..index.graph_index import _label_pair_key

#: The partition methods accepted everywhere a method name is taken
#: (library, CLI ``--partition``, saved manifests).
PARTITION_METHODS: Tuple[str, ...] = ("hash", "label", "edgecut")


def _stable_bucket(item: object, buckets: int) -> int:
    """Deterministic bucket for ``item`` (CRC32 of its repr — not ``hash()``,
    which is salted per process for strings)."""
    return zlib.crc32(repr(item).encode("utf-8")) % buckets


@dataclass(frozen=True)
class Partition:
    """An edge-disjoint assignment of one graph's edges to ``num_shards`` shards.

    ``assignment`` maps every canonical edge to its shard id;
    ``vertex_assignment`` maps every *isolated* vertex (degree 0 — no edge
    carries it into a shard) to a shard so partitions cover the whole
    graph.  Built by :func:`partition_edges`; consumed by
    :class:`~repro.partition.sharded_index.ShardedIndex`.
    """

    num_shards: int
    method: str
    assignment: Dict[Edge, int] = field(repr=False)
    vertex_assignment: Dict[Vertex, int] = field(repr=False, default_factory=dict)

    def shard_of(self, u: Vertex, v: Vertex) -> int:
        """The shard owning the edge ``(u, v)``."""
        edge = normalize_edge(u, v)
        if edge not in self.assignment:
            raise PartitionError(f"edge {edge!r} is not covered by this partition")
        return self.assignment[edge]

    def edges_of(self, shard_id: int) -> List[Edge]:
        """The core edges of one shard, in canonical order."""
        return sorted(
            (edge for edge, owner in self.assignment.items() if owner == shard_id),
            key=repr,
        )

    def shard_sizes(self) -> List[int]:
        """Core-edge count per shard (length ``num_shards``)."""
        sizes = [0] * self.num_shards
        for owner in self.assignment.values():
            sizes[owner] += 1
        return sizes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Partition method={self.method!r} shards={self.num_shards} "
            f"|E|={len(self.assignment)}>"
        )


def _hash_assignment(edges: List[Edge], num_shards: int) -> Dict[Edge, int]:
    return {edge: _stable_bucket(edge, num_shards) for edge in edges}


def _label_assignment(
    graph: LabeledGraph, edges: List[Edge], num_shards: int
) -> Dict[Edge, int]:
    groups: Dict[Tuple, List[Edge]] = {}
    for edge in edges:
        pair = _label_pair_key(graph.label_of(edge[0]), graph.label_of(edge[1]))
        groups.setdefault(pair, []).append(edge)
    # Pairs are placed whole, largest first, preferring the shard whose
    # already-placed pairs share a label (a grown pattern's footprint only
    # ever adds label-adjacent pairs, so label affinity is footprint
    # affinity: the candidate's relevant-shard set stays small — the
    # sharded evaluator's best case), with a soft capacity (25% slack over
    # the perfect split) keeping shards balanced.  All tie-breaks are
    # deterministic: size desc, then pair repr, then lowest shard id.
    capacity = max(1, -(-len(edges) * 5 // (4 * num_shards)))
    loads = [0] * num_shards
    label_sets: List[set] = [set() for _ in range(num_shards)]
    assignment: Dict[Edge, int] = {}
    for pair in sorted(groups, key=lambda p: (-len(groups[p]), repr(p))):
        open_shards = [s for s in range(num_shards) if loads[s] < capacity]
        if not open_shards:  # pragma: no cover - capacity covers |E|
            open_shards = list(range(num_shards))
        labels = set(pair)
        shard = min(
            open_shards,
            key=lambda s: (-len(label_sets[s] & labels), loads[s], s),
        )
        for edge in groups[pair]:
            assignment[edge] = shard
        loads[shard] += len(groups[pair])
        label_sets[shard] |= labels
    return assignment


def _edgecut_assignment(edges: List[Edge], num_shards: int) -> Dict[Edge, int]:
    # Soft capacity keeps the greedy affinity rule from collapsing a
    # connected graph onto one shard; 5% slack over the perfect split.
    capacity = max(1, -(-len(edges) * 21 // (20 * num_shards)))
    loads = [0] * num_shards
    homes: List[set] = [set() for _ in range(num_shards)]
    assignment: Dict[Edge, int] = {}
    for u, v in edges:
        open_shards = [s for s in range(num_shards) if loads[s] < capacity]
        if not open_shards:  # pragma: no cover - capacity covers |E|
            open_shards = list(range(num_shards))
        shard = min(
            open_shards,
            key=lambda s: (-((u in homes[s]) + (v in homes[s])), loads[s], s),
        )
        assignment[(u, v)] = shard
        loads[shard] += 1
        homes[shard].add(u)
        homes[shard].add(v)
    return assignment


def partition_edges(
    graph: LabeledGraph, num_shards: int, method: str = "hash"
) -> Partition:
    """Partition ``graph``'s edges into ``num_shards`` edge-disjoint shards.

    Every edge lands in exactly one shard and every isolated vertex is
    assigned to a shard; shards may be empty when the graph is smaller
    than the requested shard count.  The assignment is deterministic for
    a given (graph, method, num_shards) triple.

    Raises
    ------
    PartitionError
        For a non-positive shard count or an unknown method.
    """
    if num_shards < 1:
        raise PartitionError(f"num_shards must be >= 1, got {num_shards}")
    if method not in PARTITION_METHODS:
        raise PartitionError(
            f"unknown partition method {method!r}; "
            f"available: {', '.join(PARTITION_METHODS)}"
        )
    edges = graph.edges()
    if method == "hash":
        assignment = _hash_assignment(edges, num_shards)
    elif method == "label":
        assignment = _label_assignment(graph, edges, num_shards)
    else:
        assignment = _edgecut_assignment(edges, num_shards)
    vertex_assignment = {
        vertex: _stable_bucket(vertex, num_shards)
        for vertex in graph.vertices()
        if graph.degree(vertex) == 0
    }
    return Partition(
        num_shards=num_shards,
        method=method,
        assignment=assignment,
        vertex_assignment=vertex_assignment,
    )
