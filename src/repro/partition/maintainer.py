"""Delta maintenance and rebalancing for partitioned graphs.

:class:`ShardedIndexMaintainer` is the partition layer's twin of
:class:`~repro.index.delta.IndexMaintainer`: it subscribes to the source
graph's mutation-observer hook and keeps a
:class:`~repro.partition.sharded_index.ShardedIndex` current by routing
each buffered delta to its owning shard(s) in O(delta) — the buffering,
burst-coalescing, and gap-detection bookkeeping is the shared
:class:`~repro.index.maintainable.DeltaMaintainer` core, so the flat and
sharded maintainers cannot drift apart.  A rebuild here means a full
**re-partition** (``ShardedIndex.rebuilt``), which is exactly what the
maintainer exists to avoid: it triggers only for observation gaps and
bursts past the patch limit.

On top of plain maintenance sits the **rebalancing policy**
(:class:`RebalancePolicy`): delta routing keeps partitions *valid*, but
a skewed stream can overload one shard or inflate boundary replication.
After each refresh the maintainer checks the policy's triggers:

* **per-shard load** — any shard holding more than ``max_load_factor``
  times the ideal ``|E| / k`` core edges sheds its excess onto open
  shards (:meth:`ShardedIndex.rebalance` — only the shards involved are
  touched, everything else keeps its cached state);
* **replication factor** — if boundary replication exceeds
  ``max_replication``, local moves are no longer worth it and the
  maintainer falls back to one full re-partition.

Exactness is unconditional: every partition the maintainer produces is
edge-disjoint with correct halos, and sharded evaluation is exact for
*any* such partition, so policy choices affect wall-clock and memory —
never results.

:func:`absorb_graph` is the offline companion (CLI
``repro partition --rebalance``): diff a loaded partition's graph
against a newer snapshot and replay the difference as ordinary
mutations, which the attached maintainer absorbs as deltas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import PartitionError
from ..graph.labeled_graph import LabeledGraph
from ..index.delta import PATCHABLE_DELTAS
from ..index.maintainable import DeltaMaintainer
from ..obs import metrics as _metrics
from ..obs.logs import get_logger
from .sharded_index import ShardedIndex

_LOG = get_logger("partition.maintainer")


@dataclass(frozen=True)
class RebalancePolicy:
    """When (and how hard) to re-balance a delta-maintained partition.

    ``max_load_factor``
        A shard may hold at most this multiple of the ideal ``|E| / k``
        core-edge load before shedding edges (must be >= 1.0; larger
        values tolerate more skew before moving anything).
    ``max_replication``
        Replication-factor ceiling; exceeding it triggers the full
        re-partition fallback instead of local moves (``None`` disables
        the fallback).
    """

    max_load_factor: float = 1.5
    max_replication: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_load_factor < 1.0:
            raise PartitionError(
                f"max_load_factor must be >= 1.0, got {self.max_load_factor}"
            )
        if self.max_replication is not None and self.max_replication < 1.0:
            raise PartitionError(
                f"max_replication must be >= 1.0, got {self.max_replication}"
            )


class ShardedIndexMaintainer(DeltaMaintainer):
    """Keep one graph's :class:`ShardedIndex` current by patching, not re-partitioning.

    Attach with ``ShardedIndexMaintainer(graph, num_shards, method)`` (or
    wrap an existing index — e.g. one loaded from disk — via
    ``sharded=``); mutate the graph freely, then call :meth:`sharded` to
    get an index current for the graph's present version.  Contiguous
    delta runs patch in O(delta) per update; observation gaps and
    oversized bursts fall back to a single full re-partition, with the
    same patch-limit coalescing as the flat maintainer
    (``patches_applied`` / ``rebuilds`` / ``deltas_coalesced``).

    Pass a :class:`RebalancePolicy` to have every refresh also check the
    load / replication triggers; ``edges_moved``, ``rebalances``, and
    ``full_repartitions`` count what the policy did.
    """

    patchable_kinds = PATCHABLE_DELTAS
    obs_subsystem = "sharded_index"

    __slots__ = ("policy", "rebalances", "edges_moved", "full_repartitions")

    def __init__(
        self,
        graph: Optional[LabeledGraph] = None,
        num_shards: int = 2,
        method: str = "hash",
        *,
        patch_limit: Optional[int] = None,
        policy: Optional[RebalancePolicy] = None,
        sharded: Optional[ShardedIndex] = None,
    ) -> None:
        if sharded is None:
            if graph is None:
                raise PartitionError(
                    "ShardedIndexMaintainer needs a graph (to partition) "
                    "or an existing sharded index to maintain"
                )
            sharded = ShardedIndex.build(graph, num_shards, method)
        elif graph is not None and sharded.graph is not graph:
            raise PartitionError(
                "the sharded index to maintain must index the given graph"
            )
        self.policy = policy
        self.rebalances = 0
        self.edges_moved = 0
        self.full_repartitions = 0
        registry = _metrics.get_registry()
        for name in ("rebalances", "edges_moved", "full_repartitions"):
            registry.counter(f"repro_sharded_index_{name}")
        super().__init__(sharded.graph, sharded, patch_limit)

    def sharded(self) -> ShardedIndex:
        """The maintained index, brought current (policy applied, if any).

        When a refresh or policy trigger *replaces* the index (full
        re-partition), an out-of-core pager attached to the old index is
        re-bound to the replacement — paging survives rebuilds, though
        every spill from the old index is void (shard membership may have
        changed arbitrarily, so re-used spills would be unsound).
        """
        old: ShardedIndex = self._index  # type: ignore[assignment]
        result: ShardedIndex = self.refresh()  # type: ignore[assignment]
        if self.policy is not None:
            result = self._apply_policy(result)
        if result is not old:
            pager = old.pager
            if pager is not None and result.pager is None:
                pager.rebind(result)
        return result

    def _apply_policy(self, sharded: ShardedIndex) -> ShardedIndex:
        policy = self.policy
        assert policy is not None
        if (
            policy.max_replication is not None
            and sharded.num_shards > 1
            and sharded.replication_factor() > policy.max_replication
        ):
            # Replication has drifted past the point where local moves
            # pay off: one full re-partition resets it.
            _LOG.warning(
                "replication factor %.2f exceeded the %.2f ceiling; "
                "serving one full re-partition",
                sharded.replication_factor(),
                policy.max_replication,
            )
            sharded = sharded.rebuilt()
            self._index = sharded
            self.full_repartitions += 1
            _metrics.counter("repro_sharded_index_full_repartitions").inc()
            return sharded
        moved = sharded.rebalance(policy.max_load_factor)
        if moved:
            self.rebalances += 1
            self.edges_moved += moved
            _metrics.counter("repro_sharded_index_rebalances").inc()
            _metrics.counter("repro_sharded_index_edges_moved").inc(moved)
        return sharded


def absorb_graph(current: LabeledGraph, target: LabeledGraph) -> int:
    """Mutate ``current`` (in place) until it equals ``target``; returns ops.

    The offline delta source for ``repro partition --rebalance``: the
    difference between a loaded partition's reconstructed graph and a
    newer on-disk snapshot is replayed as ordinary mutations — added
    vertices, added edges, removed edges, removed vertices, in that
    order, each deterministic — so an attached
    :class:`ShardedIndexMaintainer` absorbs the drift as typed deltas.

    Raises
    ------
    PartitionError
        When a shared vertex changed label (not expressible as graph
        deltas; re-partition from scratch instead).
    """
    applied = 0
    for vertex in target.vertices():
        label = target.label_of(vertex)
        if current.has_vertex(vertex):
            if current.label_of(vertex) != label:
                raise PartitionError(
                    f"vertex {vertex!r} changed label "
                    f"({current.label_of(vertex)!r} -> {label!r}); "
                    "re-partition from scratch instead of rebalancing"
                )
            continue
        current.add_vertex(vertex, label)
        applied += 1
    for u, v in target.edges():
        if not current.has_edge(u, v):
            current.add_edge(u, v)
            applied += 1
    for u, v in current.edges():
        if not target.has_edge(u, v):
            current.remove_edge(u, v)
            applied += 1
    for vertex in current.vertices():
        if not target.has_vertex(vertex):
            current.remove_vertex(vertex)  # incident edges already removed
            applied += 1
    return applied
