"""Shard-resident worker processes and out-of-core shard paging.

Two subsystems that bound what mining keeps in memory, built on the same
invalidation protocol:

**Shard-resident workers** (:class:`ShardWorkerPool`).  The per-task
process pool (``repro.mining.parallel``) ships the whole data graph plus
the full :class:`~repro.partition.partitioner.Partition` to every worker,
and each worker rebuilds a complete
:class:`~repro.partition.sharded_index.ShardedIndex` — memory is
``workers x |G|`` and every new pool pays the shipping again.  Here each
long-lived worker instead *owns* the shards pinned to it (``shard_id %
workers``): the parent ships one :class:`ShardSlice` per shard — the
shard's member set, core edges, and its deepest halo-expanded view — and
from then on routes only constant-size ``(candidate -> partial support)``
requests over the pipe.  Workers derive every shallower view they need by
BFS restriction *inside* the slice (sound because for ``d <= D`` the
radius-``d`` ball around the shard computed within the radius-``D`` ball
equals the global radius-``d`` ball), and evaluate through the exact
view-level helpers the serial sharded path uses
(:func:`~repro.partition.evaluate.anchored_occurrence_items` /
:func:`~repro.partition.evaluate.node_image_partial`) — so results are
byte-identical to serial evaluation regardless of worker count or
scheduling.  A slice is re-shipped only when delta maintenance
invalidated it (the pool subscribes to
:meth:`ShardedIndex.subscribe_invalidations` and applies the same
staleness rule as the index's own view cache); across the batches of a
``mine_stream`` run, untouched shards never cross the process boundary
again.

**Out-of-core paging** (:class:`ShardPager`).  Halo-expanded views are
the dominant per-shard memory; with ``max_resident=N`` at most ``N``
shards keep views in parent memory (LRU), and evicted shards spill to
disk as manifest-format-2 shard cache directories
(:func:`repro.partition.io.save_shard_views`).  Re-access re-hydrates the
spilled view and replays any pending deltas that are provably
*ball-safe* — only isolated-vertex additions/removals qualify, because an
added or removed **edge** can change which vertices a ball reaches in a
way the spilled view cannot see; any such delta (and every rebalance
move) marks the spill stale and the view is recomputed from the live
index instead.  Either way the resulting view is content-identical to an
always-resident one, so mining results are byte-identical regardless of
eviction order.  The source graph, shard core graphs, and router are the
index's own maintained state and never page out — eviction is forbidden
for them (and pointless for whole-graph alias views, which share the
source graph's storage and are accounted at zero weight).
"""

from __future__ import annotations

import multiprocessing
import traceback
from collections import OrderedDict, deque
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..errors import PartitionError
from ..graph.labeled_graph import Edge, LabeledGraph, Vertex
from ..graph.pattern import Pattern
from ..index.compact import projected_index_nbytes
from ..index.graph_index import index_backend
from ..obs import metrics as _metrics
from .evaluate import (
    anchored_occurrence_items,
    merge_lazy_partials,
    node_image_partial,
    plan_candidate,
    required_depth,
    shard_exclusive,
    support_from_shard_items,
)
from .sharded_index import ShardedIndex

#: One resident-pool work item: ``(kind, pattern, shard_id, depth,
#: exclusive, limit)`` with ``kind`` in ``{"solo", "part"}`` — the parent
#: plans, the worker only evaluates (see :func:`pooled_outcomes`).
ShardTask = Tuple[str, Pattern, int, int, bool, Optional[int]]


class WorkerPoolError(OSError):
    """A resident worker died or its pipe broke mid-run.

    Subclasses :class:`OSError` so the miner's existing pool-failure
    fallback (``except (OSError, BrokenExecutor)`` -> serial
    re-evaluation) covers the resident pool without new plumbing.
    """


# ----------------------------------------------------------------------
# slices: what a worker owns
# ----------------------------------------------------------------------
@dataclass
class ShardSlice:
    """Everything one worker needs to evaluate candidates against one shard.

    ``view`` is the halo expansion at ``depth`` — the deepest the session
    can ever need (``max_pattern_nodes - 2``); shallower views are derived
    worker-side by BFS restriction from ``members``.  ``generation``
    increases with every (re-)ship so stale in-flight slices are ordered.
    """

    shard_id: int
    depth: int
    members: Tuple[Vertex, ...]
    core_edges: Tuple[Edge, ...]
    view: LabeledGraph
    generation: int


def build_slice(
    sharded: ShardedIndex, shard_id: int, depth: int, generation: int
) -> ShardSlice:
    """Snapshot one shard for shipping (view computed via the index cache/pager)."""
    shard = sharded.shards[shard_id]
    return ShardSlice(
        shard_id=shard_id,
        depth=depth,
        members=tuple(shard.graph.vertices()),
        core_edges=tuple(shard.core_edges),
        view=sharded.expanded_shard(shard_id, depth),
        generation=generation,
    )


def restrict_view(slice_: ShardSlice, depth: int) -> LabeledGraph:
    """The depth-``depth`` expansion derived from a deeper slice view.

    For ``depth <= slice_.depth`` the radius-``depth`` ball around the
    shard members computed inside the slice view equals the global ball
    (every path of length ``<= depth`` from a member lies within the
    shipped radius-``slice_.depth`` ball), so the induced subgraph is
    content-identical to the parent's
    :meth:`ShardedIndex.expanded_shard` at the same depth.
    """
    if depth >= slice_.depth:
        return slice_.view
    keep: Set[Vertex] = set(slice_.members)
    frontier = set(slice_.members)
    for _ in range(depth):
        if not frontier:
            break
        frontier = {
            neighbor
            for vertex in frontier
            for neighbor in slice_.view.neighbors(vertex)
            if neighbor not in keep
        }
        keep |= frontier
    if len(keep) == slice_.view.num_vertices:
        return slice_.view
    view = slice_.view.subgraph(keep)
    view.name = f"{slice_.view.name or 'slice'}@{depth}"
    return view


# ----------------------------------------------------------------------
# the worker process
# ----------------------------------------------------------------------
def _evaluate_slice_task(
    task: ShardTask,
    slices: Dict[int, ShardSlice],
    cores: Dict[int, frozenset],
    derived: Dict[Tuple[int, int], LabeledGraph],
    config: Dict[str, object],
):
    """One task against the worker's resident slice state.

    Mirrors the serial sharded evaluator exactly: ``part`` returns the
    raw partial (occurrence item tuples, or the per-node image scan in
    lazy mode) for the parent to merge; ``solo`` finishes the candidate
    locally and returns ``(support, num_occurrences)``.  Measures are
    pure functions of the occurrence set, so computing a solo support
    against the local view instead of the global graph changes nothing.
    """
    kind, pattern, shard_id, depth, exclusive, limit = task
    slice_ = slices[shard_id]
    key = (shard_id, depth)
    view = derived.get(key)
    if view is None:
        view = restrict_view(slice_, depth)
        derived[key] = view
    index_arg = None if config["use_index"] else False
    lazy = bool(config["lazy"])
    lazy_cap = int(config["lazy_cap"])  # type: ignore[call-overload]
    measure = str(config["measure"])
    if kind == "part":
        if lazy:
            return node_image_partial(pattern, view, cap=lazy_cap, index=index_arg)
        return anchored_occurrence_items(
            pattern,
            view,
            cores[shard_id],
            exclusive=exclusive,
            index=index_arg,
            limit=limit,
        )
    if lazy:
        partial = node_image_partial(pattern, view, cap=lazy_cap, index=index_arg)
        return float(merge_lazy_partials([partial], cap=lazy_cap)), -1
    items = anchored_occurrence_items(
        pattern,
        view,
        cores[shard_id],
        exclusive=exclusive,
        index=index_arg,
        limit=limit,
    )
    return support_from_shard_items(
        pattern, view, [items], measure, max_occurrences=limit
    )


def _worker_main(conn, config: Dict[str, object]) -> None:
    """Resident worker loop: hold slices, answer eval requests in order."""
    slices: Dict[int, ShardSlice] = {}
    cores: Dict[int, frozenset] = {}
    derived: Dict[Tuple[int, int], LabeledGraph] = {}
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        if kind == "stop":
            break
        if kind == "slice":
            slice_: ShardSlice = message[1]
            slices[slice_.shard_id] = slice_
            cores[slice_.shard_id] = frozenset(slice_.core_edges)
            for key in [k for k in derived if k[0] == slice_.shard_id]:
                del derived[key]
            continue
        if kind == "drop":
            shard_id = message[1]
            slices.pop(shard_id, None)
            cores.pop(shard_id, None)
            for key in [k for k in derived if k[0] == shard_id]:
                del derived[key]
            continue
        if kind == "eval":
            seq, task = message[1], message[2]
            try:
                payload = _evaluate_slice_task(task, slices, cores, derived, config)
                reply = ("ok", seq, payload)
            except BaseException:
                reply = ("err", seq, traceback.format_exc())
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                break
    try:
        conn.close()
    except OSError:
        pass


# ----------------------------------------------------------------------
# the parent-side pool
# ----------------------------------------------------------------------
class ShardWorkerPool:
    """Long-lived shard-owning worker processes behind a request queue.

    Shards are pinned to workers by ``shard_id % workers`` — every task
    for a shard runs where its slice lives, and results are collected by
    per-task sequence number, so outcomes are position-stable and
    byte-identical however the OS schedules the processes.  The pool
    follows one :class:`ShardedIndex` at a time (:meth:`bind`); delta
    invalidations mark shipped slices dirty and :meth:`run` re-ships
    exactly those before dispatching.  Infrastructure failures raise
    :class:`WorkerPoolError` (an ``OSError``), which callers treat like a
    broken executor: shut down, fall back to serial, results unchanged.

    ``shutdown(wait=False, cancel_futures=True)`` terminates the workers
    instead of draining them — the Ctrl-C path must never wait on a slow
    candidate.
    """

    #: Eval requests in flight per worker; bounds both pipe backpressure
    #: (no deadlock when results outgrow the socket buffer) and parent
    #: memory for returned partials.
    WINDOW = 4

    def __init__(
        self,
        workers: int,
        *,
        measure: str,
        lazy: bool,
        lazy_cap: int,
        use_index: bool,
        depth: int,
    ) -> None:
        self.workers = max(1, int(workers))
        self.depth = max(0, int(depth))
        self._config = dict(
            measure=measure, lazy=lazy, lazy_cap=lazy_cap, use_index=use_index
        )
        self._procs: List = []
        self._conns: List = []
        self._closed = False
        self._bound: Optional[ShardedIndex] = None
        self._shipped: Dict[int, int] = {}
        self._dirty: Set[int] = set()
        self._slice_vertices: Dict[int, Set[Vertex]] = {}
        self._generation = 0
        self.slices_shipped = 0
        self.slices_reshipped = 0
        self.tasks_dispatched = 0
        # Declare the pool's instruments before spawning: the documented
        # names must exist in snapshots even if process start fails below.
        registry = _metrics.get_registry()
        for name in ("tasks_dispatched", "slices_shipped", "slices_reshipped"):
            registry.counter(f"repro_pool_{name}")
        registry.histogram("repro_pool_queue_depth")
        context = multiprocessing.get_context()
        try:
            for _ in range(self.workers):
                parent_conn, child_conn = context.Pipe()
                process = context.Process(
                    target=_worker_main,
                    args=(child_conn, self._config),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self._procs.append(process)
                self._conns.append(parent_conn)
        except (OSError, ValueError):
            self.shutdown(wait=False, cancel_futures=True)
            raise

    # -- index binding & staleness -------------------------------------
    def bind(self, sharded: ShardedIndex) -> None:
        """Follow ``sharded``; a new index object invalidates every slice.

        Re-binding happens when a maintainer rebuilt (re-partitioned) the
        index — shard contents may have changed arbitrarily, so all
        shipped slices are dropped and re-shipped on demand.
        """
        if sharded is self._bound:
            return
        if self._bound is not None:
            self._bound.unsubscribe_invalidations(self._on_invalidation)
        self._bound = sharded
        self._shipped.clear()
        self._dirty.clear()
        self._slice_vertices.clear()
        sharded.subscribe_invalidations(self._on_invalidation)

    def _on_invalidation(self, shard_ids, vertices, delta) -> None:
        """The pool's copy of the view-cache staleness rule.

        A shipped slice goes dirty exactly when the index's own cached
        expansion for that shard would have been dropped: the shard's
        membership was touched, or a touched vertex lies inside the
        shipped view (recorded parent-side at ship time — a whole-graph
        alias view contains every vertex and therefore always dirties).
        """
        for shard_id in list(self._shipped):
            if shard_id in shard_ids:
                self._dirty.add(shard_id)
                continue
            resident = self._slice_vertices.get(shard_id, ())
            if any(vertex in resident for vertex in vertices):
                self._dirty.add(shard_id)

    def detach(self) -> None:
        """Stop following the bound index (slices stay with the workers)."""
        if self._bound is not None:
            self._bound.unsubscribe_invalidations(self._on_invalidation)
            self._bound = None

    # -- plumbing ------------------------------------------------------
    def _worker_for(self, shard_id: int) -> int:
        return shard_id % self.workers

    def _send(self, worker: int, message) -> None:
        try:
            self._conns[worker].send(message)
        except (BrokenPipeError, OSError) as exc:
            raise WorkerPoolError(
                f"shard worker {worker} is gone (send failed: {exc})"
            ) from exc

    def _ship(self, sharded: ShardedIndex, shard_id: int) -> None:
        reship = shard_id in self._shipped
        self._generation += 1
        slice_ = build_slice(sharded, shard_id, self.depth, self._generation)
        self._send(self._worker_for(shard_id), ("slice", slice_))
        self._shipped[shard_id] = slice_.generation
        self._dirty.discard(shard_id)
        self._slice_vertices[shard_id] = set(slice_.view.vertices())
        self.slices_shipped += 1
        _metrics.counter("repro_pool_slices_shipped").inc()
        if reship:
            self.slices_reshipped += 1
            _metrics.counter("repro_pool_slices_reshipped").inc()

    def drop_shard(self, shard_id: int) -> None:
        """Forget one shard's slice (parent bookkeeping and worker copy)."""
        if shard_id in self._shipped:
            self._send(self._worker_for(shard_id), ("drop", shard_id))
            del self._shipped[shard_id]
            self._dirty.discard(shard_id)
            self._slice_vertices.pop(shard_id, None)

    # -- the request/response cycle ------------------------------------
    def run(self, sharded: ShardedIndex, tasks: Sequence[ShardTask]) -> List:
        """Evaluate ``tasks`` on their owning workers; results in task order.

        Ships missing/dirty slices first, then dispatches with a bounded
        per-worker window (send a few, collect, send more) so a flood of
        large partials can never deadlock against a full task pipe.
        """
        self.bind(sharded)
        if self._closed:
            raise WorkerPoolError("shard worker pool is shut down")
        if not tasks:
            return []
        needed = sorted({task[2] for task in tasks})
        for shard_id in needed:
            if shard_id not in self._shipped or shard_id in self._dirty:
                self._ship(sharded, shard_id)
        queues: Dict[int, deque] = {}
        for seq, task in enumerate(tasks):
            queues.setdefault(self._worker_for(task[2]), deque()).append((seq, task))
        depth_histogram = _metrics.histogram("repro_pool_queue_depth")
        for queue in queues.values():
            depth_histogram.observe(len(queue))
        results: List = [None] * len(tasks)
        in_flight: Dict[int, int] = {worker: 0 for worker in queues}
        remaining = len(tasks)
        from multiprocessing.connection import wait as connection_wait

        def top_up(worker: int) -> None:
            queue = queues[worker]
            while queue and in_flight[worker] < self.WINDOW:
                seq, task = queue.popleft()
                self._send(worker, ("eval", seq, task))
                in_flight[worker] += 1

        for worker in queues:
            top_up(worker)
        conn_of = {self._conns[worker]: worker for worker in queues}
        while remaining:
            active = [
                conn
                for conn, worker in conn_of.items()
                if in_flight[worker] or queues[worker]
            ]
            ready = connection_wait(active, timeout=5.0)
            if not ready:
                for worker in queues:
                    if (in_flight[worker] or queues[worker]) and not self._procs[
                        worker
                    ].is_alive():
                        raise WorkerPoolError(
                            f"shard worker {worker} died mid-level "
                            f"(exitcode {self._procs[worker].exitcode})"
                        )
                continue
            for conn in ready:
                worker = conn_of[conn]
                try:
                    message = conn.recv()
                except (EOFError, OSError) as exc:
                    raise WorkerPoolError(
                        f"shard worker {worker} died mid-level ({exc})"
                    ) from exc
                status, seq, payload = message
                if status == "err":
                    raise RuntimeError(
                        f"shard worker {worker} task failed:\n{payload}"
                    )
                results[seq] = payload
                in_flight[worker] -= 1
                remaining -= 1
                top_up(worker)
        self.tasks_dispatched += len(tasks)
        _metrics.counter("repro_pool_tasks_dispatched").inc(len(tasks))
        return results

    def stats(self) -> Dict[str, int]:
        """This pool's counters under the registry naming convention.

        The bare ``slices_shipped`` / ``tasks_dispatched`` attributes
        remain as deprecated aliases of the same values.
        """
        return {
            "repro_pool_tasks_dispatched": self.tasks_dispatched,
            "repro_pool_slices_shipped": self.slices_shipped,
            "repro_pool_slices_reshipped": self.slices_reshipped,
        }

    # -- lifecycle -----------------------------------------------------
    def shutdown(self, wait: bool = True, cancel_futures: bool = False) -> None:
        """Stop the workers.

        ``wait=True`` (default) asks each worker to finish its queue and
        exit; ``wait=False, cancel_futures=True`` terminates immediately —
        the interrupt path, which must not block on an in-flight
        candidate.
        """
        if self._closed:
            return
        self._closed = True
        self.detach()
        if wait and not cancel_futures:
            for conn in self._conns:
                try:
                    conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
            for process in self._procs:
                process.join(timeout=5.0)
        for process in self._procs:
            if process.is_alive():
                process.terminate()
        for process in self._procs:
            process.join(timeout=1.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass


class ExecutorShardRunner:
    """Per-task-shipping reference runner (the pre-resident pool design).

    Adapts a :class:`concurrent.futures.ProcessPoolExecutor` initialized
    by :func:`repro.mining.parallel.init_worker` to the resident pool's
    ``run(sharded, tasks)`` interface: every task re-routes through
    ``evaluate_shard_task`` against the worker's own rebuilt
    :class:`ShardedIndex`.  Kept as the explicit baseline the
    ``tab10e`` benchmark gate measures the resident pool against, and as
    the fallback mode (``resident_workers=False``).
    """

    def __init__(self, executor, workers: int) -> None:
        self.executor = executor
        self.workers = max(1, int(workers))

    def run(self, sharded: ShardedIndex, tasks: Sequence[ShardTask]) -> List:
        from ..mining.parallel import evaluate_shard_task

        legacy = [(kind, pattern, shard_id) for kind, pattern, shard_id, *_ in tasks]
        chunksize = max(1, len(legacy) // (self.workers * 4))
        return list(self.executor.map(evaluate_shard_task, legacy, chunksize=chunksize))


def pooled_outcomes(
    patterns: Sequence[Pattern],
    sharded: ShardedIndex,
    runner,
    *,
    measure: str,
    lazy: bool,
    lazy_cap: int,
    max_occurrences: Optional[int],
    flat_evaluate: Callable[[Pattern], Tuple[float, int]],
    histogram: Optional[Dict] = None,
    prune_below: Optional[float] = None,
) -> List[Tuple[float, int]]:
    """Plan, dispatch, and merge one batch of candidates through a runner.

    The single planner/merger shared by the static miner's level loop and
    the dynamic miner's per-candidate evaluation, for both the resident
    pool and the per-task-shipping reference runner: the parent makes
    every decision the serial sharded evaluator would (prune bound,
    relevant shards, flat fallback, solo-vs-fanout) and merges partials
    through the same helpers — so pooled outcomes are byte-identical to
    serial ones however the tasks execute.
    """
    plans: List[Tuple[str, object]] = []
    tasks: List[ShardTask] = []
    for pattern in patterns:
        kind, payload = plan_candidate(
            pattern,
            sharded,
            measure,
            lazy=lazy,
            histogram=histogram,
            prune_below=prune_below,
        )
        if kind != "shards":
            plans.append((kind, payload))
            continue
        shard_ids: List[int] = payload  # type: ignore[assignment]
        if not shard_ids:
            # No shard can anchor the pattern: the empty merge is the
            # exact global answer; nothing to dispatch.
            plans.append(("empty", None))
            continue
        depth = required_depth(pattern)
        if len(shard_ids) == 1:
            shard_id = shard_ids[0]
            plans.append(("solo", None))
            tasks.append(
                (
                    "solo",
                    pattern,
                    shard_id,
                    depth,
                    shard_exclusive(pattern, sharded, shard_id),
                    max_occurrences,
                )
            )
            continue
        plans.append(("fanout", len(shard_ids)))
        tasks.extend(
            (
                "part",
                pattern,
                shard_id,
                depth,
                shard_exclusive(pattern, sharded, shard_id),
                max_occurrences,
            )
            for shard_id in shard_ids
        )
    partials = iter(runner.run(sharded, tasks) if tasks else ())
    outcomes: List[Tuple[float, int]] = []
    for pattern, (kind, payload) in zip(patterns, plans):
        if kind == "pruned":
            outcomes.append(payload)  # type: ignore[arg-type]
        elif kind == "flat":
            outcomes.append(flat_evaluate(pattern))
        elif kind == "empty":
            if lazy:
                outcomes.append((0.0, -1))
            else:
                outcomes.append(
                    support_from_shard_items(
                        pattern,
                        sharded.graph,
                        [],
                        measure,
                        max_occurrences=max_occurrences,
                    )
                )
        elif kind == "solo":
            outcomes.append(next(partials))
        else:
            shard_partials = [
                next(partials)
                for _ in range(payload)  # type: ignore[arg-type]
            ]
            if lazy:
                outcomes.append(
                    (float(merge_lazy_partials(shard_partials, cap=lazy_cap)), -1)
                )
            else:
                outcomes.append(
                    support_from_shard_items(
                        pattern,
                        sharded.graph,
                        shard_partials,
                        measure,
                        max_occurrences=max_occurrences,
                    )
                )
    return outcomes


# ----------------------------------------------------------------------
# out-of-core paging
# ----------------------------------------------------------------------
_STALE = object()  # pending-delta sentinel: spill unusable, recompute


class ShardPager:
    """LRU residency for halo-expanded shard views, with disk spill.

    Attach to a :class:`ShardedIndex` (``ShardPager(sharded,
    max_resident=N)`` attaches itself); from then on
    :meth:`ShardedIndex.expanded_shard` routes through :meth:`view`.  At
    most ``max_resident`` shards keep views in memory; the least recently
    used shard is evicted when the bound would be exceeded — its views
    spill to a manifest-format-2 shard cache directory
    (:func:`repro.partition.io.save_shard_views`) and later re-access
    re-hydrates from disk instead of recomputing.

    Delta maintenance marks spills stale through the index's
    invalidation hook.  Isolated-vertex deltas (``VertexAdded`` /
    ``VertexRemoved``) are **ball-safe** — an isolated vertex reaches
    nothing, so no other vertex's ball membership can change — and are
    queued for replay onto the re-hydrated view; edge deltas and
    rebalance moves can re-shape halo balls invisibly to the spilled
    view, so they poison the spill (``recomputes`` counts the fallback).
    Replay or recompute, the produced view is content-identical to an
    always-resident one: results never depend on eviction order.

    Whole-graph alias views (a ball that swallowed the graph) share the
    source graph's storage: they are accounted at zero weight and never
    spilled — evicting them frees nothing, and the source graph itself
    (like shard core graphs and the router) is maintained state that
    must never page out.

    ``resident_weight`` / ``peak_resident_weight`` account resident view
    footprints deterministically via
    :func:`repro.index.compact.projected_index_nbytes` — the analytic
    byte cost of the active backend's index over each non-alias view —
    so paging decisions track what a view actually costs to keep hot
    (the compact backend projects a few times lighter than the dict
    one).  The out-of-core and footprint benchmarks gate on these.
    """

    def __init__(
        self,
        sharded: ShardedIndex,
        max_resident: int,
        cache_dir: Optional[str] = None,
    ) -> None:
        if max_resident < 1:
            raise PartitionError(f"max_resident must be >= 1, got {max_resident}")
        self.max_resident = int(max_resident)
        self._tmp = None
        if cache_dir is None:
            import tempfile

            self._tmp = tempfile.TemporaryDirectory(prefix="repro-shard-cache-")
            cache_dir = self._tmp.name
        self.cache_dir = Path(cache_dir)
        self.evictions = 0
        self.spills = 0
        self.rehydrations = 0
        self.recomputes = 0
        self.replayed_deltas = 0
        self.resident_weight = 0
        self.peak_resident_weight = 0
        registry = _metrics.get_registry()
        for name in (
            "evictions",
            "spills",
            "rehydrations",
            "recomputes",
            "replayed_deltas",
        ):
            registry.counter(f"repro_pager_{name}")
        registry.gauge("repro_pager_resident_weight")
        registry.gauge("repro_pager_peak_resident_weight")
        self.sharded: Optional[ShardedIndex] = None
        self._resident: "OrderedDict[int, Dict[int, LabeledGraph]]" = OrderedDict()
        self._on_disk: Dict[int, Set[int]] = {}
        self._disk_vertices: Dict[int, Set[Vertex]] = {}
        self._pending: Dict[int, object] = {}
        self.attach(sharded)

    # -- binding -------------------------------------------------------
    def attach(self, sharded: ShardedIndex) -> None:
        """Start paging for ``sharded`` (clears all prior pager state)."""
        if self.sharded is not None:
            self.detach()
        self.sharded = sharded
        self._resident.clear()
        self._on_disk.clear()
        self._disk_vertices.clear()
        self._pending.clear()
        self.resident_weight = 0
        sharded.subscribe_invalidations(self._on_invalidation)
        sharded.attach_pager(self)

    def detach(self) -> None:
        """Stop paging; the index falls back to its in-memory cache."""
        if self.sharded is not None:
            self.sharded.unsubscribe_invalidations(self._on_invalidation)
            if self.sharded.pager is self:
                self.sharded.detach_pager()
            self.sharded = None

    def rebind(self, sharded: ShardedIndex) -> None:
        """Follow a rebuilt (re-partitioned) index; all spills are void."""
        self.attach(sharded)

    # -- weights -------------------------------------------------------
    def _view_weight(self, view: LabeledGraph) -> int:
        if self.sharded is not None and view is self.sharded.graph:
            return 0
        return projected_index_nbytes(
            view.num_vertices,
            view.num_edges,
            len(view.label_alphabet()),
            index_backend(),
        )

    @property
    def resident_shards(self) -> Tuple[int, ...]:
        return tuple(self._resident)

    # -- the cache interface -------------------------------------------
    def view(self, shard_id: int, depth: int) -> LabeledGraph:
        """The (shard, depth) expansion — resident, re-hydrated, or computed."""
        assert self.sharded is not None, "pager is detached"
        entry = self._resident.get(shard_id)
        if entry is not None:
            self._resident.move_to_end(shard_id)
            view = entry.get(depth)
            if view is None:
                view = self._materialize(shard_id, depth)
                entry[depth] = view
                self._bump_weight(view)
            return view
        view = self._materialize(shard_id, depth)
        self._resident[shard_id] = {depth: view}
        self._bump_weight(view)
        self._evict_over_limit()
        return view

    def _bump_weight(self, view: LabeledGraph) -> None:
        self.resident_weight += self._view_weight(view)
        if self.resident_weight > self.peak_resident_weight:
            self.peak_resident_weight = self.resident_weight
        self._sync_weight_gauges()

    def _sync_weight_gauges(self) -> None:
        _metrics.gauge("repro_pager_resident_weight").set(self.resident_weight)
        _metrics.gauge("repro_pager_peak_resident_weight").set_max(
            self.peak_resident_weight
        )

    def _materialize(self, shard_id: int, depth: int) -> LabeledGraph:
        pending = self._pending.get(shard_id)
        if pending is not _STALE and depth in self._on_disk.get(shard_id, ()):
            from .io import load_shard_view

            view = load_shard_view(self.cache_dir, shard_id, depth)
            if view is not None:
                self.rehydrations += 1
                _metrics.counter("repro_pager_rehydrations").inc()
                if pending:
                    for delta in pending:  # type: ignore[union-attr]
                        self._replay(view, delta)
                    replayed = len(pending)  # type: ignore[arg-type]
                    self.replayed_deltas += replayed
                    _metrics.counter("repro_pager_replayed_deltas").inc(replayed)
                return view
        self.recomputes += 1
        _metrics.counter("repro_pager_recomputes").inc()
        assert self.sharded is not None
        return self.sharded._compute_expansion(shard_id, depth)

    @staticmethod
    def _replay(view: LabeledGraph, delta) -> None:
        """Apply one ball-safe pending delta to a re-hydrated view."""
        from ..index.delta import VertexAdded, VertexRemoved

        if isinstance(delta, VertexAdded):
            if not view.has_vertex(delta.vertex):
                view.add_vertex(delta.vertex, delta.label)
        elif isinstance(delta, VertexRemoved):
            if view.has_vertex(delta.vertex):
                view.remove_vertex(delta.vertex)

    def _evict_over_limit(self) -> None:
        while len(self._resident) > self.max_resident:
            shard_id, views = self._resident.popitem(last=False)
            self._spill(shard_id, views)
            self.evictions += 1
            _metrics.counter("repro_pager_evictions").inc()

    def _spill(self, shard_id: int, views: Dict[int, LabeledGraph]) -> None:
        assert self.sharded is not None
        for view in views.values():
            self.resident_weight -= self._view_weight(view)
        self._sync_weight_gauges()
        graph = self.sharded.graph
        spillable = {
            depth: view for depth, view in views.items() if view is not graph
        }
        if not spillable:
            # Only whole-graph aliases were resident: nothing worth
            # writing, the next access recomputes the (cheap) alias.
            self._on_disk.pop(shard_id, None)
            self._disk_vertices.pop(shard_id, None)
            self._pending.pop(shard_id, None)
            return
        from .io import save_shard_views

        save_shard_views(self.cache_dir, shard_id, spillable)
        self.spills += 1
        _metrics.counter("repro_pager_spills").inc()
        self._on_disk[shard_id] = set(spillable)
        vertices: Set[Vertex] = set()
        for view in spillable.values():
            vertices.update(view.vertices())
        self._disk_vertices[shard_id] = vertices
        # The spill reflects the shard's current state; prior pending
        # deltas are baked in.
        self._pending.pop(shard_id, None)

    # -- staleness -----------------------------------------------------
    def _on_invalidation(self, shard_ids, vertices, delta) -> None:
        """Mirror the index's invalidation rule onto resident + spilled views."""
        from ..index.delta import VertexAdded, VertexRemoved

        graph = self.sharded.graph if self.sharded is not None else None
        for shard_id in list(self._resident):
            views = self._resident[shard_id]
            affected = shard_id in shard_ids or any(
                view is graph or any(view.has_vertex(v) for v in vertices)
                for view in views.values()
            )
            if affected:
                for view in views.values():
                    self.resident_weight -= self._view_weight(view)
                del self._resident[shard_id]
                self._sync_weight_gauges()
        replayable = isinstance(delta, (VertexAdded, VertexRemoved))
        for shard_id in list(self._on_disk):
            touched = shard_id in shard_ids or bool(
                self._disk_vertices.get(shard_id, set()).intersection(vertices)
            )
            if not touched:
                continue
            if not replayable:
                self._pending[shard_id] = _STALE
                continue
            pending = self._pending.get(shard_id)
            if pending is _STALE:
                continue
            if pending is None:
                pending = []
                self._pending[shard_id] = pending
            pending.append(delta)  # type: ignore[union-attr]
            if isinstance(delta, VertexAdded):
                # The new vertex belongs to this shard's future view;
                # track it so later deltas touching it are seen as
                # touching the spill.
                self._disk_vertices.setdefault(shard_id, set()).add(delta.vertex)

    def stats(self) -> Dict[str, int]:
        """This pager's counters under the registry naming convention.

        The bare attributes (``evictions``, ``resident_weight``, ...)
        remain as deprecated aliases of the same values.
        """
        return {
            "repro_pager_evictions": self.evictions,
            "repro_pager_spills": self.spills,
            "repro_pager_rehydrations": self.rehydrations,
            "repro_pager_recomputes": self.recomputes,
            "repro_pager_replayed_deltas": self.replayed_deltas,
            "repro_pager_resident_weight": self.resident_weight,
            "repro_pager_peak_resident_weight": self.peak_resident_weight,
        }

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Detach and delete the spill directory (if pager-owned)."""
        self.detach()
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None
