"""Partitioned data-graph subsystem: sharded indexing and halo-aware evaluation.

Splits one :class:`~repro.graph.labeled_graph.LabeledGraph` into k
edge-disjoint shards (:mod:`repro.partition.partitioner`), replicates
boundary vertices into per-shard halos (:mod:`repro.partition.shard`),
builds one :class:`~repro.index.GraphIndex` per shard behind a merged
global directory (:mod:`repro.partition.sharded_index`), and evaluates
the paper's support measures exactly by merging per-shard enumeration
(:mod:`repro.partition.evaluate`).  Shard directories round-trip through
:mod:`repro.partition.io`.  Under update streams the partition is
delta-maintained rather than rebuilt: :mod:`repro.partition.maintainer`
routes each graph delta to its owning shard(s) in O(delta) and
re-balances overflowing shards.  Pooled mining keeps one long-lived
worker per shard and can page cold shards to disk
(:mod:`repro.partition.workers`).  See the "Partitioning", "Dynamic
partitions", and "Shard-resident workers & paging" sections of
``docs/architecture.md`` for the invariants and routing rules.
"""

from .evaluate import (
    merge_lazy_partials,
    merge_shard_items,
    pattern_shardable,
    plan_candidate,
    relevant_shards,
    required_depth,
    shard_node_images,
    shard_occurrence_items,
    sharded_evaluate_support,
    sharded_lazy_mni,
    sharded_occurrences,
    support_from_shard_items,
)
from .io import load_partition, load_shard_view, save_partition, save_shard_views
from .maintainer import RebalancePolicy, ShardedIndexMaintainer, absorb_graph
from .partitioner import PARTITION_METHODS, EdgeRouter, Partition, partition_edges
from .shard import GraphShard
from .sharded_index import ShardedIndex
from .workers import (
    ExecutorShardRunner,
    ShardPager,
    ShardWorkerPool,
    WorkerPoolError,
    pooled_outcomes,
)

__all__ = [
    "PARTITION_METHODS",
    "Partition",
    "partition_edges",
    "EdgeRouter",
    "GraphShard",
    "ShardedIndex",
    "ShardedIndexMaintainer",
    "RebalancePolicy",
    "absorb_graph",
    "save_partition",
    "load_partition",
    "save_shard_views",
    "load_shard_view",
    "ShardWorkerPool",
    "ShardPager",
    "ExecutorShardRunner",
    "WorkerPoolError",
    "pooled_outcomes",
    "required_depth",
    "pattern_shardable",
    "plan_candidate",
    "relevant_shards",
    "shard_occurrence_items",
    "shard_node_images",
    "sharded_occurrences",
    "merge_shard_items",
    "merge_lazy_partials",
    "support_from_shard_items",
    "sharded_lazy_mni",
    "sharded_evaluate_support",
]
