"""One shard of a partitioned data graph, with its halo bookkeeping.

A :class:`GraphShard` materializes the core subgraph of one partition
cell: its assigned (core) edges, their endpoints, and any isolated
vertices the partitioner routed here.  Vertices whose incident edges span
several shards are **boundary vertices**; each incident shard replicates
them — that replicated set is the shard's **halo**.  The invariant the
test suite pins: a boundary vertex appears in *every* shard owning one of
its edges, exactly once per shard.

Shards are mutable in exactly one controlled way: the owning
:class:`~repro.partition.sharded_index.ShardedIndex` patches core edges
and halo membership while absorbing graph deltas (or rebalancing), via
the underscore-prefixed splice helpers below.  Everyone else treats a
shard as read-only.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Set, Tuple

from ..graph.labeled_graph import Edge, LabeledGraph, Vertex
from ..index.graph_index import _insert_canonical, _remove_canonical


class GraphShard:
    """The core subgraph + halo bookkeeping for one partition cell.

    Built by :class:`~repro.partition.sharded_index.ShardedIndex`; the
    ``graph`` attribute is a self-contained :class:`LabeledGraph` (core
    edges, their endpoints, assigned isolated vertices) suitable for
    per-shard indexing and serialization.
    """

    __slots__ = ("shard_id", "graph", "core_edges", "core_edge_set", "halo_vertices")

    def __init__(
        self,
        shard_id: int,
        graph: LabeledGraph,
        core_edges: Tuple[Edge, ...],
        halo_vertices: Iterable[Vertex],
    ) -> None:
        self.shard_id = shard_id
        self.graph = graph
        self.core_edges = core_edges
        self.core_edge_set: Set[Edge] = set(core_edges)
        self.halo_vertices: Set[Vertex] = set(halo_vertices)

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    @property
    def num_core_edges(self) -> int:
        return len(self.core_edges)

    def interior_vertices(self) -> FrozenSet[Vertex]:
        """Vertices living only in this shard (complement of the halo)."""
        return frozenset(self.graph.vertices()) - self.halo_vertices

    def owns_edge(self, edge: Edge) -> bool:
        """True when the canonical ``edge`` is one of this shard's core edges."""
        return edge in self.core_edge_set

    # ------------------------------------------------------------------
    # maintenance splices (ShardedIndex.apply_delta / rebalance only)
    # ------------------------------------------------------------------
    def _add_core_edge(self, edge: Edge) -> None:
        """Splice a canonical edge into the core set at its canonical position."""
        self.core_edges = _insert_canonical(self.core_edges, edge)
        self.core_edge_set.add(edge)

    def _remove_core_edge(self, edge: Edge) -> None:
        """Splice a canonical edge out of the core set."""
        self.core_edges = _remove_canonical(self.core_edges, edge)
        self.core_edge_set.discard(edge)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<GraphShard {self.shard_id} |V|={self.num_vertices} "
            f"core|E|={self.num_core_edges} halo={len(self.halo_vertices)}>"
        )
