"""Allow ``python -m repro`` to run the CLI."""

import sys

from .cli import main

sys.exit(main())
