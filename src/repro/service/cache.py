"""Result cache keyed by (snapshot version, canonical MiningSpec).

Heavy traffic means the same questions over and over: the same spec at
the same version must not re-mine.  Keys pair a snapshot version with
:meth:`MiningSpec.cache_key` — the canonical JSON of the spec's
*result-affecting* fields — so requests that differ only in execution
strategy (indexed vs brute, sharded vs flat, pooled vs serial) share one
entry, which is sound because those strategies are pinned byte-identical
by the equivalence suites.

Entries are invalidated **only by version advance**, never by wall
clock: when the writer publishes version ``N``, every entry for an older
version nobody has pinned is dropped (pinned versions keep their entries
— their readers can still re-request them), and when the last pin on an
old version is released its entries go too.  An optional ``max_entries``
bound evicts least-recently-used entries under memory pressure without
affecting correctness.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, Optional, Tuple

from ..mining.results import MiningResult
from ..obs import metrics as _metrics

CacheKey = Tuple[int, str]


class ResultCache:
    """A thread-safe (version, spec-key) → :class:`MiningResult` map.

    ``hits`` / ``misses`` / ``evictions`` are cumulative counters —
    the service's request surface reports them, and the tests assert on
    them to prove repeated requests never re-mine.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1 (or None), got {max_entries}")
        self._entries: "OrderedDict[CacheKey, MiningResult]" = OrderedDict()
        self._max_entries = max_entries
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        registry = _metrics.get_registry()
        for name in ("hits", "misses", "evictions"):
            registry.counter(f"repro_cache_{name}")
        registry.gauge("repro_cache_entries")

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def peek(self, version: int, spec_key: str) -> Optional[MiningResult]:
        """Like :meth:`get`, but touches neither counters nor LRU order.

        For introspection (the protocol's ``cached`` response field)
        that must not distort the hit/miss accounting tests assert on.
        """
        with self._lock:
            return self._entries.get((version, spec_key))

    def get(self, version: int, spec_key: str) -> Optional[MiningResult]:
        with self._lock:
            result = self._entries.get((version, spec_key))
            if result is None:
                self.misses += 1
                _metrics.counter("repro_cache_misses").inc()
                return None
            self._entries.move_to_end((version, spec_key))
            self.hits += 1
            _metrics.counter("repro_cache_hits").inc()
            return result

    def put(self, version: int, spec_key: str, result: MiningResult) -> None:
        with self._lock:
            self._entries[(version, spec_key)] = result
            self._entries.move_to_end((version, spec_key))
            evicted = 0
            while (
                self._max_entries is not None
                and len(self._entries) > self._max_entries
            ):
                self._entries.popitem(last=False)
                evicted += 1
            self.evictions += evicted
            if evicted:
                _metrics.counter("repro_cache_evictions").inc(evicted)
            _metrics.gauge("repro_cache_entries").set(len(self._entries))

    # ------------------------------------------------------------------
    def drop_version(self, version: int) -> int:
        """Drop every entry for ``version``; returns how many went."""
        return self.retain(lambda v: v != version)

    def retain(self, keep: Callable[[int], bool]) -> int:
        """Drop entries whose version fails ``keep``; returns the count."""
        with self._lock:
            doomed = [key for key in self._entries if not keep(key[0])]
            for key in doomed:
                del self._entries[key]
            self.evictions += len(doomed)
            if doomed:
                _metrics.counter("repro_cache_evictions").inc(len(doomed))
            _metrics.gauge("repro_cache_entries").set(len(self._entries))
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self.evictions += len(self._entries)
            if self._entries:
                _metrics.counter("repro_cache_evictions").inc(len(self._entries))
            self._entries.clear()
            _metrics.gauge("repro_cache_entries").set(0)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
