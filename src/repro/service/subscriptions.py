"""Standing-query subscriptions on the graph service writer.

:class:`SubscriptionRegistry` lives on :class:`~repro.service.GraphService`
and turns ``mine-stream`` inside out: clients register
:class:`~repro.mining.standing.StandingSpec` requests once, and after
every applied batch the writer *dispatches* the batch's label-pair
footprint to only the affected subscriptions, re-evaluates just those,
and emits typed :class:`~repro.mining.standing.AnswerEvent` streams
(per-subscription sequence numbers, stamped with the snapshot version
they apply to).

**Routing invariants** (why skipping is sound):

* a *pattern* subscription is unaffected when the batch's touched label
  pairs are disjoint from the pattern's footprint — every occurrence
  gained or lost must map a pattern edge onto a touched data edge
  (``DynamicMiner``'s reuse argument), and the support measures are pure
  functions of the occurrence set;
* a *threshold* subscription watches the label-pair union of its
  currently-frequent patterns.  A deleted pair outside that set only
  shrinks supports of already-infrequent patterns; an inserted pair
  ``p`` outside it can only promote patterns containing ``p``, whose
  support is bounded by ``MNI(single-edge(p)) <= pairs(p) * (2 if
  same-label else 1)`` — anti-monotonicity plus the measure chain
  (every supported measure ``<= sigma_MNI``).  When that cap stays
  below ``min_support``, the batch cannot change the answer.

All registry mutation and dispatch runs on the service's single writer
thread (the service routes ``subscribe``/``unsubscribe`` through the
command queue), so routing state needs no locks; only each
subscription's event queue is shared with poller threads.

Zero subscriptions cost zero: the registry only subscribes to the
graph's mutation-observer hook while at least one subscription exists,
and :meth:`dispatch` is a constant-time early exit when none do.
"""

from __future__ import annotations

import logging
import threading
from collections import deque
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from ..errors import ServiceError
from ..graph.labeled_graph import LabeledGraph
from ..index.delta import PATCHABLE_DELTAS, EdgeAdded, EdgeRemoved, IndexMaintainer
from ..index.graph_index import _label_pair_key
from ..mining.dynamic import DynamicMiner, pattern_footprint
from ..mining.standing import (
    Answer,
    AnswerEvent,
    StandingSpec,
    answer_from_result,
    diff_answer,
    evaluate_standing,
)
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from .cache import ResultCache

logger = logging.getLogger("repro.service.subscriptions")

LabelPair = Tuple

#: Per-subscription pending-event bound: a poller that falls this far
#: behind starts losing its *oldest* events (counted, never silent).
DEFAULT_MAX_PENDING = 4096


class Subscription:
    """One registered standing query and its pending event stream.

    Created by :meth:`SubscriptionRegistry.register` (via
    ``GraphService.subscribe``); hand it back to ``unsubscribe`` when
    done.  :meth:`poll` drains pending events (oldest first) and is the
    only method safe to call from any thread — everything else belongs
    to the writer.
    """

    __slots__ = (
        "id",
        "spec",
        "owner",
        "version",
        "seq",
        "cache_key",
        "footprint",
        "answer",
        "dropped",
        "_push",
        "_events",
        "_lock",
        "_max_pending",
    )

    def __init__(
        self,
        sub_id: str,
        spec: StandingSpec,
        *,
        owner: Optional[str],
        version: int,
        answer: Answer,
        push: Optional[Callable[["Subscription", int, List[AnswerEvent]], None]],
        max_pending: int,
    ) -> None:
        self.id = sub_id
        self.spec = spec
        self.owner = owner
        self.version = version
        self.seq = 0
        self.cache_key = spec.cache_key()
        self.footprint: Optional[FrozenSet[LabelPair]] = spec.footprint()
        self.answer = answer
        self.dropped = 0
        self._push = push
        self._events: deque = deque()
        self._lock = threading.Lock()
        self._max_pending = max_pending

    @property
    def pending(self) -> int:
        """How many events are queued for :meth:`poll`."""
        with self._lock:
            return len(self._events)

    def poll(self, max_events: Optional[int] = None) -> List[AnswerEvent]:
        """Drain up to ``max_events`` pending events (all by default)."""
        with self._lock:
            if max_events is None or max_events >= len(self._events):
                drained = list(self._events)
                self._events.clear()
            else:
                drained = [self._events.popleft() for _ in range(max(0, max_events))]
        return drained

    def answer_snapshot(self) -> Answer:
        """The last dispatched answer state (a copy)."""
        return dict(self.answer)

    def _enqueue(self, events: List[AnswerEvent]) -> int:
        """Queue events for polling; returns how many old ones fell off."""
        dropped = 0
        with self._lock:
            self._events.extend(events)
            while len(self._events) > self._max_pending:
                self._events.popleft()
                dropped += 1
            self.dropped += dropped
        return dropped

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Subscription({self.id!r}, kind={self.spec.kind!r}, "
            f"version={self.version}, pending={self.pending})"
        )


class _ThresholdEvaluator:
    """Shared evaluation state for threshold subscriptions with one key.

    Serves answers cache-first: the writer's maintained refresh (or any
    reader's mine of the same question) lands in the
    :class:`~repro.service.ResultCache` under the same key, so a
    subscription to the maintained spec never mines at all.  On a miss a
    lazily-created :class:`DynamicMiner` refreshes in O(delta) — its
    certificate memoization and reuse/skip routing carry over between
    dispatches — and the result is cached for everyone else.

    ``watched`` is the label-pair union of the current frequent
    patterns: the routing set the skip rule above tests against.
    """

    __slots__ = ("spec", "refs", "version", "answer", "watched", "_miner", "_graph")

    def __init__(self, spec: StandingSpec, graph: LabeledGraph) -> None:
        self.spec = spec
        self.refs = 0
        self.version: Optional[int] = None
        self.answer: Answer = {}
        self.watched: FrozenSet[LabelPair] = frozenset()
        self._miner: Optional[DynamicMiner] = None
        self._graph = graph

    def evaluate(self, version: int, cache: ResultCache) -> Tuple[Answer, bool]:
        """The answer at ``version``; ``(answer, served_from_cache)``."""
        if self.version == version:
            return self.answer, True
        key = self.spec.cache_key()
        result = cache.get(version, key)
        cached = result is not None
        if result is None:
            if self._miner is None:
                self._miner = DynamicMiner(self._graph, spec=self.spec.mining_spec())
            result = self._miner.refresh()
            cache.put(version, key, result)
        self.answer = answer_from_result(result)
        self.watched = frozenset().union(
            *(pattern_footprint(fp.pattern) for fp in result.frequent)
        )
        self.version = version
        return self.answer, cached

    def adopt(self, version: int) -> None:
        """Fast-forward to ``version`` with the answer proven unchanged."""
        self.version = version

    def affected_by(
        self,
        inserted: Set[LabelPair],
        removed: Set[LabelPair],
        pair_counts: Dict[LabelPair, int],
    ) -> bool:
        if not inserted.isdisjoint(self.watched):
            return True
        if not removed.isdisjoint(self.watched):
            return True
        threshold = self.spec.min_support
        for pair in inserted:
            cap = pair_counts.get(pair, 0) * (2 if pair[0] == pair[1] else 1)
            if cap >= threshold:
                return True
        return False

    def close(self) -> None:
        if self._miner is not None:
            self._miner.close()
            self._miner = None


class SubscriptionRegistry:
    """The writer-side dispatcher for standing-query subscriptions."""

    def __init__(
        self,
        graph: LabeledGraph,
        cache: ResultCache,
        *,
        max_pending: int = DEFAULT_MAX_PENDING,
    ) -> None:
        self._graph = graph
        self._cache = cache
        self._max_pending = max_pending
        self._subs: Dict[str, Subscription] = {}
        self._evaluators: Dict[str, _ThresholdEvaluator] = {}
        self._next_id = 0
        self._buffer: List = []
        self._observer = None
        self._synced_version: Optional[int] = None
        self._pair_counts: Dict[LabelPair, int] = {}
        self._index_maintainer: Optional[IndexMaintainer] = None
        registry = _metrics.get_registry()
        registry.gauge("repro_subs_active")
        registry.counter("repro_subs_registered")
        registry.counter("repro_subs_unregistered")
        registry.counter("repro_subs_dispatches")
        registry.counter("repro_subs_dispatch_skipped")
        registry.counter("repro_subs_evaluations")
        registry.counter("repro_subs_events_emitted")
        registry.counter("repro_subs_events_dropped")

    # ------------------------------------------------------------------
    # lifecycle (writer thread only)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._subs)

    def get(self, sub_id: str) -> Optional[Subscription]:
        """The subscription with this id, or ``None``."""
        return self._subs.get(sub_id)

    def register(
        self,
        spec: StandingSpec,
        *,
        version: int,
        push: Optional[Callable] = None,
        owner: Optional[str] = None,
    ) -> Subscription:
        """Register one standing query; returns its live subscription.

        The baseline answer is evaluated at ``version`` (the current
        tip) so the first dispatched events diff against exactly what
        the caller was told on registration.
        """
        if not isinstance(spec, StandingSpec):
            raise ServiceError(
                f"subscriptions take a StandingSpec, got {type(spec).__name__}"
            )
        if spec.delivery == "push" and push is None:
            raise ServiceError("push delivery requires a push callback")
        self._attach()
        self._next_id += 1
        sub_id = f"s{self._next_id}"
        if spec.kind == "threshold":
            evaluator = self._evaluators.get(spec.cache_key())
            if evaluator is None:
                evaluator = _ThresholdEvaluator(spec, self._graph)
                self._evaluators[spec.cache_key()] = evaluator
            evaluator.refs += 1
            answer, _ = evaluator.evaluate(version, self._cache)
        else:
            if self._index_maintainer is None:
                self._index_maintainer = IndexMaintainer(self._graph)
            answer = evaluate_standing(
                spec, self._graph, index=self._index_maintainer.index()
            )
        sub = Subscription(
            sub_id,
            spec,
            owner=owner,
            version=version,
            answer=answer,
            push=push if spec.delivery == "push" else None,
            max_pending=self._max_pending,
        )
        self._subs[sub_id] = sub
        _metrics.counter("repro_subs_registered").inc()
        _metrics.gauge("repro_subs_active").set(len(self._subs))
        return sub

    def unregister(self, sub_id: str) -> bool:
        """Remove one subscription; ``False`` when the id is unknown."""
        sub = self._subs.pop(sub_id, None)
        if sub is None:
            return False
        if sub.spec.kind == "threshold":
            evaluator = self._evaluators.get(sub.cache_key)
            if evaluator is not None:
                evaluator.refs -= 1
                if evaluator.refs <= 0:
                    evaluator.close()
                    del self._evaluators[sub.cache_key]
        if self._index_maintainer is not None and not any(
            s.spec.kind == "pattern" for s in self._subs.values()
        ):
            self._index_maintainer.detach()
            self._index_maintainer = None
        if not self._subs:
            self._detach()
        _metrics.counter("repro_subs_unregistered").inc()
        _metrics.gauge("repro_subs_active").set(len(self._subs))
        return True

    def drop_owner(self, owner: str) -> int:
        """GC every subscription registered by ``owner`` (client drop)."""
        doomed = [s.id for s in self._subs.values() if s.owner == owner]
        for sub_id in doomed:
            self.unregister(sub_id)
        return len(doomed)

    def close(self) -> None:
        """Drop every subscription and detach from the graph."""
        for sub_id in list(self._subs):
            self.unregister(sub_id)

    # ------------------------------------------------------------------
    # delta observation + routing (writer thread only)
    # ------------------------------------------------------------------
    def _attach(self) -> None:
        if self._observer is not None:
            return
        self._buffer = []
        self._observer = self._graph.subscribe(self._buffer.append)
        self._synced_version = self._graph.mutation_version()
        self._pair_counts = self._count_pairs()

    def _detach(self) -> None:
        if self._observer is None:
            return
        self._graph.unsubscribe(self._observer)
        self._observer = None
        self._buffer = []
        self._pair_counts = {}
        self._synced_version = None

    def _count_pairs(self) -> Dict[LabelPair, int]:
        counts: Dict[LabelPair, int] = {}
        label_of = self._graph.label_of
        for u, v in self._graph.edges():
            pair = _label_pair_key(label_of(u), label_of(v))
            counts[pair] = counts.get(pair, 0) + 1
        return counts

    def _consume_deltas(
        self, target: int
    ) -> Optional[Tuple[Set[LabelPair], Set[LabelPair]]]:
        """``(inserted_pairs, removed_pairs)`` since the last dispatch.

        Same contiguity discipline as ``DynamicMiner._consume_deltas``:
        any observation gap returns ``None`` ("treat everything as
        affected") and the pair counts are recounted from the graph.
        """
        buffer = list(self._buffer)
        self._buffer.clear()
        synced = self._synced_version
        self._synced_version = target
        deltas = [d for d in buffer if synced is None or d.version > synced]
        contiguous = (
            synced is not None
            and deltas
            and deltas[0].version == synced + 1
            and deltas[-1].version == target
            and all(b.version == a.version + 1 for a, b in zip(deltas, deltas[1:]))
            and all(isinstance(d, PATCHABLE_DELTAS) for d in deltas)
        )
        if synced is not None and synced == target:
            return set(), set()
        if not contiguous:
            self._pair_counts = self._count_pairs()
            return None
        inserted: Set[LabelPair] = set()
        removed: Set[LabelPair] = set()
        for delta in deltas:
            if isinstance(delta, EdgeAdded):
                pair = delta.label_pair()
                inserted.add(pair)
                self._pair_counts[pair] = self._pair_counts.get(pair, 0) + 1
            elif isinstance(delta, EdgeRemoved):
                pair = delta.label_pair()
                removed.add(pair)
                count = self._pair_counts.get(pair, 0) - 1
                if count > 0:
                    self._pair_counts[pair] = count
                else:
                    self._pair_counts.pop(pair, None)
        return inserted, removed

    # ------------------------------------------------------------------
    # dispatch (writer thread, once per applied batch)
    # ------------------------------------------------------------------
    def dispatch(self, version: int) -> None:
        """Route the last batch's footprint and notify affected subs."""
        if not self._subs:
            return
        with _trace.span("subs.dispatch", version=version, subscriptions=len(self)):
            self._dispatch(version)

    def _dispatch(self, version: int) -> None:
        _metrics.counter("repro_subs_dispatches").inc()
        touched = self._consume_deltas(self._graph.mutation_version())
        if touched is None:
            inserted = removed = None
            touched_pairs = None
        else:
            inserted, removed = touched
            touched_pairs = inserted | removed
        skipped = evaluated = emitted = dropped = 0
        # Threshold subscriptions sharing a cache key share one evaluator,
        # and the first evaluate() of a dispatch advances its ``watched``
        # set to the post-batch frequent patterns.  Routing must test the
        # *pre-batch* watched set for every sub, so the decision is made
        # once per evaluator — before any evaluate() mutates it — and
        # reused by every later sub with the same key.
        threshold_affected: Dict[str, bool] = {}
        for sub in list(self._subs.values()):
            if sub.spec.kind == "pattern":
                affected = touched_pairs is None or not touched_pairs.isdisjoint(
                    sub.footprint
                )
                if not affected:
                    sub.version = version
                    skipped += 1
                    continue
                with _trace.span("subs.evaluate", subscription=sub.id, kind="pattern"):
                    index = (
                        self._index_maintainer.index()
                        if self._index_maintainer is not None
                        else None
                    )
                    new_answer = evaluate_standing(sub.spec, self._graph, index=index)
            else:
                evaluator = self._evaluators[sub.cache_key]
                affected = threshold_affected.get(sub.cache_key)
                if affected is None:
                    affected = touched_pairs is None or evaluator.affected_by(
                        inserted, removed, self._pair_counts
                    )
                    threshold_affected[sub.cache_key] = affected
                if not affected:
                    evaluator.adopt(version)
                    sub.version = version
                    skipped += 1
                    continue
                with _trace.span(
                    "subs.evaluate", subscription=sub.id, kind="threshold"
                ):
                    new_answer, _ = evaluator.evaluate(version, self._cache)
            evaluated += 1
            events, sub.seq = diff_answer(
                sub.answer,
                new_answer,
                version=version,
                seq_start=sub.seq,
                event_filter=sub.spec.events,
            )
            sub.answer = new_answer
            sub.version = version
            if events:
                emitted += len(events)
                dropped += sub._enqueue(events)
                if sub._push is not None:
                    try:
                        sub._push(sub, version, events)
                    except Exception:  # noqa: BLE001 - a dead client must
                        # never take the writer down; disconnect GC will
                        # reap the subscription.
                        logger.warning(
                            "push delivery for subscription %s failed; "
                            "events remain pollable",
                            sub.id,
                            exc_info=True,
                        )
        if skipped:
            _metrics.counter("repro_subs_dispatch_skipped").inc(skipped)
        if evaluated:
            _metrics.counter("repro_subs_evaluations").inc(evaluated)
        if emitted:
            _metrics.counter("repro_subs_events_emitted").inc(emitted)
        if dropped:
            _metrics.counter("repro_subs_events_dropped").inc(dropped)
