"""Versioned, refcounted graph snapshots — MVCC in miniature.

The service has exactly one writer (the thread that mutates the live
graph) and many readers (threads answering mine requests).  Readers must
see a *frozen* graph at a well-defined version, and must never block the
writer.  :class:`SnapshotRegistry` provides that with copy-on-write over
the delta log:

* the registry subscribes to the live graph and buffers its typed
  deltas (the same :mod:`repro.index.delta` records the maintainers
  consume);
* it keeps a **shadow graph** equal to the live graph at the last
  *published* version.  :meth:`SnapshotRegistry.publish` (writer-only)
  rolls the shadow forward by replaying the buffered deltas — O(delta)
  per batch, no copying — or, on an observation gap, falls back to one
  full copy of the live graph;
* :meth:`SnapshotRegistry.pin` hands a reader the shadow at its current
  version, refcounted.  Only when a *pinned* tip must advance does the
  writer copy the shadow (copy-on-write): the old object is frozen for
  its readers, the copy becomes the new shadow.  Unpinned versions are
  garbage-collected the moment their refcount drops to zero — eviction
  callbacks let the result cache drop exactly that version's entries.

A pinned snapshot's graph carries a tripwire observer that raises
:class:`~repro.errors.ServiceError` on any mutation, so an accidental
write to a frozen view fails loudly instead of corrupting readers.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, FrozenSet, List, Optional

from ..errors import ServiceError
from ..graph.labeled_graph import LabeledGraph
from ..index.delta import (
    PATCHABLE_DELTAS,
    AnyDelta,
    EdgeAdded,
    EdgeRemoved,
    VertexAdded,
    VertexRemoved,
)
from ..obs import metrics as _metrics


def _replay(graph: LabeledGraph, delta: AnyDelta) -> None:
    """Apply one observed delta to a (shadow) graph copy."""
    if isinstance(delta, VertexAdded):
        graph.add_vertex(delta.vertex, delta.label)
    elif isinstance(delta, EdgeAdded):
        graph.add_edge(delta.u, delta.v)
    elif isinstance(delta, EdgeRemoved):
        graph.remove_edge(delta.u, delta.v)
    elif isinstance(delta, VertexRemoved):
        graph.remove_vertex(delta.vertex)
    else:  # pragma: no cover - PATCHABLE_DELTAS is checked before replay
        raise ServiceError(f"cannot replay delta {delta!r}")


def _tripwire(delta: object) -> None:
    raise ServiceError(
        "a pinned snapshot graph was mutated; snapshots are immutable — "
        "apply updates to the live graph through the service writer"
    )


class Snapshot:
    """One pinned, immutable (version, graph) pair.

    Hold it for as long as the frozen view is needed, then
    :meth:`release` it (or use it as a context manager) so the registry
    can garbage-collect the version.  Releasing twice is an error — it
    would corrupt another reader's refcount.
    """

    __slots__ = ("version", "graph", "_registry", "_released")

    def __init__(
        self, version: int, graph: LabeledGraph, registry: "SnapshotRegistry"
    ) -> None:
        self.version = version
        self.graph = graph
        self._registry = registry
        self._released = False

    def release(self) -> None:
        if self._released:
            raise ServiceError(
                f"snapshot at version {self.version} was already released"
            )
        self._released = True
        self._registry._release(self.version)

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "released" if self._released else "pinned"
        return f"<Snapshot version={self.version} {state}>"


class SnapshotRegistry:
    """Map version → frozen graph view, refcounted, copy-on-write.

    One instance per service.  :meth:`publish` must only be called by
    the writer thread; :meth:`pin`/release are safe from any thread.
    The registry's lock only guards bookkeeping and the O(delta) shadow
    roll-forward — readers never hold it while mining.
    """

    def __init__(self, graph: LabeledGraph) -> None:
        self._graph = graph
        self._log: List[AnyDelta] = []
        self._observer = graph.subscribe(self._log.append)
        # The shadow starts as one full copy; every publish afterwards is
        # an O(delta) replay (or a copy-on-write split when pinned).
        self._shadow = graph.copy()
        self._tip = graph.mutation_version()
        self._lock = threading.Lock()
        self._refcounts: Dict[int, int] = {}
        self._frozen: Dict[int, LabeledGraph] = {}
        self._evict_callbacks: List[Callable[[int], None]] = []
        self._closed = False
        registry = _metrics.get_registry()
        for name in ("pins", "publishes", "cow_splits", "gc_versions"):
            registry.counter(f"repro_snapshots_{name}")

    # ------------------------------------------------------------------
    @property
    def tip(self) -> int:
        """The latest published version."""
        return self._tip

    def pinned_versions(self) -> FrozenSet[int]:
        with self._lock:
            return frozenset(self._refcounts)

    def on_evict(self, callback: Callable[[int], None]) -> None:
        """Call ``callback(version)`` when a version is garbage-collected."""
        self._evict_callbacks.append(callback)

    # ------------------------------------------------------------------
    def pin(self, version: Optional[int] = None) -> Snapshot:
        """Pin the tip (or a still-materialized older version).

        Pinning the tip freezes the current shadow in place — no copy;
        the *writer* pays for the copy later, and only if it must
        advance past a version readers still hold.  An unpinned old
        version is gone (that is the point of GC): pinning it raises.
        """
        with self._lock:
            if self._closed:
                raise ServiceError("the snapshot registry is closed")
            target = self._tip if version is None else version
            if target == self._tip:
                if target not in self._frozen:
                    self._frozen[target] = self._shadow
                    self._shadow.subscribe(_tripwire)
            elif target not in self._frozen:
                raise ServiceError(
                    f"version {target} is not materialized (tip is "
                    f"{self._tip}; unpinned versions are garbage-collected)"
                )
            self._refcounts[target] = self._refcounts.get(target, 0) + 1
            _metrics.counter("repro_snapshots_pins").inc()
            return Snapshot(target, self._frozen[target], self)

    def _release(self, version: int) -> None:
        evicted = False
        with self._lock:
            count = self._refcounts.get(version, 0) - 1
            if count > 0:
                self._refcounts[version] = count
            else:
                self._refcounts.pop(version, None)
                frozen = self._frozen.pop(version, None)
                evicted = frozen is not None
                if frozen is self._shadow:
                    # The tip was the shadow itself; make it mutable for
                    # the writer's next in-place roll-forward.
                    self._shadow.unsubscribe(_tripwire)
        if evicted:
            _metrics.counter("repro_snapshots_gc_versions").inc()
            for callback in self._evict_callbacks:
                callback(version)

    # ------------------------------------------------------------------
    def publish(self) -> int:
        """Writer-only: advance the shadow to the live graph's version.

        Contiguous patchable deltas replay in O(delta); any gap (missed
        observation, unknown delta kind) falls back to one full copy of
        the live graph.  If the departing tip is pinned, the shadow is
        copied first (copy-on-write) so pinned readers keep their frozen
        object untouched.
        """
        target = self._graph.mutation_version()
        with self._lock:
            if self._closed:
                raise ServiceError("the snapshot registry is closed")
            # The subscribed observer is this list's bound .append —
            # clear in place, never swap the list out from under it.
            buffered = list(self._log)
            self._log.clear()
            if target == self._tip:
                return self._tip
            deltas = [d for d in buffered if d.version > self._tip]
            contiguous = (
                bool(deltas)
                and deltas[0].version == self._tip + 1
                and deltas[-1].version == target
                and all(
                    b.version == a.version + 1 for a, b in zip(deltas, deltas[1:])
                )
                and all(isinstance(d, PATCHABLE_DELTAS) for d in deltas)
            )
            if self._tip in self._frozen:
                # Copy-on-write: the old shadow stays frozen for its
                # pinned readers; copy() drops the tripwire with the
                # rest of the observers, so the new shadow is mutable.
                self._shadow = self._shadow.copy()
                _metrics.counter("repro_snapshots_cow_splits").inc()
            if contiguous:
                for delta in deltas:
                    _replay(self._shadow, delta)
            else:
                self._shadow = self._graph.copy()
            self._tip = target
            _metrics.counter("repro_snapshots_publishes").inc()
            return self._tip

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Detach from the live graph; outstanding pins stay readable."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._graph.unsubscribe(self._observer)
        self._log.clear()
