"""Transports for the service daemon: stdin/stdout and TCP.

Both speak the newline-delimited JSON protocol of
:mod:`repro.service.protocol` against one shared
:class:`~repro.service.GraphService`.  The stdio transport serves one
pipelined client (requests answered in order); the TCP transport serves
many concurrent clients — each connection gets its own handler thread,
and their mine requests run as concurrent readers over pinned snapshots
while update requests funnel into the service's single writer.

Each connection carries a :class:`ClientSession`: it owns the
subscriptions registered over that connection (dropped via the writer
queue when the client disconnects — no leaked standing queries) and
serializes all line output through one lock so server-push ``notify``
frames (written by the service writer thread during dispatch) never
interleave with request responses.

On startup each transport emits a ``ready`` event line (JSON, same
framing as responses) announcing the transport and — for TCP — the
bound port, so callers using ``--port 0`` can discover where to connect.
"""

from __future__ import annotations

import itertools
import json
import socketserver
import threading
from typing import IO, Callable, List, Optional

from ..errors import ReproError
from ..mining.standing import AnswerEvent
from .protocol import handle_request, notify_line
from .service import GraphService

_SESSION_IDS = itertools.count(1)


class ClientSession:
    """One connection's subscription scope + serialized line output.

    ``write_line`` is the transport's raw line writer (one JSON line in,
    newline excluded); a session constructed without one cannot serve
    push-delivery subscriptions.  All writes — responses and
    notifications alike — go through :meth:`send` under one lock, so a
    ``notify`` frame from the service writer thread never interleaves
    with a response written by the handler thread.
    """

    def __init__(
        self,
        service: GraphService,
        write_line: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.service = service
        self.owner_id = f"client-{next(_SESSION_IDS)}"
        self._write_line = write_line
        self._lock = threading.Lock()
        self._subs: set = set()

    @property
    def can_push(self) -> bool:
        return self._write_line is not None

    def send(self, payload: dict) -> None:
        """Write one JSON line (thread-safe against concurrent pushes)."""
        if self._write_line is None:
            raise ValueError("this session has no output channel")
        line = json.dumps(payload)
        with self._lock:
            self._write_line(line)

    def notify(self, sub, version: int, events: List[AnswerEvent]) -> None:
        """Push-delivery callback handed to ``subscribe`` (writer thread)."""
        self.send(notify_line(sub, version, events))

    def track(self, sub_id: str) -> None:
        self._subs.add(sub_id)

    def untrack(self, sub_id: str) -> None:
        self._subs.discard(sub_id)

    def close(self) -> None:
        """GC this connection's subscriptions (idempotent, swallows a
        stopped service — disconnects race shutdown by design)."""
        self._write_line = None
        if not self._subs:
            return
        self._subs = set()
        try:
            self.service.drop_owner(self.owner_id)
        except ReproError:
            pass


def _ready_event(service: GraphService, transport: str, **extra) -> str:
    payload = {
        "ok": True,
        "event": "ready",
        "transport": transport,
        "version": service.version,
    }
    payload.update(extra)
    return json.dumps(payload)


def serve_stdio(service: GraphService, infile: IO[str], outfile: IO[str]) -> None:
    """Serve one client over text streams until EOF or ``shutdown``."""
    outfile.write(_ready_event(service, "stdio") + "\n")
    outfile.flush()

    def write_line(line: str) -> None:
        outfile.write(line + "\n")
        outfile.flush()

    session = ClientSession(service, write_line)
    try:
        for line in infile:
            if not line.strip():
                continue
            response, shutdown = handle_request(service, line, session)
            session.send(response)
            if shutdown:
                break
    finally:
        session.close()


class _ServiceTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address, service: GraphService) -> None:
        super().__init__(address, _ServiceHandler)
        self.service = service


class _ServiceHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        def write_line(line: str) -> None:
            try:
                self.wfile.write((line + "\n").encode("utf-8"))
                self.wfile.flush()
            except (OSError, ValueError):
                # A vanished client must not take down the writer thread
                # mid-notify; its subscriptions are reaped on disconnect.
                pass

        session = ClientSession(self.server.service, write_line)
        try:
            for raw in self.rfile:
                line = raw.decode("utf-8", errors="replace")
                if not line.strip():
                    continue
                response, shutdown = handle_request(self.server.service, line, session)
                session.send(response)
                if shutdown:
                    # shutdown() blocks until serve_forever() exits, and
                    # this handler runs on a connection thread — hand it
                    # to yet another thread so this socket closes promptly.
                    threading.Thread(target=self.server.shutdown, daemon=True).start()
                    return
        finally:
            session.close()


def serve_tcp(
    service: GraphService,
    host: str = "127.0.0.1",
    port: int = 0,
    announce: Optional[IO[str]] = None,
) -> None:
    """Serve concurrent TCP clients until a ``shutdown`` request.

    ``port=0`` binds an ephemeral port; the ``ready`` event written to
    ``announce`` (when given) carries the actual one.
    """
    with _ServiceTCPServer((host, port), service) as server:
        if announce is not None:
            bound_host, bound_port = server.server_address[:2]
            announce.write(
                _ready_event(service, "tcp", host=bound_host, port=bound_port) + "\n"
            )
            announce.flush()
        server.serve_forever(poll_interval=0.1)
