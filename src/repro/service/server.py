"""Transports for the service daemon: stdin/stdout and TCP.

Both speak the newline-delimited JSON protocol of
:mod:`repro.service.protocol` against one shared
:class:`~repro.service.GraphService`.  The stdio transport serves one
pipelined client (requests answered in order); the TCP transport serves
many concurrent clients — each connection gets its own handler thread,
and their mine requests run as concurrent readers over pinned snapshots
while update requests funnel into the service's single writer.

On startup each transport emits a ``ready`` event line (JSON, same
framing as responses) announcing the transport and — for TCP — the
bound port, so callers using ``--port 0`` can discover where to connect.
"""

from __future__ import annotations

import json
import socketserver
import threading
from typing import IO, Optional

from .protocol import handle_request
from .service import GraphService


def _ready_event(service: GraphService, transport: str, **extra) -> str:
    payload = {
        "ok": True,
        "event": "ready",
        "transport": transport,
        "version": service.version,
    }
    payload.update(extra)
    return json.dumps(payload)


def serve_stdio(service: GraphService, infile: IO[str], outfile: IO[str]) -> None:
    """Serve one client over text streams until EOF or ``shutdown``."""
    outfile.write(_ready_event(service, "stdio") + "\n")
    outfile.flush()
    for line in infile:
        if not line.strip():
            continue
        response, shutdown = handle_request(service, line)
        outfile.write(json.dumps(response) + "\n")
        outfile.flush()
        if shutdown:
            break


class _ServiceTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address, service: GraphService) -> None:
        super().__init__(address, _ServiceHandler)
        self.service = service


class _ServiceHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        for raw in self.rfile:
            line = raw.decode("utf-8", errors="replace")
            if not line.strip():
                continue
            response, shutdown = handle_request(self.server.service, line)
            self.wfile.write((json.dumps(response) + "\n").encode("utf-8"))
            self.wfile.flush()
            if shutdown:
                # shutdown() blocks until serve_forever() exits, and this
                # handler runs on a connection thread — hand it to yet
                # another thread so this response socket closes promptly.
                threading.Thread(target=self.server.shutdown, daemon=True).start()
                return


def serve_tcp(
    service: GraphService,
    host: str = "127.0.0.1",
    port: int = 0,
    announce: Optional[IO[str]] = None,
) -> None:
    """Serve concurrent TCP clients until a ``shutdown`` request.

    ``port=0`` binds an ephemeral port; the ``ready`` event written to
    ``announce`` (when given) carries the actual one.
    """
    with _ServiceTCPServer((host, port), service) as server:
        if announce is not None:
            bound_host, bound_port = server.server_address[:2]
            announce.write(
                _ready_event(service, "tcp", host=bound_host, port=bound_port) + "\n"
            )
            announce.flush()
        server.serve_forever(poll_interval=0.1)
