"""Transports for the service daemon: stdin/stdout and TCP.

Both speak the newline-delimited JSON protocol of
:mod:`repro.service.protocol` against one shared
:class:`~repro.service.GraphService`.  The stdio transport serves one
pipelined client (requests answered in order); the TCP transport serves
many concurrent clients — each connection gets its own handler thread,
and their mine requests run as concurrent readers over pinned snapshots
while update requests funnel into the service's single writer.

Each connection carries a :class:`ClientSession`: it owns the
subscriptions registered over that connection (dropped via the writer
queue when the client disconnects — no leaked standing queries) and
serializes all line output through one lock so server-push ``notify``
frames never interleave with request responses.  The service writer
thread never touches the socket: dispatch only *enqueues* notify frames,
and a per-session sender thread drains them — a slow client whose TCP
buffer fills blocks its own sender, not batch application or any other
subscription.

On startup each transport emits a ``ready`` event line (JSON, same
framing as responses) announcing the transport and — for TCP — the
bound port, so callers using ``--port 0`` can discover where to connect.
"""

from __future__ import annotations

import itertools
import json
import logging
import socketserver
import threading
from collections import deque
from typing import IO, Callable, List, Optional

from ..errors import ReproError
from ..mining.standing import AnswerEvent
from .protocol import handle_request, notify_line
from .service import GraphService

logger = logging.getLogger("repro.service.server")

_SESSION_IDS = itertools.count(1)

#: Per-session bound on queued-but-unsent notify frames: a client whose
#: socket stays full this long starts losing its *oldest* frames (logged,
#: never silent — the events themselves remain pollable).
DEFAULT_MAX_QUEUED_NOTIFIES = 1024


class ClientSession:
    """One connection's subscription scope + serialized line output.

    ``write_line`` is the transport's raw line writer (one JSON line in,
    newline excluded); a session constructed without one cannot serve
    push-delivery subscriptions.  All writes — responses and
    notifications alike — go through :meth:`send` under one lock, so a
    ``notify`` frame never interleaves with a response written by the
    handler thread.

    :meth:`notify` (the push callback the service writer thread invokes
    during dispatch) never performs socket I/O: it enqueues the frame
    and a lazily-started per-session sender thread drains the queue.  A
    slow client whose TCP buffer fills therefore blocks only its own
    sender; batch application and every other subscription keep moving.
    The queue is bounded — overflow drops the oldest frames, which stay
    retrievable via ``poll_events``.
    """

    def __init__(
        self,
        service: GraphService,
        write_line: Optional[Callable[[str], None]] = None,
        max_queued_notifies: int = DEFAULT_MAX_QUEUED_NOTIFIES,
    ) -> None:
        self.service = service
        self.owner_id = f"client-{next(_SESSION_IDS)}"
        self._write_line = write_line
        self._lock = threading.Lock()
        self._subs: set = set()
        self._max_queued = max_queued_notifies
        self._queued: deque = deque()
        self._queue_cond = threading.Condition()
        self._sender: Optional[threading.Thread] = None
        self._in_flight = False
        self._closed = False
        self.notify_drops = 0

    @property
    def can_push(self) -> bool:
        return self._write_line is not None

    def send(self, payload: dict) -> None:
        """Write one JSON line (thread-safe against concurrent pushes)."""
        if self._write_line is None:
            raise ValueError("this session has no output channel")
        line = json.dumps(payload)
        with self._lock:
            self._write_line(line)

    def notify(self, sub, version: int, events: List[AnswerEvent]) -> None:
        """Push-delivery callback handed to ``subscribe`` (writer thread).

        Enqueue-only: must never block on the client's socket.
        """
        frame = notify_line(sub, version, events)
        with self._queue_cond:
            if self._closed or self._write_line is None:
                return
            if self._sender is None:
                self._sender = threading.Thread(
                    target=self._drain_notifies,
                    name=f"notify-{self.owner_id}",
                    daemon=True,
                )
                self._sender.start()
            if len(self._queued) >= self._max_queued:
                self._queued.popleft()
                self.notify_drops += 1
                logger.warning(
                    "notify queue for %s overflowed; dropped oldest frame "
                    "(%d drops so far; events remain pollable)",
                    self.owner_id,
                    self.notify_drops,
                )
            self._queued.append(frame)
            self._queue_cond.notify()

    def _drain_notifies(self) -> None:
        """Sender-thread loop: the only place notify frames hit the wire."""
        while True:
            with self._queue_cond:
                while not self._queued and not self._closed:
                    self._queue_cond.wait()
                if self._closed:
                    return
                frame = self._queued.popleft()
                self._in_flight = True
            try:
                self.send(frame)
            except Exception:  # noqa: BLE001 - a vanished client must not
                # kill the sender while frames from other subs are queued.
                logger.debug(
                    "notify delivery for %s failed; events remain pollable",
                    self.owner_id,
                    exc_info=True,
                )
            finally:
                with self._queue_cond:
                    self._in_flight = False
                    self._queue_cond.notify_all()

    def flush_notifies(self, timeout: Optional[float] = None) -> bool:
        """Block until every queued notify frame has been written.

        ``True`` when the queue drained (or the session closed) within
        ``timeout`` seconds; for tests and orderly teardown — the push
        path itself never waits on this.
        """
        with self._queue_cond:
            return self._queue_cond.wait_for(
                lambda: self._closed or (not self._queued and not self._in_flight),
                timeout,
            )

    def track(self, sub_id: str) -> None:
        self._subs.add(sub_id)

    def untrack(self, sub_id: str) -> None:
        self._subs.discard(sub_id)

    def close(self) -> None:
        """GC this connection's subscriptions (idempotent, swallows a
        stopped service — disconnects race shutdown by design)."""
        with self._queue_cond:
            self._closed = True
            self._queued.clear()
            self._queue_cond.notify_all()
        self._write_line = None
        if not self._subs:
            return
        self._subs = set()
        try:
            self.service.drop_owner(self.owner_id)
        except ReproError:
            pass


def _ready_event(service: GraphService, transport: str, **extra) -> str:
    payload = {
        "ok": True,
        "event": "ready",
        "transport": transport,
        "version": service.version,
    }
    payload.update(extra)
    return json.dumps(payload)


def serve_stdio(service: GraphService, infile: IO[str], outfile: IO[str]) -> None:
    """Serve one client over text streams until EOF or ``shutdown``."""
    outfile.write(_ready_event(service, "stdio") + "\n")
    outfile.flush()

    def write_line(line: str) -> None:
        outfile.write(line + "\n")
        outfile.flush()

    session = ClientSession(service, write_line)
    try:
        for line in infile:
            if not line.strip():
                continue
            response, shutdown = handle_request(service, line, session)
            session.send(response)
            if shutdown:
                break
    finally:
        session.close()


class _ServiceTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address, service: GraphService) -> None:
        super().__init__(address, _ServiceHandler)
        self.service = service


class _ServiceHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        def write_line(line: str) -> None:
            try:
                self.wfile.write((line + "\n").encode("utf-8"))
                self.wfile.flush()
            except (OSError, ValueError):
                # A vanished client must not take down the writer thread
                # mid-notify; its subscriptions are reaped on disconnect.
                pass

        session = ClientSession(self.server.service, write_line)
        try:
            for raw in self.rfile:
                line = raw.decode("utf-8", errors="replace")
                if not line.strip():
                    continue
                response, shutdown = handle_request(self.server.service, line, session)
                session.send(response)
                if shutdown:
                    # shutdown() blocks until serve_forever() exits, and
                    # this handler runs on a connection thread — hand it
                    # to yet another thread so this socket closes promptly.
                    threading.Thread(target=self.server.shutdown, daemon=True).start()
                    return
        finally:
            session.close()


def serve_tcp(
    service: GraphService,
    host: str = "127.0.0.1",
    port: int = 0,
    announce: Optional[IO[str]] = None,
) -> None:
    """Serve concurrent TCP clients until a ``shutdown`` request.

    ``port=0`` binds an ephemeral port; the ``ready`` event written to
    ``announce`` (when given) carries the actual one.
    """
    with _ServiceTCPServer((host, port), service) as server:
        if announce is not None:
            bound_host, bound_port = server.server_address[:2]
            announce.write(
                _ready_event(service, "tcp", host=bound_host, port=bound_port) + "\n"
            )
            announce.flush()
        server.serve_forever(poll_interval=0.1)
