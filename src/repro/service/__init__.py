"""Long-running graph service: MVCC snapshots, result cache, request API.

The library-shaped stack (miner → delta maintenance → partitions →
resident workers) becomes a *system* here: one writer thread applies
update streams through the existing maintainer stack while many readers
mine immutable pinned snapshots, with results cached per (version,
canonical spec).  Three surfaces share the one code path:

* :class:`GraphService` — in-process submit/poll/await request API;
* ``repro serve`` — newline-delimited JSON over stdin/stdout or TCP
  (:mod:`repro.service.server` / :mod:`repro.service.protocol`);
* ``repro-graph mine-stream`` — a thin client of :class:`GraphService`
  in its delta mode.

See ``docs/architecture.md`` ("Service daemon") for the snapshot
lifecycle and cache-key canonicalization rules.
"""

from .cache import ResultCache
from .protocol import (
    PROTOCOL_VERSION,
    ErrorCode,
    answer_payload,
    handle_request,
    notify_line,
    parse_updates,
    result_bytes,
    result_payload,
)
from .server import ClientSession, serve_stdio, serve_tcp
from .service import BatchInfo, GraphService, Ticket
from .snapshots import Snapshot, SnapshotRegistry
from .subscriptions import Subscription, SubscriptionRegistry

__all__ = [
    "BatchInfo",
    "ClientSession",
    "ErrorCode",
    "GraphService",
    "PROTOCOL_VERSION",
    "ResultCache",
    "Snapshot",
    "SnapshotRegistry",
    "Subscription",
    "SubscriptionRegistry",
    "Ticket",
    "answer_payload",
    "handle_request",
    "notify_line",
    "parse_updates",
    "result_bytes",
    "result_payload",
    "serve_stdio",
    "serve_tcp",
]
