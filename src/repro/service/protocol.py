"""The newline-delimited JSON request protocol of ``repro serve``.

One request per line, one JSON-object response per line, over
stdin/stdout or a TCP connection — the same :func:`handle_request`
either way, and every operation lands on the same in-process
:class:`~repro.service.GraphService` the library exposes.

Requests are objects with an ``op`` field; an optional ``id`` field is
echoed back for request/response correlation over pipelined or
concurrent connections::

    {"op": "ping"}
    {"op": "version"}
    {"op": "update", "updates": [["v", 9, "A"], ["e", 9, 3], ["de", 1, 2]]}
    {"op": "mine", "spec": {"min_support": 3}, "version": 7}
    {"op": "subscribe", "spec": {"kind": "threshold", "min_support": 3}}
    {"op": "poll_events", "subscription": "s1", "max": 100}
    {"op": "unsubscribe", "subscription": "s1"}
    {"op": "stats"}
    {"op": "metrics"}
    {"op": "trace", "trace_id": "t000001"}
    {"op": "shutdown"}

**Protocol versioning.**  Every response carries ``"v": 1``
(:data:`PROTOCOL_VERSION`).  Requests may omit ``"v"`` (treated as 1) or
pin it; an unsupported pin is refused with the ``unsupported_protocol``
error code instead of being half-understood.  The compatibility rule
(documented in ``docs/architecture.md``): servers never remove or
re-type existing response fields within a protocol version — clients
must tolerate *added* fields, and breaking changes bump the version.

Responses carry ``"ok": true`` plus op-specific fields, or
``"ok": false`` with ``error``/``type``/``code`` on failure — ``code``
is a machine-readable member of :class:`ErrorCode`, stable across
message-text rewording, for thin clients to branch on.  Mining responses
serialize results through :func:`result_payload`, which deliberately
excludes run statistics: the payload holds exactly the result-defining
bytes (certificates, supports, occurrence counts), so a service-mediated
response can be diffed byte-for-byte against a one-shot CLI ``mine`` of
the same version — stats describe how much *work* a strategy did, which
legitimately differs between maintained and from-scratch runs.
"""

from __future__ import annotations

import enum
import json
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ReproError, ServiceError
from ..mining.dynamic import GraphUpdate
from ..mining.results import MiningResult
from ..mining.spec import MiningSpec
from ..mining.standing import Answer, AnswerEvent, StandingSpec
from ..obs import trace as _trace
from .service import GraphService

#: The protocol version this server speaks (stamped on every response).
PROTOCOL_VERSION = 1

#: Required operand count per update kind (the record itself included).
_UPDATE_ARITY = {"v": 3, "e": 3, "de": 3, "dv": 2}


class ErrorCode(str, enum.Enum):
    """Machine-readable error codes shared by server and thin clients.

    The ``error`` message text may be reworded freely; the ``code`` is
    the stable contract clients branch on.
    """

    BAD_REQUEST = "bad_request"
    UNKNOWN_OP = "unknown_op"
    UNKNOWN_SUBSCRIPTION = "unknown_subscription"
    UNSUPPORTED_PROTOCOL = "unsupported_protocol"


def _error(code: ErrorCode, message: str) -> ServiceError:
    exc = ServiceError(message)
    exc.code = code
    return exc


def result_payload(result: MiningResult) -> Dict[str, Any]:
    """The canonical, stats-free JSON shape of a mining result."""
    return {
        "measure": result.measure,
        "min_support": result.min_support,
        "num_frequent": len(result.frequent),
        "patterns": [
            {
                "certificate": fp.certificate,
                "support": fp.support,
                "num_occurrences": fp.num_occurrences,
                "num_nodes": fp.num_nodes,
                "num_edges": fp.num_edges,
            }
            for fp in result.frequent
        ],
    }


def result_bytes(result: MiningResult) -> str:
    """Canonical serialized form — equal strings iff equal results."""
    return json.dumps(result_payload(result), sort_keys=True, separators=(",", ":"))


def parse_updates(records: Any) -> List[GraphUpdate]:
    """JSON arrays → the update tuples :func:`apply_update` consumes."""
    if not isinstance(records, list):
        raise ServiceError("'updates' must be an array of update records")
    updates: List[GraphUpdate] = []
    for record in records:
        if not isinstance(record, list) or not record:
            raise ServiceError(f"malformed update record {record!r}")
        kind = record[0]
        arity = _UPDATE_ARITY.get(kind)
        if arity is None:
            raise ServiceError(
                f"unknown update kind {kind!r} (expected 'v', 'e', 'de' or 'dv')"
            )
        if len(record) != arity:
            raise ServiceError(f"update record {record!r} must have {arity} elements")
        updates.append(tuple(record))
    return updates


def handle_request(
    service: GraphService, line: str, session=None
) -> Tuple[Dict[str, Any], bool]:
    """Answer one protocol line; returns ``(response, shutdown_requested)``.

    ``session`` (a :class:`~repro.service.server.ClientSession`, when the
    transport provides one) scopes subscriptions to the connection: it
    owns them for disconnect GC and carries the push-delivery writer.
    """
    request_id = None
    try:
        try:
            request = json.loads(line)
        except ValueError as exc:
            raise ServiceError(f"malformed request JSON: {exc}") from exc
        if not isinstance(request, dict):
            raise ServiceError(
                f"request must be a JSON object, got {type(request).__name__}"
            )
        request_id = request.get("id")
        proto = request.get("v")
        if proto is not None and proto != PROTOCOL_VERSION:
            raise _error(
                ErrorCode.UNSUPPORTED_PROTOCOL,
                f"unsupported protocol version {proto!r} "
                f"(this server speaks v{PROTOCOL_VERSION})",
            )
        op = request.get("op")
        if op == "ping":
            response: Dict[str, Any] = {"ok": True, "op": "ping"}
        elif op == "version":
            with service.pin() as snap:
                response = {
                    "ok": True,
                    "op": "version",
                    "version": snap.version,
                    "num_vertices": snap.graph.num_vertices,
                    "num_edges": snap.graph.num_edges,
                }
        elif op == "update":
            info = service.apply_updates(parse_updates(request.get("updates")))
            response = {
                "ok": True,
                "op": "update",
                "version": info.version,
                "applied": info.applied,
                "expired": info.expired,
                "num_vertices": info.num_vertices,
                "num_edges": info.num_edges,
            }
        elif op == "mine":
            response = _handle_mine(service, request)
        elif op == "subscribe":
            response = _handle_subscribe(service, request, session)
        elif op == "unsubscribe":
            response = _handle_unsubscribe(service, request, session)
        elif op == "poll_events":
            response = _handle_poll_events(service, request)
        elif op == "stats":
            response = {"ok": True, "op": "stats", **service.stats()}
        elif op == "metrics":
            response = {
                "ok": True,
                "op": "metrics",
                "metrics": service.metrics_snapshot(),
            }
        elif op == "trace":
            response = _handle_trace(request)
        elif op == "shutdown":
            response = {"ok": True, "op": "shutdown", "v": PROTOCOL_VERSION}
            if request_id is not None:
                response["id"] = request_id
            return (response, True)
        else:
            raise _error(ErrorCode.UNKNOWN_OP, f"unknown op {op!r}")
    except ReproError as exc:
        code = getattr(exc, "code", ErrorCode.BAD_REQUEST)
        response = {
            "ok": False,
            "error": str(exc),
            "type": type(exc).__name__,
            "code": code.value,
        }
    response["v"] = PROTOCOL_VERSION
    if request_id is not None:
        response["id"] = request_id
    return response, False


def _handle_mine(service: GraphService, request: Dict[str, Any]) -> Dict[str, Any]:
    spec_fields = request.get("spec", {})
    if not isinstance(spec_fields, dict):
        raise ServiceError("'spec' must be a JSON object of MiningSpec fields")
    spec: Optional[MiningSpec] = (
        MiningSpec.from_kwargs(**spec_fields) if spec_fields else None
    )
    version = request.get("version")
    if version is not None and not isinstance(version, int):
        raise ServiceError(f"'version' must be an integer, got {version!r}")
    # Hold the pin across the cache peek *and* the mine so a concurrent
    # version advance cannot invalidate the "cached" claim we report.
    with service.pin(version) as snap:
        effective = spec if spec is not None else service.maintain_spec
        cached = service.cache.peek(snap.version, effective.cache_key()) is not None
        with _trace.span(
            "service.mine", version=snap.version, cached=cached
        ) as mine_span:
            result = service.mine(spec, snapshot=snap)
        trace_id = getattr(mine_span, "trace_id", None)
    response = {
        "ok": True,
        "op": "mine",
        "version": snap.version,
        "cached": cached,
        "result": result_payload(result),
    }
    if trace_id is not None:
        # Echoed so the span tree is retrievable via {"op": "trace", ...}.
        response["trace_id"] = trace_id
    return response


def answer_payload(answer: Answer) -> List[Dict[str, Any]]:
    """The canonical JSON shape of a standing answer (certificate-sorted)."""
    return [
        {
            "certificate": certificate,
            "support": entry.support,
            "num_occurrences": entry.num_occurrences,
            "frequent": entry.frequent,
        }
        for certificate, entry in sorted(answer.items())
    ]


def notify_line(sub, version: int, events: List[AnswerEvent]) -> Dict[str, Any]:
    """The server-push notification frame for one dispatched batch."""
    return {
        "ok": True,
        "event": "notify",
        "v": PROTOCOL_VERSION,
        "subscription": sub.id,
        "version": version,
        "events": [event.payload() for event in events],
    }


def _handle_subscribe(
    service: GraphService, request: Dict[str, Any], session
) -> Dict[str, Any]:
    spec_fields = request.get("spec", {})
    if not isinstance(spec_fields, dict):
        raise ServiceError("'spec' must be a JSON object of StandingSpec fields")
    spec = StandingSpec.from_kwargs(**spec_fields)
    push = None
    owner = session.owner_id if session is not None else None
    if spec.delivery == "push":
        if session is None or not session.can_push:
            raise _error(
                ErrorCode.BAD_REQUEST,
                "push delivery requires a connection-bound session "
                "(subscribe over TCP, or use delivery='poll')",
            )
        push = session.notify
    sub = service.subscribe(spec, push=push, owner=owner)
    if session is not None:
        session.track(sub.id)
    return {
        "ok": True,
        "op": "subscribe",
        "subscription": sub.id,
        "version": sub.version,
        "kind": spec.kind,
        "answer": answer_payload(sub.answer_snapshot()),
    }


def _handle_unsubscribe(
    service: GraphService, request: Dict[str, Any], session
) -> Dict[str, Any]:
    sub_id = request.get("subscription")
    if not isinstance(sub_id, str):
        raise ServiceError(f"'subscription' must be a string id, got {sub_id!r}")
    if not service.unsubscribe(sub_id):
        raise _error(ErrorCode.UNKNOWN_SUBSCRIPTION, f"unknown subscription {sub_id!r}")
    if session is not None:
        session.untrack(sub_id)
    return {"ok": True, "op": "unsubscribe", "subscription": sub_id}


def _handle_poll_events(service: GraphService, request: Dict[str, Any]):
    sub_id = request.get("subscription")
    if not isinstance(sub_id, str):
        raise ServiceError(f"'subscription' must be a string id, got {sub_id!r}")
    sub = service.subscriptions.get(sub_id)
    if sub is None:
        raise _error(ErrorCode.UNKNOWN_SUBSCRIPTION, f"unknown subscription {sub_id!r}")
    max_events = request.get("max")
    if max_events is not None and (not isinstance(max_events, int) or max_events < 0):
        raise ServiceError(f"'max' must be a non-negative integer, got {max_events!r}")
    events = sub.poll(max_events)
    return {
        "ok": True,
        "op": "poll_events",
        "subscription": sub_id,
        "version": sub.version,
        "events": [event.payload() for event in events],
        "pending": sub.pending,
        "dropped": sub.dropped,
    }


def _handle_trace(request: Dict[str, Any]) -> Dict[str, Any]:
    trace_id = request.get("trace_id")
    if not isinstance(trace_id, str):
        raise ServiceError(f"'trace_id' must be a string, got {trace_id!r}")
    records = _trace.get_trace(trace_id)
    if not records:
        raise ServiceError(
            f"unknown trace {trace_id!r} (traces are kept for the last "
            "requests only, and only while tracing is enabled)"
        )
    return {
        "ok": True,
        "op": "trace",
        "trace_id": trace_id,
        "spans": [record.payload() for record in records],
    }
