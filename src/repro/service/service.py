"""The in-process graph service: one writer, many readers, one cache.

:class:`GraphService` is the single code path behind all three request
surfaces — in-process callers, the ``repro serve`` daemon, and
``mine-stream`` (a thin client of this class):

* **one writer thread** owns the live graph.  Update batches are
  submitted as tickets and applied in order through
  :class:`~repro.mining.dynamic.StreamApplier` (sliding-window rules
  included); after each batch the writer publishes a new snapshot
  version and — when a *maintenance spec* is configured — refreshes its
  :class:`~repro.mining.dynamic.DynamicMiner` (O(delta) reuse/skip over
  the existing maintainer stack) and caches the result at the new
  version, so readers asking the maintained question are pure cache
  hits;
* **readers never touch the live graph.**  A mine request pins an
  immutable snapshot from the :class:`SnapshotRegistry`, consults the
  :class:`ResultCache` at the pinned version, and only on a miss runs a
  one-shot mine of the frozen snapshot graph.  Readers never block the
  writer (and the writer never waits for readers);
* results are **byte-identical** to a one-shot ``mine()`` of the graph
  at the pinned version, whichever path produced them: the snapshot
  graph *is* the graph at that version, and the maintained results are
  pinned equal to one-shot results by the dynamic-mining equivalence
  suite.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from queue import SimpleQueue
from typing import Iterator, List, Optional, Sequence

from ..errors import ServiceError
from ..graph.labeled_graph import LabeledGraph
from ..mining.dynamic import DynamicMiner, GraphUpdate, StreamApplier
from ..mining.miner import mine_frequent_patterns
from ..mining.results import MiningResult
from ..mining.spec import DEFAULT_SPEC, MiningSpec
from ..mining.standing import StandingSpec
from ..obs import metrics as _metrics
from .cache import ResultCache
from .snapshots import Snapshot, SnapshotRegistry
from .subscriptions import Subscription, SubscriptionRegistry


@dataclass(frozen=True)
class BatchInfo:
    """What one applied update batch did (an update ticket's result)."""

    version: int
    applied: int
    expired: int
    num_vertices: int
    num_edges: int
    result: Optional[MiningResult] = None


class Ticket:
    """A pending request: poll it, or wait for its result.

    ``poll()`` is non-blocking (``None`` until done), ``wait()`` blocks
    and returns the result — re-raising the worker's exception if the
    request failed.
    """

    __slots__ = ("_event", "_result", "_error")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._result = None
        self._error: Optional[BaseException] = None

    def _resolve(self, result) -> None:
        self._result = result
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def poll(self):
        """The result if finished, else ``None`` (errors re-raise)."""
        if not self._event.is_set():
            return None
        return self.wait()

    def wait(self, timeout: Optional[float] = None):
        if not self._event.wait(timeout):
            raise ServiceError(f"request did not complete within {timeout}s")
        if self._error is not None:
            raise self._error
        return self._result


class GraphService:
    """A long-running mining service over one live graph.

    Parameters
    ----------
    graph:
        The live data graph.  After construction it belongs to the
        writer: mutate it only via :meth:`submit_updates`.
    maintain:
        Optional :class:`MiningSpec` the writer keeps *maintained*: each
        applied batch refreshes a :class:`DynamicMiner` with this spec
        (stream fields — ``window``, ``batch_size``, ``mode`` — are
        honored by the writer, not the miner) and caches the result at
        the new version.  Without it the service is pure MVCC + cache:
        every first request at a version mines a snapshot.
    cache_size:
        Optional LRU bound on the result cache (entries, not bytes).
    window:
        Optional sliding-window size for the writer's
        :class:`StreamApplier` (defaults to the maintenance spec's
        ``window``, or no expiry without one).
    """

    def __init__(
        self,
        graph: LabeledGraph,
        maintain: Optional[MiningSpec] = None,
        cache_size: Optional[int] = None,
        window: Optional[int] = None,
    ) -> None:
        self._graph = graph
        self._maintain = maintain
        registry = _metrics.get_registry()
        registry.counter("repro_service_batches_applied")
        registry.counter("repro_service_mine_requests")
        self.cache = ResultCache(max_entries=cache_size)
        self.registry = SnapshotRegistry(graph)
        # A fully-released non-tip version can never be requested again
        # (its snapshot is gone) — drop its cache entries with it.
        self.registry.on_evict(self._on_snapshot_evicted)
        self.subscriptions = SubscriptionRegistry(graph, self.cache)
        if window is None and maintain is not None:
            window = maintain.window
        self._applier = StreamApplier(graph, window)
        self._miner: Optional[DynamicMiner] = None
        if maintain is not None:
            self._miner = DynamicMiner(graph, spec=maintain)
        self._commands: SimpleQueue = SimpleQueue()
        self._stopped = False
        self._lock = threading.Lock()
        self._writer = threading.Thread(
            target=self._writer_loop, name="repro-service-writer", daemon=True
        )
        self._writer.start()

    # ------------------------------------------------------------------
    # writer side
    # ------------------------------------------------------------------
    def _writer_loop(self) -> None:
        while True:
            command = self._commands.get()
            if command is None:
                return
            kind, payload, ticket = command
            try:
                if kind == "batch":
                    ticket._resolve(self._apply_batch(payload))
                elif kind == "subscribe":
                    spec, push, owner = payload
                    ticket._resolve(
                        self.subscriptions.register(
                            spec, version=self.registry.tip, push=push, owner=owner
                        )
                    )
                elif kind == "unsubscribe":
                    ticket._resolve(self.subscriptions.unregister(payload))
                else:  # drop_owner
                    ticket._resolve(self.subscriptions.drop_owner(payload))
            except BaseException as exc:  # noqa: BLE001 - ticket carries it
                ticket._fail(exc)

    def _apply_batch(self, updates: Sequence[GraphUpdate]) -> BatchInfo:
        applied, expired = self._applier.apply_batch(updates)
        version = self.registry.publish()
        result = None
        if self._miner is not None:
            result = self._miner.refresh()
            self.cache.put(version, self._maintain.cache_key(), result)
        # Version advance is the one invalidation rule: entries for
        # versions nobody can reach anymore (older than tip, unpinned)
        # are dead weight; pinned versions keep their entries.
        pinned = self.registry.pinned_versions()
        self.cache.retain(lambda v: v == version or v in pinned)
        # Standing queries see the batch last, after the maintained
        # result landed in the cache: a threshold subscription to the
        # maintained spec is then a pure cache adoption, never a mine.
        self.subscriptions.dispatch(version)
        _metrics.counter("repro_service_batches_applied").inc()
        return BatchInfo(
            version=version,
            applied=applied,
            expired=expired,
            num_vertices=self._graph.num_vertices,
            num_edges=self._graph.num_edges,
            result=result,
        )

    def _on_snapshot_evicted(self, version: int) -> None:
        # The tip's entries survive pin/release churn (the version is
        # still reachable); a *non-tip* version whose last pin went away
        # can never be requested again, so its entries go with it.
        if version != self.registry.tip:
            self.cache.drop_version(version)

    def submit_updates(self, updates: Sequence[GraphUpdate]) -> Ticket:
        """Queue one update batch for the writer; returns its ticket.

        The ticket resolves to a :class:`BatchInfo` once the writer has
        applied the batch, published the new snapshot version, and (with
        a maintenance spec) refreshed + cached the maintained result.
        """
        return self._submit_command("batch", list(updates))

    def _submit_command(self, kind: str, payload) -> Ticket:
        with self._lock:
            if self._stopped:
                raise ServiceError("the service is stopped")
            ticket = Ticket()
            self._commands.put((kind, payload, ticket))
            return ticket

    def apply_updates(self, updates: Sequence[GraphUpdate]) -> BatchInfo:
        """Submit one batch and wait for it (convenience wrapper)."""
        return self.submit_updates(updates).wait()

    # ------------------------------------------------------------------
    # standing queries
    # ------------------------------------------------------------------
    def subscribe(
        self,
        spec: StandingSpec,
        push=None,
        owner: Optional[str] = None,
    ) -> Subscription:
        """Register a standing query; returns its live subscription.

        Routed through the writer's command queue so the baseline answer
        is race-free against in-flight batches: it is evaluated at the
        tip version visible once every earlier batch has dispatched.
        ``push`` (a ``(subscription, version, events)`` callable) is
        required for — and only used with — ``delivery="push"`` specs.
        """
        return self._submit_command("subscribe", (spec, push, owner)).wait()

    def unsubscribe(self, subscription) -> bool:
        """Remove a subscription (object or id); ``False`` if unknown."""
        sub_id = getattr(subscription, "id", subscription)
        return self._submit_command("unsubscribe", sub_id).wait()

    def drop_owner(self, owner: str) -> int:
        """GC every subscription owned by ``owner`` (client disconnect)."""
        return self._submit_command("drop_owner", owner).wait()

    # ------------------------------------------------------------------
    # reader side
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """The latest published snapshot version."""
        return self.registry.tip

    @property
    def maintain_spec(self) -> MiningSpec:
        """The spec a spec-less request gets (maintained, or defaults)."""
        return self._maintain if self._maintain is not None else DEFAULT_SPEC

    def pin(self, version: Optional[int] = None) -> Snapshot:
        """Pin a snapshot (tip by default); release it when done."""
        return self.registry.pin(version)

    def mine(
        self,
        spec: Optional[MiningSpec] = None,
        version: Optional[int] = None,
        snapshot: Optional[Snapshot] = None,
    ) -> MiningResult:
        """Answer one mining request at a pinned version, cache-first.

        Runs on the calling thread (use :meth:`submit` for the async
        surface).  The snapshot is pinned *before* the cache lookup so a
        concurrent version advance cannot slip between "cache says miss
        at V" and "mine at V".  Passing an already-pinned ``snapshot``
        skips pinning (and the snapshot stays pinned for the caller).
        """
        if spec is None:
            spec = self._maintain if self._maintain is not None else DEFAULT_SPEC
        if snapshot is not None:
            if version is not None and version != snapshot.version:
                raise ServiceError(
                    f"version {version} contradicts the pinned snapshot "
                    f"(version {snapshot.version})"
                )
            return self._execute(spec, snapshot)
        with self.registry.pin(version) as snap:
            return self._execute(spec, snap)

    def _execute(self, spec: MiningSpec, snap: Snapshot) -> MiningResult:
        _metrics.counter("repro_service_mine_requests").inc()
        key = spec.cache_key()
        cached = self.cache.get(snap.version, key)
        if cached is not None:
            return cached
        result = mine_frequent_patterns(snap.graph, spec=spec)
        self.cache.put(snap.version, key, result)
        return result

    def submit(
        self, spec: Optional[MiningSpec] = None, version: Optional[int] = None
    ) -> Ticket:
        """Async mine request: returns a ticket resolving to the result.

        The snapshot is pinned synchronously (so the request is anchored
        to the version visible *now*), then the mine runs on a reader
        thread — submit/poll/await without ever blocking the writer.
        """
        if spec is None:
            spec = self._maintain if self._maintain is not None else DEFAULT_SPEC
        snap = self.registry.pin(version)
        ticket = Ticket()

        def run() -> None:
            try:
                ticket._resolve(self._execute(spec, snap))
            except BaseException as exc:  # noqa: BLE001 - ticket carries it
                ticket._fail(exc)
            finally:
                snap.release()

        thread = threading.Thread(
            target=run, name=f"repro-service-reader-v{snap.version}", daemon=True
        )
        thread.start()
        return ticket

    # ------------------------------------------------------------------
    @property
    def metrics(self) -> _metrics.MetricsRegistry:
        """The active metrics registry (injectable via ``obs.set_registry``)."""
        return _metrics.get_registry()

    def metrics_snapshot(self) -> dict:
        """The full registry snapshot — the ``metrics`` verb's payload."""
        return self.metrics.snapshot()

    def stats(self) -> dict:
        """Cache counters + snapshot bookkeeping, for the request surface.

        Rebased on the metrics-registry snapshot so the ``stats`` and
        ``metrics`` verbs report from one source and cannot drift; the
        historical short key names (``hits``, ``misses``, ``evictions``,
        ``entries``) are aliases of the ``repro_cache_*`` instruments and
        kept for one release.
        """
        snap = self.metrics_snapshot()
        return {
            "entries": snap.get("repro_cache_entries", 0),
            "hits": snap.get("repro_cache_hits", 0),
            "misses": snap.get("repro_cache_misses", 0),
            "evictions": snap.get("repro_cache_evictions", 0),
            "version": self.registry.tip,
            "pinned_versions": sorted(self.registry.pinned_versions()),
            "maintained": self._maintain is not None,
        }

    def stop(self) -> None:
        """Drain the writer, release the miner and registry. Idempotent.

        Queued update batches finish first (their tickets resolve);
        anything submitted after stop() raises.
        """
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
        self._commands.put(None)
        self._writer.join()
        self.subscriptions.close()
        if self._miner is not None:
            self._miner.close()
        self.registry.close()

    def __enter__(self) -> "GraphService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def stream(
        self, updates: Sequence[GraphUpdate], batch_size: int = 1
    ) -> Iterator[BatchInfo]:
        """Apply ``updates`` in batches, yielding each batch's info."""
        batch: List[GraphUpdate] = []
        for update in updates:
            batch.append(update)
            if len(batch) >= batch_size:
                yield self.apply_updates(batch)
                batch = []
        if batch:
            yield self.apply_updates(batch)
