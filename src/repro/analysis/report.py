"""Plain-text table rendering for examples and benchmark output.

Small, dependency-free helpers that turn rows of values into the aligned
ASCII tables printed by the figure/benchmark harnesses.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table.

    Floats are shown with up to 3 decimals (trailing zeros trimmed);
    everything else via ``str``.
    """

    def render(cell: object) -> str:
        if isinstance(cell, float):
            if cell == int(cell):
                return str(int(cell))
            return f"{cell:.3f}".rstrip("0").rstrip(".")
        return str(cell)

    rendered = [[render(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    parts: List[str] = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(line(list(headers)))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in rendered)
    return "\n".join(parts)


def format_occurrence_table(pattern, occurrences) -> str:
    """Render the per-occurrence image table exactly like the paper's figures

    (rows ``f1: 1 2 3`` ... plus the ``# of images`` footer of Fig. 2).
    """
    nodes = pattern.nodes()
    headers = ["occurrence"] + [str(node) for node in nodes]
    rows = []
    images = {node: set() for node in nodes}
    for occurrence in occurrences:
        mapping = occurrence.mapping
        rows.append([occurrence.label() + ":"] + [str(mapping[node]) for node in nodes])
        for node in nodes:
            images[node].add(mapping[node])
    rows.append(["# of images:"] + [str(len(images[node])) for node in nodes])
    return format_table(headers, rows)


def format_hypergraph(hypergraph) -> str:
    """Render a hypergraph as ``label: {v, v, ...}`` lines."""
    lines = [f"{hypergraph!r}"]
    for edge in hypergraph.edges():
        members = ", ".join(sorted(map(str, edge.vertices)))
        lines.append(f"  {edge.label}: {{{members}}}")
    return "\n".join(lines)
