"""The measure spectrum: every support measure for one (pattern, graph) pair.

The paper's central diagram is the frequency spectrum

    sigma_MIS = sigma_MIES <= nu <= sigma_MVC <= sigma_MI <= sigma_MNI

:func:`measure_spectrum` computes it (plus the raw counts and the MCP
baseline) from a single shared occurrence enumeration, with timing, and
:func:`spectrum_report` renders it as the table the examples print.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..graph.labeled_graph import LabeledGraph
from ..graph.pattern import Pattern
from ..hypergraph.construction import HypergraphBundle
from ..hypergraph.overlap import instance_overlap_graph
from ..measures.mcp import mcp_support_of
from ..measures.mi import mi_support_from_occurrences
from ..measures.mis import mis_support_of
from ..measures.mies import mies_support_of
from ..measures.mni import mni_support_from_occurrences
from ..measures.mvc import mvc_support_of
from ..measures.relaxations import lp_mies_support_of, lp_mvc_support_of
from .report import format_table

#: Spectrum entries in chain order: (key, pretty name, anti-monotonic?).
SPECTRUM_ORDER: List[Tuple[str, str, bool]] = [
    ("occurrences", "occurrence count", False),
    ("instances", "instance count", False),
    ("mis", "sigma_MIS", True),
    ("mies", "sigma_MIES", True),
    ("lp_mies", "nu_MIES", True),
    ("lp_mvc", "nu_MVC", True),
    ("mvc", "sigma_MVC", True),
    ("mi", "sigma_MI", True),
    ("mni", "sigma_MNI", True),
    ("mcp", "sigma_MCP", True),
]


@dataclass
class SpectrumEntry:
    """One measure's value and wall-clock cost within a spectrum."""

    key: str
    display: str
    value: float
    seconds: float
    anti_monotonic: bool


@dataclass
class Spectrum:
    """The full measure spectrum for one (pattern, graph) pair."""

    pattern: Pattern
    entries: List[SpectrumEntry]
    enumeration_seconds: float
    num_occurrences: int
    num_instances: int

    def value(self, key: str) -> float:
        for entry in self.entries:
            if entry.key == key:
                return entry.value
        raise KeyError(key)

    def as_dict(self) -> Dict[str, float]:
        return {entry.key: entry.value for entry in self.entries}


def measure_spectrum(
    pattern: Pattern,
    data: LabeledGraph,
    bundle: Optional[HypergraphBundle] = None,
    include: Optional[List[str]] = None,
) -> Spectrum:
    """Compute the (timed) spectrum; ``include`` restricts to given keys.

    Occurrence enumeration is timed separately (the paper's convention is
    to exclude framework-construction time from measure cost).
    """
    start = time.perf_counter()
    if bundle is None:
        bundle = HypergraphBundle.build(pattern, data)
    enumeration_seconds = time.perf_counter() - start

    overlap_cache: Dict[str, object] = {}

    def instance_overlap():
        if "graph" not in overlap_cache:
            overlap_cache["graph"] = instance_overlap_graph(bundle.instances)
        return overlap_cache["graph"]

    computers: Dict[str, Callable[[], float]] = {
        "occurrences": lambda: float(bundle.num_occurrences),
        "instances": lambda: float(bundle.num_instances),
        "mni": lambda: float(
            mni_support_from_occurrences(pattern, bundle.occurrences)
        ),
        "mi": lambda: float(mi_support_from_occurrences(pattern, bundle.occurrences)),
        "mvc": lambda: float(mvc_support_of(bundle.occurrence_hg)),
        "mies": lambda: float(mies_support_of(bundle.instance_hg)),
        # Large one-edge workloads: use Theorem 4.1 (MIS = MIES) plus the
        # polynomial blossom-matching MIES instead of the overlap-graph B&B.
        "mis": lambda: (
            float(mies_support_of(bundle.instance_hg))
            if bundle.instance_hg.uniformity() == 2 and bundle.num_instances > 60
            else float(mis_support_of(instance_overlap()))
        ),
        "mcp": lambda: float(mcp_support_of(instance_overlap())),
        "lp_mvc": lambda: lp_mvc_support_of(bundle.occurrence_hg),
        "lp_mies": lambda: lp_mies_support_of(bundle.occurrence_hg),
    }

    keys = include if include is not None else [key for key, _, _ in SPECTRUM_ORDER]
    entries: List[SpectrumEntry] = []
    for key, display, anti in SPECTRUM_ORDER:
        if key not in keys:
            continue
        begin = time.perf_counter()
        value = computers[key]()
        elapsed = time.perf_counter() - begin
        entries.append(
            SpectrumEntry(
                key=key,
                display=display,
                value=value,
                seconds=elapsed,
                anti_monotonic=anti,
            )
        )
    return Spectrum(
        pattern=pattern,
        entries=entries,
        enumeration_seconds=enumeration_seconds,
        num_occurrences=bundle.num_occurrences,
        num_instances=bundle.num_instances,
    )


def spectrum_report(spectrum: Spectrum, title: Optional[str] = None) -> str:
    """Render a spectrum as an ASCII table."""
    rows = [
        [
            entry.display,
            entry.value,
            f"{entry.seconds * 1000:.2f} ms",
            "yes" if entry.anti_monotonic else "no",
        ]
        for entry in spectrum.entries
    ]
    table = format_table(
        ["measure", "value", "time", "anti-monotonic"],
        rows,
        title=title,
    )
    footer = (
        f"\n({spectrum.num_occurrences} occurrences, "
        f"{spectrum.num_instances} instances; enumeration took "
        f"{spectrum.enumeration_seconds * 1000:.2f} ms)"
    )
    return table + footer
