"""Analysis and reporting: measure spectra, overlap stats, ASCII tables."""

from .report import format_hypergraph, format_occurrence_table, format_table
from .spectrum import (
    SPECTRUM_ORDER,
    Spectrum,
    SpectrumEntry,
    measure_spectrum,
    spectrum_report,
)

__all__ = [
    "format_hypergraph",
    "format_occurrence_table",
    "format_table",
    "SPECTRUM_ORDER",
    "Spectrum",
    "SpectrumEntry",
    "measure_spectrum",
    "spectrum_report",
]
