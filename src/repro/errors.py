"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class.  Errors are raised eagerly at API boundaries with
messages that name the offending argument.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Structural problem in a graph (unknown vertex, duplicate edge, ...)."""


class VertexNotFoundError(GraphError):
    """A vertex id was referenced that is not present in the graph."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"vertex {vertex!r} is not in the graph")
        self.vertex = vertex


class EdgeNotFoundError(GraphError):
    """An edge was referenced that is not present in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.edge = (u, v)


class SelfLoopError(GraphError):
    """Self loops are not part of the paper's graph model (Def. 2.1.1)."""

    def __init__(self, vertex: object) -> None:
        super().__init__(
            f"self loop on vertex {vertex!r}: the labeled-graph model "
            "requires u != v for every edge"
        )
        self.vertex = vertex


class HypergraphError(ReproError):
    """Structural problem in a hypergraph."""


class PatternError(ReproError):
    """A pattern is malformed for the requested operation."""


class MeasureError(ReproError):
    """A support-measure computation could not be carried out."""


class BudgetExceededError(MeasureError):
    """An exact NP-hard solver exceeded its configured work budget."""

    def __init__(self, budget: int, what: str = "branch-and-bound nodes") -> None:
        super().__init__(
            f"exceeded budget of {budget} {what}; raise the budget or use an "
            "approximate/relaxed measure"
        )
        self.budget = budget


class LPError(ReproError):
    """Linear-programming solver failure."""


class InfeasibleLPError(LPError):
    """The linear program has no feasible point."""


class UnboundedLPError(LPError):
    """The linear program is unbounded in the optimization direction."""


class MiningError(ReproError):
    """Frequent-pattern mining failed or was misconfigured."""


class PartitionError(ReproError):
    """A data-graph partition is malformed or was misconfigured."""


class DatasetError(ReproError):
    """Dataset loading/generation failure."""


class ServiceError(ReproError):
    """The graph service was misused or is no longer running."""
